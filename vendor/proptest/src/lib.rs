//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of proptest's API its property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_recursive`,
//! [`prop_oneof!`], `any::<T>()`, integer-range strategies, tuple
//! strategies, and `prop::collection::vec`.
//!
//! Differences from the real crate, deliberate for a test-only stub:
//!
//! * **No shrinking.** A failing case panics with the generated input in
//!   the panic message (via the `prop_assert!` formatting) but is not
//!   minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test name and case index, so failures reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Generation-time state handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator derived deterministically from `seed`.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore as _;
        self.inner.next_u64()
    }

    /// A uniform index below `n` (panics if `n == 0`).
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive generation: `recurse` receives a strategy for the
        /// recursive positions and returns the composite strategy. Up to
        /// `depth` layers are stacked above `self` (the leaf strategy);
        /// `_desired_size` and `_expected_branch_size` are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: 'static + Fn(BoxedStrategy<Self::Value>) -> R,
        {
            #[allow(clippy::type_complexity)]
            let rec: Arc<dyn Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>> =
                Arc::new(move |inner| recurse(inner).boxed());
            Recursive {
                base: self.boxed(),
                rec,
                depth,
            }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    trait ErasedStrategy<T> {
        fn erased_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn ErasedStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.erased_generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        rec: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                rec: Arc::clone(&self.rec),
                depth: self.depth,
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            // Stack a random number of layers (≤ depth) above the leaf
            // strategy, then generate from the top.
            let layers = rng.index(self.depth as usize + 1) as u32;
            let mut s = self.base.clone();
            for _ in 0..layers {
                s = (self.rec)(s);
            }
            s.generate(rng)
        }
    }

    /// A uniform choice among type-erased alternatives ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of the given alternatives (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical full-domain strategy per type.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.index(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! The per-test driver used by the [`crate::proptest!`] macro.

    use super::TestRng;

    /// Run-count configuration (subset of proptest's).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Drives one property test: deterministic seeds per (test, case).
    pub struct TestRunner {
        config: Config,
        seed_base: u64,
    }

    impl TestRunner {
        /// A runner whose seeds derive from the test name.
        pub fn new(config: Config, test_name: &str) -> TestRunner {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRunner {
                config,
                seed_base: h,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The RNG for one case index.
        pub fn case_rng(&self, case: u32) -> TestRng {
            TestRng::from_seed(self.seed_base.wrapping_add(u64::from(case) * 0x9E37))
        }
    }
}

/// Namespaced re-exports mirroring `proptest::prop`.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! Everything a property test needs, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property test (no shrinking: failures
/// panic immediately with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// A uniform choice among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs its body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.case_rng(case);
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(&$strat, &mut rng),)+
                    );
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::Config::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf(#[allow(dead_code)] u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_generate_in_bounds(x in -5i32..=5, n in 0usize..4) {
            prop_assert!((-5..=5).contains(&x));
            prop_assert!(n < 4);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn recursive_strategies_respect_depth(
            t in (0u8..8).prop_map(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
                prop_oneof![
                    (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
                ]
            })
        ) {
            prop_assert!(depth(&t) <= 3);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        let r = crate::test_runner::TestRunner::new(
            crate::test_runner::Config::with_cases(1),
            "seeds_are_deterministic",
        );
        let mut a = r.case_rng(0);
        let mut b = r.case_rng(0);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
