//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the benchmark-harness surface its `benches/` use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], `b.iter(..)`, and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology is deliberately simple — warm up once, then time a fixed
//! batch of iterations and report mean wall-clock time per iteration (and
//! throughput where configured). There is no statistical analysis, HTML
//! report, or comparison to saved baselines; numbers print to stdout.

use std::fmt;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Per-benchmark throughput annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed batch of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call (fills caches, faults in pages).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

fn report(name: &str, iters: u64, elapsed: Duration, throughput: Option<Throughput>) {
    let per_iter = elapsed.checked_div(u32::try_from(iters).unwrap_or(u32::MAX));
    let per_iter = per_iter.unwrap_or_default();
    let mut line = format!("bench {name:<44} {per_iter:>12.2?}/iter ({iters} iters)");
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.0} elem/s", n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:.0} B/s", n as f64 / secs));
                }
            }
        }
    }
    println!("{line}");
}

impl Criterion {
    /// Benchmarks one routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(name, b.iters, b.elapsed, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks one routine within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{id}", self.name),
            b.iters,
            b.elapsed,
            self.throughput,
        );
        self
    }

    /// Benchmarks one routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(
            &format!("{}/{id}", self.name),
            b.iters,
            b.elapsed,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // One warm-up call plus `sample_size` timed iterations.
        assert_eq!(runs, 11);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, _| {
            b.iter(|| runs += 1)
        });
        g.finish();
        assert_eq!(runs, 4);
    }
}
