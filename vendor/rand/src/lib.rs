//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand`'s 0.8 API that it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range` / `gen_bool` over integer ranges.
//!
//! The generator is SplitMix64 — a different stream than the real
//! `StdRng` (ChaCha12), but every consumer in this workspace seeds
//! explicitly and only relies on *determinism*, never on a specific
//! stream, so substituting the algorithm preserves behaviour.

use std::ops::{Range, RangeInclusive};

/// A PRNG seedable from a `u64` (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types from which [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// The raw entropy source (subset of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 bits of mantissa are plenty for test probabilities.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seedable generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit PRNG (SplitMix64), standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Vigna).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-10i64..=10);
            assert!((-10..=10).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
