//! Reproduces the paper's §4 soundness-checking results: every qualifier
//! in the library is proven sound automatically, with per-qualifier
//! timings (the paper reports under 1 s for the value qualifiers and
//! under 30 s for the reference qualifiers, using Simplify on 2005
//! hardware).
//!
//! Run with: `cargo run --example soundness_report`

use stq_core::{Session, Verdict};

fn main() {
    let session = Session::with_builtins();
    println!("qualifier     kind        obligations  verdict              time");
    println!("-----------------------------------------------------------------");
    let mut all_ok = true;
    for report in session.prove_all_sound() {
        let def = session
            .registry()
            .get(report.qualifier)
            .expect("report is for a registered qualifier");
        let kind = match def.kind {
            stq_qualspec::QualKind::Value => "value",
            stq_qualspec::QualKind::Ref => "reference",
        };
        println!(
            "{:<12}  {:<10}  {:>11}  {:<19}  {:>8.3}s",
            report.qualifier.to_string(),
            kind,
            report.obligations.len(),
            report.verdict.to_string(),
            report.duration.as_secs_f64()
        );
        all_ok &= report.verdict != Verdict::Unsound;
        // Paper bounds: value < 1 s, reference < 30 s.
        let bound = match def.kind {
            stq_qualspec::QualKind::Value => 1.0,
            stq_qualspec::QualKind::Ref => 30.0,
        };
        assert!(
            report.duration.as_secs_f64() < bound,
            "{} exceeded the paper's bound",
            report.qualifier
        );
    }
    assert!(all_ok);
    println!("\nall qualifiers proven sound within the paper's time bounds.");
}
