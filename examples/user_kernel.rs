//! User/kernel pointer checking, built entirely from user-defined
//! qualifiers — the paper's §2.1.4: "flow qualifiers user and kernel can
//! be used to statically ensure that user pointers are never dereferenced
//! in kernel space" (Johnson & Wagner's USENIX Security 2004 analysis).
//!
//! Nothing here is built into the framework: `kernel` is a flow qualifier
//! whose `restrict` rule demands that every dereference be to a kernel
//! pointer, and `user` tags data arriving from system-call boundaries.
//!
//! Run with: `cargo run --example user_kernel`

use stq_core::Session;

fn main() {
    let mut session = Session::new();
    session
        .define_qualifiers(
            "value qualifier kernel(T* Expr E)
                 case E of
                     decl T LValue L:
                         &L
                 restrict decl T* Expr F:
                     *F, where kernel(F)
                 invariant value(E) != NULL
             value qualifier user(T* Expr E)
                 case E of
                     decl T* Expr E1:
                         E1",
        )
        .expect("qualifiers parse");
    assert!(!session.check_well_formed().has_errors());

    // kernel has an invariant (kernel pointers are mapped, hence nonnull
    // under the logical memory model) — prove it.
    let report = session.prove_sound("kernel").expect("defined");
    println!("{report}");
    assert_eq!(report.verdict, stq_core::Verdict::Sound);

    // A mini syscall handler: copy_from_user-style code.
    let source = "
        int copy_from_user(int* kernel dst, int* usrc);
        int sys_read(int* ubuf, int n) {
            int kbuf_storage;
            int* kernel kbuf = &kbuf_storage;
            int r;
            r = copy_from_user(kbuf, ubuf);
            *kbuf = *kbuf + n;
            return r;
        }";
    let result = session.check_source(source).expect("parses");
    println!(
        "syscall handler: {} violation(s) (kernel derefs only — clean)",
        result.stats.qualifier_errors
    );
    assert!(result.is_clean(), "{}", result.diags);

    // The bug class the analysis exists for: dereferencing the raw user
    // pointer in kernel space.
    let buggy = "
        int sys_read(int* ubuf, int n) {
            return *ubuf + n;
        }";
    let result = session.check_source(buggy).expect("parses");
    println!(
        "buggy handler:   {} violation(s):",
        result.stats.qualifier_errors
    );
    for d in result.diags.iter() {
        println!("  {d}");
    }
    assert_eq!(result.stats.qualifier_errors, 1);
}
