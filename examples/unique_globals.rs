//! The §6.2 uniqueness experiment: annotate grep's global `dfa` pointer
//! with `unique`, validate that all 49 subsequent references preserve
//! uniqueness, and show both imprecisions the paper reports — the
//! initialization that needs a cast, and the argument-passing idiom that
//! genuinely violates uniqueness.
//!
//! Run with: `cargo run --example unique_globals`

use stq_core::{Session, Verdict};
use stq_corpus::tables::{registry_subset, unique_experiment};
use stq_corpus::uniq::grep_unique_violation_source;
use stq_typecheck::check_program;

fn main() {
    // unique itself is proven sound first (paper: "under 30 seconds";
    // this reproduction takes milliseconds).
    let session = Session::with_builtins();
    let report = session.prove_sound("unique").expect("builtin");
    println!("{report}");
    assert_eq!(report.verdict, Verdict::Sound);

    // The experiment: 49 references, all validated; 1 cast for the
    // initialization from the parser module.
    let (row, references) = unique_experiment();
    println!(
        "grep dfa global: {references} references validated, {} cast(s), {} error(s) \
         [paper: 49 references, initialization cast required]",
        row.casts, row.errors
    );
    assert_eq!(references, 49);
    assert_eq!(row.errors, 0);

    // The violating idiom: passing the global to a procedure. "Indeed,
    // this idiom is a violation of uniqueness: inside a procedure where a
    // global is passed, the global is no longer unique."
    let registry = registry_subset(&["unique"]);
    let program = stq_cir::parse::parse_program(&grep_unique_violation_source(), &registry.names())
        .expect("parses");
    let result = check_program(&registry, &program);
    println!(
        "argument-passing idiom: {} violation(s) detected, as expected",
        result.stats.qualifier_errors
    );
    for d in result.diags.iter() {
        println!("  {d}");
    }
    assert_eq!(result.stats.qualifier_errors, 1);
}
