//! Quickstart: the lcm example from the paper (Figures 1 and 2),
//! end to end.
//!
//! 1. Load the builtin qualifier library (pos, neg, nonzero, …).
//! 2. Automatically *prove* that pos's type rules guarantee its declared
//!    invariant `value(E) > 0`, for all programs.
//! 3. Typecheck the paper's `lcm` procedure, which needs one cast.
//! 4. Instrument that cast with a run-time check and execute the program
//!    on the interpreter.
//!
//! Run with: `cargo run --example quickstart`

use stq_core::{Session, Value, Verdict};

fn main() {
    let session = Session::with_builtins();

    // --- soundness, proved automatically (paper §4) ---
    let report = session.prove_sound("pos").expect("pos is builtin");
    println!("{report}");
    assert_eq!(report.verdict, Verdict::Sound);

    // --- typechecking (paper §2.1, Figure 2) ---
    let source = "
        int pos gcd(int pos a0, int pos b0) {
            int n = a0;
            int m = b0;
            while (m != 0) {
                int t = m;
                m = n % m;
                n = t;
            }
            return (int pos) n;
        }
        int pos lcm(int pos a, int pos b) {
            int pos d = gcd(a, b);
            int pos prod = a * b;
            return (int pos) (prod / d);
        }";
    let program = session.parse(source).expect("parses");
    let result = session.check(&program);
    println!(
        "typechecked lcm: {} qualifier error(s), {} cast(s), {} annotation(s)",
        result.stats.qualifier_errors, result.stats.casts, result.stats.annotations
    );
    assert!(result.is_clean(), "{}", result.diags);

    // --- instrumented execution (paper §2.1.3) ---
    let out = session
        .run_instrumented(&program, "lcm", &[Value::Int(4), Value::Int(6)])
        .expect("runs");
    println!(
        "lcm(4, 6) = {} ({} run-time qualifier check(s) passed)",
        out.ret.expect("lcm returns"),
        out.checks_passed
    );
    assert_eq!(out.ret, Some(Value::Int(12)));
}
