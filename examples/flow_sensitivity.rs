//! The flow-sensitive extension (paper §8: "We plan to extend our
//! typechecking algorithm to incorporate flow-sensitivity, borrowing
//! ideas from CQUAL"), quantified on the paper's own imprecision example.
//!
//! §6.1 reports that the grep experiment needed **59 casts**, with the
//! major source being NULL-guard idioms the flow-insensitive type system
//! cannot see. With flow-sensitive refinement, the cast-free corpus
//! checks with **zero** errors — every guard discharges its dereference.
//!
//! Run with: `cargo run --example flow_sensitivity`

use stq_cir::parse::parse_program;
use stq_corpus::grep::{grep_dfa_source, grep_dfa_source_direct};
use stq_corpus::tables::registry_subset;
use stq_typecheck::{check_program_with, CheckOptions};

fn main() {
    let registry = registry_subset(&["nonnull"]);
    let fi = CheckOptions::default();
    let fs = CheckOptions {
        flow_sensitive: true,
    };

    // The paper's corpus (guards worked around with casts).
    let casted = parse_program(&grep_dfa_source(), &registry.names()).expect("parses");
    // The cast-free variant (guards dereference directly).
    let direct = parse_program(&grep_dfa_source_direct(), &registry.names()).expect("parses");

    println!("grep dfa corpus, nonnull experiment:");
    println!("                         casts   errors");
    let r = check_program_with(&registry, &casted, fi);
    println!(
        "flow-insensitive + casts  {:>4}   {:>5}   (the paper's Table 1)",
        r.stats.casts, r.stats.qualifier_errors
    );
    let r = check_program_with(&registry, &direct, fi);
    println!(
        "flow-insensitive, direct  {:>4}   {:>5}   (the imprecision, §6.1)",
        r.stats.casts, r.stats.qualifier_errors
    );
    assert_eq!(r.stats.qualifier_errors, 59);
    let r = check_program_with(&registry, &direct, fs);
    println!(
        "flow-sensitive,   direct  {:>4}   {:>5}   (the §8 extension)",
        r.stats.casts, r.stats.qualifier_errors
    );
    assert_eq!(r.stats.qualifier_errors, 0);

    // A taste at source level: the exact idiom from §6.1.
    let idiom = "
        int f(int* t, int works) {
            if (t != NULL) {
                return t[works];
            }
            return 0 - 1;
        }";
    let program = parse_program(idiom, &registry.names()).expect("parses");
    println!("\nthe §6.1 idiom `if (t != NULL) ... t[works]`:");
    println!(
        "  flow-insensitive: {} error(s); flow-sensitive: {} error(s)",
        check_program_with(&registry, &program, fi)
            .stats
            .qualifier_errors,
        check_program_with(&registry, &program, fs)
            .stats
            .qualifier_errors,
    );
}
