//! The paper's central demonstration (§2.1.3): mistype `pos`'s
//! multiplication rule as subtraction and the **soundness checker**
//! catches the error automatically — before any program is ever checked
//! against the broken discipline.
//!
//! Run with: `cargo run --example broken_qualifier`

use stq_core::{Session, Verdict};

fn main() {
    // The correct definition proves sound.
    let good = Session::with_builtins();
    let report = good.prove_sound("pos").expect("builtin");
    println!("--- correct pos ---\n{report}");
    assert_eq!(report.verdict, Verdict::Sound);

    // The erroneous variant: E1 - E2 instead of E1 * E2.
    let mut bad = Session::new();
    bad.define_qualifiers(
        "value qualifier neg(int Expr E)
             case E of
                 decl int Const C: C, where C < 0
             invariant value(E) < 0",
    )
    .expect("neg defines");
    bad.define_qualifiers(
        "value qualifier pos(int Expr E)
             case E of
                 decl int Const C:
                     C, where C > 0
               | decl int Expr E1, E2:
                     E1 - E2, where pos(E1) && pos(E2)
               | decl int Expr E1:
                     -E1, where neg(E1)
             invariant value(E) > 0",
    )
    .expect("pos defines");

    let report = bad.prove_sound("pos").expect("defined above");
    println!("--- erroneous pos (E1 - E2) ---\n{report}");
    assert_eq!(report.verdict, Verdict::Unsound);

    let failure = report.failures().next().expect("one failure");
    println!(
        "the failing obligation is exactly the subtraction clause: {}",
        failure.description
    );
    assert!(failure.description.contains("E1 - E2"));

    // Had the check been skipped, the extensible typechecker would have
    // happily accepted a program that violates pos at run time:
    let program = bad
        .parse("int f() { int pos x = 2 - 5; return x; }")
        .expect("parses");
    let result = bad.check(&program);
    println!(
        "under the broken rules the program typechecks with {} errors — \
         but x is -3 at run time",
        result.stats.qualifier_errors
    );
    assert!(result.is_clean());
}
