//! Regenerates **Table 2** of the paper: the `untainted` format-string
//! experiment on the stand-ins for bftpd, mingetty, and identd — then
//! goes one step further than static checking and *executes* the bftpd
//! bug on the interpreter to show the exploit is real.
//!
//! Run with: `cargo run --example table2`

use stq_core::{RuntimeError, Session, Value};
use stq_corpus::tables::{render_table2, table2};
use stq_corpus::taint::bftpd_source;

fn main() {
    let rows = table2();
    println!("{}", render_table2(&rows));
    println!("paper reference:  bftpd 750/134/2/0/1 · mingetty 293/23/1/0/0 · identd 228/21/0/0/0");
    let measured: Vec<_> = rows
        .iter()
        .map(|r| (r.lines, r.printf_calls, r.annotations, r.casts, r.errors))
        .collect();
    assert_eq!(
        measured,
        vec![(750, 134, 2, 0, 1), (293, 23, 1, 0, 0), (228, 21, 0, 0, 0)],
        "Table 2 must match the paper exactly"
    );
    println!("table 2 reproduced exactly.\n");

    // The one error is the previously identified exploitable bug:
    // sendstrf(s, entry->d_name). Demonstrate it dynamically: build a
    // malicious "directory entry" whose name contains conversion
    // specifiers and watch printf walk off the argument list.
    let session = Session::with_builtins();
    let mut program = session.parse(&bftpd_source()).expect("corpus parses");
    let driver = session
        .parse(
            "struct dirent2 { int dummy; };
             int sendstrf(int s, char* untainted format, int arg);
             struct dirent { char* d_name; int d_ino; };
             int list_directory(int s, struct dirent* entry);
             int exploit() {
                 struct dirent* e = malloc(sizeof(struct dirent));
                 e->d_name = \"%d%s%s\";
                 int r;
                 r = list_directory(1, e);
                 return r;
             }",
        )
        .expect("driver parses");
    program.funcs.extend(
        driver
            .funcs
            .into_iter()
            .filter(|f| f.name.as_str() == "exploit"),
    );
    program.structs.extend(
        driver
            .structs
            .into_iter()
            .filter(|s| s.name.as_str() == "dirent2"),
    );

    match session.run_instrumented(&program, "exploit", &[Value::Int(0)]) {
        Err(RuntimeError::FormatString { detail, .. }) => {
            println!("dynamic confirmation of the bftpd bug: {detail}");
        }
        other => panic!("expected the format-string exploit to fire, got {other:?}"),
    }
}
