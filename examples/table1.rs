//! Regenerates **Table 1** of the paper: the `nonnull` experiment on the
//! (synthetic stand-in for) grep 2.5's dfa.c/dfa.h.
//!
//! Every number in the table is *measured* by running the extensible
//! typechecker over the corpus program; the paper's reference values are
//! printed alongside.
//!
//! Run with: `cargo run --example table1`

use stq_corpus::tables::{render_table1, table1};

fn main() {
    let row = table1();
    println!("{}", render_table1(&row));
    println!("paper reference: 2287 lines, 1072 dereferences, 114 annotations, 59 casts, 0 errors");
    assert_eq!(
        (
            row.lines,
            row.dereferences,
            row.annotations,
            row.casts,
            row.errors
        ),
        (2287, 1072, 114, 59, 0),
        "Table 1 must match the paper exactly"
    );
    println!("table 1 reproduced exactly.");
}
