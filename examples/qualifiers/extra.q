// Extra qualifier definitions, loadable with `stqc --quals extra.q ...`.
// Each proves sound automatically (`stqc prove --quals extra.q nonneg`).

value qualifier nonneg(int Expr E)
    case E of
        decl int Const C:
            C, where C >= 0
      | decl int Expr E1, E2:
            E1 + E2, where nonneg(E1) && nonneg(E2)
      | decl int Expr E1, E2:
            E1 * E2, where nonneg(E1) && nonneg(E2)
      | decl int Expr E1:
            E1, where pos(E1)
    invariant value(E) >= 0

value qualifier digit(int Expr E)
    case E of
        decl int Const C:
            C, where C >= 0 && C <= 9
    invariant value(E) >= 0 && value(E) <= 9

value qualifier boolean(int Expr E)
    case E of
        decl int Const C:
            C, where C == 0 || C == 1
      | decl int Expr E1, E2:
            E1 == E2
      | decl int Expr E1, E2:
            E1 < E2
      | decl int Expr E1:
            !E1
    invariant value(E) >= 0 && value(E) <= 1

// Johnson & Wagner-style user/kernel pointer discipline (paper §2.1.4).
value qualifier kernel(T* Expr E)
    case E of
        decl T LValue L:
            &L
    restrict decl T* Expr F:
        *F, where kernel(F)
    invariant value(E) != NULL

value qualifier user(T* Expr E)
    case E of
        decl T* Expr E1:
            E1
