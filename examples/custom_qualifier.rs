//! Extensibility: define a brand-new qualifier (`nonneg`, for
//! non-negative integers), prove it sound, and use it — exactly the
//! user-defined workflow the framework exists for. Also shows the
//! soundness checker rejecting a tempting-but-wrong rule for the same
//! qualifier.
//!
//! Run with: `cargo run --example custom_qualifier`

use stq_core::{Session, Value, Verdict};

fn main() {
    // --- a correct user-defined qualifier ---
    let mut session = Session::with_builtins();
    session
        .define_qualifiers(
            "value qualifier nonneg(int Expr E)
                 case E of
                     decl int Const C:
                         C, where C >= 0
                   | decl int Expr E1, E2:
                         E1 + E2, where nonneg(E1) && nonneg(E2)
                   | decl int Expr E1, E2:
                         E1 * E2, where nonneg(E1) && nonneg(E2)
                   | decl int Expr E1:
                         E1, where pos(E1)
                 invariant value(E) >= 0",
        )
        .expect("nonneg parses");
    assert!(!session.check_well_formed().has_errors());

    let report = session.prove_sound("nonneg").expect("just defined");
    println!("{report}");
    assert_eq!(report.verdict, Verdict::Sound);

    // Use the qualifier on a program:
    let source = "
        int nonneg clamp_sum(int nonneg a, int nonneg b, int pos scale) {
            int nonneg weighted = a * scale;
            int nonneg total = weighted + b;
            return total;
        }";
    let result = session.check_source(source).expect("parses");
    println!(
        "clamp_sum typechecked with {} qualifier error(s)",
        result.stats.qualifier_errors
    );
    assert!(result.is_clean(), "{}", result.diags);

    // Run it, instrumented (no casts here, so no checks fire).
    let program = session.parse(source).expect("parses");
    let out = session
        .run_instrumented(
            &program,
            "clamp_sum",
            &[Value::Int(3), Value::Int(4), Value::Int(2)],
        )
        .expect("runs");
    println!("clamp_sum(3, 4, 2) = {}", out.ret.expect("returns"));

    // --- a wrong rule for the same qualifier is rejected ---
    let mut broken = Session::new();
    broken
        .define_qualifiers(
            "value qualifier nonneg(int Expr E)
                 case E of
                     decl int Const C:
                         C, where C >= 0
                   | decl int Expr E1, E2:
                         E1 - E2, where nonneg(E1) && nonneg(E2)
                 invariant value(E) >= 0",
        )
        .expect("parses");
    let report = broken.prove_sound("nonneg").expect("defined");
    println!("\n--- wrong subtraction rule ---\n{report}");
    assert_eq!(report.verdict, Verdict::Unsound);
}
