//! A realistic worked scenario: an intrusive linked-list module checked
//! with several qualifier disciplines at once — `nonnull` guards every
//! traversal, `unique` protects the list head from stray aliases, `pos`
//! tracks the length invariant — and then executed on the interpreter.
//!
//! This is the kind of downstream use the paper's framework targets: no
//! checker changes, just annotations and the builtin qualifier library.
//!
//! Run with: `cargo run --example linked_list`

use stq_core::{Session, Value};

const SOURCE: &str = "
    struct node {
        int value;
        struct node* next;
    };

    struct node* unique head;
    int pos length = 1;

    void push(int v) {
        struct node* n = malloc(sizeof(struct node));
        if (n != NULL) {
            struct node* nonnull fresh = (struct node* nonnull) n;
            fresh->value = v;
            fresh->next = NULL;
            // Splice in front: reading head through a dereference is
            // not possible for the head itself, so thread through the
            // allowed forms: new, NULL... the head swap needs a cast
            // (the unique assign rules cannot validate a data-structure
            // rotation), mirroring the paper's dfa initialization.
            fresh->next = (struct node*) NULL;
            head = (struct node* unique) n;
            length = (int pos) (length + 1);
        }
    }

    int sum_first(int k) {
        int s = 0;
        // Dereferencing the unique head is allowed; the NULL guard plus
        // a cast satisfies nonnull, as in the grep experiment.
        int i = 0;
        while (i < k) {
            s = s + head->value;
            i = i + 1;
        }
        return s;
    }

    int pos total_nodes() {
        return length;
    }

    int main() {
        push(10);
        push(32);
        int r;
        r = sum_first(2);
        return r;
    }
";

fn main() {
    let session = Session::with_builtins();
    let program = session.parse(SOURCE).expect("parses");

    let result = session.check(&program);
    println!("linked-list module:");
    println!(
        "  {} dereference(s), {} annotation(s), {} cast(s), {} violation(s)",
        result.stats.dereferences,
        result.stats.annotations,
        result.stats.casts,
        result.stats.qualifier_errors
    );
    for d in result.diags.iter() {
        println!("  {d}");
    }
    assert!(result.is_clean(), "{}", result.diags);

    // Every cast above is instrumented; run the whole program.
    let out = session
        .run_instrumented(&program, "main", &[])
        .expect("runs cleanly");
    println!(
        "  main() = {} with {} run-time qualifier check(s) passed",
        out.ret.expect("returns"),
        out.checks_passed
    );
    assert_eq!(out.ret, Some(Value::Int(64)));
    assert!(out.checks_passed >= 2);

    // Negative control: leaking the unique head into a local alias is
    // caught statically.
    let leaky = format!(
        "{SOURCE}
         void leak() {{
             struct node* alias = head;
         }}"
    );
    let program = session.parse(&leaky).expect("parses");
    let result = session.check(&program);
    println!(
        "\nwith an aliasing leak added: {} violation(s), as expected",
        result.stats.qualifier_errors
    );
    assert_eq!(result.stats.qualifier_errors, 1);
}
