//! Qualifier inference (the paper's §8 plan: "support for qualifier
//! inference to decrease the annotation burden").
//!
//! The §6.1 experiment needed **114 hand-written annotations**, applied
//! "in an iterative fashion" — run the checker, annotate, repeat. With
//! whole-program inference the iteration is automatic: start from the
//! optimistic assumption everywhere and let the flows prune it. On an
//! *unannotated* variant of the grep corpus the entire burden disappears.
//!
//! Run with: `cargo run --example inference`

use stq_core::Session;
use stq_corpus::grep::grep_dfa_source_direct;

fn main() {
    let session = Session::with_builtins();

    // A small program first: inference discovers where nonnull holds.
    let source = "
        int g;
        int* pick(int which) {
            if (which > 0) {
                return &g;
            }
            return NULL;
        }
        int f() {
            int* sure = &g;
            int* maybe;
            maybe = pick(0);
            return *sure;
        }";
    let program = session.parse(source).expect("parses");
    let result = session.infer_annotations(&program, "nonnull");
    println!(
        "inferred nonnull sites ({} fixpoint iterations):",
        result.iterations
    );
    for site in &result.inferred {
        println!("  + {site}");
    }
    println!("rejected sites:");
    for site in &result.rejected {
        println!("  - {site}");
    }
    // `sure` is provably nonnull; `maybe` and pick's return are not.
    assert!(result
        .inferred
        .iter()
        .any(|s| s.to_string().contains("sure")));
    assert!(result
        .rejected
        .iter()
        .any(|s| s.to_string().contains("maybe")));

    // The annotated program then checks cleanly where the original
    // complained about *sure.
    let before = session.check(&program).stats.qualifier_errors;
    let after = session.check(&result.annotated).stats.qualifier_errors;
    println!("\nqualifier errors before inference: {before}, after: {after}");
    assert!(after < before);

    // The annotation-burden experiment: strip every hand annotation from
    // the (cast-free) grep corpus and infer instead.
    let unannotated = grep_dfa_source_direct().replace("* nonnull", "*");
    let program = session.parse(&unannotated).expect("parses");
    let manual = session.check(&program);
    let inferred = session.infer_annotations(&program, "nonnull");
    let auto = session.check(&inferred.annotated);
    println!(
        "\ngrep corpus, zero hand annotations:\n\
         \x20 errors without inference: {:>4} (every dereference complains)\n\
         \x20 annotations inferred:     {:>4}\n\
         \x20 errors after inference:   {:>4}",
        manual.stats.qualifier_errors,
        inferred.inferred.len(),
        auto.stats.qualifier_errors,
    );
    assert!(manual.stats.qualifier_errors > 1000);
    println!(
        "\nthe paper's 114-annotation burden is discharged automatically \
         (closed-program assumption: uncalled parameters stay optimistic)."
    );
}
