//! Integration tests for the `stqc` command-line tool.

use std::io::Write as _;
use std::process::Command;

fn stqc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .args(args)
        .output()
        .expect("stqc runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// As [`stqc`], but returning the numeric exit code for tests that
/// check the documented exit-code taxonomy (see `docs/robustness.md`).
fn stqc_code(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .args(args)
        .output()
        .expect("stqc runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("stqc-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

#[test]
fn prove_all_builtins_succeeds() {
    let (stdout, _, ok) = stqc(&["prove"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("qualifier `pos`: sound"));
    assert!(stdout.contains("qualifier `unique`: sound"));
}

#[test]
fn prove_single_qualifier() {
    let (stdout, _, ok) = stqc(&["prove", "nonnull"]);
    assert!(ok);
    assert!(stdout.contains("nonnull"));
    assert!(stdout.contains("sound"));
}

#[test]
fn prove_unknown_qualifier_fails() {
    let (_, stderr, ok) = stqc(&["prove", "ghost"]);
    assert!(!ok);
    assert!(stderr.contains("unknown qualifier"));
}

#[test]
fn check_reports_stats_and_exit_codes() {
    let clean = temp_file("clean.c", "int pos x = 3;");
    let (stdout, _, ok) = stqc(&["check", clean.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("0 qualifier error(s)"));

    let dirty = temp_file("dirty.c", "int f(int* p) { return *p; }");
    let (stdout, stderr, ok) = stqc(&["check", dirty.to_str().unwrap()]);
    assert!(!ok);
    assert!(stdout.contains("1 qualifier error(s)"), "{stdout}");
    assert!(stderr.contains("restrict"), "{stderr}");
}

#[test]
fn check_flow_sensitive_flag() {
    let guarded = temp_file(
        "guarded.c",
        "int f(int* t) { if (t != NULL) { return *t; } return 0; }",
    );
    let path = guarded.to_str().unwrap();
    let (_, _, ok) = stqc(&["check", path]);
    assert!(!ok);
    let (_, _, ok) = stqc(&["check", "--flow-sensitive", path]);
    assert!(ok);
}

#[test]
fn run_executes_with_checks() {
    let src = temp_file(
        "run.c",
        "int pos dbl(int pos x) { return (int pos)(x * 2); }",
    );
    let (stdout, _, ok) = stqc(&["run", "--entry", "dbl", src.to_str().unwrap(), "21"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("=> 42"));
    assert!(stdout.contains("1 run-time qualifier check(s) passed"));
}

#[test]
fn run_surfaces_failed_checks() {
    let src = temp_file("runbad.c", "int pos trust(int x) { return (int pos) x; }");
    let (_, stderr, ok) = stqc(&["run", "--entry", "trust", src.to_str().unwrap(), "0"]);
    assert!(!ok);
    assert!(stderr.contains("run-time check"), "{stderr}");
}

#[test]
fn infer_lists_sites() {
    let src = temp_file("inf.c", "int g; int f() { int* p = &g; return *p; }");
    let (stdout, _, ok) = stqc(&["infer", "--qual", "nonnull", src.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("+ local p of f"), "{stdout}");
}

#[test]
fn tables_regenerate() {
    let (stdout, _, ok) = stqc(&["tables"]);
    assert!(ok);
    assert!(stdout.contains("1072"));
    assert!(stdout.contains("bftpd"));
}

#[test]
fn user_qualifier_file_is_loaded() {
    let quals = temp_file(
        "even.q",
        "value qualifier answer(int Expr E)
             case E of
                 decl int Const C: C, where C == 42
             invariant value(E) == 42",
    );
    let prog = temp_file("answer.c", "int answer a = 42; int answer b = 7;");
    let (stdout, stderr, ok) = stqc(&[
        "check",
        "--quals",
        quals.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(
        stdout.contains("1 qualifier error(s)"),
        "{stdout}\n{stderr}"
    );
}

#[test]
fn bad_usage_is_reported() {
    let (_, stderr, ok) = stqc(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn unknown_subcommand_is_named_in_the_diagnostic() {
    let (_, stderr, ok) = stqc(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand `frobnicate`"), "{stderr}");
    assert!(stderr.contains("usage"));
}

#[test]
fn unreadable_file_is_a_clean_failure() {
    for sub in [
        &["check", "/nonexistent/missing.c"][..],
        &["run", "/nonexistent/missing.c"],
        &["prove", "--quals", "/nonexistent/missing.q"],
    ] {
        let (_, stderr, ok) = stqc(sub);
        assert!(!ok, "{sub:?}");
        assert!(stderr.contains("cannot read"), "{sub:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{sub:?}: {stderr}");
    }
}

#[test]
fn prove_stats_prints_totals() {
    let (stdout, _, ok) = stqc(&["prove", "--stats", "pos"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("stats:"), "{stdout}");
    assert!(stdout.contains("totals:"), "{stdout}");
    assert!(stdout.contains("insts="), "{stdout}");
}

#[test]
fn prove_json_covers_all_eight_builtins() {
    let (stdout, _, ok) = stqc(&["prove", "--stats", "--json"]);
    assert!(ok, "{stdout}");
    // Machine-readable per-obligation stats for every builtin,
    // including the no-obligation flow qualifiers.
    for name in [
        "pos",
        "neg",
        "nonzero",
        "nonnull",
        "untainted",
        "tainted",
        "unique",
        "unaliased",
    ] {
        assert!(stdout.contains(&format!("\"name\":\"{name}\"")), "{stdout}");
    }
    assert!(stdout.contains("\"verdict\":\"no-invariant\""), "{stdout}");
    assert!(stdout.contains("\"instantiations\":"), "{stdout}");
    assert!(stdout.contains("\"decisions\":"), "{stdout}");
    assert!(stdout.contains("\"wall_ms\":"), "{stdout}");
    assert!(stdout.contains("\"instantiations_by_trigger\":"), "{stdout}");
    // One JSON document on one line of stdout.
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
}

#[test]
fn starved_budget_reports_resource_out_and_fails() {
    let (stdout, _, ok) = stqc(&[
        "prove",
        "--max-rounds",
        "1",
        "--max-instantiations",
        "1",
        "unique",
    ]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("OUT OF BUDGET"), "{stdout}");
    assert!(stdout.contains("resource budget exhausted"), "{stdout}");
}

#[test]
fn budget_flags_reject_garbage() {
    let (_, stderr, ok) = stqc(&["prove", "--max-rounds", "many"]);
    assert!(!ok);
    assert!(stderr.contains("not a number"), "{stderr}");
}

#[test]
fn check_stats_and_json() {
    let src = temp_file(
        "stats.c",
        "int pos dbl(int pos x) { return (int pos)(x * 2); }",
    );
    let path = src.to_str().unwrap();
    let (stdout, _, ok) = stqc(&["check", "--stats", path]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("expr(s) visited"), "{stdout}");
    assert!(stdout.contains("instrumented cast(s)"), "{stdout}");
    let (stdout, _, ok) = stqc(&["check", "--json", path]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"clean\":true"), "{stdout}");
    assert!(stdout.contains("\"exprs_visited\":"), "{stdout}");
    assert!(stdout.contains("\"casts_instrumented\":1"), "{stdout}");
}

#[test]
fn tables_json_carries_checker_telemetry() {
    let (stdout, _, ok) = stqc(&["tables", "--json"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"table1\":"), "{stdout}");
    assert!(stdout.contains("\"table2\":"), "{stdout}");
    assert!(stdout.contains("\"memo_misses\":"), "{stdout}");
    assert!(stdout.contains("bftpd"), "{stdout}");
}

#[test]
fn show_prints_definitions() {
    let (stdout, _, ok) = stqc(&["show", "pos"]);
    assert!(ok);
    assert!(stdout.contains("value qualifier pos(int Expr E)"));
    assert!(stdout.contains("invariant value(E) > 0"));
    let (stdout, _, ok) = stqc(&["show"]);
    assert!(ok);
    assert!(stdout.contains("ref qualifier unique"));
}

// ----- the structured exit-code taxonomy (docs/robustness.md) -----

#[test]
fn exit_0_on_success() {
    let (stdout, _, code) = stqc_code(&["prove", "nonnull"]);
    assert_eq!(code, Some(0), "{stdout}");
}

#[test]
fn exit_1_on_unsound_qualifier() {
    // `broken` admits C == 1 but claims value(E) > 1: refutable.
    let quals = temp_file(
        "broken.q",
        "value qualifier broken(int Expr E)
             case E of
                 decl int Const C: C, where C > 0
             invariant value(E) > 1",
    );
    let (stdout, _, code) = stqc_code(&["prove", "--quals", quals.to_str().unwrap(), "broken"]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("NOT proven sound"), "{stdout}");
    assert!(stdout.contains("countermodel"), "{stdout}");
}

#[test]
fn exit_1_on_qualifier_errors_from_check() {
    let dirty = temp_file("exit1.c", "int f(int* p) { return *p; }");
    let (_, _, code) = stqc_code(&["check", dirty.to_str().unwrap()]);
    assert_eq!(code, Some(1));
}

#[test]
fn exit_2_on_usage_errors() {
    let (_, stderr, code) = stqc_code(&["prove", "--max-rounds", "many"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (_, _, code) = stqc_code(&["frobnicate"]);
    assert_eq!(code, Some(2));
    let (_, _, code) = stqc_code(&["check"]);
    assert_eq!(code, Some(2));
    let (_, _, code) = stqc_code(&["prove", "--retry", "lots"]);
    assert_eq!(code, Some(2));
}

#[test]
fn exit_3_on_input_errors() {
    let (_, stderr, code) = stqc_code(&["check", "/nonexistent/missing.c"]);
    assert_eq!(code, Some(3), "{stderr}");
    let (_, _, code) = stqc_code(&["prove", "ghost"]);
    assert_eq!(code, Some(3));
    let garbled = temp_file("exit3.c", "int a = ;");
    let (_, _, code) = stqc_code(&["check", garbled.to_str().unwrap()]);
    assert_eq!(code, Some(3));
}

#[test]
fn exit_4_on_contained_crash_or_starved_budget() {
    let (stdout, _, code) = stqc_code(&["prove", "--fault-panic-at", "0"]);
    assert_eq!(code, Some(4), "{stdout}");
    assert!(stdout.contains("CRASHED"), "{stdout}");
    let (stdout, _, code) = stqc_code(&[
        "prove",
        "--max-rounds",
        "1",
        "--max-instantiations",
        "1",
        "unique",
    ]);
    assert_eq!(code, Some(4), "{stdout}");
}

#[test]
fn retry_ladder_recovers_an_injected_resource_out() {
    // Acceptance case: the forced first-attempt ResourceOut is retried
    // under an escalated budget and proves on attempt 2, restoring a
    // clean exit.
    let (stdout, _, code) = stqc_code(&[
        "prove",
        "--json",
        "--retry",
        "3",
        "--fault-resource-out-at",
        "0",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"attempts\":2"), "{stdout}");
    assert!(
        stdout.contains("\"retry\":{\"max_attempts\":3,\"factor\":2}"),
        "{stdout}"
    );
}

#[test]
fn keep_going_check_recovers_past_syntax_errors() {
    let src = temp_file(
        "resume.c",
        "int a = ;\nint pos ok(int pos x) { return x; }",
    );
    let path = src.to_str().unwrap();
    // Strict mode aborts at the syntax error…
    let (_, stderr, code) = stqc_code(&["check", path]);
    assert_eq!(code, Some(3), "{stderr}");
    // …keep-going still reports it (exit 3) but checks what parsed.
    let (stdout, stderr, code) = stqc_code(&["check", "--keep-going", path]);
    assert_eq!(code, Some(3), "{stdout}\n{stderr}");
    assert!(stdout.contains("0 qualifier error(s)"), "{stdout}");
    let (stdout, _, _) = stqc_code(&["check", "--keep-going", "--json", path]);
    assert!(stdout.contains("\"syntax_errors\":[\""), "{stdout}");
    assert!(stdout.contains("\"clean\":false"), "{stdout}");
}

#[test]
fn prove_without_keep_going_stops_at_the_first_crash() {
    let (stdout, stderr, code) = stqc_code(&["prove", "--json", "--fault-panic-at", "0"]);
    assert_eq!(code, Some(4), "{stdout}");
    assert_eq!(stdout.matches("\"verdict\":\"crashed\"").count(), 1);
    assert!(
        stdout.matches("\"verdict\":").count() < 8,
        "without --keep-going the run stops early: {stdout}"
    );
    assert!(stderr.contains("--keep-going"), "{stderr}");
}

#[test]
fn shipped_extra_qualifiers_prove_sound() {
    let quals = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/qualifiers/extra.q");
    let (stdout, stderr, ok) = stqc(&["prove", "--quals", quals]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("qualifier `nonneg`: sound"));
    assert!(stdout.contains("qualifier `digit`: sound"));
    assert!(stdout.contains("qualifier `kernel`: sound"));
}

// ----- parallel + incremental pipeline (docs/performance.md) -----

fn temp_dir(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("stqc-test-dir-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

#[test]
fn prove_with_jobs_reports_the_same_verdicts_as_sequential() {
    let (seq, _, ok) = stqc(&["prove", "--jobs", "1", "--json"]);
    assert!(ok, "{seq}");
    let (par, _, ok) = stqc(&["prove", "--jobs", "4", "--json"]);
    assert!(ok, "{par}");
    assert!(seq.contains("\"jobs\":1"), "{seq}");
    assert!(par.contains("\"jobs\":4"), "{par}");
    // Same qualifiers, same order, same verdicts — scheduling never
    // changes the report.
    let extract = |s: &str| -> Vec<String> {
        s.split("\"name\":\"")
            .skip(1)
            .map(|chunk| {
                let name = chunk.split('"').next().unwrap().to_owned();
                let verdict = chunk
                    .split("\"verdict\":\"")
                    .nth(1)
                    .unwrap()
                    .split('"')
                    .next()
                    .unwrap()
                    .to_owned();
                format!("{name}={verdict}")
            })
            .collect()
    };
    assert_eq!(extract(&seq), extract(&par));
}

#[test]
fn prove_json_documents_jobs_and_cache_fields() {
    let (stdout, _, ok) = stqc(&["prove", "nonnull", "--jobs", "2", "--json"]);
    assert!(ok, "{stdout}");
    assert_eq!(stdout.lines().count(), 1, "single-line JSON");
    assert!(stdout.contains("\"jobs\":2"), "{stdout}");
    assert!(stdout.contains("\"cache\":null"), "{stdout}");
    assert!(stdout.contains("\"cache_hits\":0"), "{stdout}");
}

#[test]
fn jobs_zero_means_auto() {
    let (stdout, stderr, ok) = stqc(&["prove", "nonnull", "--jobs", "0", "--json"]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("\"jobs\":"), "{stdout}");
}

#[test]
fn cache_dir_cold_run_misses_and_warm_run_hits_everything() {
    let dir = temp_dir("cold-warm");
    let dir_s = dir.to_str().unwrap();
    let (cold, stderr, ok) = stqc(&["prove", "--cache-dir", dir_s, "--json"]);
    assert!(ok, "{cold}\n{stderr}");
    assert!(cold.contains("\"hits\":0"), "{cold}");
    assert!(!cold.contains("\"misses\":0"), "cold run must miss: {cold}");
    assert!(dir.join("proofs.stqcache").exists(), "cache persisted");

    let (warm, stderr, ok) = stqc(&["prove", "--cache-dir", dir_s, "--json"]);
    assert!(ok, "{warm}\n{stderr}");
    assert!(warm.contains("\"misses\":0"), "warm run re-proves nothing: {warm}");
    assert!(!warm.contains("\"hits\":0"), "{warm}");
    // Every obligation came from the cache: zero attempts anywhere.
    assert!(!warm.contains("\"attempts\":1"), "{warm}");
    let (stats, _, ok) = stqc(&["prove", "--cache-dir", dir_s, "--stats"]);
    assert!(ok);
    assert!(stats.contains("cache:"), "{stats}");
    assert!(stats.contains(" 0 miss(es)"), "{stats}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_key_includes_the_retry_ladder_and_interacts_with_keep_going() {
    let dir = temp_dir("retry-key");
    let dir_s = dir.to_str().unwrap();
    let (_, _, ok) = stqc(&["prove", "--cache-dir", dir_s, "--retry", "3", "--keep-going"]);
    assert!(ok);
    // Same ladder: pure hits.
    let (warm, _, ok) = stqc(&[
        "prove",
        "--cache-dir",
        dir_s,
        "--retry",
        "3",
        "--keep-going",
        "--stats",
    ]);
    assert!(ok);
    assert!(warm.contains(" 0 miss(es)"), "{warm}");
    // A different ladder is a different fingerprint: everything misses.
    let (other, _, ok) = stqc(&["prove", "--cache-dir", dir_s, "--retry", "4", "--stats"]);
    assert!(ok);
    assert!(other.contains(" 0 hit(s)"), "{other}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_cache_from_another_prover_version_is_invalidated() {
    let dir = temp_dir("stale");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("proofs.stqcache"),
        "stq-proof-cache v1 stq-prover-0.0.0-r0\nabc123\tP\n",
    )
    .unwrap();
    let (stdout, stderr, ok) = stqc(&["prove", "--cache-dir", dir.to_str().unwrap(), "--json"]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("\"invalidations\":1"), "{stdout}");
    assert!(stdout.contains("\"hits\":0"), "stale entries never hit: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cached_refutation_still_exits_unsound() {
    let quals = temp_file(
        "bad.q",
        "value qualifier bad(int Expr E)
            case E of
                decl int Const C: C, where C >= 0
            invariant value(E) > 0",
    );
    let dir = temp_dir("refuted");
    let args = [
        "prove",
        "bad",
        "--quals",
        quals.to_str().unwrap(),
        "--cache-dir",
        dir.to_str().unwrap(),
    ];
    let (cold, _, code) = stqc_code(&args);
    assert_eq!(code, Some(1), "{cold}");
    assert!(cold.contains("countermodel"), "{cold}");
    // The cached replay keeps the verdict, the countermodel, and the
    // exit code.
    let (warm, _, code) = stqc_code(&args);
    assert_eq!(code, Some(1), "{warm}");
    assert!(warm.contains("countermodel"), "{warm}");
    assert!(warm.contains("(cached)"), "{warm}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_injection_under_parallel_jobs_crashes_exactly_one_obligation() {
    let (stdout, _, code) = stqc_code(&[
        "prove",
        "--fault-panic-at",
        "3",
        "--jobs",
        "4",
        "--keep-going",
        "--json",
    ]);
    assert_eq!(code, Some(4), "{stdout}");
    assert_eq!(stdout.matches("\"verdict\":\"crashed\"").count(), 1);
    assert_eq!(stdout.matches("injected panic").count(), 1);
    // All eight qualifiers still reported under --keep-going.
    assert_eq!(stdout.matches("\"verdict\":").count(), 8);
}

#[test]
fn fault_injection_without_explicit_jobs_stays_sequential() {
    // Deterministic fault targeting: entry 0 is pos's first obligation.
    let (stdout, _, code) = stqc_code(&["prove", "pos", "--json", "--fault-panic-at", "0"]);
    assert_eq!(code, Some(4), "{stdout}");
    assert!(stdout.contains("\"jobs\":1"), "{stdout}");
}

// ----- deadlines, cancellation, and interrupted-run resume -----

/// A family of `unique`-style qualifiers whose invariants differ only by
/// a vacuous numeric conjunct. The conjunct gives every qualifier a
/// distinct proof-obligation fingerprint (so nothing aliases in the
/// cache) while keeping each one sound, and the aggregate is heavy
/// enough that a debug-build run lasts long enough to interrupt.
fn heavy_quals(n: usize) -> String {
    (0..n)
        .map(|i| {
            format!(
                "ref qualifier uniq{i}(T* LValue L)
                     assign L NULL | new
                     disallow L
                     invariant (value(L) == NULL ||
                         (isHeapLoc(value(L)) &&
                          forall T** P: *P == value(L) => P == location(L))) && {i} < {}\n",
                i + 1
            )
        })
        .collect()
}

#[test]
fn exit_5_on_expired_deadline() {
    // A zero deadline has already expired at startup: every obligation is
    // skipped, the report is explicitly partial, and the dedicated exit
    // code distinguishes "never ran" from "ran and failed".
    let (stdout, stderr, code) = stqc_code(&["prove", "--deadline-ms", "0"]);
    assert_eq!(code, Some(5), "{stdout}\n{stderr}");
    assert!(stdout.contains("[SKIPPED]"), "{stdout}");
    assert!(stdout.contains("run interrupted"), "{stdout}");
    assert!(stderr.contains("interrupted"), "{stderr}");
}

#[test]
fn deadline_json_reports_interruption() {
    let (stdout, _, code) = stqc_code(&["prove", "pos", "--deadline-ms", "0", "--json"]);
    assert_eq!(code, Some(5), "{stdout}");
    assert!(stdout.contains("\"deadline_ms\":0"), "{stdout}");
    assert!(stdout.contains("\"interrupted\":true"), "{stdout}");
    assert!(stdout.contains("\"verdict\":\"interrupted\""), "{stdout}");
    assert!(stdout.contains("\"skipped\":true"), "{stdout}");
    // Skipped obligations never ran: zero attempts everywhere.
    assert!(!stdout.contains("\"attempts\":1"), "{stdout}");
}

#[test]
fn deadline_never_hangs_on_adversarial_input() {
    // The paper-claims suite proves these qualifiers take real prover
    // time; a 10ms deadline must cut the run short at the next
    // safepoint instead of hanging. Allow generous wall-clock slack for
    // a loaded CI machine — the point is "bounded", not "instant".
    let quals = temp_file("heavy-deadline.q", &heavy_quals(12));
    let start = std::time::Instant::now();
    let (stdout, _, code) = stqc_code(&[
        "prove",
        "--quals",
        quals.to_str().unwrap(),
        "--deadline-ms",
        "10",
    ]);
    assert_eq!(code, Some(5), "{stdout}");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "deadline must bound the run"
    );
}

#[test]
fn interrupted_run_does_not_poison_the_cache() {
    // An interrupted run persists only conclusive verdicts (here: none),
    // so a later full run over the same cache directory completes
    // normally and converts the cache from cold to warm.
    let dir = temp_dir("interrupted-cache");
    let dir_s = dir.to_str().unwrap();
    let (first, _, code) = stqc_code(&["prove", "--cache-dir", dir_s, "--deadline-ms", "0"]);
    assert_eq!(code, Some(5), "{first}");
    let (full, stderr, code) = stqc_code(&["prove", "--cache-dir", dir_s, "--stats"]);
    assert_eq!(code, Some(0), "{full}\n{stderr}");
    let (warm, _, code) = stqc_code(&["prove", "--cache-dir", dir_s, "--stats"]);
    assert_eq!(code, Some(0), "{warm}");
    assert!(warm.contains(" 0 miss(es)"), "{warm}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn sigint_yields_partial_report_and_resume_hits_the_cache() {
    use std::process::Stdio;

    let quals = temp_file("heavy-sigint.q", &heavy_quals(64));
    let dir = temp_dir("sigint-resume");
    let args = [
        "prove",
        "--quals",
        quals.to_str().unwrap(),
        "--cache-dir",
        dir.to_str().unwrap(),
        "--stats",
    ];

    let child = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("stqc spawns");
    // Long enough for the handler to be installed and a few obligations
    // to finish, short enough that the ~64-qualifier run (about a second
    // even on the optimized cold path) is still going.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let sent = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs")
        .success();
    assert!(sent, "SIGINT delivered");
    let out = child.wait_with_output().expect("stqc exits");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(5), "{stdout}\n{stderr}");
    assert!(stdout.contains("run interrupted"), "{stdout}");
    assert!(stderr.contains("interrupted"), "{stderr}");

    // The conclusive prefix was flushed before exit, so the resumed run
    // starts from the cache instead of from scratch.
    let (resumed, stderr, code) = stqc_code(&args);
    assert_eq!(code, Some(0), "{resumed}\n{stderr}");
    assert!(resumed.contains("cache:"), "{resumed}");
    assert!(!resumed.contains(" 0 hit(s)"), "resume must hit: {resumed}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fuzz_deadline_exits_interrupted() {
    let (stdout, _, code) = stqc_code(&[
        "fuzz",
        "--count",
        "10",
        "--deadline-ms",
        "0",
        "--json",
    ]);
    assert_eq!(code, Some(5), "{stdout}");
    assert!(stdout.contains("\"interrupted\":true"), "{stdout}");
    assert!(stdout.contains("\"skipped\":10"), "{stdout}");
}

#[test]
fn fuzz_text_mode_reports_case_boundary_interruption() {
    let (stdout, stderr, code) =
        stqc_code(&["fuzz", "--count", "4", "--deadline-ms", "0"]);
    assert_eq!(code, Some(5), "{stdout}\n{stderr}");
    assert!(stderr.contains("case boundary"), "{stderr}");
}
