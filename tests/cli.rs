//! Integration tests for the `stqc` command-line tool.

use std::io::Write as _;
use std::process::Command;

fn stqc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .args(args)
        .output()
        .expect("stqc runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("stqc-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

#[test]
fn prove_all_builtins_succeeds() {
    let (stdout, _, ok) = stqc(&["prove"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("qualifier `pos`: sound"));
    assert!(stdout.contains("qualifier `unique`: sound"));
}

#[test]
fn prove_single_qualifier() {
    let (stdout, _, ok) = stqc(&["prove", "nonnull"]);
    assert!(ok);
    assert!(stdout.contains("nonnull"));
    assert!(stdout.contains("sound"));
}

#[test]
fn prove_unknown_qualifier_fails() {
    let (_, stderr, ok) = stqc(&["prove", "ghost"]);
    assert!(!ok);
    assert!(stderr.contains("unknown qualifier"));
}

#[test]
fn check_reports_stats_and_exit_codes() {
    let clean = temp_file("clean.c", "int pos x = 3;");
    let (stdout, _, ok) = stqc(&["check", clean.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("0 qualifier error(s)"));

    let dirty = temp_file("dirty.c", "int f(int* p) { return *p; }");
    let (stdout, stderr, ok) = stqc(&["check", dirty.to_str().unwrap()]);
    assert!(!ok);
    assert!(stdout.contains("1 qualifier error(s)"), "{stdout}");
    assert!(stderr.contains("restrict"), "{stderr}");
}

#[test]
fn check_flow_sensitive_flag() {
    let guarded = temp_file(
        "guarded.c",
        "int f(int* t) { if (t != NULL) { return *t; } return 0; }",
    );
    let path = guarded.to_str().unwrap();
    let (_, _, ok) = stqc(&["check", path]);
    assert!(!ok);
    let (_, _, ok) = stqc(&["check", "--flow-sensitive", path]);
    assert!(ok);
}

#[test]
fn run_executes_with_checks() {
    let src = temp_file(
        "run.c",
        "int pos dbl(int pos x) { return (int pos)(x * 2); }",
    );
    let (stdout, _, ok) = stqc(&["run", "--entry", "dbl", src.to_str().unwrap(), "21"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("=> 42"));
    assert!(stdout.contains("1 run-time qualifier check(s) passed"));
}

#[test]
fn run_surfaces_failed_checks() {
    let src = temp_file("runbad.c", "int pos trust(int x) { return (int pos) x; }");
    let (_, stderr, ok) = stqc(&["run", "--entry", "trust", src.to_str().unwrap(), "0"]);
    assert!(!ok);
    assert!(stderr.contains("run-time check"), "{stderr}");
}

#[test]
fn infer_lists_sites() {
    let src = temp_file("inf.c", "int g; int f() { int* p = &g; return *p; }");
    let (stdout, _, ok) = stqc(&["infer", "--qual", "nonnull", src.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("+ local p of f"), "{stdout}");
}

#[test]
fn tables_regenerate() {
    let (stdout, _, ok) = stqc(&["tables"]);
    assert!(ok);
    assert!(stdout.contains("1072"));
    assert!(stdout.contains("bftpd"));
}

#[test]
fn user_qualifier_file_is_loaded() {
    let quals = temp_file(
        "even.q",
        "value qualifier answer(int Expr E)
             case E of
                 decl int Const C: C, where C == 42
             invariant value(E) == 42",
    );
    let prog = temp_file("answer.c", "int answer a = 42; int answer b = 7;");
    let (stdout, stderr, ok) = stqc(&[
        "check",
        "--quals",
        quals.to_str().unwrap(),
        prog.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(
        stdout.contains("1 qualifier error(s)"),
        "{stdout}\n{stderr}"
    );
}

#[test]
fn bad_usage_is_reported() {
    let (_, stderr, ok) = stqc(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn show_prints_definitions() {
    let (stdout, _, ok) = stqc(&["show", "pos"]);
    assert!(ok);
    assert!(stdout.contains("value qualifier pos(int Expr E)"));
    assert!(stdout.contains("invariant value(E) > 0"));
    let (stdout, _, ok) = stqc(&["show"]);
    assert!(ok);
    assert!(stdout.contains("ref qualifier unique"));
}

#[test]
fn shipped_extra_qualifiers_prove_sound() {
    let quals = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/qualifiers/extra.q");
    let (stdout, stderr, ok) = stqc(&["prove", "--quals", quals]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("qualifier `nonneg`: sound"));
    assert!(stdout.contains("qualifier `digit`: sound"));
    assert!(stdout.contains("qualifier `kernel`: sound"));
}
