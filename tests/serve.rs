//! Protocol-level tests for `stqc serve` — the daemon is driven as a
//! real child process over `--stdio` and over a Unix socket, exactly as
//! clients use it (wire protocol: `docs/serving.md`).

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use stq_util::json::Json;

/// Runs `stqc serve --stdio` with `input` piped in (plus `extra` args),
/// returning the parsed response lines and the exit code. EOF on stdin
/// is the batch contract: every request written before the close must
/// still be answered.
fn serve_stdio(extra: &[&str], input: &str) -> (Vec<Json>, Option<i32>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .arg("serve")
        .arg("--stdio")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("stqc serve --stdio spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("requests written");
    let mut stdout = String::new();
    child
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut stdout)
        .expect("responses read");
    let code = child.wait().expect("serve exits").code();
    let responses = stdout
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad response line `{l}`: {e}")))
        .collect();
    (responses, code)
}

fn response_with_id(responses: &[Json], id: u64) -> &Json {
    responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_u64) == Some(id))
        .unwrap_or_else(|| panic!("no response with id {id}: {responses:?}"))
}

#[test]
fn stdio_malformed_json_gets_a_structured_error_not_a_crash() {
    let (responses, code) = serve_stdio(
        &[],
        "this is not json\n\
         {\"method\":\"stats\"}\n\
         {\"id\":3,\"method\":\"stats\"}\n",
    );
    assert_eq!(code, Some(0), "the daemon must survive garbage input");
    assert_eq!(responses.len(), 3);
    // Unattributable lines get id null and a structured error code.
    assert!(responses[0].get("id").is_some_and(Json::is_null));
    assert_eq!(
        responses[0]
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("parse")
    );
    assert_eq!(
        responses[1]
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("invalid")
    );
    // And the connection still works afterwards.
    let ok = response_with_id(&responses, 3);
    assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn stdio_interleaved_requests_all_get_matching_ids() {
    // A batch mixing methods; --jobs 2 lets proves overlap, so response
    // order is not request order — ids are what attribute them.
    let (responses, code) = serve_stdio(
        &["--jobs", "2"],
        "{\"id\":10,\"method\":\"prove\",\"params\":{\"names\":[\"pos\"]}}\n\
         {\"id\":11,\"method\":\"check\",\"params\":{\"source\":\"int pos x = 3;\"}}\n\
         {\"id\":12,\"method\":\"prove\",\"params\":{\"names\":[\"nonnull\"]}}\n\
         {\"id\":13,\"method\":\"stats\"}\n",
    );
    assert_eq!(code, Some(0));
    assert_eq!(responses.len(), 4);
    for id in [10, 11, 12, 13] {
        let r = response_with_id(&responses, id);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "id {id}: {r}");
    }
    let check = response_with_id(&responses, 11);
    assert_eq!(
        check
            .get("result")
            .and_then(|r| r.get("clean"))
            .and_then(Json::as_bool),
        Some(true)
    );
}

#[test]
fn stdio_deadline_interrupts_without_poisoning_the_shared_cache() {
    // One worker serializes the two proves. The first is strangled by a
    // 0ms per-request deadline; the second, sharing the resident cache,
    // must still prove everything sound — an interrupted request must
    // never leave junk behind for its neighbours.
    let (responses, code) = serve_stdio(
        &["--jobs", "1"],
        "{\"id\":1,\"method\":\"prove\",\"deadline_ms\":0,\"params\":{\"cache\":false}}\n\
         {\"id\":2,\"method\":\"prove\"}\n",
    );
    assert_eq!(code, Some(0));
    let rushed = response_with_id(&responses, 1);
    assert_eq!(
        rushed
            .get("result")
            .and_then(|r| r.get("interrupted"))
            .and_then(Json::as_bool),
        Some(true),
        "a 0ms deadline must interrupt: {rushed}"
    );
    let calm = response_with_id(&responses, 2);
    let result = calm.get("result").expect("result");
    assert_eq!(result.get("interrupted").and_then(Json::as_bool), Some(false));
    assert_eq!(
        result.get("all_sound").and_then(Json::as_bool),
        Some(true),
        "the follow-up prove saw a poisoned cache: {result}"
    );
}

#[test]
fn stdio_shutdown_request_drains_and_exits_zero() {
    let (responses, code) = serve_stdio(
        &[],
        "{\"id\":1,\"method\":\"prove\",\"params\":{\"names\":[\"pos\"]}}\n\
         {\"id\":2,\"method\":\"shutdown\"}\n",
    );
    assert_eq!(code, Some(0), "requested shutdown is a clean exit");
    let bye = response_with_id(&responses, 2);
    assert_eq!(
        bye.get("result")
            .and_then(|r| r.get("stopping"))
            .and_then(Json::as_bool),
        Some(true)
    );
    // The prove accepted before the shutdown was still answered.
    let proved = response_with_id(&responses, 1);
    assert_eq!(proved.get("ok").and_then(Json::as_bool), Some(true));
}

// ----- socket transport -----

struct Daemon {
    child: Child,
    socket: std::path::PathBuf,
}

impl Daemon {
    /// Spawns `stqc serve --socket` on a fresh temp path and waits for
    /// it to accept connections.
    fn spawn(name: &str, extra: &[&str]) -> Daemon {
        let socket =
            std::env::temp_dir().join(format!("stqc-serve-{name}-{}.sock", std::process::id()));
        Daemon::spawn_at(name, socket, extra)
    }

    /// Like [`Daemon::spawn`], but on a caller-chosen socket path.
    fn spawn_at(_name: &str, socket: std::path::PathBuf, extra: &[&str]) -> Daemon {
        let _ = std::fs::remove_file(&socket);
        let child = Command::new(env!("CARGO_BIN_EXE_stqc"))
            .arg("serve")
            .arg("--socket")
            .arg(&socket)
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("stqc serve spawns");
        let daemon = Daemon { child, socket };
        let deadline = Instant::now() + Duration::from_secs(20);
        while std::os::unix::net::UnixStream::connect(&daemon.socket).is_err() {
            assert!(Instant::now() < deadline, "daemon never bound its socket");
            std::thread::sleep(Duration::from_millis(10));
        }
        daemon
    }

    fn connect(&self) -> Client {
        let stream =
            std::os::unix::net::UnixStream::connect(&self.socket).expect("daemon reachable");
        let reader = BufReader::new(stream.try_clone().expect("stream clones"));
        Client { stream, reader }
    }

    /// Spawns a daemon serving both transports at once (`--socket` plus
    /// `--tcp 127.0.0.1:0`), returning it and the kernel-assigned TCP
    /// address read back through `--addr-file`.
    fn spawn_dual(name: &str, extra: &[&str]) -> (Daemon, String) {
        let pid = std::process::id();
        let socket = std::env::temp_dir().join(format!("stqc-serve-{name}-{pid}.sock"));
        let addr_file = std::env::temp_dir().join(format!("stqc-serve-{name}-{pid}.addr"));
        let _ = std::fs::remove_file(&socket);
        let _ = std::fs::remove_file(&addr_file);
        let child = Command::new(env!("CARGO_BIN_EXE_stqc"))
            .arg("serve")
            .arg("--socket")
            .arg(&socket)
            .arg("--tcp")
            .arg("127.0.0.1:0")
            .arg("--addr-file")
            .arg(&addr_file)
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("stqc serve spawns");
        let daemon = Daemon { child, socket };
        let deadline = Instant::now() + Duration::from_secs(20);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if text.trim().contains(':') {
                    break text.trim().to_owned();
                }
            }
            assert!(Instant::now() < deadline, "daemon never wrote its TCP address");
            std::thread::sleep(Duration::from_millis(10));
        };
        while std::os::unix::net::UnixStream::connect(&daemon.socket).is_err() {
            assert!(Instant::now() < deadline, "daemon never bound its socket");
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = std::fs::remove_file(&addr_file);
        (daemon, addr)
    }

    fn connect_tcp(addr: &str) -> TcpClient {
        let stream = std::net::TcpStream::connect(addr).expect("tcp daemon reachable");
        let reader = BufReader::new(stream.try_clone().expect("stream clones"));
        TcpClient { stream, reader }
    }

    fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Requests shutdown and asserts the daemon exits 0.
    fn shutdown(mut self) {
        let mut client = self.connect();
        let bye = client.roundtrip("{\"id\":0,\"method\":\"shutdown\"}");
        assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
        let code = self.child.wait().expect("daemon exits").code();
        assert_eq!(code, Some(0), "requested shutdown must exit 0");
        assert!(!self.socket.exists(), "socket file must be removed on exit");
    }
}

struct Client {
    stream: std::os::unix::net::UnixStream,
    reader: BufReader<std::os::unix::net::UnixStream>,
}

impl Client {
    fn send(&mut self, line: &str) {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("request written");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response read");
        Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
    }

    /// Like [`Client::recv`], but returns the raw wire line too (for
    /// byte-identity assertions).
    fn recv_raw(&mut self) -> (String, Json) {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response read");
        let doc =
            Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"));
        (line.trim().to_owned(), doc)
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

/// The same line-delimited client over TCP — the wire protocol is
/// transport-agnostic, and so is this harness.
struct TcpClient {
    stream: std::net::TcpStream,
    reader: BufReader<std::net::TcpStream>,
}

impl TcpClient {
    fn send(&mut self, line: &str) {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("request written");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response read");
        Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn stat_u64(stats: &Json, name: &str) -> u64 {
    stats
        .get("result")
        .and_then(|r| r.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats field {name} missing: {stats}"))
}

#[test]
fn socket_serves_two_clients_concurrently() {
    let daemon = Daemon::spawn("two-clients", &[]);
    let mut a = daemon.connect();
    let mut b = daemon.connect();
    // Interleave: both requests in flight before either response is
    // read.
    a.send("{\"id\":100,\"method\":\"prove\",\"params\":{\"names\":[\"pos\"]}}");
    b.send("{\"id\":200,\"method\":\"check\",\"params\":{\"source\":\"int pos x = 3;\"}}");
    let ra = a.recv();
    let rb = b.recv();
    assert_eq!(ra.get("id").and_then(Json::as_u64), Some(100));
    assert_eq!(ra.get("ok").and_then(Json::as_bool), Some(true), "{ra}");
    assert_eq!(rb.get("id").and_then(Json::as_u64), Some(200));
    assert_eq!(rb.get("ok").and_then(Json::as_bool), Some(true), "{rb}");
    drop(a);
    drop(b);
    daemon.shutdown();
}

#[test]
fn socket_client_disconnect_cancels_its_pending_work() {
    // One worker; a client floods it with slow (cache-off) proves and
    // vanishes without reading anything. The daemon must cancel that
    // client's backlog instead of proving into the void — observable in
    // `stats` as a disconnect plus cancelled jobs.
    let daemon = Daemon::spawn("disconnect", &["--jobs", "1"]);
    {
        let mut doomed = daemon.connect();
        for i in 0..4 {
            doomed.send(&format!(
                "{{\"id\":{i},\"method\":\"prove\",\"params\":{{\"cache\":false}}}}"
            ));
        }
        // Dropped here: both the reader and writer halves close.
    }
    let mut observer = daemon.connect();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = observer.roundtrip("{\"id\":1,\"method\":\"stats\"}");
        let result = stats.get("result").expect("stats result");
        let disconnects = result.get("disconnects").and_then(Json::as_u64).unwrap_or(0);
        let cancelled = result.get("cancelled").and_then(Json::as_u64).unwrap_or(0);
        if disconnects >= 1 && cancelled >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never cancelled the orphaned backlog: {result}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(observer);
    daemon.shutdown();
}

#[test]
fn call_to_absent_daemon_exits_6_with_an_actionable_message() {
    let socket = std::env::temp_dir().join(format!("stqc-no-daemon-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let out = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .args(["call", "--socket", socket.to_str().expect("utf8 path"), "stats"])
        .output()
        .expect("stqc call runs");
    assert_eq!(
        out.status.code(),
        Some(6),
        "an unreachable daemon is its own exit code: {out:?}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("is the daemon running"),
        "the failure must tell the user what to do next: {stderr}"
    );
    assert!(
        stderr.contains("stqc serve --socket"),
        "the failure must show the start command: {stderr}"
    );
}

#[test]
fn call_connect_timeout_waits_out_a_slow_daemon_start() {
    // The client dials before the daemon exists; --connect-timeout-ms
    // keeps redialing until the late-bound socket appears.
    let socket = std::env::temp_dir().join(format!("stqc-late-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let call = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            Command::new(env!("CARGO_BIN_EXE_stqc"))
                .args([
                    "call",
                    "--socket",
                    socket.to_str().expect("utf8 path"),
                    "--connect-timeout-ms",
                    "20000",
                    "health",
                ])
                .output()
                .expect("stqc call runs")
        })
    };
    std::thread::sleep(Duration::from_millis(300));
    let daemon = Daemon::spawn_at("late", socket, &[]);
    let out = call.join().expect("call thread");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let response =
        Json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("call prints the response");
    assert_eq!(
        response
            .get("result")
            .and_then(|r| r.get("status"))
            .and_then(Json::as_str),
        Some("ok")
    );
    daemon.shutdown();
}

#[test]
fn max_queue_shedding_is_retryable_and_the_daemon_stays_responsive() {
    // One worker, a one-slot queue: a burst of slow (cache-off) proves
    // must shed with retryable `overloaded` errors instead of queueing
    // without bound — and `stats`, answered inline on the reader
    // thread, must keep working throughout.
    let daemon = Daemon::spawn("shed", &["--jobs", "1", "--max-queue", "1"]);
    let mut flood = daemon.connect();
    // Distinct qualifier lists per request: identical proves would
    // coalesce into one single-flight run and never overflow the queue.
    let names = ["pos", "neg", "nonzero", "nonnull", "untainted", "tainted"];
    for (i, name) in names.iter().enumerate() {
        flood.send(&format!(
            "{{\"id\":{i},\"method\":\"prove\",\"params\":{{\"names\":[\"{name}\"],\"cache\":false}}}}"
        ));
    }
    let mut shed = 0;
    let mut served = 0;
    for _ in 0..6 {
        let r = flood.recv();
        if r.get("ok").and_then(Json::as_bool) == Some(true) {
            served += 1;
        } else {
            let error = r.get("error").expect("error object");
            assert_eq!(
                error.get("code").and_then(Json::as_str),
                Some("overloaded"),
                "shed requests draw the retryable overload code: {r}"
            );
            assert_eq!(
                error.get("retryable").and_then(Json::as_bool),
                Some(true),
                "overload must be marked retryable: {r}"
            );
            shed += 1;
        }
    }
    assert!(shed >= 1, "a one-slot queue must shed part of a 6-burst");
    assert!(served >= 1, "accepted work must still complete");
    // The daemon remains responsive to monitoring while loaded.
    let mut observer = daemon.connect();
    let stats = observer.roundtrip("{\"id\":900,\"method\":\"stats\"}");
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    let result = stats.get("result").expect("stats result");
    assert!(
        result.get("shed").and_then(Json::as_u64).unwrap_or(0) >= shed,
        "shed requests must be counted: {result}"
    );
    drop(flood);
    drop(observer);
    daemon.shutdown();
}

#[test]
fn supervised_worker_survives_sigkill_with_its_warm_cache() {
    // The acceptance drill from docs/robustness.md: SIGKILL the worker
    // mid-service; the supervisor restarts it, and because every
    // conclusive verdict was persisted eagerly, the successor's first
    // prove over the same obligations misses the cache zero times.
    let tag = format!("supervised-{}", std::process::id());
    let scratch = std::env::temp_dir().join(&tag);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let socket = scratch.join("sock");
    let pid_file = scratch.join("pid");
    let cache_dir = scratch.join("cache");
    let _ = std::fs::remove_file(&socket);
    let mut supervisor = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .arg("serve")
        .arg("--supervise")
        .arg("--socket")
        .arg(&socket)
        .arg("--pid-file")
        .arg(&pid_file)
        .arg("--cache-dir")
        .arg(&cache_dir)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("supervisor spawns");
    let mut client = stq_core::Client::new(stq_core::ClientConfig {
        endpoints: vec![stq_core::Endpoint::Unix(socket.clone())],
        connect_timeout: Duration::from_secs(20),
        call_deadline: Some(Duration::from_secs(120)),
        max_retries: 32,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(100),
        seed: 1,
    });
    // Warm the cache (and the on-disk journal) with a full prove.
    let warm = client.call("prove", None, None).expect("warm prove");
    assert_eq!(warm.doc.get("ok").and_then(Json::as_bool), Some(true), "{}", warm.raw);

    // Assassinate the worker.
    let old_pid = std::fs::read_to_string(&pid_file).expect("pid file written");
    assert!(old_pid.trim().parse::<u32>().is_ok(), "pid file holds a pid: {old_pid}");
    let killed = Command::new("kill")
        .args(["-KILL", old_pid.trim()])
        .status()
        .expect("kill runs")
        .success();
    assert!(killed, "SIGKILL delivered to worker {old_pid}");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(now) = std::fs::read_to_string(&pid_file) {
            if !now.trim().is_empty() && now.trim() != old_pid.trim() {
                break;
            }
        }
        assert!(Instant::now() < deadline, "supervisor never restarted the worker");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The successor must answer the same prove entirely from the
    // reloaded journal: zero misses on a fresh miss counter.
    let healed = client.call("prove", None, None).expect("post-restart prove");
    assert_eq!(healed.doc.get("ok").and_then(Json::as_bool), Some(true), "{}", healed.raw);
    let misses = healed
        .doc
        .get("result")
        .and_then(|r| r.get("cache"))
        .and_then(|c| c.get("misses"))
        .and_then(Json::as_u64);
    assert_eq!(
        misses,
        Some(0),
        "the restarted worker lost its warm cache: {}",
        healed.raw
    );
    assert!(client.stats().reconnects >= 1, "the kill must have been felt");

    // A requested shutdown propagates through the supervisor as exit 0.
    let bye = client.call("shutdown", None, None).expect("shutdown");
    assert_eq!(bye.doc.get("ok").and_then(Json::as_bool), Some(true));
    let code = supervisor.wait().expect("supervisor exits").code();
    assert_eq!(code, Some(0), "requested shutdown propagates as success");
    let _ = std::fs::remove_dir_all(&scratch);
}

// ----- single-flight dedup -----

#[test]
fn dedup_coalesces_identical_proves_into_one_solver_run() {
    // One worker; a filler prove occupies it so the three identical
    // uncached proves behind it all join one flight before any of them
    // can run. The answer must come back once per requester id,
    // byte-identical after the id, with dedup_hits counting the two
    // coalesced waiters — and the proof-cache ledger untouched (these
    // are cache-off requests; coalescing must not fake hits or misses).
    let daemon = Daemon::spawn("dedup", &["--jobs", "1"]);
    let mut c = daemon.connect();
    let warm = c.roundtrip("{\"id\":1,\"method\":\"prove\"}");
    assert_eq!(warm.get("ok").and_then(Json::as_bool), Some(true), "{warm}");
    let cache_misses = |stats: &Json| -> u64 {
        stats
            .get("result")
            .and_then(|r| r.get("cache"))
            .and_then(|c| c.get("misses"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("cache misses missing: {stats}"))
    };
    let mut observer = daemon.connect();
    let before = observer.roundtrip("{\"id\":2,\"method\":\"stats\"}");
    let misses_before = cache_misses(&before);
    let dedup_before = stat_u64(&before, "dedup_hits");

    // One write, four pipelined lines: filler + three identical proves.
    c.send(
        "{\"id\":10,\"method\":\"prove\",\"params\":{\"names\":[\"pos\"],\"cache\":false}}\n\
         {\"id\":11,\"method\":\"prove\",\"params\":{\"cache\":false}}\n\
         {\"id\":12,\"method\":\"prove\",\"params\":{\"cache\":false}}\n\
         {\"id\":13,\"method\":\"prove\",\"params\":{\"cache\":false}}",
    );
    let mut bodies: Vec<String> = Vec::new();
    for _ in 0..4 {
        let (raw, doc) = c.recv_raw();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{doc}");
        let id = doc.get("id").and_then(Json::as_u64).expect("response id");
        if id >= 11 {
            // Everything after the requester id must be byte-identical
            // across the fan-out.
            let split = raw.find(',').expect("id field ends with a comma");
            bodies.push(raw[split..].to_owned());
        }
    }
    assert_eq!(bodies.len(), 3, "all three duplicate requesters are answered");
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "coalesced answers must be byte-identical modulo id: {bodies:?}"
    );

    let after = observer.roundtrip("{\"id\":3,\"method\":\"stats\"}");
    assert_eq!(
        stat_u64(&after, "dedup_hits") - dedup_before,
        2,
        "three identical proves = one run + two dedup hits: {after}"
    );
    assert_eq!(
        cache_misses(&after),
        misses_before,
        "cache-off coalesced proves must not move the cache ledger: {after}"
    );
    drop(c);
    drop(observer);
    daemon.shutdown();
}

#[test]
fn dedup_leader_disconnect_hands_off_to_the_surviving_waiter() {
    // A and B join the same flight while the single worker is busy with
    // fillers; A (the leader) vanishes before — or while — the flight
    // runs. B must still receive a conclusive, non-interrupted answer:
    // either the flight skips the dead leader, or an interrupted
    // leader-run is discarded and B re-runs under its own token.
    let daemon = Daemon::spawn("handoff", &["--jobs", "1"]);
    let mut filler = daemon.connect();
    filler.send(
        "{\"id\":1,\"method\":\"prove\",\"params\":{\"names\":[\"pos\"],\"cache\":false}}\n\
         {\"id\":2,\"method\":\"prove\",\"params\":{\"names\":[\"nonnull\"],\"cache\":false}}",
    );
    let mut a = daemon.connect();
    a.send("{\"id\":100,\"method\":\"prove\",\"params\":{\"cache\":false}}");
    let mut b = daemon.connect();
    b.send("{\"id\":200,\"method\":\"prove\",\"params\":{\"cache\":false}}");
    std::thread::sleep(Duration::from_millis(50));
    drop(a);
    let rb = b.recv();
    assert_eq!(rb.get("id").and_then(Json::as_u64), Some(200));
    assert_eq!(rb.get("ok").and_then(Json::as_bool), Some(true), "{rb}");
    let result = rb.get("result").expect("prove result");
    assert_eq!(
        result.get("interrupted").and_then(Json::as_bool),
        Some(false),
        "the survivor must get a conclusive answer, not the dead leader's partial: {rb}"
    );
    assert_eq!(result.get("all_sound").and_then(Json::as_bool), Some(true), "{rb}");
    // The fillers still complete for their own client.
    for _ in 0..2 {
        let rf = filler.recv();
        assert_eq!(rf.get("ok").and_then(Json::as_bool), Some(true), "{rf}");
    }
    drop(filler);
    drop(b);
    daemon.shutdown();
}

// ----- TCP transport -----

#[test]
fn tcp_and_unix_clients_are_served_concurrently_by_one_daemon() {
    let (daemon, addr) = Daemon::spawn_dual("mixed", &["--jobs", "2"]);
    let mut unix = daemon.connect();
    let mut tcp = Daemon::connect_tcp(&addr);
    // Interleave: all four requests in flight before any response read.
    unix.send("{\"id\":100,\"method\":\"prove\",\"params\":{\"names\":[\"pos\"]}}");
    tcp.send("{\"id\":200,\"method\":\"prove\",\"params\":{\"names\":[\"pos\"]}}");
    unix.send("{\"id\":101,\"method\":\"check\",\"params\":{\"source\":\"int pos x = 3;\"}}");
    tcp.send("{\"id\":201,\"method\":\"check\",\"params\":{\"source\":\"int pos x = 3;\"}}");
    // `--jobs 2` lets each connection's pair overlap, so per-connection
    // response order is not send order — ids attribute them.
    let unix_responses = [unix.recv(), unix.recv()];
    let tcp_responses = [tcp.recv(), tcp.recv()];
    for (ids, responses) in [([100, 101], unix_responses), ([200, 201], tcp_responses)] {
        for id in ids {
            let r = responses
                .iter()
                .find(|r| r.get("id").and_then(Json::as_u64) == Some(id))
                .unwrap_or_else(|| panic!("no response with id {id}: {responses:?}"));
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        }
    }
    // Shutdown over TCP works exactly like over the socket, and still
    // removes the Unix socket file on the way out.
    let bye = tcp.roundtrip("{\"id\":9,\"method\":\"shutdown\"}");
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true), "{bye}");
    let mut daemon = daemon;
    let code = daemon.child.wait().expect("daemon exits").code();
    assert_eq!(code, Some(0), "requested shutdown must exit 0");
    assert!(!daemon.socket.exists(), "socket file must be removed on exit");
}

#[test]
fn tcp_call_subcommand_round_trips() {
    let (daemon, addr) = Daemon::spawn_dual("tcp-call", &[]);
    let out = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .args(["call", "--tcp", &addr, "prove", "{\"names\":[\"pos\"]}"])
        .output()
        .expect("stqc call runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let response =
        Json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("call prints the response");
    assert_eq!(
        response
            .get("result")
            .and_then(|r| r.get("all_sound"))
            .and_then(Json::as_bool),
        Some(true)
    );
    daemon.shutdown();
}

#[test]
fn tcp_chaos_soak_heals_through_wire_faults() {
    // The PR 7 self-healing client, pointed at a TCP daemon whose
    // response path is armed with deterministic wire faults. Every call
    // must still come back attributed and correct.
    let (daemon, addr) = Daemon::spawn_dual(
        "tcp-chaos",
        &["--net-fault-seed", "11", "--net-fault-count", "24", "--net-fault-span", "96"],
    );
    let mut client = stq_core::Client::new(stq_core::ClientConfig {
        endpoints: vec![stq_core::Endpoint::Tcp(addr)],
        connect_timeout: Duration::from_secs(20),
        call_deadline: Some(Duration::from_secs(120)),
        max_retries: 64,
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(50),
        seed: 5,
    });
    let mut verdicts: Vec<String> = Vec::new();
    for i in 0..20 {
        let out = match i % 3 {
            0 => client.call("prove", Some("{\"names\":[\"pos\"]}"), None),
            1 => client.call("stats", None, None),
            _ => client
                .call("check", Some("{\"source\":\"int pos x = 3;\"}"), None),
        }
        .unwrap_or_else(|e| panic!("soak call {i} failed: {e}"));
        assert_eq!(
            out.doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "soak call {i}: {}",
            out.raw
        );
        if i % 3 == 0 {
            verdicts.push(
                out.doc
                    .get("result")
                    .and_then(|r| r.get("all_sound"))
                    .map(|v| v.to_string())
                    .unwrap_or_default(),
            );
        }
    }
    assert!(
        verdicts.iter().all(|v| v == "true"),
        "verdicts must survive the faulted wire: {verdicts:?}"
    );
    drop(client);
    daemon.shutdown();
}

// ----- reactor resource accounting -----

#[test]
fn connection_teardown_releases_resources_promptly() {
    // Regression for the accept-loop JoinHandle leak: the daemon's
    // open-connection gauge must fall back to the observer alone as
    // soon as clients hang up — not at shutdown.
    let daemon = Daemon::spawn("teardown", &[]);
    let mut observer = daemon.connect();
    let mut clients: Vec<Client> = (0..8).map(|_| daemon.connect()).collect();
    for (i, c) in clients.iter_mut().enumerate() {
        let r = c.roundtrip(&format!("{{\"id\":{i},\"method\":\"health\"}}"));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    }
    let held = observer.roundtrip("{\"id\":1,\"method\":\"stats\"}");
    assert_eq!(
        stat_u64(&held, "open_connections"),
        9,
        "eight clients plus the observer: {held}"
    );
    drop(clients);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now = observer.roundtrip("{\"id\":2,\"method\":\"stats\"}");
        if stat_u64(&now, "open_connections") == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "closed connections were never released: {now}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(observer);
    daemon.shutdown();
}

#[test]
fn reactor_serves_64_mixed_connections_from_a_bounded_thread_count() {
    // The acceptance drill: 64 held-open connections (half Unix, half
    // TCP) plus active clients, while the daemon's thread count stays
    // O(workers), not O(clients) — the reactor multiplexes them all.
    let (daemon, addr) = Daemon::spawn_dual("many-conns", &["--jobs", "2"]);
    let mut idle_unix = Vec::new();
    let mut idle_tcp = Vec::new();
    for i in 0..64 {
        if i % 2 == 0 {
            idle_unix.push(
                std::os::unix::net::UnixStream::connect(&daemon.socket).expect("idle connect"),
            );
        } else {
            idle_tcp.push(std::net::TcpStream::connect(addr.as_str()).expect("idle tcp connect"));
        }
    }
    // Active traffic on top of the idle herd, over both transports.
    let mut unix = daemon.connect();
    let mut tcp = Daemon::connect_tcp(&addr);
    let ru = unix.roundtrip("{\"id\":1,\"method\":\"prove\",\"params\":{\"names\":[\"pos\"]}}");
    assert_eq!(ru.get("ok").and_then(Json::as_bool), Some(true), "{ru}");
    let rt = tcp.roundtrip("{\"id\":2,\"method\":\"prove\",\"params\":{\"names\":[\"pos\"]}}");
    assert_eq!(rt.get("ok").and_then(Json::as_bool), Some(true), "{rt}");
    let stats = unix.roundtrip("{\"id\":3,\"method\":\"stats\"}");
    assert!(
        stat_u64(&stats, "open_connections") >= 66,
        "the idle herd must all be held open: {stats}"
    );
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string(format!("/proc/{}/status", daemon.pid()))
            .expect("proc status readable");
        let threads: u64 = status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .expect("Threads line")
            .trim()
            .parse()
            .expect("thread count");
        assert!(
            threads <= 16,
            "66 connections must not cost 66 threads (got {threads}):\n{status}"
        );
    }
    drop(idle_unix);
    drop(idle_tcp);
    drop(unix);
    drop(tcp);
    daemon.shutdown();
}

#[test]
fn idle_daemon_blocks_in_poll_instead_of_spinning() {
    // Regression for the 10ms-per-WouldBlock accept loop: half a second
    // of quiet must cost at most a handful of poll(2) returns (the
    // observer's own stats round-trips), never a timeout-driven spin.
    let daemon = Daemon::spawn("no-spin", &[]);
    let mut observer = daemon.connect();
    let before = observer.roundtrip("{\"id\":1,\"method\":\"stats\"}");
    let polls_before = before
        .get("result")
        .and_then(|r| r.get("reactor"))
        .and_then(|r| r.get("polls"))
        .and_then(Json::as_u64)
        .expect("reactor polls in stats");
    std::thread::sleep(Duration::from_millis(500));
    let after = observer.roundtrip("{\"id\":2,\"method\":\"stats\"}");
    let polls_after = after
        .get("result")
        .and_then(|r| r.get("reactor"))
        .and_then(|r| r.get("polls"))
        .and_then(Json::as_u64)
        .expect("reactor polls in stats");
    let churn = polls_after - polls_before;
    assert!(
        churn <= 5,
        "an idle daemon must block in poll, not spin: {churn} poll returns in 500ms"
    );
    drop(observer);
    daemon.shutdown();
}

// ----- high availability: failover, shared journal, hot reload -----

/// Scratch directory for one HA test, removed on success.
fn ha_scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("stqc-ha-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

#[test]
fn call_json_wraps_the_response_with_client_counters() {
    let daemon = Daemon::spawn("call-json", &[]);
    let out = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .args([
            "call",
            "--json",
            "--socket",
            daemon.socket.to_str().expect("utf8 path"),
            "health",
        ])
        .output()
        .expect("stqc call runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let doc = Json::parse(String::from_utf8_lossy(&out.stdout).trim())
        .expect("--json output parses as one JSON document");
    assert_eq!(
        doc.get("response")
            .and_then(|r| r.get("result"))
            .and_then(|r| r.get("status"))
            .and_then(Json::as_str),
        Some("ok"),
        "the raw response nests under `response`: {doc}"
    );
    let client = doc.get("client").expect("client counters object");
    for key in [
        "retries",
        "reconnects",
        "resends",
        "failovers",
        "endpoints_tried",
        "alien_dropped",
        "corrupt_lines",
    ] {
        assert!(
            client.get(key).and_then(Json::as_u64).is_some(),
            "client counter `{key}` missing: {doc}"
        );
    }
    assert_eq!(
        client.get("endpoints_tried").and_then(Json::as_u64),
        Some(1),
        "a clean single-endpoint call dials exactly one endpoint: {doc}"
    );
    assert_eq!(client.get("failovers").and_then(Json::as_u64), Some(0), "{doc}");
    daemon.shutdown();
}

#[test]
fn call_fails_over_from_a_dead_endpoint_to_a_live_one() {
    // First endpoint: nobody home. Second: a live daemon. The call must
    // succeed by failing over, and `--json` must show it happened.
    let daemon = Daemon::spawn("failover", &[]);
    let dead = std::env::temp_dir().join(format!("stqc-dead-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&dead);
    let out = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .args([
            "call",
            "--json",
            "--socket",
            dead.to_str().expect("utf8 path"),
            "--socket",
            daemon.socket.to_str().expect("utf8 path"),
            "health",
        ])
        .output()
        .expect("stqc call runs");
    assert_eq!(out.status.code(), Some(0), "failover must rescue the call: {out:?}");
    let doc = Json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("json output");
    let client = doc.get("client").expect("client counters");
    assert_eq!(
        client.get("endpoints_tried").and_then(Json::as_u64),
        Some(2),
        "both endpoints were dialed: {doc}"
    );
    // A first connection — even to a non-primary endpoint — is not a
    // failover; that counter tracks switches away from an endpoint the
    // client had already been talking to.
    assert_eq!(client.get("failovers").and_then(Json::as_u64), Some(0), "{doc}");
    daemon.shutdown();
}

#[test]
fn call_exhausting_every_endpoint_exits_6_and_names_them_all() {
    let pid = std::process::id();
    let dead_a = std::env::temp_dir().join(format!("stqc-dead-a-{pid}.sock"));
    let dead_b = std::env::temp_dir().join(format!("stqc-dead-b-{pid}.sock"));
    let _ = std::fs::remove_file(&dead_a);
    let _ = std::fs::remove_file(&dead_b);
    let out = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .args([
            "call",
            "--socket",
            dead_a.to_str().expect("utf8 path"),
            "--endpoint",
            dead_b.to_str().expect("utf8 path"),
            "stats",
        ])
        .output()
        .expect("stqc call runs");
    assert_eq!(out.status.code(), Some(6), "exhaustion is the unreachable exit: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for dead in [&dead_a, &dead_b] {
        assert!(
            stderr.contains(dead.to_str().expect("utf8 path")),
            "the hint must name every endpoint tried: {stderr}"
        );
    }
}

#[test]
fn addr_and_pid_files_appear_atomically_for_startup_pollers() {
    // Regression for torn coordination files: a script polling for
    // `--addr-file` (or `--pid-file`) races the daemon's write. With
    // temp+rename the file is only ever observed absent or complete —
    // the very first successful read must already hold a full line.
    let scratch = ha_scratch("atomic-files");
    let addr_file = scratch.join("addr");
    let pid_file = scratch.join("pid");
    let mut child = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .arg("serve")
        .args(["--tcp", "127.0.0.1:0"])
        .arg("--addr-file")
        .arg(&addr_file)
        .arg("--pid-file")
        .arg(&pid_file)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("stqc serve spawns");
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut addr = None;
    let mut pid = None;
    // Poll as tight as the OS allows; every observation must be
    // all-or-nothing.
    while (addr.is_none() || pid.is_none()) && Instant::now() < deadline {
        if addr.is_none() {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                assert!(
                    text.ends_with('\n') && text.trim().contains(':'),
                    "addr-file observed torn: {text:?}"
                );
                addr = Some(text.trim().to_owned());
            }
        }
        if pid.is_none() {
            if let Ok(text) = std::fs::read_to_string(&pid_file) {
                assert!(
                    text.ends_with('\n') && text.trim().parse::<u32>().is_ok(),
                    "pid-file observed torn: {text:?}"
                );
                pid = Some(text.trim().to_owned());
            }
        }
    }
    let addr = addr.expect("daemon wrote its TCP address");
    assert_eq!(pid.as_deref(), Some(child.id().to_string().as_str()));
    // No temp-file litter left beside the real files.
    let litter: Vec<String> = std::fs::read_dir(&scratch)
        .expect("scratch listable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(litter.is_empty(), "temp files left behind: {litter:?}");
    let mut client = Daemon::connect_tcp(&addr);
    let bye = client.roundtrip("{\"id\":0,\"method\":\"shutdown\"}");
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(child.wait().expect("daemon exits").code(), Some(0));
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn two_daemon_processes_share_one_journal_without_losing_entries() {
    // True multi-process contention over one proof-cache journal: two
    // daemons split the builtin qualifiers between them and persist
    // concurrently-held appends into the same file; a third daemon then
    // proves everything from that journal alone — zero misses means
    // neither writer clobbered the other's batch.
    let scratch = ha_scratch("shared-journal");
    let cache_dir = scratch.join("cache");
    let cache = cache_dir.to_str().expect("utf8 path");
    let a = Daemon::spawn_at("journal-a", scratch.join("a.sock"), &["--cache-dir", cache]);
    let b = Daemon::spawn_at("journal-b", scratch.join("b.sock"), &["--cache-dir", cache]);
    let mut ca = a.connect();
    let mut cb = b.connect();
    // Interleave the two proves so both daemons hold dirty batches at
    // once; each persist must fold the other's tail, not overwrite it.
    ca.send(
        "{\"id\":1,\"method\":\"prove\",\"params\":{\"names\":[\"pos\",\"neg\",\"nonzero\",\"nonnull\"]}}",
    );
    cb.send(
        "{\"id\":2,\"method\":\"prove\",\"params\":{\"names\":[\"untainted\",\"tainted\",\"unique\",\"unaliased\"]}}",
    );
    assert_eq!(ca.recv().get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(cb.recv().get("ok").and_then(Json::as_bool), Some(true));
    drop(ca);
    drop(cb);
    a.shutdown();
    b.shutdown();

    // The heir proves the full builtin set from the merged journal.
    let c = Daemon::spawn_at("journal-c", scratch.join("c.sock"), &["--cache-dir", cache]);
    let mut cc = c.connect();
    let proved = cc.roundtrip("{\"id\":3,\"method\":\"prove\"}");
    assert_eq!(proved.get("ok").and_then(Json::as_bool), Some(true), "{proved}");
    let misses = proved
        .get("result")
        .and_then(|r| r.get("cache"))
        .and_then(|x| x.get("misses"))
        .and_then(Json::as_u64);
    assert_eq!(
        misses,
        Some(0),
        "an entry written by one daemon was lost to the other: {proved}"
    );
    drop(cc);
    c.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn peer_daemon_serves_follow_hits_from_a_journal_it_never_wrote() {
    // The warm-failover contract: daemon A computes every proof; daemon
    // B — same cache dir, never proved at — must answer the same proofs
    // warm by following the journal, counting them as follow hits.
    let scratch = ha_scratch("follow");
    let cache_dir = scratch.join("cache");
    let cache = cache_dir.to_str().expect("utf8 path");
    let a = Daemon::spawn_at("follow-a", scratch.join("a.sock"), &["--cache-dir", cache]);
    let b = Daemon::spawn_at("follow-b", scratch.join("b.sock"), &["--cache-dir", cache]);
    let mut ca = a.connect();
    let warm = ca.roundtrip("{\"id\":1,\"method\":\"prove\"}");
    assert_eq!(warm.get("ok").and_then(Json::as_bool), Some(true), "{warm}");

    let mut cb = b.connect();
    let failed_over = cb.roundtrip("{\"id\":2,\"method\":\"prove\"}");
    assert_eq!(failed_over.get("ok").and_then(Json::as_bool), Some(true), "{failed_over}");
    let cache_obj = failed_over
        .get("result")
        .and_then(|r| r.get("cache"))
        .expect("cache ledger");
    assert_eq!(
        cache_obj.get("misses").and_then(Json::as_u64),
        Some(0),
        "B re-proved what A already journaled: {failed_over}"
    );
    assert!(
        cache_obj.get("follow_hits").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "warm answers on B must be attributed to journal follow: {failed_over}"
    );
    drop(ca);
    drop(cb);
    a.shutdown();
    b.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn reload_of_a_broken_library_rolls_back_in_a_real_daemon() {
    // The acceptance drill from the issue, end to end in a child
    // process: a daemon serving a qualifier library keeps serving the
    // old definitions when the library breaks on disk, and the failed
    // reload reports a structured, non-fatal `input` error.
    let scratch = ha_scratch("reload-rollback");
    let lib = scratch.join("quals.stq");
    let good = "value qualifier nonneg(int Expr E)\n\
         case E of\n\
             decl int Const C: C, where C >= 0\n\
           | decl int Expr E1, E2: E1 + E2, where nonneg(E1) && nonneg(E2)\n\
         invariant value(E) >= 0";
    std::fs::write(&lib, good).expect("library written");
    let daemon = Daemon::spawn_at(
        "reload",
        scratch.join("d.sock"),
        &["--quals", lib.to_str().expect("utf8 path")],
    );
    let mut client = daemon.connect();
    let before = client.roundtrip("{\"id\":1,\"method\":\"prove\",\"params\":{\"names\":[\"nonneg\"]}}");
    assert_eq!(before.get("ok").and_then(Json::as_bool), Some(true), "{before}");

    // Break the library on disk; the reload must roll back.
    std::fs::write(&lib, "value qualifier broken(").expect("library broken");
    let rejected = client.roundtrip("{\"id\":2,\"method\":\"reload\"}");
    assert_eq!(rejected.get("ok").and_then(Json::as_bool), Some(false), "{rejected}");
    let error = rejected.get("error").expect("error object");
    assert_eq!(error.get("code").and_then(Json::as_str), Some("input"), "{rejected}");
    assert!(
        error
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("")
            .contains("rolled back"),
        "the error must say the swap was rolled back: {rejected}"
    );

    // The old registry still serves.
    let after = client.roundtrip("{\"id\":3,\"method\":\"prove\",\"params\":{\"names\":[\"nonneg\"]}}");
    assert_eq!(after.get("ok").and_then(Json::as_bool), Some(true), "{after}");

    // Fix the file; the next reload swaps and bumps the epoch.
    std::fs::write(&lib, good).expect("library repaired");
    let accepted = client.roundtrip("{\"id\":4,\"method\":\"reload\"}");
    assert_eq!(accepted.get("ok").and_then(Json::as_bool), Some(true), "{accepted}");
    assert_eq!(
        accepted
            .get("result")
            .and_then(|r| r.get("reloaded"))
            .and_then(Json::as_bool),
        Some(true),
        "{accepted}"
    );
    let stats = client.roundtrip("{\"id\":5,\"method\":\"stats\"}");
    assert_eq!(stat_u64(&stats, "reloads"), 1, "{stats}");
    assert_eq!(stat_u64(&stats, "reload_failures"), 1, "{stats}");
    drop(client);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn socket_call_subcommand_round_trips() {
    let daemon = Daemon::spawn("call", &[]);
    let out = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .args([
            "call",
            "--socket",
            daemon.socket.to_str().expect("utf8 path"),
            "prove",
            "{\"names\":[\"pos\"]}",
        ])
        .output()
        .expect("stqc call runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let response =
        Json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("call prints the response");
    assert_eq!(
        response
            .get("result")
            .and_then(|r| r.get("all_sound"))
            .and_then(Json::as_bool),
        Some(true)
    );
    daemon.shutdown();
}
