//! Differential soundness tests: the static checker's verdicts must
//! agree with dynamic behaviour on the interpreter.
//!
//! * Programs that typecheck **cleanly** (no casts) never violate a
//!   proven qualifier's invariant at run time — the paper's soundness
//!   property, tested by executing each program and checking every value
//!   the qualifier discipline speaks about.
//! * Programs that need **casts** get run-time checks, which pass
//!   exactly when the cast-to invariant holds dynamically.
//! * Statically reported **bugs** manifest dynamically (the format-string
//!   exploit).

use stq_core::{
    fault, Budget, FaultKind, FaultPlan, RetryPolicy, RuntimeError, Session, Value, Verdict,
};

/// A battery case: a program, the function to run, its arguments, and
/// the expected (return value, check count).
struct Case {
    name: &'static str,
    source: &'static str,
    entry: &'static str,
    args: Vec<Value>,
    expect_ret: Option<Value>,
    min_checks: usize,
}

fn clean_battery() -> Vec<Case> {
    vec![
        Case {
            name: "pos arithmetic flows",
            source: "int pos square(int pos x) { int pos s = x * x; return s; }",
            entry: "square",
            args: vec![Value::Int(7)],
            expect_ret: Some(Value::Int(49)),
            min_checks: 0,
        },
        Case {
            name: "neg through double negation",
            source: "int neg flip(int pos x) { int neg n = -x; return n; }",
            entry: "flip",
            args: vec![Value::Int(3)],
            expect_ret: Some(Value::Int(-3)),
            min_checks: 0,
        },
        Case {
            name: "division guarded by nonzero",
            source: "int half(int a, int nonzero d) { return a / d; }",
            entry: "half",
            args: vec![Value::Int(10), Value::Int(2)],
            expect_ret: Some(Value::Int(5)),
            min_checks: 0,
        },
        Case {
            name: "nonnull via address-of",
            source: "int deref_local() {
                         int x = 41;
                         int* nonnull p = &x;
                         *p = *p + 1;
                         return *p;
                     }",
            entry: "deref_local",
            args: vec![],
            expect_ret: Some(Value::Int(42)),
            min_checks: 0,
        },
        Case {
            name: "cast with passing run-time check",
            source: "int pos clamp(int x) {
                         if (x < 1) {
                             x = 1;
                         }
                         return (int pos) x;
                     }",
            entry: "clamp",
            args: vec![Value::Int(-5)],
            expect_ret: Some(Value::Int(1)),
            min_checks: 1,
        },
        Case {
            name: "malloc-backed array with guard cast",
            source: "int fill(int n) {
                         int* a = malloc(n);
                         if (a != NULL) {
                             int* nonnull p = (int* nonnull) a;
                             for (int i = 0; i < n; i++) p[i] = i * i;
                             return p[3];
                         }
                         return 0 - 1;
                     }",
            entry: "fill",
            args: vec![Value::Int(8)],
            expect_ret: Some(Value::Int(9)),
            min_checks: 1,
        },
    ]
}

#[test]
fn clean_programs_run_clean() {
    let session = Session::with_builtins();
    for case in clean_battery() {
        let program = session
            .parse(case.source)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", case.name));
        let result = session.check(&program);
        // The battery may use derefs that nonnull licenses; no qualifier
        // errors are allowed anywhere.
        assert_eq!(
            result.stats.qualifier_errors, 0,
            "{}: {}",
            case.name, result.diags
        );
        let out = session
            .run_instrumented(&program, case.entry, &case.args)
            .unwrap_or_else(|e| panic!("{}: runtime failure: {e}", case.name));
        assert_eq!(out.ret, case.expect_ret, "{}", case.name);
        assert!(
            out.checks_passed >= case.min_checks,
            "{}: expected at least {} run-time checks, saw {}",
            case.name,
            case.min_checks,
            out.checks_passed
        );
    }
}

#[test]
fn failing_casts_are_caught_at_run_time() {
    // The type system accepted the cast on trust; the inserted check
    // catches the lie at run time (paper §2.1.3: "a fatal error is
    // signaled if the test fails").
    let session = Session::with_builtins();
    let program = session
        .parse("int pos trust_me(int x) { return (int pos) x; }")
        .unwrap();
    assert!(session.check(&program).is_clean());
    let err = session
        .run_instrumented(&program, "trust_me", &[Value::Int(0)])
        .unwrap_err();
    match err {
        RuntimeError::CheckFailed { qual, value, .. } => {
            assert_eq!(qual.as_str(), "pos");
            assert_eq!(value, "0");
        }
        other => panic!("expected a failed check, got {other}"),
    }
}

#[test]
fn static_taint_errors_manifest_dynamically() {
    let session = Session::with_builtins();
    let source = r#"
        int printf(char* untainted fmt, ...);
        int vulnerable(int which) {
            char* buf = "%s%s";
            if (which == 0) {
                printf("%d", which);
                return 0;
            }
            printf(buf);
            return 1;
        }
    "#;
    let program = session.parse(source).unwrap();
    // Statically: one taint violation (the printf(buf) call).
    let result = session.check(&program);
    assert_eq!(result.stats.qualifier_errors, 1, "{}", result.diags);
    // Dynamically: the safe path runs, the flagged path explodes.
    let ok = session
        .run_instrumented(&program, "vulnerable", &[Value::Int(0)])
        .unwrap();
    assert_eq!(ok.ret, Some(Value::Int(0)));
    let err = session
        .run_instrumented(&program, "vulnerable", &[Value::Int(1)])
        .unwrap_err();
    assert!(matches!(err, RuntimeError::FormatString { .. }));
}

#[test]
fn nonnull_restrict_prevents_null_dereference_crashes() {
    let session = Session::with_builtins();
    // Statically rejected…
    let bad = session.parse("int read_it(int* p) { return *p; }").unwrap();
    assert_eq!(session.check(&bad).stats.qualifier_errors, 1);
    // …and indeed it crashes when fed NULL.
    let err = session
        .run_instrumented(&bad, "read_it", &[Value::NULL])
        .unwrap_err();
    assert!(matches!(err, RuntimeError::NullDeref(_)));
    // The annotated version is both statically clean and (for nonnull
    // callers) dynamically safe.
    let good = session
        .parse(
            "int read_it(int* nonnull p) { return *p; }
             int driver() {
                 int x = 5;
                 int* nonnull p = &x;
                 int r;
                 r = read_it(p);
                 return r;
             }",
        )
        .unwrap();
    assert!(session.check(&good).is_clean());
    let out = session.run_instrumented(&good, "driver", &[]).unwrap();
    assert_eq!(out.ret, Some(Value::Int(5)));
}

#[test]
fn instrumentation_preserves_program_results() {
    // Instrumented and uninstrumented programs compute the same values
    // when all checks pass.
    use stq_cir::interp::{run_entry, InterpConfig, NoChecks};
    let session = Session::with_builtins();
    let program = session
        .parse(
            "int pos gcd(int pos a0, int pos b0) {
                 int n = a0;
                 int m = b0;
                 while (m != 0) { int t = m; m = n % m; n = t; }
                 return (int pos) n;
             }",
        )
        .unwrap();
    let plain = run_entry(
        &program,
        "gcd",
        &[Value::Int(18), Value::Int(12)],
        &NoChecks,
        InterpConfig::default(),
    )
    .unwrap();
    let instrumented = session
        .run_instrumented(&program, "gcd", &[Value::Int(18), Value::Int(12)])
        .unwrap();
    assert_eq!(plain.ret, instrumented.ret);
    assert_eq!(plain.ret, Some(Value::Int(6)));
    assert!(instrumented.checks_passed >= 1);
}

// ----- fault injection: a crash in one obligation must not take down
// the rest of the checking pipeline -----

#[test]
fn injected_crash_is_contained_to_one_qualifier() {
    let session = Session::with_builtins();
    // Crash the very first proof obligation the run attempts.
    fault::install(FaultPlan::new().inject(0, FaultKind::Panic));
    let report = session.prove_all_sound_retrying(Budget::default(), RetryPolicy::none());
    fault::clear();
    let crashed: Vec<_> = report
        .reports
        .iter()
        .filter(|r| r.verdict == Verdict::Crashed)
        .collect();
    assert_eq!(crashed.len(), 1, "exactly one qualifier absorbs the fault");
    let msg = crashed[0]
        .obligations
        .iter()
        .find_map(|o| o.crashed.as_deref())
        .expect("the crashed qualifier records the panic message");
    assert!(msg.contains("injected panic"), "{msg}");
    // Every other qualifier still reaches a real verdict.
    for r in &report.reports {
        if r.verdict != Verdict::Crashed {
            assert!(
                matches!(r.verdict, Verdict::Sound | Verdict::NoInvariant),
                "qualifier `{}` got {:?} in the faulted run",
                r.qualifier,
                r.verdict
            );
        }
    }
}

#[test]
fn injected_resource_out_recovers_via_the_retry_ladder() {
    let session = Session::with_builtins();
    fault::install(FaultPlan::new().inject(0, FaultKind::ResourceOut));
    let report = session.prove_all_sound_retrying(Budget::default(), RetryPolicy::attempts(3));
    fault::clear();
    assert!(
        report.all_sound(),
        "the retry ladder converts the forced first-attempt resource-out back into proofs"
    );
    // Exactly one obligation needed a second attempt.
    assert_eq!(
        report.attempt_count(),
        report.obligation_count() as u64 + 1,
        "one retried obligation, everything else first-try"
    );
}

#[test]
fn injected_crash_under_keep_going_reports_all_verdicts_and_exits_4() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_stqc"))
        .args(["prove", "--keep-going", "--json", "--fault-panic-at", "0"])
        .output()
        .expect("stqc runs");
    assert_eq!(out.status.code(), Some(4), "crashed run exits 4");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // All eight builtin qualifiers report a verdict; exactly one crashed.
    assert_eq!(stdout.matches("\"verdict\":").count(), 8, "{stdout}");
    assert_eq!(
        stdout.matches("\"verdict\":\"crashed\"").count(),
        1,
        "{stdout}"
    );
}
