//! End-to-end contract tests for the `stqc fuzz` subcommand (tier 1).

use std::process::Command;

fn stqc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stqc"))
}

#[test]
fn fuzz_verdicts_are_identical_across_job_counts() {
    // Determinism is a hard property: the verdict of a (--seed, --count)
    // campaign must not depend on --jobs. The JSON report deliberately
    // omits the job count, so the outputs must be byte-identical.
    let mut outputs = Vec::new();
    for jobs in ["1", "4", "8"] {
        let out = stqc()
            .args([
                "fuzz", "--seed", "0", "--count", "40", "--jobs", jobs, "--json",
            ])
            .output()
            .expect("stqc runs");
        assert!(
            out.status.success(),
            "--jobs {jobs} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push(String::from_utf8(out.stdout).expect("utf-8 report"));
    }
    assert_eq!(outputs[0], outputs[1], "--jobs 1 vs --jobs 4 diverged");
    assert_eq!(outputs[1], outputs[2], "--jobs 4 vs --jobs 8 diverged");
}

#[test]
fn fuzz_campaign_exits_zero_on_a_clean_run() {
    let out = stqc()
        .args(["fuzz", "--seed", "0", "--count", "30", "--jobs", "2"])
        .output()
        .expect("stqc runs");
    assert!(
        out.status.success(),
        "clean campaign failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("0 failure(s)"),
        "unexpected campaign summary: {text}"
    );
}

#[test]
fn fuzz_replay_of_the_checked_in_corpus_is_green() {
    // Integration tests run with the package root as the working
    // directory, so the relative corpus path resolves.
    let out = stqc()
        .args(["fuzz", "--replay", "tests/corpus"])
        .output()
        .expect("stqc runs");
    assert!(
        out.status.success(),
        "corpus replay failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn fuzz_rejects_unknown_flags_with_a_usage_error() {
    let out = stqc()
        .args(["fuzz", "--bogus"])
        .output()
        .expect("stqc runs");
    assert_eq!(out.status.code(), Some(2), "usage errors must exit 2");
}
