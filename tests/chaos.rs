//! End-to-end runs of the chaos soak oracle (`stqc chaos-serve`,
//! docs/robustness.md): a supervised daemon with wire faults armed must
//! deliver exactly one attributed, baseline-identical answer per
//! request, with the warm proof cache intact — even when the worker is
//! SIGKILLed mid-campaign.

use std::process::Command;
use stq_util::json::Json;

fn run_chaos(name: &str, extra: &[&str]) -> Json {
    let out_path = std::env::temp_dir().join(format!(
        "stqc-chaos-test-{name}-{}.json",
        std::process::id()
    ));
    let out = Command::new(env!("CARGO_BIN_EXE_stqc"))
        .arg("chaos-serve")
        .args(extra)
        .arg("--out")
        .arg(&out_path)
        .output()
        .expect("stqc chaos-serve runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "chaos soak failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let report = std::fs::read_to_string(&out_path).expect("report written");
    let _ = std::fs::remove_file(&out_path);
    Json::parse(report.trim()).expect("report is json")
}

fn field(report: &Json, name: &str) -> u64 {
    report
        .get(name)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("report lacks `{name}`: {report}"))
}

#[test]
fn seeded_soak_resolves_every_request_identically_to_baseline() {
    let report = run_chaos("plain", &["--seed", "3", "--count", "24", "--clients", "3"]);
    assert_eq!(field(&report, "count"), 24);
    assert_eq!(field(&report, "requests_resolved"), 24);
    assert_eq!(field(&report, "verdict_mismatches"), 0);
    assert_eq!(field(&report, "warm_cache_miss_delta"), 0);
    assert!(
        report
            .get("net_faults")
            .and_then(|n| n.get("injected"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "a soak with no injected faults proves nothing: {report}"
    );
}

#[test]
fn soak_with_worker_sigkill_recovers_and_stays_warm() {
    let report = run_chaos(
        "kill",
        &["--seed", "5", "--count", "30", "--clients", "3", "--kill-worker"],
    );
    assert_eq!(field(&report, "requests_resolved"), 30);
    assert_eq!(field(&report, "verdict_mismatches"), 0);
    assert_eq!(field(&report, "warm_cache_miss_delta"), 0);
    assert_eq!(report.get("worker_killed").and_then(Json::as_bool), Some(true));
    assert!(
        field(&report, "worker_restarts") >= 1,
        "the supervisor must have restarted the killed worker: {report}"
    );
}

#[test]
fn soak_with_daemon_sigkill_fails_over_to_a_warm_survivor() {
    // The HA drill: two daemons share one proof-cache journal, daemon #0
    // (the only one ever proved at directly) is SIGKILLed mid-campaign
    // with no supervisor behind it, and the clients must fail over to
    // the survivor — which serves the dead daemon's proofs warm purely
    // by following the shared journal.
    let report = run_chaos(
        "ha",
        &[
            "--seed", "11", "--count", "40", "--clients", "4", "--daemons", "2", "--kill-daemon",
        ],
    );
    assert_eq!(field(&report, "requests_resolved"), 40);
    assert_eq!(field(&report, "verdict_mismatches"), 0);
    assert_eq!(field(&report, "daemons"), 2);
    assert_eq!(report.get("daemon_killed").and_then(Json::as_bool), Some(true));
    assert_eq!(
        field(&report, "warm_cache_miss_delta"),
        0,
        "the survivor proved something cold; journal follow failed: {report}"
    );
    assert!(
        field(&report, "follow_hits") >= 1,
        "the survivor never adopted a peer journal entry: {report}"
    );
    assert!(
        report
            .get("client")
            .and_then(|c| c.get("failovers"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1,
        "killing a daemon must force at least one client failover: {report}"
    );
    assert!(
        field(&report, "reloads") >= 1,
        "the survivor must complete a hot reload post-campaign: {report}"
    );
    assert_eq!(
        report.get("clean_shutdown").and_then(Json::as_bool),
        Some(true),
        "surviving daemons must shut down cleanly: {report}"
    );
}
