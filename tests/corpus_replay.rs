//! Replays the checked-in regression corpus through the full oracle
//! battery (tier 1). Every file under `tests/corpus/` is a minimized
//! witness of a bug the fuzzer found and we fixed — or of a documented
//! boundary of the static guarantee — so each must pass all three
//! oracles without a divergence or a host panic.

use std::fs;
use std::path::PathBuf;

use stq_fuzz::{replay_source, Outcome};

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "c"))
        .collect();
    files.sort();
    files
}

#[test]
fn the_corpus_is_not_empty() {
    let files = corpus_files();
    assert!(
        files.len() >= 6,
        "expected the fuzzer-found regression corpus, got {} file(s)",
        files.len()
    );
}

#[test]
fn every_corpus_witness_passes_the_oracle_battery() {
    for path in corpus_files() {
        let source = fs::read_to_string(&path).expect("corpus file is readable");
        let result = replay_source(&source);
        assert!(
            matches!(result.outcome, Outcome::Pass),
            "{}: expected a pass, got {:?}",
            path.display(),
            result.outcome
        );
    }
}

#[test]
fn the_corpus_exercises_both_clean_and_instrumented_programs() {
    // The battery's interesting branches are gated on (clean, casts):
    // the soundness oracle needs clean cast-free programs, the
    // instrumentation oracle needs casts. Keep at least one of each in
    // the corpus so a regression in either path is caught here.
    let mut clean_cast_free = 0usize;
    let mut instrumented = 0usize;
    for path in corpus_files() {
        let source = fs::read_to_string(&path).expect("corpus file is readable");
        let result = replay_source(&source);
        if result.clean && result.casts == 0 {
            clean_cast_free += 1;
        }
        if result.casts > 0 {
            instrumented += 1;
        }
    }
    assert!(clean_cast_free > 0, "no clean cast-free witness in corpus");
    assert!(instrumented > 0, "no instrumented witness in corpus");
}
