// Boundary, not a bug: the builtin `nonzero` qualifier restricts only
// `E1 / E2` — there is no rule for `%`, and the paper's own Figure 2
// gcd computes `n % m` unguarded. A clean program can therefore still
// divide by zero through `%`; the interpreter stops it with a runtime
// error, which the soundness oracle documents as outside the static
// guarantee. Kept as the witness of that boundary.
int f(int a) {
    int r = a % a;
    return r;
}
