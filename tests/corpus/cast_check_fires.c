// The §2.1.3 contract end-to-end: a cast's run-time check must fire
// exactly when the cast-to invariant fails dynamically. The fabricated
// entry argument is 0, so `(int pos)` fails its check at run time; the
// instrumentation oracle verifies the real run stops at precisely the
// violation a recording run logged (same qualifier, same value).
int pos f(int a) {
    return (int pos) a;
}
