// Regression: `p - i` with i == i64::MIN used to negate the subtrahend
// (which does not exist in i64) and panic the host in debug builds.
// Pointer arithmetic is now taken mod 2^64. Found by `stqc fuzz`.
int* f() {
    int x = 7;
    int* p = &x;
    int* q = p - (0 - 9223372036854775807 - 1);
    return q;
}
