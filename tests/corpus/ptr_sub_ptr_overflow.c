// Regression: the difference of two addresses can exceed i64 when
// computed as `p as i64 - q as i64`; it used to overflow (a debug-build
// panic) and is now taken mod 2^64 first. Found by `stqc fuzz`.
int f() {
    int x = 1;
    int* a = &x;
    int* b = a + 9223372036854775807;
    int d = a - b;
    return d;
}
