// Regression: `i64::MIN / -1` has an unrepresentable quotient and used
// to panic the host in debug builds; it is now an integer overflow
// runtime error. The denominator is written `(-1)` so the `nonzero`
// restrict on `/` is discharged statically (negation of `pos` derives
// `neg`, hence `nonzero`) and the program stays clean. Found by
// `stqc fuzz`.
int f() {
    int m = (0 - 9223372036854775807) - 1;
    int r = m / (-1);
    return r;
}
