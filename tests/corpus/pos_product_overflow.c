// Regression: `pos * pos` is statically `pos`, but the wrapped 64-bit
// product can be negative, dynamically falsifying the proven invariant
// (the soundness oracle observed `pos` holding -5356883322687455232).
// Signed arithmetic is now checked: execution stops with an integer
// overflow runtime error the moment a result leaves the mathematical
// integer model the prover works in. Found by `stqc fuzz`.
int pos f(int pos a) {
    int pos x = a * a;
    int i = 0;
    while (i < 4) {
        x = (x * x) * x;
        i = i + 1;
    }
    return x;
}
