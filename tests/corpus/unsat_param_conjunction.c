// Regression (harness, not pipeline): an annotation-flip mutation can
// leave an entry parameter demanding `int pos neg` — an unsatisfiable
// conjunction no statically clean call site could ever produce. The
// fuzzer used to fabricate an argument from the first qualifier alone
// and report a bogus soundness divergence; entries like this now skip
// the dynamic oracles because the soundness claim is vacuous for them.
int f(int pos neg a) {
    return 1;
}
