//! Integration tests asserting every quantitative claim of the paper's
//! evaluation, end to end across all crates.

use stq_core::{Session, Verdict};
use stq_corpus::tables::{table1, table2, unique_experiment};

#[test]
fn table1_matches_the_paper_exactly() {
    let row = table1();
    assert_eq!(row.lines, 2287);
    assert_eq!(row.dereferences, 1072);
    assert_eq!(row.annotations, 114);
    assert_eq!(row.casts, 59);
    assert_eq!(row.errors, 0);
}

#[test]
fn table2_matches_the_paper_exactly() {
    let rows = table2();
    let cells: Vec<_> = rows
        .iter()
        .map(|r| (r.lines, r.printf_calls, r.annotations, r.casts, r.errors))
        .collect();
    assert_eq!(
        cells,
        vec![(750, 134, 2, 0, 1), (293, 23, 1, 0, 0), (228, 21, 0, 0, 0)]
    );
}

#[test]
fn uniqueness_experiment_matches_section_6_2() {
    let (row, references) = unique_experiment();
    assert_eq!(references, 49);
    assert_eq!(row.errors, 0);
    assert_eq!(row.casts, 1);
}

#[test]
fn all_library_qualifiers_prove_sound_within_the_papers_bounds() {
    let session = Session::with_builtins();
    for report in session.prove_all_sound() {
        assert_ne!(report.verdict, Verdict::Unsound, "{report}");
        let def = session
            .registry()
            .get(report.qualifier)
            .expect("registered");
        let bound = match def.kind {
            stq_qualspec::QualKind::Value => 1.0,
            stq_qualspec::QualKind::Ref => 30.0,
        };
        assert!(
            report.duration.as_secs_f64() < bound,
            "{} took {:?}, over the paper's bound",
            report.qualifier,
            report.duration
        );
    }
}

#[test]
fn qualifier_checking_is_under_one_second() {
    // §6: "the extra compile time for performing qualifier checking in
    // CIL is under one second" — for every experiment program.
    let row = table1();
    assert!(row.check_time.as_secs_f64() < 1.0);
    for row in table2() {
        assert!(row.check_time.as_secs_f64() < 1.0, "{}", row.program);
    }
}

#[test]
fn the_erroneous_subtraction_rule_is_rejected_with_its_clause_named() {
    let mut session = Session::new();
    session
        .define_qualifiers(
            "value qualifier pos(int Expr E)
                case E of
                    decl int Const C: C, where C > 0
                  | decl int Expr E1, E2: E1 - E2, where pos(E1) && pos(E2)
                invariant value(E) > 0",
        )
        .unwrap();
    let report = session.prove_sound("pos").unwrap();
    assert_eq!(report.verdict, Verdict::Unsound);
    let failures: Vec<_> = report.failures().collect();
    assert_eq!(failures.len(), 1);
    assert!(failures[0].description.contains("E1 - E2"));
    assert!(!failures[0].countermodel.is_empty());
}

#[test]
fn unique_without_disallow_fails_preservation() {
    let mut session = Session::new();
    session
        .define_qualifiers(
            "ref qualifier unique(T* LValue L)
                assign L NULL | new
                invariant value(L) == NULL ||
                    (isHeapLoc(value(L)) &&
                     forall T** P: *P == value(L) => P == location(L))",
        )
        .unwrap();
    let report = session.prove_sound("unique").unwrap();
    assert_eq!(report.verdict, Verdict::Unsound);
    assert!(report
        .failures()
        .any(|o| o.description.contains("preservation")));
}

#[test]
fn figure_definitions_parse_verbatim_and_are_well_formed() {
    let session = Session::with_builtins();
    assert!(!session.check_well_formed().has_errors());
    assert_eq!(session.registry().len(), 8);
}
