//! Documentation consistency checks: the contributor docs must not go
//! stale as the workspace grows.
//!
//! * every workspace crate (including the vendored stand-ins and the
//!   root package) is listed in `docs/architecture.md`;
//! * every relative link in `docs/*.md` and `README.md` points at a
//!   file that exists;
//! * every `stqc` subcommand and `--flag` mentioned anywhere in the
//!   docs exists in `stqc --help` — documentation for a CLI surface
//!   that was renamed or removed fails the suite.

use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The `name = "..."` of a crate's Cargo.toml `[package]` section.
fn package_name(manifest: &Path) -> String {
    let text = fs::read_to_string(manifest)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", manifest.display()));
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=').unwrap_or(rest).trim();
                return rest.trim_matches('"').to_owned();
            }
        }
    }
    panic!("no package name in {}", manifest.display());
}

/// Directory-relative path + package name of every workspace member.
fn workspace_members() -> Vec<(String, String)> {
    let root = repo_root();
    let mut members = vec![("stq-suite".to_owned(), package_name(&root.join("Cargo.toml")))];
    for group in ["crates", "vendor"] {
        let dir = root.join(group);
        let mut entries: Vec<_> = fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        entries.sort();
        for path in entries {
            let rel = format!(
                "{group}/{}",
                path.file_name().expect("crate dir name").to_string_lossy()
            );
            members.push((rel, package_name(&path.join("Cargo.toml"))));
        }
    }
    members
}

#[test]
fn every_workspace_crate_is_listed_in_architecture_md() {
    let page = fs::read_to_string(repo_root().join("docs/architecture.md"))
        .expect("docs/architecture.md exists");
    for (dir, package) in workspace_members() {
        assert!(
            page.contains(&package),
            "docs/architecture.md does not mention workspace crate `{package}` ({dir})"
        );
    }
}

/// Extracts `](target)` link targets from markdown.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = markdown.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = markdown[i + 2..].find(')') {
                out.push(markdown[i + 2..i + 2 + end].to_owned());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[test]
fn relative_links_in_docs_resolve() {
    let root = repo_root();
    let mut pages: Vec<PathBuf> = fs::read_dir(root.join("docs"))
        .expect("docs/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    pages.push(root.join("README.md"));
    pages.sort();
    assert!(pages.len() >= 5, "expected docs pages, found {pages:?}");

    let mut broken = Vec::new();
    for page in &pages {
        let text = fs::read_to_string(page).expect("page is readable");
        let base = page.parent().expect("page has a directory");
        for target in link_targets(&text) {
            // External links, mailto, and intra-page anchors are out of
            // scope; so are rustdoc-style `[`Name`]` shorthands (those
            // never produce a `](...)` pair).
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            let path_part = target.split('#').next().expect("split is nonempty");
            if path_part.is_empty() {
                continue;
            }
            if !base.join(path_part).exists() {
                broken.push(format!("{}: {target}", page.display()));
            }
        }
    }
    assert!(broken.is_empty(), "broken relative links:\n{}", broken.join("\n"));
}

/// All `--flag`-shaped tokens in `text`, trimmed of trailing
/// punctuation.
fn flag_tokens(text: &str) -> Vec<String> {
    text.split_whitespace()
        .filter_map(|tok| {
            let tok = tok.trim_matches(|c: char| !(c.is_ascii_alphanumeric() || c == '-'));
            let rest = tok.strip_prefix("--")?;
            let mut chars = rest.chars();
            let first = chars.next()?;
            (first.is_ascii_lowercase() && chars.all(|c| c.is_ascii_lowercase() || c == '-'))
                .then(|| tok.to_owned())
        })
        .collect()
}

/// The subcommand names in `text`: every lowercase token directly
/// following the word `stqc` on the same line (`stqc --flag` spans name
/// a flag, not a subcommand, and are skipped).
fn subcommand_tokens(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let words: Vec<&str> = line.split_whitespace().collect();
        for w in words.windows(2) {
            if w[0] != "stqc" && !w[0].ends_with("/stqc") {
                continue;
            }
            if w[1].starts_with('-') {
                continue;
            }
            let tok = w[1].trim_matches(|c: char| !(c.is_ascii_alphanumeric() || c == '-'));
            if !tok.is_empty() && tok.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
                out.push(tok.to_owned());
            }
        }
    }
    out
}

/// The parts of a markdown page that talk about the CLI: inline code
/// spans and fenced code blocks (odd segments when splitting on
/// backticks) — prose mentioning a flag is always backticked in this
/// repo. Lines about other tools (cargo, clippy) are skipped.
fn cli_code_text(markdown: &str) -> String {
    let mut out = String::new();
    for (i, segment) in markdown.split('`').enumerate() {
        if i % 2 == 0 {
            continue;
        }
        let relevant = segment
            .lines()
            .filter(|l| !["cargo ", "rustc ", "clippy", "#!"].iter().any(|t| l.contains(t)));
        for line in relevant {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn documented_cli_surface_exists_in_help() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_stqc"))
        .arg("--help")
        .output()
        .expect("stqc --help runs");
    assert!(out.status.success());
    let help = String::from_utf8_lossy(&out.stdout).into_owned();
    let known_flags = flag_tokens(&help);
    let known_subcommands = subcommand_tokens(&help);
    assert!(
        known_subcommands.iter().any(|s| s == "prove") && known_flags.iter().any(|f| f == "--json"),
        "help output looks truncated:\n{help}"
    );

    let root = repo_root();
    let mut pages: Vec<PathBuf> = fs::read_dir(root.join("docs"))
        .expect("docs/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    pages.push(root.join("README.md"));
    pages.sort();

    let mut stale = Vec::new();
    for page in &pages {
        let text = fs::read_to_string(page).expect("page is readable");
        let cli_text = cli_code_text(&text);
        for flag in flag_tokens(&cli_text) {
            if !known_flags.contains(&flag) {
                stale.push(format!("{}: flag {flag}", page.display()));
            }
        }
        for sub in subcommand_tokens(&cli_text) {
            if !known_subcommands.contains(&sub) {
                stale.push(format!("{}: subcommand `stqc {sub}`", page.display()));
            }
        }
    }
    stale.sort();
    stale.dedup();
    assert!(
        stale.is_empty(),
        "docs mention CLI surface missing from `stqc --help`:\n{}",
        stale.join("\n")
    );
}
