//! Documentation consistency checks: the contributor docs must not go
//! stale as the workspace grows.
//!
//! * every workspace crate (including the vendored stand-ins and the
//!   root package) is listed in `docs/architecture.md`;
//! * every relative link in `docs/*.md` and `README.md` points at a
//!   file that exists.

use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The `name = "..."` of a crate's Cargo.toml `[package]` section.
fn package_name(manifest: &Path) -> String {
    let text = fs::read_to_string(manifest)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", manifest.display()));
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=').unwrap_or(rest).trim();
                return rest.trim_matches('"').to_owned();
            }
        }
    }
    panic!("no package name in {}", manifest.display());
}

/// Directory-relative path + package name of every workspace member.
fn workspace_members() -> Vec<(String, String)> {
    let root = repo_root();
    let mut members = vec![("stq-suite".to_owned(), package_name(&root.join("Cargo.toml")))];
    for group in ["crates", "vendor"] {
        let dir = root.join(group);
        let mut entries: Vec<_> = fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        entries.sort();
        for path in entries {
            let rel = format!(
                "{group}/{}",
                path.file_name().expect("crate dir name").to_string_lossy()
            );
            members.push((rel, package_name(&path.join("Cargo.toml"))));
        }
    }
    members
}

#[test]
fn every_workspace_crate_is_listed_in_architecture_md() {
    let page = fs::read_to_string(repo_root().join("docs/architecture.md"))
        .expect("docs/architecture.md exists");
    for (dir, package) in workspace_members() {
        assert!(
            page.contains(&package),
            "docs/architecture.md does not mention workspace crate `{package}` ({dir})"
        );
    }
}

/// Extracts `](target)` link targets from markdown.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = markdown.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = markdown[i + 2..].find(')') {
                out.push(markdown[i + 2..i + 2 + end].to_owned());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[test]
fn relative_links_in_docs_resolve() {
    let root = repo_root();
    let mut pages: Vec<PathBuf> = fs::read_dir(root.join("docs"))
        .expect("docs/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    pages.push(root.join("README.md"));
    pages.sort();
    assert!(pages.len() >= 5, "expected docs pages, found {pages:?}");

    let mut broken = Vec::new();
    for page in &pages {
        let text = fs::read_to_string(page).expect("page is readable");
        let base = page.parent().expect("page has a directory");
        for target in link_targets(&text) {
            // External links, mailto, and intra-page anchors are out of
            // scope; so are rustdoc-style `[`Name`]` shorthands (those
            // never produce a `](...)` pair).
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            let path_part = target.split('#').next().expect("split is nonempty");
            if path_part.is_empty() {
                continue;
            }
            if !base.join(path_part).exists() {
                broken.push(format!("{}: {target}", page.display()));
            }
        }
    }
    assert!(broken.is_empty(), "broken relative links:\n{}", broken.join("\n"));
}
