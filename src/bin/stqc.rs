//! `stqc` — the semantic-type-qualifiers command-line tool.
//!
//! ```text
//! stqc prove [--quals FILE] [--stats] [--json] [BUDGET..] [NAME]
//!                                        prove qualifier soundness
//! stqc check [--quals FILE] [--flow-sensitive] [--stats] [--json] FILE.c
//!                                        qualifier-check a program
//! stqc run [--entry NAME] FILE.c [INT..] instrument and execute
//! stqc infer --qual NAME FILE.c          infer annotations
//! stqc tables [--stats] [--json]         regenerate Tables 1 and 2
//! stqc show [--quals FILE] [NAME]        print qualifier definitions
//! stqc fuzz [--seed N] [--count N] [--jobs N] [--max-depth N] [--json]
//!           [--deadline-ms N] [--replay DIR]
//!                                        differential fuzzing
//! ```
//!
//! Budget flags (`prove` only) bound the prover so a pathological
//! obligation terminates with a `ResourceOut` verdict instead of
//! diverging: `--max-rounds N`, `--max-instantiations N`,
//! `--max-decisions N`, `--max-clauses N`, `--timeout-ms N`.
//!
//! Performance flags (see `docs/performance.md`):
//!
//! * `--jobs N` proves obligations on up to `N` worker threads
//!   (`0` or omitted = available parallelism; verdicts and report order
//!   are independent of `N`). When a fault-injection flag is present and
//!   `--jobs` is not, the run is single-threaded so the faulted solver
//!   entry is deterministic.
//! * `--cache-dir DIR` keeps a fingerprinted proof cache in `DIR`:
//!   unchanged obligations (same rules, invariant, budget, retry ladder,
//!   and prover version) are replayed from the cache instead of
//!   re-proved.
//!
//! Robustness flags (see `docs/robustness.md`):
//!
//! * `--retry N` re-runs `ResourceOut` obligations up to `N` attempts
//!   under geometrically escalated budgets (`--retry-factor F`,
//!   default 2);
//! * `--deadline-ms N` bounds the *whole run* (`prove` and `fuzz`):
//!   when the deadline lapses, in-flight work stops at the next
//!   safepoint, unreached obligations/cases are marked skipped, and the
//!   partial report is emitted with exit code 5. `--timeout-ms` by
//!   contrast is a per-obligation prover budget (and part of the proof-
//!   cache key; the run deadline is not, so an interrupted run resumes
//!   from the same cache).
//! * Ctrl-C (SIGINT) requests the same cooperative stop: conclusive
//!   verdicts reached so far are reported, the proof cache is persisted,
//!   and the exit code is 5. A second Ctrl-C exits immediately (130).
//! * `--keep-going` continues past crashed qualifiers (`prove`) and
//!   past syntax errors (`check`, via the error-resilient parser);
//! * `--fault-panic-at N` / `--fault-resource-out-at N` /
//!   `--fault-theory-at N` inject a deterministic fault at the `N`th
//!   solver entry — testing hooks for the fault-injection harness.
//!
//! Exit codes are structured: 0 success, 1 unsound/refuted (or
//! qualifier errors from `check`), 2 usage errors, 3 input errors
//! (unreadable or unparseable files), 4 a proof attempt crashed or ran
//! out of budget even after retries, 5 the run was interrupted
//! (deadline or Ctrl-C) and the report is partial.
//!
//! `--stats` prints prover/checker telemetry; `--json` switches the
//! report to a machine-readable JSON document on stdout (the schema is
//! documented in `docs/telemetry.md`). Qualifier definitions from
//! `--quals` are added on top of the paper's builtin library.

use std::fs;
use std::process::ExitCode;
use std::time::Duration;
use stq_core::{
    fault, Budget, CancelToken, CheckOptions, CheckStats, FaultKind, FaultPlan, PersistOutcome,
    ProofCache, ProverStats, QualReport, Resource, RetryPolicy, Session, Value, Verdict,
};

const USAGE: &str = "usage: stqc <prove|check|run|infer|tables|show|fuzz> [options]\n\
                     see the README and docs/telemetry.md for details";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("prove") => prove(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("infer") => infer(&args[1..]),
        Some("tables") => tables(&args[1..]),
        Some("show") => show(&args[1..]),
        Some("fuzz") => fuzz(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("stqc: unknown subcommand `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(EXIT_USAGE)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

/// Exit code for unsound qualifiers, refuted obligations, and
/// qualifier errors found by `check`.
const EXIT_UNSOUND: u8 = 1;
/// Exit code for command-line usage errors.
const EXIT_USAGE: u8 = 2;
/// Exit code for input errors: unreadable or unparseable files,
/// unknown qualifier names.
const EXIT_INPUT: u8 = 3;
/// Exit code when a proof attempt crashed (panic contained by the
/// isolation layer) or ran out of budget even after the retry ladder.
const EXIT_CRASH: u8 = 4;
/// Exit code when the run was interrupted — `--deadline-ms` lapsed or a
/// SIGINT arrived — and the emitted report is partial: conclusive
/// verdicts are trustworthy, unreached work is marked skipped, and
/// anything conclusive was persisted to the cache for resumption.
const EXIT_INTERRUPTED: u8 = 5;

/// Cooperative SIGINT handling: the first Ctrl-C cancels the run's
/// [`CancelToken`] (workers drain at the next safepoint, the partial
/// report and cache flush still happen); a second Ctrl-C exits
/// immediately with the conventional 128+SIGINT code.
#[cfg(unix)]
mod interrupt {
    use std::sync::OnceLock;
    use stq_core::CancelToken;

    static TOKEN: OnceLock<CancelToken> = OnceLock::new();

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(code: i32) -> !;
    }

    extern "C" fn on_sigint(_sig: i32) {
        // Only async-signal-safe operations here: atomic loads/stores
        // and `_exit`.
        match TOKEN.get() {
            Some(token) if !token.is_cancelled() => token.cancel(),
            _ => unsafe { _exit(130) },
        }
    }

    /// Registers `token` as the one SIGINT cancels and installs the
    /// handler.
    pub fn install(token: &CancelToken) {
        let _ = TOKEN.set(token.clone());
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod interrupt {
    use stq_core::CancelToken;

    /// No signal wiring off unix; `--deadline-ms` still works.
    pub fn install(_token: &CancelToken) {}
}

/// A diagnosed failure paired with the exit code class it belongs to.
struct CliError {
    code: u8,
    msg: String,
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError {
        code: EXIT_USAGE,
        msg: msg.into(),
    }
}

fn input_err(msg: impl Into<String>) -> CliError {
    CliError {
        code: EXIT_INPUT,
        msg: msg.into(),
    }
}

fn fail(e: CliError) -> ExitCode {
    eprintln!("stqc: {}", e.msg);
    ExitCode::from(e.code)
}

/// Everything the option scan produces: the session (builtins plus any
/// `--quals` definitions), positional arguments, bare `--flag`s, the
/// prover budget, and the retry ladder.
struct Cli {
    session: Session,
    rest: Vec<String>,
    flags: Vec<String>,
    budget: Budget,
    retry: RetryPolicy,
    jobs: usize,
    cache_dir: Option<String>,
    deadline_ms: Option<u64>,
}

/// Builds a session from builtins plus any `--quals FILE` definitions
/// and scans the common option set. Fault-injection flags install their
/// [`FaultPlan`] for this thread as a side effect.
fn session_from(args: &[String]) -> Result<Cli, CliError> {
    let keep_going = args.iter().any(|a| a == "--keep-going");
    let mut session = Session::with_builtins();
    let mut rest = Vec::new();
    let mut flags = Vec::new();
    let mut budget = Budget::default();
    let mut retry = RetryPolicy::none();
    let mut plan = FaultPlan::new();
    let mut jobs: Option<u64> = None;
    let mut cache_dir: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cache-dir" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--cache-dir needs a directory"))?;
                cache_dir = Some(path.clone());
                i += 2;
            }
            "--quals" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--quals needs a file"))?;
                let src = fs::read_to_string(path)
                    .map_err(|e| input_err(format!("cannot read {path}: {e}")))?;
                if keep_going {
                    let (_, errors) = session.define_qualifiers_resilient(&src);
                    for e in &errors {
                        eprintln!("stqc: {path}: {e}");
                    }
                } else {
                    session
                        .define_qualifiers(&src)
                        .map_err(|e| input_err(format!("{path}: {e}")))?;
                }
                i += 2;
            }
            flag @ ("--max-rounds" | "--max-instantiations" | "--max-decisions"
            | "--max-clauses" | "--timeout-ms" | "--deadline-ms" | "--retry" | "--retry-factor"
            | "--jobs" | "--fault-panic-at" | "--fault-resource-out-at" | "--fault-theory-at") => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err(format!("{flag} needs a number")))?;
                let n: u64 = value
                    .parse()
                    .map_err(|_| usage_err(format!("{flag}: `{value}` is not a number")))?;
                match flag {
                    "--max-rounds" => budget.max_rounds = n as usize,
                    "--max-instantiations" => budget.max_instantiations = n as usize,
                    "--max-clauses" => budget.max_clauses = n as usize,
                    "--max-decisions" => budget.max_decisions = n,
                    "--timeout-ms" => budget.timeout = Some(Duration::from_millis(n)),
                    "--deadline-ms" => deadline_ms = Some(n),
                    "--retry" => retry.max_attempts = n.min(u64::from(u32::MAX)) as u32,
                    "--retry-factor" => retry.factor = n.min(u64::from(u32::MAX)) as u32,
                    "--jobs" => jobs = Some(n),
                    "--fault-panic-at" => plan = plan.inject(n, FaultKind::Panic),
                    "--fault-resource-out-at" => plan = plan.inject(n, FaultKind::ResourceOut),
                    _ => plan = plan.inject(n, FaultKind::TheoryError),
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                flags.push(flag.to_owned());
                i += 1;
            }
            other => {
                rest.push(other.to_owned());
                i += 1;
            }
        }
    }
    let fault_injected = !plan.is_empty();
    if fault_injected {
        fault::install(plan);
    }
    // `--jobs 0` (or no flag) means "auto": the machine's available
    // parallelism — except under fault injection, where an unforced run
    // stays single-threaded so the faulted solver entry is the Nth
    // obligation deterministically, not whichever a worker reaches.
    let jobs = match jobs {
        Some(n) if n >= 1 => n.min(256) as usize,
        Some(_) => stq_util::pool::default_jobs(),
        None if fault_injected => 1,
        None => stq_util::pool::default_jobs(),
    };
    let wf = session.check_well_formed();
    if wf.has_errors() {
        return Err(input_err(format!("ill-formed qualifier definitions:\n{wf}")));
    }
    Ok(Cli {
        session,
        rest,
        flags,
        budget,
        retry,
        jobs,
        cache_dir,
        deadline_ms,
    })
}

/// The run's cancellation token: carries the `--deadline-ms` deadline
/// when one was given, and is wired to SIGINT either way.
fn run_token(deadline_ms: Option<u64>) -> CancelToken {
    let token = match deadline_ms {
        Some(ms) => CancelToken::deadline_in(Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    interrupt::install(&token);
    token
}

fn has_flag(flags: &[String], name: &str) -> bool {
    flags.iter().any(|f| f == name)
}

// ----- hand-rolled JSON (schema in docs/telemetry.md) -----

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1000.0)
}

fn resource_slug(r: Resource) -> &'static str {
    match r {
        Resource::Rounds => "rounds",
        Resource::Instantiations => "instantiations",
        Resource::Decisions => "decisions",
        Resource::Clauses => "clauses",
        Resource::Time => "time",
        Resource::Cancelled => "cancelled",
        Resource::Injected => "injected",
    }
}

fn verdict_slug(v: Verdict) -> &'static str {
    match v {
        Verdict::Sound => "sound",
        Verdict::Unsound => "unsound",
        Verdict::NoInvariant => "no-invariant",
        Verdict::ResourceOut => "resource-out",
        Verdict::Crashed => "crashed",
        Verdict::Interrupted => "interrupted",
    }
}

fn retry_json(r: RetryPolicy) -> String {
    format!(
        "{{\"max_attempts\":{},\"factor\":{}}}",
        r.attempt_cap(),
        r.factor
    )
}

fn budget_json(b: &Budget) -> String {
    format!(
        "{{\"max_rounds\":{},\"max_instantiations\":{},\"max_clauses\":{},\
         \"max_decisions\":{},\"timeout_ms\":{}}}",
        b.max_rounds,
        b.max_instantiations,
        b.max_clauses,
        b.max_decisions,
        b.timeout
            .map_or("null".to_owned(), |t| json_ms(t).to_string()),
    )
}

fn prover_stats_json(s: &ProverStats) -> String {
    let triggers: Vec<String> = s
        .instantiations_by_trigger
        .iter()
        .map(|(t, n)| format!("\"{}\":{n}", json_escape(t)))
        .collect();
    format!(
        "{{\"rounds\":{},\"instantiations\":{},\"instantiations_by_trigger\":{{{}}},\
         \"ematch_candidates\":{},\"decisions\":{},\"propagations\":{},\"conflicts\":{},\
         \"theory_checks\":{},\"merges\":{},\"fm_eliminations\":{},\"clauses\":{},\
         \"max_clauses\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"cache_invalidations\":{},\"wall_ms\":{}}}",
        s.rounds,
        s.instantiations,
        triggers.join(","),
        s.ematch_candidates,
        s.decisions,
        s.propagations,
        s.conflicts,
        s.theory_checks,
        s.merges,
        s.fm_eliminations,
        s.clauses,
        s.max_clauses,
        s.cache_hits,
        s.cache_misses,
        s.cache_invalidations,
        json_ms(s.wall),
    )
}

fn check_stats_json(s: &CheckStats) -> String {
    format!(
        "{{\"dereferences\":{},\"annotations\":{},\"casts\":{},\"qualifier_errors\":{},\
         \"printf_calls\":{},\"restrict_checks\":{},\"match_attempts\":{},\
         \"exprs_visited\":{},\"case_applications\":{},\"memo_hits\":{},\
         \"memo_misses\":{},\"casts_instrumented\":{}}}",
        s.dereferences,
        s.annotations,
        s.casts,
        s.qualifier_errors,
        s.printf_calls,
        s.restrict_checks,
        s.match_attempts,
        s.exprs_visited,
        s.case_applications,
        s.memo_hits,
        s.memo_misses,
        s.casts_instrumented,
    )
}

fn qual_report_json(r: &QualReport) -> String {
    let obligations: Vec<String> = r
        .obligations
        .iter()
        .map(|o| {
            let countermodel: Vec<String> = o
                .countermodel
                .iter()
                .map(|l| format!("\"{}\"", json_escape(l)))
                .collect();
            format!(
                "{{\"description\":\"{}\",\"proved\":{},\"skipped\":{},\"resource\":{},\
                 \"crashed\":{},\"attempts\":{},\
                 \"countermodel\":[{}],\"wall_ms\":{},\"stats\":{}}}",
                json_escape(&o.description),
                o.proved,
                o.skipped,
                o.resource
                    .map_or("null".to_owned(), |res| format!(
                        "\"{}\"",
                        resource_slug(res)
                    )),
                o.crashed
                    .as_deref()
                    .map_or("null".to_owned(), |m| format!("\"{}\"", json_escape(m))),
                o.attempts,
                countermodel.join(","),
                json_ms(o.duration),
                prover_stats_json(&o.stats),
            )
        })
        .collect();
    format!(
        "{{\"name\":\"{}\",\"verdict\":\"{}\",\"wall_ms\":{},\"obligations\":[{}],\"totals\":{}}}",
        json_escape(&r.qualifier.to_string()),
        verdict_slug(r.verdict),
        json_ms(r.duration),
        obligations.join(","),
        prover_stats_json(&r.totals()),
    )
}

// ----- subcommands -----

fn prove(args: &[String]) -> ExitCode {
    let Cli {
        session,
        rest,
        flags,
        budget,
        retry,
        jobs,
        cache_dir,
        deadline_ms,
    } = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    let keep_going = has_flag(&flags, "--keep-going");
    let cancel = run_token(deadline_ms);
    let cache = match &cache_dir {
        Some(dir) => match ProofCache::at_dir(dir) {
            Ok(c) => Some(c),
            Err(e) => return fail(input_err(format!("cannot open cache dir {dir}: {e}"))),
        },
        None => None,
    };
    let mut reports: Vec<QualReport> = Vec::new();
    match rest.first() {
        Some(name) => {
            match session.prove_named_cancellable(
                &[name.as_str()],
                budget,
                retry,
                jobs,
                cache.as_ref(),
                &cancel,
            ) {
                Ok(report) => reports.extend(report.reports),
                Err(e) => return fail(input_err(e)),
            }
        }
        None if keep_going || jobs > 1 => {
            // The pipeline proves everything; without --keep-going the
            // report is truncated after the first crashed qualifier so
            // the output contract matches the sequential early stop.
            let report =
                session.prove_all_sound_cancellable(budget, retry, jobs, cache.as_ref(), &cancel);
            reports = report.reports;
            if !keep_going {
                if let Some(pos) = reports.iter().position(|r| r.verdict == Verdict::Crashed) {
                    eprintln!(
                        "stqc: qualifier `{}` crashed; stopping \
                         (pass --keep-going to check the rest)",
                        reports[pos].qualifier
                    );
                    reports.truncate(pos + 1);
                }
            }
        }
        None => {
            // Sequential without --keep-going: stop at the first crash
            // before spending budget on the remaining qualifiers. A
            // fired token doesn't break the loop: the remaining
            // qualifiers come back as skipped placeholders, so the
            // partial report still names everything it didn't reach.
            let names: Vec<String> = session
                .registry()
                .iter()
                .map(|d| d.name.to_string())
                .collect();
            for name in &names {
                let Ok(report) = session.prove_named_cancellable(
                    &[name.as_str()],
                    budget,
                    retry,
                    1,
                    cache.as_ref(),
                    &cancel,
                ) else {
                    continue;
                };
                let Some(r) = report.reports.into_iter().next() else {
                    continue;
                };
                let crashed = r.verdict == Verdict::Crashed;
                reports.push(r);
                if crashed {
                    eprintln!(
                        "stqc: qualifier `{name}` crashed; stopping \
                         (pass --keep-going to check the rest)"
                    );
                    break;
                }
            }
        }
    }
    // Persist even (especially) on an interrupted run: conclusive
    // verdicts reached before the stop are what lets a re-run with the
    // same --cache-dir resume instead of starting over.
    let mut persisted: Option<PersistOutcome> = None;
    if let Some(cache) = &cache {
        match cache.persist() {
            Ok(outcome) => persisted = Some(outcome),
            Err(e) => eprintln!("stqc: warning: could not persist the proof cache: {e}"),
        }
    }
    let mut totals = ProverStats::default();
    for r in &reports {
        totals.absorb(&r.totals());
    }
    if let Some(cache) = &cache {
        totals.cache_invalidations += cache.invalidations();
    }
    let all_results = || reports.iter().flat_map(|r| &r.obligations);
    let skipped = all_results().filter(|o| o.skipped).count();
    let cancelled_mid_search = all_results()
        .filter(|o| o.resource == Some(Resource::Cancelled))
        .count();
    let interrupted = skipped > 0 || cancelled_mid_search > 0;
    let timed_out = all_results()
        .filter(|o| o.resource == Some(Resource::Time))
        .count();
    let step_out = all_results()
        .filter(|o| {
            matches!(
                o.resource,
                Some(r) if r != Resource::Time && r != Resource::Cancelled
            )
        })
        .count();
    if has_flag(&flags, "--json") {
        let quals: Vec<String> = reports.iter().map(qual_report_json).collect();
        let cache_json = match &cache {
            Some(c) => {
                let (persist, persisted_entries) = match persisted {
                    Some(PersistOutcome::Skipped) => ("skipped", 0),
                    Some(PersistOutcome::Appended(n)) => ("appended", n),
                    Some(PersistOutcome::Compacted(n)) => ("compacted", n),
                    None => ("failed", 0),
                };
                format!(
                    "{{\"dir\":\"{}\",\"entries\":{},\"hits\":{},\"misses\":{},\
                     \"invalidations\":{},\"persist\":\"{persist}\",\
                     \"persisted_entries\":{persisted_entries},\"persist_skips\":{}}}",
                    json_escape(&cache_dir.unwrap_or_default()),
                    c.len(),
                    c.hits(),
                    c.misses(),
                    c.invalidations(),
                    c.persist_skips(),
                )
            }
            None => "null".to_owned(),
        };
        println!(
            "{{\"command\":\"prove\",\"budget\":{},\"retry\":{},\"jobs\":{jobs},\
             \"deadline_ms\":{},\"interrupted\":{interrupted},\"skipped\":{skipped},\
             \"timed_out\":{timed_out},\"step_out\":{step_out},\
             \"cache\":{cache_json},\"qualifiers\":[{}],\"totals\":{}}}",
            budget_json(&budget),
            retry_json(retry),
            deadline_ms.map_or("null".to_owned(), |ms| ms.to_string()),
            quals.join(","),
            prover_stats_json(&totals),
        );
    } else {
        for r in &reports {
            print!("{r}");
            if has_flag(&flags, "--stats") {
                println!("  stats: {}", r.totals());
            }
        }
        if interrupted {
            eprintln!(
                "stqc: run interrupted: partial report ({skipped} obligation(s) skipped, \
                 {cancelled_mid_search} stopped mid-search){}",
                if cache.is_some() {
                    "; conclusive verdicts were persisted — re-run with the same \
                     --cache-dir to resume"
                } else {
                    ""
                }
            );
        }
        if has_flag(&flags, "--stats") {
            println!("totals: {totals} (jobs={jobs})");
            println!(
                "outcomes: {timed_out} timed out (wall clock), {step_out} out of steps, \
                 {skipped} skipped"
            );
            if let Some(c) = &cache {
                println!(
                    "cache: {} hit(s), {} miss(es), {} invalidation(s), {} entrie(s), \
                     {} persist skip(s)",
                    c.hits(),
                    c.misses(),
                    c.invalidations(),
                    c.len(),
                    c.persist_skips(),
                );
            }
        }
    }
    // Precedence: a definite refutation always wins; an interruption
    // outranks crash/resource-out because those may simply be artifacts
    // of the truncated run.
    if reports.iter().any(|r| r.verdict == Verdict::Unsound) {
        ExitCode::from(EXIT_UNSOUND)
    } else if interrupted {
        ExitCode::from(EXIT_INTERRUPTED)
    } else if reports
        .iter()
        .any(|r| matches!(r.verdict, Verdict::Crashed | Verdict::ResourceOut))
    {
        ExitCode::from(EXIT_CRASH)
    } else {
        ExitCode::SUCCESS
    }
}

fn check(args: &[String]) -> ExitCode {
    let Cli {
        session,
        rest,
        flags,
        ..
    } = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    let Some(path) = rest.first() else {
        return fail(usage_err("check needs a source file"));
    };
    let source = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return fail(input_err(format!("cannot read {path}: {e}"))),
    };
    let keep_going = has_flag(&flags, "--keep-going");
    let (program, syntax_errors) = if keep_going {
        let (program, errors) = session.parse_resilient(&source);
        let rendered: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        (program, rendered)
    } else {
        match session.parse(&source) {
            Ok(p) => (p, Vec::new()),
            Err(e) => return fail(input_err(format!("{path}: {e}"))),
        }
    };
    for e in &syntax_errors {
        eprintln!("{path}: {e}");
    }
    let options = CheckOptions {
        flow_sensitive: has_flag(&flags, "--flow-sensitive"),
    };
    let result = session.check_with(&program, options);
    if has_flag(&flags, "--json") {
        let diags: Vec<String> = result
            .diags
            .iter()
            .map(|d| format!("\"{}\"", json_escape(&d.render(&source))))
            .collect();
        let syntax: Vec<String> = syntax_errors
            .iter()
            .map(|e| format!("\"{}\"", json_escape(e)))
            .collect();
        println!(
            "{{\"command\":\"check\",\"file\":\"{}\",\"clean\":{},\"syntax_errors\":[{}],\
             \"diagnostics\":[{}],\"stats\":{}}}",
            json_escape(path),
            result.is_clean() && syntax_errors.is_empty(),
            syntax.join(","),
            diags.join(","),
            check_stats_json(&result.stats),
        );
    } else {
        for d in result.diags.iter() {
            eprintln!("{path}:{}", d.render(&source));
        }
        println!(
            "{path}: {} dereference(s), {} annotation(s), {} cast(s), {} qualifier error(s)",
            result.stats.dereferences,
            result.stats.annotations,
            result.stats.casts,
            result.stats.qualifier_errors
        );
        if has_flag(&flags, "--stats") {
            println!(
                "{path}: {} expr(s) visited, {} case application(s), \
                 {} memo hit(s)/{} miss(es), {} restrict check(s), \
                 {} instrumented cast(s)",
                result.stats.exprs_visited,
                result.stats.case_applications,
                result.stats.memo_hits,
                result.stats.memo_misses,
                result.stats.restrict_checks,
                result.stats.casts_instrumented
            );
        }
    }
    if !syntax_errors.is_empty() {
        ExitCode::from(EXIT_INPUT)
    } else if result.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_UNSOUND)
    }
}

fn run(args: &[String]) -> ExitCode {
    let Cli {
        session, mut rest, ..
    } = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    // `--entry NAME`: session_from left NAME in rest; pull it back out.
    let mut entry_name = "main".to_owned();
    if let Some(pos) = args.iter().position(|a| a == "--entry") {
        if let Some(name) = args.get(pos + 1) {
            entry_name = name.clone();
            if let Some(i) = rest.iter().position(|r| r == name) {
                rest.remove(i);
            }
        }
    }
    let Some(path) = rest.first().cloned() else {
        return fail(usage_err("run needs a source file"));
    };
    let source = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(input_err(format!("cannot read {path}: {e}"))),
    };
    let program = match session.parse(&source) {
        Ok(p) => p,
        Err(e) => return fail(input_err(format!("{path}: {e}"))),
    };
    let call_args: Vec<Value> = rest[1..]
        .iter()
        .filter_map(|a| a.parse::<i64>().ok().map(Value::Int))
        .collect();
    match session.run_instrumented(&program, &entry_name, &call_args) {
        Ok(out) => {
            print!("{}", out.stdout);
            if let Some(v) = out.ret {
                println!("=> {v}");
            }
            println!("({} run-time qualifier check(s) passed)", out.checks_passed);
            ExitCode::SUCCESS
        }
        Err(e) => fail(CliError {
            code: EXIT_UNSOUND,
            msg: format!("runtime error: {e}"),
        }),
    }
}

fn infer(args: &[String]) -> ExitCode {
    let Cli { session, rest, .. } = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    // `infer --qual NAME FILE` — the qual name lands in rest after the
    // flag-stripping; expect [NAME, FILE] with --qual marking NAME.
    let (qual, path) = match args.iter().position(|a| a == "--qual") {
        Some(pos) => {
            let Some(name) = args.get(pos + 1) else {
                return fail(usage_err("--qual needs a name"));
            };
            let Some(path) = rest.iter().find(|r| *r != name) else {
                return fail(usage_err("infer needs a source file"));
            };
            (name.clone(), path.clone())
        }
        None => return fail(usage_err("infer needs --qual NAME")),
    };
    let source = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(input_err(format!("cannot read {path}: {e}"))),
    };
    let program = match session.parse(&source) {
        Ok(p) => p,
        Err(e) => return fail(input_err(format!("{path}: {e}"))),
    };
    let result = match session.try_infer_annotations(&program, &qual) {
        Ok(r) => r,
        Err(e) => return fail(input_err(e)),
    };
    println!(
        "{} site(s) can carry `{qual}` ({} iteration(s)):",
        result.inferred.len(),
        result.iterations
    );
    for site in &result.inferred {
        println!("  + {site}");
    }
    for site in &result.rejected {
        println!("  - {site}");
    }
    ExitCode::SUCCESS
}

fn show(args: &[String]) -> ExitCode {
    let Cli { session, rest, .. } = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    match rest.first() {
        Some(name) => match session.registry().get_by_name(name) {
            Some(def) => {
                print!("{}", stq_qualspec::def_to_source(def));
                ExitCode::SUCCESS
            }
            None => fail(input_err(format!("unknown qualifier `{name}`"))),
        },
        None => {
            for def in session.registry().iter() {
                print!("{}", stq_qualspec::def_to_source(def));
                println!();
            }
            ExitCode::SUCCESS
        }
    }
}

// ----- fuzz -----

/// `stqc fuzz`: run a differential fuzzing campaign (see
/// `docs/testing.md`), or with `--replay DIR` re-run every `.c` witness
/// in a corpus directory through the oracle battery. Exit codes: 0 all
/// oracles agreed, 1 a divergence was found, 2 usage, 4 a host panic
/// escaped the pipeline.
fn fuzz(args: &[String]) -> ExitCode {
    use stq_fuzz::{run_fuzz_cancellable, FuzzConfig, Outcome};

    let mut config = FuzzConfig {
        count: 200,
        jobs: stq_util::pool::default_jobs(),
        ..FuzzConfig::default()
    };
    let mut json = false;
    let mut replay_dir: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--replay" => {
                let Some(dir) = args.get(i + 1) else {
                    return fail(usage_err("--replay needs a directory"));
                };
                replay_dir = Some(dir.clone());
                i += 2;
            }
            flag @ ("--seed" | "--count" | "--jobs" | "--max-depth" | "--deadline-ms") => {
                let Some(value) = args.get(i + 1) else {
                    return fail(usage_err(format!("{flag} needs a number")));
                };
                let Ok(n) = value.parse::<u64>() else {
                    return fail(usage_err(format!("{flag}: `{value}` is not a number")));
                };
                match flag {
                    "--seed" => config.seed = n,
                    "--count" => config.count = n as usize,
                    "--jobs" => {
                        config.jobs = if n == 0 {
                            stq_util::pool::default_jobs()
                        } else {
                            n.min(256) as usize
                        }
                    }
                    "--deadline-ms" => deadline_ms = Some(n),
                    _ => config.gen.max_depth = n.min(8) as u32,
                }
                i += 2;
            }
            other => {
                return fail(usage_err(format!("fuzz: unknown argument `{other}`")));
            }
        }
    }
    let cancel = run_token(deadline_ms);

    if let Some(dir) = replay_dir {
        return fuzz_replay(&dir, json, &cancel);
    }

    let report = run_fuzz_cancellable(&config, &cancel);
    let mut panicked = false;
    if json {
        let failures: Vec<String> = report
            .failures
            .iter()
            .map(|f| {
                let (kind, detail, source) = match &f.outcome {
                    Outcome::Diverged(d) => {
                        (format!("{}", d.oracle), d.detail.clone(), d.source.clone())
                    }
                    Outcome::Panicked { message, source } => {
                        ("panic".to_owned(), message.clone(), source.clone())
                    }
                    Outcome::Pass => unreachable!("passes are not failures"),
                };
                let mutations: Vec<String> = f
                    .mutations
                    .iter()
                    .map(|m| format!("\"{}\"", json_escape(m)))
                    .collect();
                format!(
                    "{{\"index\":{},\"kind\":\"{}\",\"detail\":\"{}\",\
                     \"mutations\":[{}],\"source\":\"{}\"}}",
                    f.index,
                    json_escape(&kind),
                    json_escape(&detail),
                    mutations.join(","),
                    json_escape(&source),
                )
            })
            .collect();
        println!(
            "{{\"command\":\"fuzz\",\"seed\":{},\"count\":{},\"executed\":{},\
             \"passes\":{},\"clean\":{},\"mutated\":{},\"skipped\":{},\
             \"interrupted\":{},\"failures\":[{}]}}",
            config.seed,
            config.count,
            report.executed,
            report.passes,
            report.clean,
            report.mutated,
            report.skipped,
            report.interrupted,
            failures.join(","),
        );
    } else {
        println!(
            "fuzz: seed {}, {} case(s): {} pass(es), {} clean, {} mutated, {} failure(s)",
            config.seed,
            report.executed,
            report.passes,
            report.clean,
            report.mutated,
            report.failures.len(),
        );
        if report.interrupted {
            eprintln!(
                "stqc: fuzz campaign interrupted at a case boundary: \
                 {} of {} case(s) never ran; the summary covers the executed prefix",
                report.skipped, config.count
            );
        }
    }
    for f in &report.failures {
        match &f.outcome {
            Outcome::Diverged(d) => {
                eprintln!(
                    "stqc: case {}: {} oracle diverged: {}\n--- minimized witness ---\n{}",
                    f.index, d.oracle, d.detail, d.source
                );
            }
            Outcome::Panicked { message, source } => {
                panicked = true;
                eprintln!(
                    "stqc: case {}: host panic: {message}\n--- witness ---\n{source}",
                    f.index
                );
            }
            Outcome::Pass => {}
        }
    }
    if panicked {
        ExitCode::from(EXIT_CRASH)
    } else if !report.failures.is_empty() {
        ExitCode::from(EXIT_UNSOUND)
    } else if report.interrupted {
        ExitCode::from(EXIT_INTERRUPTED)
    } else {
        ExitCode::SUCCESS
    }
}

/// Replays every `*.c` file under `dir` (sorted by name, so output order
/// is stable) through the oracle battery. The [`CancelToken`] is polled
/// between files: a fired token (Ctrl-C or `--deadline-ms`) ends the
/// replay at a case boundary with a partial summary and exit code 5.
fn fuzz_replay(dir: &str, json: bool, cancel: &CancelToken) -> ExitCode {
    use stq_fuzz::{replay_source, Outcome};

    let mut files: Vec<std::path::PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "c"))
            .collect(),
        Err(e) => return fail(input_err(format!("cannot read {dir}: {e}"))),
    };
    files.sort();
    if files.is_empty() {
        return fail(input_err(format!("no .c files under {dir}")));
    }
    let mut diverged = 0usize;
    let mut panicked = 0usize;
    let mut replayed = 0usize;
    let mut rows = Vec::new();
    for path in &files {
        if cancel.should_stop() {
            break;
        }
        replayed += 1;
        let name = path.file_name().map_or_else(
            || path.display().to_string(),
            |n| n.to_string_lossy().into_owned(),
        );
        let source = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => return fail(input_err(format!("cannot read {}: {e}", path.display()))),
        };
        let result = replay_source(&source);
        let verdict = match &result.outcome {
            Outcome::Pass => "pass".to_owned(),
            Outcome::Diverged(d) => {
                diverged += 1;
                eprintln!("stqc: {name}: {} oracle diverged: {}", d.oracle, d.detail);
                format!("{} divergence", d.oracle)
            }
            Outcome::Panicked { message, .. } => {
                panicked += 1;
                eprintln!("stqc: {name}: host panic: {message}");
                "panic".to_owned()
            }
        };
        if json {
            rows.push(format!(
                "{{\"file\":\"{}\",\"verdict\":\"{}\",\"clean\":{},\"casts\":{}}}",
                json_escape(&name),
                json_escape(&verdict),
                result.clean,
                result.casts,
            ));
        } else {
            println!("{name}: {verdict}");
        }
    }
    let skipped = files.len() - replayed;
    if json {
        println!(
            "{{\"command\":\"fuzz-replay\",\"dir\":\"{}\",\"cases\":{},\
             \"divergences\":{diverged},\"panics\":{panicked},\"skipped\":{skipped},\
             \"interrupted\":{},\"results\":[{}]}}",
            json_escape(dir),
            replayed,
            skipped > 0,
            rows.join(","),
        );
    } else {
        println!(
            "replay: {replayed} case(s), {diverged} divergence(s), {panicked} panic(s)"
        );
        if skipped > 0 {
            eprintln!(
                "stqc: replay interrupted: {skipped} of {} file(s) never ran",
                files.len()
            );
        }
    }
    if panicked > 0 {
        ExitCode::from(EXIT_CRASH)
    } else if diverged > 0 {
        ExitCode::from(EXIT_UNSOUND)
    } else if skipped > 0 {
        ExitCode::from(EXIT_INTERRUPTED)
    } else {
        ExitCode::SUCCESS
    }
}

fn row_json(row: &stq_corpus::tables::Row) -> String {
    format!(
        "{{\"program\":\"{}\",\"lines\":{},\"check_time_ms\":{},\"stats\":{}}}",
        json_escape(&row.program),
        row.lines,
        json_ms(row.check_time),
        check_stats_json(&row.stats),
    )
}

fn tables(args: &[String]) -> ExitCode {
    let flags: Vec<String> = args
        .iter()
        .filter(|a| a.starts_with("--"))
        .cloned()
        .collect();
    let row = stq_corpus::tables::table1();
    let rows = stq_corpus::tables::table2();
    if has_flag(&flags, "--json") {
        let t2: Vec<String> = rows.iter().map(row_json).collect();
        println!(
            "{{\"command\":\"tables\",\"table1\":{},\"table2\":[{}]}}",
            row_json(&row),
            t2.join(","),
        );
        return ExitCode::SUCCESS;
    }
    println!("{}", stq_corpus::tables::render_table1(&row));
    println!("{}", stq_corpus::tables::render_table2(&rows));
    if has_flag(&flags, "--stats") {
        for r in std::iter::once(&row).chain(rows.iter()) {
            println!(
                "{}: {} expr(s) visited, {} case application(s), \
                 {} memo hit(s)/{} miss(es), {} restrict check(s)",
                r.program,
                r.stats.exprs_visited,
                r.stats.case_applications,
                r.stats.memo_hits,
                r.stats.memo_misses,
                r.stats.restrict_checks
            );
        }
    }
    ExitCode::SUCCESS
}
