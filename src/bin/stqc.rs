//! `stqc` — the semantic-type-qualifiers command-line tool.
//!
//! ```text
//! stqc prove [--quals FILE] [--stats] [--json] [BUDGET..] [NAME]
//!                                        prove qualifier soundness
//! stqc check [--quals FILE] [--flow-sensitive] [--stats] [--json] FILE.c
//!                                        qualifier-check a program
//! stqc run [--entry NAME] FILE.c [INT..] instrument and execute
//! stqc infer --qual NAME FILE.c          infer annotations
//! stqc tables [--stats] [--json]         regenerate Tables 1 and 2
//! stqc show [--quals FILE] [NAME]        print qualifier definitions
//! stqc fuzz [--seed N] [--count N] [--jobs N] [--max-depth N] [--json]
//!           [--deadline-ms N] [--replay DIR]
//!                                        differential fuzzing
//! stqc serve (--socket PATH | --tcp HOST:PORT | --stdio) [--jobs N]
//!           [--cache-dir DIR] [--addr-file PATH]
//!           [--quals FILE] [--watch-libs] [--max-inflight N] [--max-queue N]
//!           [--supervise] [--pid-file PATH] [--idle-timeout-ms N]
//!           [--max-line-bytes N] [--net-fault-seed N] [BUDGET..]
//!                                        checking-as-a-service daemon
//! stqc call (--socket PATH | --tcp HOST:PORT | --endpoint SPEC)..
//!           [--deadline-ms N] [--connect-timeout-ms N]
//!           [--call-deadline-ms N] [--retries N] [--json] METHOD [PARAMS]
//!                                        one request to a serve daemon
//! stqc bench-serve [--clients N] [--requests N] [--oneshot N]
//!           [--idle-conns N] [--jobs N] [--out FILE]
//!                                        daemon vs one-shot benchmark
//! stqc chaos-serve [--seed N] [--count N] [--clients N] [--kill-worker]
//!           [--daemons N] [--kill-daemon]
//!           [--out FILE]                 chaos soak against a faulted daemon
//! ```
//!
//! Budget flags (`prove` only) bound the prover so a pathological
//! obligation terminates with a `ResourceOut` verdict instead of
//! diverging: `--max-rounds N`, `--max-instantiations N`,
//! `--max-decisions N`, `--max-clauses N`, `--timeout-ms N`.
//!
//! Performance flags (see `docs/performance.md`):
//!
//! * `--jobs N` proves obligations on up to `N` worker threads
//!   (`0` or omitted = available parallelism; verdicts and report order
//!   are independent of `N`). When a fault-injection flag is present and
//!   `--jobs` is not, the run is single-threaded so the faulted solver
//!   entry is deterministic.
//! * `--cache-dir DIR` keeps a fingerprinted proof cache in `DIR`:
//!   unchanged obligations (same rules, invariant, budget, retry ladder,
//!   and prover version) are replayed from the cache instead of
//!   re-proved.
//!
//! Robustness flags (see `docs/robustness.md`):
//!
//! * `--retry N` re-runs `ResourceOut` obligations up to `N` attempts
//!   under geometrically escalated budgets (`--retry-factor F`,
//!   default 2);
//! * `--deadline-ms N` bounds the *whole run* (`prove` and `fuzz`):
//!   when the deadline lapses, in-flight work stops at the next
//!   safepoint, unreached obligations/cases are marked skipped, and the
//!   partial report is emitted with exit code 5. `--timeout-ms` by
//!   contrast is a per-obligation prover budget (and part of the proof-
//!   cache key; the run deadline is not, so an interrupted run resumes
//!   from the same cache).
//! * Ctrl-C (SIGINT) requests the same cooperative stop: conclusive
//!   verdicts reached so far are reported, the proof cache is persisted,
//!   and the exit code is 5. A second Ctrl-C exits immediately (130).
//! * `--keep-going` continues past crashed qualifiers (`prove`) and
//!   past syntax errors (`check`, via the error-resilient parser);
//! * `--fault-panic-at N` / `--fault-resource-out-at N` /
//!   `--fault-theory-at N` inject a deterministic fault at the `N`th
//!   solver entry — testing hooks for the fault-injection harness.
//!
//! Exit codes are structured: 0 success, 1 unsound/refuted (or
//! qualifier errors from `check`), 2 usage errors, 3 input errors
//! (unreadable or unparseable files), 4 a proof attempt crashed or ran
//! out of budget even after retries, 5 the run was interrupted
//! (deadline or Ctrl-C) and the report is partial.
//!
//! `--stats` prints prover/checker telemetry; `--json` switches the
//! report to a machine-readable JSON document on stdout (the schema is
//! documented in `docs/telemetry.md`). Qualifier definitions from
//! `--quals` are added on top of the paper's builtin library.

use std::fs;
use std::process::ExitCode;
use std::time::Duration;
use stq_core::reportjson::{
    budget_json, check_stats_json, json_escape, json_ms, prover_stats_json, qual_report_json,
    retry_json,
};
use stq_core::{
    fault, Budget, CancelToken, CheckOptions, FaultKind, FaultPlan, PersistOutcome, ProofCache,
    ProverStats, QualReport, Resource, RetryPolicy, Session, Value, Verdict,
};

const USAGE: &str =
    "usage: stqc <prove|check|run|infer|tables|show|fuzz|serve|call|bench-serve|chaos-serve> \
     [options]\n\
     run `stqc --help` for the full command and flag reference";

/// The complete CLI surface. `tests/docs.rs` cross-checks every
/// subcommand and flag mentioned anywhere under `docs/` against this
/// text, so it must stay exhaustive.
const HELP: &str = "\
stqc — semantic type qualifiers: checker, prover, and serving daemon

subcommands:
  stqc prove [NAME]         prove qualifier soundness (all, or one by NAME)
  stqc check FILE.c         qualifier-check a C-subset program
  stqc run FILE.c [INT..]   instrument casts and execute under the interpreter
  stqc infer --qual NAME FILE.c
                            infer which sites can carry qualifier NAME
  stqc tables               regenerate the paper's Tables 1 and 2
  stqc show [NAME]          print qualifier definitions (all, or one)
  stqc fuzz                 differential fuzzing across three oracles
  stqc serve                long-running checking daemon (socket or stdio)
  stqc call METHOD [PARAMS] send one request to a running serve daemon
  stqc bench-serve          benchmark warm daemon vs one-shot processes
  stqc chaos-serve          chaos soak: faulted daemon vs fault-free baseline

qualifier and report flags (prove, check, run, infer, show, serve):
  --quals FILE              define qualifiers from FILE on top of the builtins
  --stats                   print prover/checker telemetry
  --json                    machine-readable report (schema: docs/telemetry.md)
  --flow-sensitive          enable the flow-sensitive checking extension (check)
  --entry NAME              entry function for `run` (default main)
  --qual NAME               qualifier to infer annotations for (infer)

prover budget flags (prove, serve; per obligation):
  --max-rounds N            matching rounds before ResourceOut
  --max-instantiations N    quantifier instantiations before ResourceOut
  --max-decisions N         case splits before ResourceOut
  --max-clauses N           learned clauses before ResourceOut
  --timeout-ms N            per-obligation wall-clock budget (cache-keyed)

performance flags (prove, serve; see docs/performance.md):
  --jobs N                  worker threads (0 = available parallelism);
                            for serve: request workers serving the queue
  --cache-dir DIR           persistent fingerprinted proof cache in DIR

robustness flags (see docs/robustness.md):
  --retry N                 retry ResourceOut obligations up to N attempts
  --retry-factor F          geometric budget escalation between attempts
  --deadline-ms N           whole-run deadline (prove, fuzz, serve lifetime;
                            for `call`: per-request deadline, not cache-keyed)
  --keep-going              continue past crashed qualifiers / syntax errors
  --fault-panic-at N        inject a panic at the Nth solver entry
  --fault-resource-out-at N inject ResourceOut at the Nth solver entry
  --fault-theory-at N       inject a theory error at the Nth solver entry

fuzzing flags (fuzz; see docs/testing.md):
  --seed N                  campaign seed (deterministic per seed/count)
  --count N                 number of generated cases
  --max-depth N             expression depth bound for generated programs
  --replay DIR              replay every .c witness under DIR

serving flags (serve, call, bench-serve; see docs/serving.md):
  --socket PATH             Unix socket to serve on / connect to
  --tcp HOST:PORT           TCP address to serve on / connect to (serve may
                            combine --socket and --tcp; port 0 picks a free
                            port, reported on stderr and via --addr-file)
  --addr-file PATH          write the bound TCP address (or socket path) to
                            PATH once listening (serve; atomic temp+rename)
  --endpoint SPEC           extra endpoint to try, in order (call; repeatable;
                            `unix:PATH`, `tcp:HOST:PORT`, or a bare path /
                            HOST:PORT; --socket and --tcp also repeat)
  --json                    wrap the response with client-side retry and
                            failover counters (call)
  --watch-libs              poll the --quals files and hot-reload qualifier
                            libraries when they change (serve)
  --stdio                   serve one session over stdin/stdout (testing)
  --max-inflight N          per-connection in-flight request cap (serve)
  --max-queue N             global request queue bound before shedding (serve)
  --supervise               run the worker as a supervised child; restart it
                            on crashes, with restart-rate limiting (serve)
  --pid-file PATH           record the current worker pid in PATH (serve)
  --idle-timeout-ms N       close connections idle for N ms with no in-flight
                            work (serve; 0 or omitted = never)
  --max-line-bytes N        reject request lines longer than N bytes with a
                            structured `input` error (serve; default 1048576)
  --connect-timeout-ms N    keep redialing a refused socket for N ms (call)
  --call-deadline-ms N      client-side budget for the whole call, covering
                            every retry (call; omitted = wait indefinitely)
  --retries N               re-attempts after retryable failures (call)
  --clients N               concurrent clients (bench-serve, chaos-serve)
  --requests N              requests per bench client (bench-serve)
  --oneshot N               one-shot baseline process count (bench-serve)
  --idle-conns N            open, silent connections held through the
                            measured phase (bench-serve; default 64)
  --out FILE                benchmark report path (default BENCH_serve.json;
                            chaos-serve: BENCH_chaos.json)

wire-fault flags (serve, chaos-serve; see docs/robustness.md):
  --net-fault-seed N        arm deterministic response-path wire faults
                            seeded with N (drops, torn/interleaved lines,
                            garbage bytes, short writes, stalls)
  --net-fault-count N       how many faults the plan schedules (default 32)
  --net-fault-span N        spread faults over the first N writes (default 256)
  --kill-worker             SIGKILL the supervised worker mid-campaign and
                            require a warm recovery (chaos-serve)
  --daemons N               spawn N daemons sharing one proof-cache journal;
                            clients fail over between them (chaos-serve)
  --kill-daemon             SIGKILL a whole daemon mid-campaign; survivors
                            must answer its proofs warm via journal follow
                            (chaos-serve; needs --daemons >= 2)

exit codes: 0 success/sound, 1 unsound or qualifier errors, 2 usage,
3 input errors, 4 crash or resource-out, 5 interrupted (partial report),
6 daemon unreachable or no attributed answer within the call budget (call).

`stqc --help` (or `-h`) prints this reference.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("prove") => prove(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("infer") => infer(&args[1..]),
        Some("tables") => tables(&args[1..]),
        Some("show") => show(&args[1..]),
        Some("fuzz") => fuzz(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("call") => call(&args[1..]),
        Some("bench-serve") => bench_serve(&args[1..]),
        Some("chaos-serve") => chaos_serve(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{HELP}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("stqc: unknown subcommand `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(EXIT_USAGE)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

/// Exit code for unsound qualifiers, refuted obligations, and
/// qualifier errors found by `check`.
const EXIT_UNSOUND: u8 = 1;
/// Exit code for command-line usage errors.
const EXIT_USAGE: u8 = 2;
/// Exit code for input errors: unreadable or unparseable files,
/// unknown qualifier names.
const EXIT_INPUT: u8 = 3;
/// Exit code when a proof attempt crashed (panic contained by the
/// isolation layer) or ran out of budget even after the retry ladder.
const EXIT_CRASH: u8 = 4;
/// Exit code when the run was interrupted — `--deadline-ms` lapsed or a
/// SIGINT arrived — and the emitted report is partial: conclusive
/// verdicts are trustworthy, unreached work is marked skipped, and
/// anything conclusive was persisted to the cache for resumption.
const EXIT_INTERRUPTED: u8 = 5;
/// Exit code when `call` could not obtain an attributed answer at all:
/// the daemon was unreachable, or the connect/call/retry budget ran
/// out on transport-level failures. Distinct from input errors (3) so
/// scripts can tell "the daemon is down" from "my request was bad".
#[cfg(unix)]
const EXIT_UNREACHABLE: u8 = 6;

/// Cooperative SIGINT handling: the first Ctrl-C cancels the run's
/// [`CancelToken`] (workers drain at the next safepoint, the partial
/// report and cache flush still happen); a second Ctrl-C exits
/// immediately with the conventional 128+SIGINT code.
#[cfg(unix)]
mod interrupt {
    use std::sync::OnceLock;
    use stq_core::CancelToken;

    static TOKEN: OnceLock<CancelToken> = OnceLock::new();

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn _exit(code: i32) -> !;
    }

    extern "C" fn on_sigint(_sig: i32) {
        // Only async-signal-safe operations here: atomic loads/stores
        // and `_exit`.
        match TOKEN.get() {
            Some(token) if !token.is_cancelled() => token.cancel(),
            _ => unsafe { _exit(130) },
        }
    }

    /// Registers `token` as the one SIGINT cancels and installs the
    /// handler.
    pub fn install(token: &CancelToken) {
        let _ = TOKEN.set(token.clone());
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod interrupt {
    use stq_core::CancelToken;

    /// No signal wiring off unix; `--deadline-ms` still works.
    pub fn install(_token: &CancelToken) {}
}

/// Raw signal sending for the supervisor (forwarding SIGINT to the
/// worker) and the chaos harness (SIGKILLing it mid-campaign). Same
/// no-libc-crate idiom as [`interrupt`].
#[cfg(unix)]
mod sig {
    pub const SIGINT: i32 = 2;
    pub const SIGKILL: i32 = 9;

    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }

    /// Sends `signum` to `pid`; false if the process is gone.
    pub fn send(pid: u32, signum: i32) -> bool {
        pid <= i32::MAX as u32 && unsafe { kill(pid as i32, signum) } == 0
    }
}

/// A diagnosed failure paired with the exit code class it belongs to.
struct CliError {
    code: u8,
    msg: String,
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError {
        code: EXIT_USAGE,
        msg: msg.into(),
    }
}

fn input_err(msg: impl Into<String>) -> CliError {
    CliError {
        code: EXIT_INPUT,
        msg: msg.into(),
    }
}

fn fail(e: CliError) -> ExitCode {
    eprintln!("stqc: {}", e.msg);
    ExitCode::from(e.code)
}

/// Everything the option scan produces: the session (builtins plus any
/// `--quals` definitions), positional arguments, bare `--flag`s, the
/// prover budget, and the retry ladder.
struct Cli {
    session: Session,
    rest: Vec<String>,
    flags: Vec<String>,
    budget: Budget,
    retry: RetryPolicy,
    jobs: usize,
    cache_dir: Option<String>,
    deadline_ms: Option<u64>,
    /// The `--quals` files, in order — what `stqc serve` hands the
    /// server as its reloadable library list.
    qual_files: Vec<std::path::PathBuf>,
}

/// Builds a session from builtins plus any `--quals FILE` definitions
/// and scans the common option set. Fault-injection flags install their
/// [`FaultPlan`] for this thread as a side effect.
fn session_from(args: &[String]) -> Result<Cli, CliError> {
    let keep_going = args.iter().any(|a| a == "--keep-going");
    let mut session = Session::with_builtins();
    let mut rest = Vec::new();
    let mut flags = Vec::new();
    let mut budget = Budget::default();
    let mut retry = RetryPolicy::none();
    let mut plan = FaultPlan::new();
    let mut jobs: Option<u64> = None;
    let mut cache_dir: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut qual_files: Vec<std::path::PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cache-dir" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--cache-dir needs a directory"))?;
                cache_dir = Some(path.clone());
                i += 2;
            }
            "--quals" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--quals needs a file"))?;
                qual_files.push(std::path::PathBuf::from(path));
                let src = fs::read_to_string(path)
                    .map_err(|e| input_err(format!("cannot read {path}: {e}")))?;
                if keep_going {
                    let (_, errors) = session.define_qualifiers_resilient(&src);
                    for e in &errors {
                        eprintln!("stqc: {path}: {e}");
                    }
                } else {
                    session
                        .define_qualifiers(&src)
                        .map_err(|e| input_err(format!("{path}: {e}")))?;
                }
                i += 2;
            }
            flag @ ("--max-rounds" | "--max-instantiations" | "--max-decisions"
            | "--max-clauses" | "--timeout-ms" | "--deadline-ms" | "--retry" | "--retry-factor"
            | "--jobs" | "--fault-panic-at" | "--fault-resource-out-at" | "--fault-theory-at") => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err(format!("{flag} needs a number")))?;
                let n: u64 = value
                    .parse()
                    .map_err(|_| usage_err(format!("{flag}: `{value}` is not a number")))?;
                match flag {
                    "--max-rounds" => budget.max_rounds = n as usize,
                    "--max-instantiations" => budget.max_instantiations = n as usize,
                    "--max-clauses" => budget.max_clauses = n as usize,
                    "--max-decisions" => budget.max_decisions = n,
                    "--timeout-ms" => budget.timeout = Some(Duration::from_millis(n)),
                    "--deadline-ms" => deadline_ms = Some(n),
                    "--retry" => retry.max_attempts = n.min(u64::from(u32::MAX)) as u32,
                    "--retry-factor" => retry.factor = n.min(u64::from(u32::MAX)) as u32,
                    "--jobs" => jobs = Some(n),
                    "--fault-panic-at" => plan = plan.inject(n, FaultKind::Panic),
                    "--fault-resource-out-at" => plan = plan.inject(n, FaultKind::ResourceOut),
                    _ => plan = plan.inject(n, FaultKind::TheoryError),
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                flags.push(flag.to_owned());
                i += 1;
            }
            other => {
                rest.push(other.to_owned());
                i += 1;
            }
        }
    }
    let fault_injected = !plan.is_empty();
    if fault_injected {
        fault::install(plan);
    }
    // `--jobs 0` (or no flag) means "auto": the machine's available
    // parallelism — except under fault injection, where an unforced run
    // stays single-threaded so the faulted solver entry is the Nth
    // obligation deterministically, not whichever a worker reaches.
    let jobs = match jobs {
        Some(n) if n >= 1 => n.min(256) as usize,
        Some(_) => stq_util::pool::default_jobs(),
        None if fault_injected => 1,
        None => stq_util::pool::default_jobs(),
    };
    let wf = session.check_well_formed();
    if wf.has_errors() {
        return Err(input_err(format!("ill-formed qualifier definitions:\n{wf}")));
    }
    Ok(Cli {
        session,
        rest,
        flags,
        budget,
        retry,
        jobs,
        cache_dir,
        deadline_ms,
        qual_files,
    })
}

/// The run's cancellation token: carries the `--deadline-ms` deadline
/// when one was given, and is wired to SIGINT either way.
fn run_token(deadline_ms: Option<u64>) -> CancelToken {
    let token = match deadline_ms {
        Some(ms) => CancelToken::deadline_in(Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    interrupt::install(&token);
    token
}

fn has_flag(flags: &[String], name: &str) -> bool {
    flags.iter().any(|f| f == name)
}

// ----- subcommands -----

fn prove(args: &[String]) -> ExitCode {
    let Cli {
        session,
        rest,
        flags,
        budget,
        retry,
        jobs,
        cache_dir,
        deadline_ms,
        ..
    } = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    let keep_going = has_flag(&flags, "--keep-going");
    let cancel = run_token(deadline_ms);
    let cache = match &cache_dir {
        Some(dir) => match ProofCache::at_dir(dir) {
            Ok(c) => Some(c),
            Err(e) => return fail(input_err(format!("cannot open cache dir {dir}: {e}"))),
        },
        None => None,
    };
    let mut reports: Vec<QualReport> = Vec::new();
    match rest.first() {
        Some(name) => {
            match session.prove_named_cancellable(
                &[name.as_str()],
                budget,
                retry,
                jobs,
                cache.as_ref(),
                &cancel,
            ) {
                Ok(report) => reports.extend(report.reports),
                Err(e) => return fail(input_err(e)),
            }
        }
        None if keep_going || jobs > 1 => {
            // The pipeline proves everything; without --keep-going the
            // report is truncated after the first crashed qualifier so
            // the output contract matches the sequential early stop.
            let report =
                session.prove_all_sound_cancellable(budget, retry, jobs, cache.as_ref(), &cancel);
            reports = report.reports;
            if !keep_going {
                if let Some(pos) = reports.iter().position(|r| r.verdict == Verdict::Crashed) {
                    eprintln!(
                        "stqc: qualifier `{}` crashed; stopping \
                         (pass --keep-going to check the rest)",
                        reports[pos].qualifier
                    );
                    reports.truncate(pos + 1);
                }
            }
        }
        None => {
            // Sequential without --keep-going: stop at the first crash
            // before spending budget on the remaining qualifiers. A
            // fired token doesn't break the loop: the remaining
            // qualifiers come back as skipped placeholders, so the
            // partial report still names everything it didn't reach.
            let names: Vec<String> = session
                .registry()
                .iter()
                .map(|d| d.name.to_string())
                .collect();
            for name in &names {
                let Ok(report) = session.prove_named_cancellable(
                    &[name.as_str()],
                    budget,
                    retry,
                    1,
                    cache.as_ref(),
                    &cancel,
                ) else {
                    continue;
                };
                let Some(r) = report.reports.into_iter().next() else {
                    continue;
                };
                let crashed = r.verdict == Verdict::Crashed;
                reports.push(r);
                if crashed {
                    eprintln!(
                        "stqc: qualifier `{name}` crashed; stopping \
                         (pass --keep-going to check the rest)"
                    );
                    break;
                }
            }
        }
    }
    // Persist even (especially) on an interrupted run: conclusive
    // verdicts reached before the stop are what lets a re-run with the
    // same --cache-dir resume instead of starting over.
    let mut persisted: Option<PersistOutcome> = None;
    if let Some(cache) = &cache {
        match cache.persist() {
            Ok(outcome) => persisted = Some(outcome),
            Err(e) => eprintln!("stqc: warning: could not persist the proof cache: {e}"),
        }
    }
    let mut totals = ProverStats::default();
    for r in &reports {
        totals.absorb(&r.totals());
    }
    if let Some(cache) = &cache {
        totals.cache_invalidations += cache.invalidations();
    }
    let all_results = || reports.iter().flat_map(|r| &r.obligations);
    let skipped = all_results().filter(|o| o.skipped).count();
    let cancelled_mid_search = all_results()
        .filter(|o| o.resource == Some(Resource::Cancelled))
        .count();
    let interrupted = skipped > 0 || cancelled_mid_search > 0;
    let timed_out = all_results()
        .filter(|o| o.resource == Some(Resource::Time))
        .count();
    let step_out = all_results()
        .filter(|o| {
            matches!(
                o.resource,
                Some(r) if r != Resource::Time && r != Resource::Cancelled
            )
        })
        .count();
    if has_flag(&flags, "--json") {
        let quals: Vec<String> = reports.iter().map(qual_report_json).collect();
        let cache_json = match &cache {
            Some(c) => {
                let (persist, persisted_entries) = match persisted {
                    Some(PersistOutcome::Skipped) => ("skipped", 0),
                    Some(PersistOutcome::Appended(n)) => ("appended", n),
                    Some(PersistOutcome::Compacted(n)) => ("compacted", n),
                    None => ("failed", 0),
                };
                format!(
                    "{{\"dir\":\"{}\",\"entries\":{},\"hits\":{},\"misses\":{},\
                     \"invalidations\":{},\"persist\":\"{persist}\",\
                     \"persisted_entries\":{persisted_entries},\"persist_skips\":{}}}",
                    json_escape(&cache_dir.unwrap_or_default()),
                    c.len(),
                    c.hits(),
                    c.misses(),
                    c.invalidations(),
                    c.persist_skips(),
                )
            }
            None => "null".to_owned(),
        };
        println!(
            "{{\"command\":\"prove\",\"budget\":{},\"retry\":{},\"jobs\":{jobs},\
             \"deadline_ms\":{},\"interrupted\":{interrupted},\"skipped\":{skipped},\
             \"timed_out\":{timed_out},\"step_out\":{step_out},\
             \"cache\":{cache_json},\"qualifiers\":[{}],\"totals\":{}}}",
            budget_json(&budget),
            retry_json(retry),
            deadline_ms.map_or("null".to_owned(), |ms| ms.to_string()),
            quals.join(","),
            prover_stats_json(&totals),
        );
    } else {
        for r in &reports {
            print!("{r}");
            if has_flag(&flags, "--stats") {
                println!("  stats: {}", r.totals());
            }
        }
        if interrupted {
            eprintln!(
                "stqc: run interrupted: partial report ({skipped} obligation(s) skipped, \
                 {cancelled_mid_search} stopped mid-search){}",
                if cache.is_some() {
                    "; conclusive verdicts were persisted — re-run with the same \
                     --cache-dir to resume"
                } else {
                    ""
                }
            );
        }
        if has_flag(&flags, "--stats") {
            println!("totals: {totals} (jobs={jobs})");
            println!(
                "outcomes: {timed_out} timed out (wall clock), {step_out} out of steps, \
                 {skipped} skipped"
            );
            if let Some(c) = &cache {
                println!(
                    "cache: {} hit(s), {} miss(es), {} invalidation(s), {} entrie(s), \
                     {} persist skip(s)",
                    c.hits(),
                    c.misses(),
                    c.invalidations(),
                    c.len(),
                    c.persist_skips(),
                );
            }
        }
    }
    // Precedence: a definite refutation always wins; an interruption
    // outranks crash/resource-out because those may simply be artifacts
    // of the truncated run.
    if reports.iter().any(|r| r.verdict == Verdict::Unsound) {
        ExitCode::from(EXIT_UNSOUND)
    } else if interrupted {
        ExitCode::from(EXIT_INTERRUPTED)
    } else if reports
        .iter()
        .any(|r| matches!(r.verdict, Verdict::Crashed | Verdict::ResourceOut))
    {
        ExitCode::from(EXIT_CRASH)
    } else {
        ExitCode::SUCCESS
    }
}

fn check(args: &[String]) -> ExitCode {
    let Cli {
        session,
        rest,
        flags,
        ..
    } = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    let Some(path) = rest.first() else {
        return fail(usage_err("check needs a source file"));
    };
    let source = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return fail(input_err(format!("cannot read {path}: {e}"))),
    };
    let keep_going = has_flag(&flags, "--keep-going");
    let (program, syntax_errors) = if keep_going {
        let (program, errors) = session.parse_resilient(&source);
        let rendered: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        (program, rendered)
    } else {
        match session.parse(&source) {
            Ok(p) => (p, Vec::new()),
            Err(e) => return fail(input_err(format!("{path}: {e}"))),
        }
    };
    for e in &syntax_errors {
        eprintln!("{path}: {e}");
    }
    let options = CheckOptions {
        flow_sensitive: has_flag(&flags, "--flow-sensitive"),
    };
    let result = session.check_with(&program, options);
    if has_flag(&flags, "--json") {
        let diags: Vec<String> = result
            .diags
            .iter()
            .map(|d| format!("\"{}\"", json_escape(&d.render(&source))))
            .collect();
        let syntax: Vec<String> = syntax_errors
            .iter()
            .map(|e| format!("\"{}\"", json_escape(e)))
            .collect();
        println!(
            "{{\"command\":\"check\",\"file\":\"{}\",\"clean\":{},\"syntax_errors\":[{}],\
             \"diagnostics\":[{}],\"stats\":{}}}",
            json_escape(path),
            result.is_clean() && syntax_errors.is_empty(),
            syntax.join(","),
            diags.join(","),
            check_stats_json(&result.stats),
        );
    } else {
        for d in result.diags.iter() {
            eprintln!("{path}:{}", d.render(&source));
        }
        println!(
            "{path}: {} dereference(s), {} annotation(s), {} cast(s), {} qualifier error(s)",
            result.stats.dereferences,
            result.stats.annotations,
            result.stats.casts,
            result.stats.qualifier_errors
        );
        if has_flag(&flags, "--stats") {
            println!(
                "{path}: {} expr(s) visited, {} case application(s), \
                 {} memo hit(s)/{} miss(es), {} restrict check(s), \
                 {} instrumented cast(s)",
                result.stats.exprs_visited,
                result.stats.case_applications,
                result.stats.memo_hits,
                result.stats.memo_misses,
                result.stats.restrict_checks,
                result.stats.casts_instrumented
            );
        }
    }
    if !syntax_errors.is_empty() {
        ExitCode::from(EXIT_INPUT)
    } else if result.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_UNSOUND)
    }
}

fn run(args: &[String]) -> ExitCode {
    let Cli {
        session, mut rest, ..
    } = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    // `--entry NAME`: session_from left NAME in rest; pull it back out.
    let mut entry_name = "main".to_owned();
    if let Some(pos) = args.iter().position(|a| a == "--entry") {
        if let Some(name) = args.get(pos + 1) {
            entry_name = name.clone();
            if let Some(i) = rest.iter().position(|r| r == name) {
                rest.remove(i);
            }
        }
    }
    let Some(path) = rest.first().cloned() else {
        return fail(usage_err("run needs a source file"));
    };
    let source = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(input_err(format!("cannot read {path}: {e}"))),
    };
    let program = match session.parse(&source) {
        Ok(p) => p,
        Err(e) => return fail(input_err(format!("{path}: {e}"))),
    };
    let call_args: Vec<Value> = rest[1..]
        .iter()
        .filter_map(|a| a.parse::<i64>().ok().map(Value::Int))
        .collect();
    match session.run_instrumented(&program, &entry_name, &call_args) {
        Ok(out) => {
            print!("{}", out.stdout);
            if let Some(v) = out.ret {
                println!("=> {v}");
            }
            println!("({} run-time qualifier check(s) passed)", out.checks_passed);
            ExitCode::SUCCESS
        }
        Err(e) => fail(CliError {
            code: EXIT_UNSOUND,
            msg: format!("runtime error: {e}"),
        }),
    }
}

fn infer(args: &[String]) -> ExitCode {
    let Cli { session, rest, .. } = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    // `infer --qual NAME FILE` — the qual name lands in rest after the
    // flag-stripping; expect [NAME, FILE] with --qual marking NAME.
    let (qual, path) = match args.iter().position(|a| a == "--qual") {
        Some(pos) => {
            let Some(name) = args.get(pos + 1) else {
                return fail(usage_err("--qual needs a name"));
            };
            let Some(path) = rest.iter().find(|r| *r != name) else {
                return fail(usage_err("infer needs a source file"));
            };
            (name.clone(), path.clone())
        }
        None => return fail(usage_err("infer needs --qual NAME")),
    };
    let source = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(input_err(format!("cannot read {path}: {e}"))),
    };
    let program = match session.parse(&source) {
        Ok(p) => p,
        Err(e) => return fail(input_err(format!("{path}: {e}"))),
    };
    let result = match session.try_infer_annotations(&program, &qual) {
        Ok(r) => r,
        Err(e) => return fail(input_err(e)),
    };
    println!(
        "{} site(s) can carry `{qual}` ({} iteration(s)):",
        result.inferred.len(),
        result.iterations
    );
    for site in &result.inferred {
        println!("  + {site}");
    }
    for site in &result.rejected {
        println!("  - {site}");
    }
    ExitCode::SUCCESS
}

fn show(args: &[String]) -> ExitCode {
    let Cli { session, rest, .. } = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    match rest.first() {
        Some(name) => match session.registry().get_by_name(name) {
            Some(def) => {
                print!("{}", stq_qualspec::def_to_source(def));
                ExitCode::SUCCESS
            }
            None => fail(input_err(format!("unknown qualifier `{name}`"))),
        },
        None => {
            for def in session.registry().iter() {
                print!("{}", stq_qualspec::def_to_source(def));
                println!();
            }
            ExitCode::SUCCESS
        }
    }
}

// ----- fuzz -----

/// `stqc fuzz`: run a differential fuzzing campaign (see
/// `docs/testing.md`), or with `--replay DIR` re-run every `.c` witness
/// in a corpus directory through the oracle battery. Exit codes: 0 all
/// oracles agreed, 1 a divergence was found, 2 usage, 4 a host panic
/// escaped the pipeline.
fn fuzz(args: &[String]) -> ExitCode {
    use stq_fuzz::{run_fuzz_cancellable, FuzzConfig, Outcome};

    let mut config = FuzzConfig {
        count: 200,
        jobs: stq_util::pool::default_jobs(),
        ..FuzzConfig::default()
    };
    let mut json = false;
    let mut replay_dir: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--replay" => {
                let Some(dir) = args.get(i + 1) else {
                    return fail(usage_err("--replay needs a directory"));
                };
                replay_dir = Some(dir.clone());
                i += 2;
            }
            flag @ ("--seed" | "--count" | "--jobs" | "--max-depth" | "--deadline-ms") => {
                let Some(value) = args.get(i + 1) else {
                    return fail(usage_err(format!("{flag} needs a number")));
                };
                let Ok(n) = value.parse::<u64>() else {
                    return fail(usage_err(format!("{flag}: `{value}` is not a number")));
                };
                match flag {
                    "--seed" => config.seed = n,
                    "--count" => config.count = n as usize,
                    "--jobs" => {
                        config.jobs = if n == 0 {
                            stq_util::pool::default_jobs()
                        } else {
                            n.min(256) as usize
                        }
                    }
                    "--deadline-ms" => deadline_ms = Some(n),
                    _ => config.gen.max_depth = n.min(8) as u32,
                }
                i += 2;
            }
            other => {
                return fail(usage_err(format!("fuzz: unknown argument `{other}`")));
            }
        }
    }
    let cancel = run_token(deadline_ms);

    if let Some(dir) = replay_dir {
        return fuzz_replay(&dir, json, &cancel);
    }

    let report = run_fuzz_cancellable(&config, &cancel);
    let mut panicked = false;
    if json {
        let failures: Vec<String> = report
            .failures
            .iter()
            .map(|f| {
                let (kind, detail, source) = match &f.outcome {
                    Outcome::Diverged(d) => {
                        (format!("{}", d.oracle), d.detail.clone(), d.source.clone())
                    }
                    Outcome::Panicked { message, source } => {
                        ("panic".to_owned(), message.clone(), source.clone())
                    }
                    Outcome::Pass => unreachable!("passes are not failures"),
                };
                let mutations: Vec<String> = f
                    .mutations
                    .iter()
                    .map(|m| format!("\"{}\"", json_escape(m)))
                    .collect();
                format!(
                    "{{\"index\":{},\"kind\":\"{}\",\"detail\":\"{}\",\
                     \"mutations\":[{}],\"source\":\"{}\"}}",
                    f.index,
                    json_escape(&kind),
                    json_escape(&detail),
                    mutations.join(","),
                    json_escape(&source),
                )
            })
            .collect();
        println!(
            "{{\"command\":\"fuzz\",\"seed\":{},\"count\":{},\"executed\":{},\
             \"passes\":{},\"clean\":{},\"mutated\":{},\"skipped\":{},\
             \"interrupted\":{},\"failures\":[{}]}}",
            config.seed,
            config.count,
            report.executed,
            report.passes,
            report.clean,
            report.mutated,
            report.skipped,
            report.interrupted,
            failures.join(","),
        );
    } else {
        println!(
            "fuzz: seed {}, {} case(s): {} pass(es), {} clean, {} mutated, {} failure(s)",
            config.seed,
            report.executed,
            report.passes,
            report.clean,
            report.mutated,
            report.failures.len(),
        );
        if report.interrupted {
            eprintln!(
                "stqc: fuzz campaign interrupted at a case boundary: \
                 {} of {} case(s) never ran; the summary covers the executed prefix",
                report.skipped, config.count
            );
        }
    }
    for f in &report.failures {
        match &f.outcome {
            Outcome::Diverged(d) => {
                eprintln!(
                    "stqc: case {}: {} oracle diverged: {}\n--- minimized witness ---\n{}",
                    f.index, d.oracle, d.detail, d.source
                );
            }
            Outcome::Panicked { message, source } => {
                panicked = true;
                eprintln!(
                    "stqc: case {}: host panic: {message}\n--- witness ---\n{source}",
                    f.index
                );
            }
            Outcome::Pass => {}
        }
    }
    if panicked {
        ExitCode::from(EXIT_CRASH)
    } else if !report.failures.is_empty() {
        ExitCode::from(EXIT_UNSOUND)
    } else if report.interrupted {
        ExitCode::from(EXIT_INTERRUPTED)
    } else {
        ExitCode::SUCCESS
    }
}

/// Replays every `*.c` file under `dir` (sorted by name, so output order
/// is stable) through the oracle battery. The [`CancelToken`] is polled
/// between files: a fired token (Ctrl-C or `--deadline-ms`) ends the
/// replay at a case boundary with a partial summary and exit code 5.
fn fuzz_replay(dir: &str, json: bool, cancel: &CancelToken) -> ExitCode {
    use stq_fuzz::{replay_source, Outcome};

    let mut files: Vec<std::path::PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "c"))
            .collect(),
        Err(e) => return fail(input_err(format!("cannot read {dir}: {e}"))),
    };
    files.sort();
    if files.is_empty() {
        return fail(input_err(format!("no .c files under {dir}")));
    }
    let mut diverged = 0usize;
    let mut panicked = 0usize;
    let mut replayed = 0usize;
    let mut rows = Vec::new();
    for path in &files {
        if cancel.should_stop() {
            break;
        }
        replayed += 1;
        let name = path.file_name().map_or_else(
            || path.display().to_string(),
            |n| n.to_string_lossy().into_owned(),
        );
        let source = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => return fail(input_err(format!("cannot read {}: {e}", path.display()))),
        };
        let result = replay_source(&source);
        let verdict = match &result.outcome {
            Outcome::Pass => "pass".to_owned(),
            Outcome::Diverged(d) => {
                diverged += 1;
                eprintln!("stqc: {name}: {} oracle diverged: {}", d.oracle, d.detail);
                format!("{} divergence", d.oracle)
            }
            Outcome::Panicked { message, .. } => {
                panicked += 1;
                eprintln!("stqc: {name}: host panic: {message}");
                "panic".to_owned()
            }
        };
        if json {
            rows.push(format!(
                "{{\"file\":\"{}\",\"verdict\":\"{}\",\"clean\":{},\"casts\":{}}}",
                json_escape(&name),
                json_escape(&verdict),
                result.clean,
                result.casts,
            ));
        } else {
            println!("{name}: {verdict}");
        }
    }
    let skipped = files.len() - replayed;
    if json {
        println!(
            "{{\"command\":\"fuzz-replay\",\"dir\":\"{}\",\"cases\":{},\
             \"divergences\":{diverged},\"panics\":{panicked},\"skipped\":{skipped},\
             \"interrupted\":{},\"results\":[{}]}}",
            json_escape(dir),
            replayed,
            skipped > 0,
            rows.join(","),
        );
    } else {
        println!(
            "replay: {replayed} case(s), {diverged} divergence(s), {panicked} panic(s)"
        );
        if skipped > 0 {
            eprintln!(
                "stqc: replay interrupted: {skipped} of {} file(s) never ran",
                files.len()
            );
        }
    }
    if panicked > 0 {
        ExitCode::from(EXIT_CRASH)
    } else if diverged > 0 {
        ExitCode::from(EXIT_UNSOUND)
    } else if skipped > 0 {
        ExitCode::from(EXIT_INTERRUPTED)
    } else {
        ExitCode::SUCCESS
    }
}

fn row_json(row: &stq_corpus::tables::Row) -> String {
    format!(
        "{{\"program\":\"{}\",\"lines\":{},\"check_time_ms\":{},\"stats\":{}}}",
        json_escape(&row.program),
        row.lines,
        json_ms(row.check_time),
        check_stats_json(&row.stats),
    )
}

fn tables(args: &[String]) -> ExitCode {
    let flags: Vec<String> = args
        .iter()
        .filter(|a| a.starts_with("--"))
        .cloned()
        .collect();
    let row = stq_corpus::tables::table1();
    let rows = stq_corpus::tables::table2();
    if has_flag(&flags, "--json") {
        let t2: Vec<String> = rows.iter().map(row_json).collect();
        println!(
            "{{\"command\":\"tables\",\"table1\":{},\"table2\":[{}]}}",
            row_json(&row),
            t2.join(","),
        );
        return ExitCode::SUCCESS;
    }
    println!("{}", stq_corpus::tables::render_table1(&row));
    println!("{}", stq_corpus::tables::render_table2(&rows));
    if has_flag(&flags, "--stats") {
        for r in std::iter::once(&row).chain(rows.iter()) {
            println!(
                "{}: {} expr(s) visited, {} case application(s), \
                 {} memo hit(s)/{} miss(es), {} restrict check(s)",
                r.program,
                r.stats.exprs_visited,
                r.stats.case_applications,
                r.stats.memo_hits,
                r.stats.memo_misses,
                r.stats.restrict_checks
            );
        }
    }
    ExitCode::SUCCESS
}

// ----- checking as a service -----

/// Strips serve-specific flags (`--socket PATH`, `--tcp HOST:PORT`,
/// `--addr-file PATH`, `--stdio`, `--max-inflight N`, `--max-queue N`,
/// the supervision and wire-fault flags) out of `args` so the
/// remainder can go through the common [`session_from`] scan.
struct ServeArgs {
    socket: Option<String>,
    tcp: Option<String>,
    addr_file: Option<String>,
    stdio: bool,
    max_inflight: usize,
    max_queue: usize,
    supervise: bool,
    pid_file: Option<String>,
    watch_libs: bool,
    idle_timeout_ms: u64,
    max_line_bytes: usize,
    net_fault_seed: Option<u64>,
    net_fault_count: u64,
    net_fault_span: u64,
    rest: Vec<String>,
}

fn split_serve_args(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut out = ServeArgs {
        socket: None,
        tcp: None,
        addr_file: None,
        stdio: false,
        max_inflight: 32,
        max_queue: 1024,
        supervise: false,
        pid_file: None,
        watch_libs: false,
        idle_timeout_ms: 0,
        max_line_bytes: 1 << 20,
        net_fault_seed: None,
        net_fault_count: 32,
        net_fault_span: 256,
        rest: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--socket needs a path"))?;
                out.socket = Some(path.clone());
                i += 2;
            }
            "--tcp" => {
                let addr = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--tcp needs HOST:PORT"))?;
                out.tcp = Some(addr.clone());
                i += 2;
            }
            "--addr-file" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--addr-file needs a path"))?;
                out.addr_file = Some(path.clone());
                i += 2;
            }
            "--stdio" => {
                out.stdio = true;
                i += 1;
            }
            "--supervise" => {
                out.supervise = true;
                i += 1;
            }
            "--watch-libs" => {
                out.watch_libs = true;
                i += 1;
            }
            "--pid-file" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--pid-file needs a path"))?;
                out.pid_file = Some(path.clone());
                i += 2;
            }
            flag @ ("--max-inflight" | "--max-queue" | "--idle-timeout-ms"
            | "--max-line-bytes" | "--net-fault-seed" | "--net-fault-count"
            | "--net-fault-span") => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err(format!("{flag} needs a number")))?;
                let n: u64 = value
                    .parse()
                    .map_err(|_| usage_err(format!("{flag}: `{value}` is not a number")))?;
                match flag {
                    "--max-inflight" => out.max_inflight = n as usize,
                    "--max-queue" => out.max_queue = n as usize,
                    "--idle-timeout-ms" => out.idle_timeout_ms = n,
                    "--max-line-bytes" => out.max_line_bytes = n as usize,
                    "--net-fault-seed" => out.net_fault_seed = Some(n),
                    "--net-fault-count" => out.net_fault_count = n,
                    _ => out.net_fault_span = n,
                }
                i += 2;
            }
            other => {
                out.rest.push(other.to_owned());
                i += 1;
            }
        }
    }
    Ok(out)
}

/// Writes a small coordination file (`--pid-file`, `--addr-file`) via a
/// same-directory temp file plus `rename`, so a reader polling for it
/// only ever observes the file as absent or complete — never empty or
/// torn mid-write.
fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    let target = std::path::Path::new(path);
    let mut tmp = target.to_path_buf();
    let name = target
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_owned());
    tmp.set_file_name(format!(".{name}.tmp.{}", std::process::id()));
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, target).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

/// `stqc serve`: the resident checking daemon (see `docs/serving.md`).
/// `--deadline-ms` bounds the daemon's whole lifetime; SIGINT (or the
/// lapsed deadline) drains in-flight work cooperatively, persists the
/// cache, and exits 5. A client `shutdown` request exits 0.
fn serve(args: &[String]) -> ExitCode {
    let serve_args = match split_serve_args(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    if serve_args.supervise {
        #[cfg(unix)]
        {
            return supervise(args, &serve_args);
        }
        #[cfg(not(unix))]
        {
            return fail(usage_err("--supervise requires unix"));
        }
    }
    let Cli {
        session,
        rest,
        budget,
        retry,
        jobs,
        cache_dir,
        deadline_ms,
        qual_files,
        ..
    } = match session_from(&serve_args.rest) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    if let Some(stray) = rest.first() {
        return fail(usage_err(format!("serve: unexpected argument `{stray}`")));
    }
    if serve_args.socket.is_none() && serve_args.tcp.is_none() && !serve_args.stdio {
        return fail(usage_err("serve needs --socket PATH, --tcp HOST:PORT, or --stdio"));
    }
    if serve_args.stdio && (serve_args.socket.is_some() || serve_args.tcp.is_some()) {
        return fail(usage_err("--stdio excludes --socket and --tcp"));
    }
    if let Some(pid_file) = &serve_args.pid_file {
        if let Err(e) = write_atomic(pid_file, &format!("{}\n", std::process::id())) {
            return fail(input_err(format!("cannot write {pid_file}: {e}")));
        }
    }
    let cancel = run_token(deadline_ms);
    let cfg = stq_core::ServeConfig {
        jobs,
        max_inflight: serve_args.max_inflight,
        max_queue: serve_args.max_queue,
        cache_dir: cache_dir.map(std::path::PathBuf::from),
        budget,
        retry,
        prove_jobs: 1,
        idle_timeout: match serve_args.idle_timeout_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
        max_line_bytes: serve_args.max_line_bytes,
        netfault: serve_args.net_fault_seed.map(|seed| {
            stq_util::netfault::NetFaultPlan::seeded(
                seed,
                serve_args.net_fault_count as usize,
                serve_args.net_fault_span,
            )
        }),
        qual_files,
        watch_libs: serve_args.watch_libs,
    };
    let server = match stq_core::Server::new(session, cfg, cancel) {
        Ok(s) => std::sync::Arc::new(s),
        Err(e) => return fail(input_err(format!("cannot start server: {e}"))),
    };
    let _watcher = server.spawn_lib_watcher();
    let kind = if serve_args.stdio {
        server.run_stdio()
    } else {
        #[cfg(unix)]
        {
            // Bind TCP here (not in the server) so `--tcp 127.0.0.1:0`
            // can report the kernel-assigned port before serving; the
            // bound address goes to stderr and, for scripts, to
            // `--addr-file`.
            let tcp_listener = match &serve_args.tcp {
                Some(addr) => match std::net::TcpListener::bind(addr.as_str()) {
                    Ok(l) => Some(l),
                    Err(e) => return fail(input_err(format!("serve: cannot bind {addr}: {e}"))),
                },
                None => None,
            };
            let mut endpoints: Vec<String> = Vec::new();
            if let Some(path) = &serve_args.socket {
                endpoints.push(path.clone());
            }
            if let Some(listener) = &tcp_listener {
                match listener.local_addr() {
                    Ok(addr) => endpoints.push(format!("tcp:{addr}")),
                    Err(e) => return fail(input_err(format!("serve: tcp addr: {e}"))),
                }
            }
            eprintln!("stqc: serving on {}", endpoints.join(" and "));
            if let Some(addr_file) = &serve_args.addr_file {
                let bound = tcp_listener
                    .as_ref()
                    .and_then(|l| l.local_addr().ok())
                    .map(|a| a.to_string())
                    .or_else(|| serve_args.socket.clone())
                    .unwrap_or_default();
                if let Err(e) = write_atomic(addr_file, &format!("{bound}\n")) {
                    return fail(input_err(format!("cannot write {addr_file}: {e}")));
                }
            }
            let socket_path = serve_args.socket.as_ref().map(std::path::Path::new);
            match server.run_multi(socket_path, tcp_listener) {
                Ok(kind) => kind,
                Err(e) => return fail(input_err(format!("serve: {e}"))),
            }
        }
        #[cfg(not(unix))]
        {
            return fail(usage_err("--socket/--tcp require unix; use --stdio"));
        }
    };
    match kind {
        stq_core::ShutdownKind::Requested => ExitCode::SUCCESS,
        stq_core::ShutdownKind::Interrupted => ExitCode::from(EXIT_INTERRUPTED),
    }
}

/// `stqc serve --supervise`: runs the worker daemon as a child process
/// and restarts it when it dies abnormally (crash, SIGKILL, panic).
/// Deliberate exits — requested shutdown (0), interrupted (5), usage or
/// input errors (2, 3) — propagate instead of restarting. Restarts are
/// rate-limited: each quick death (under 5s) doubles a backoff capped
/// at 2s, and five consecutive quick deaths give up with exit 4.
///
/// A `--cache-dir` worker persists every conclusive verdict eagerly, so
/// the restarted worker reloads a warm cache (see `docs/robustness.md`).
#[cfg(unix)]
fn supervise(args: &[String], serve_args: &ServeArgs) -> ExitCode {
    use std::time::Instant;

    if serve_args.stdio {
        return fail(usage_err("--supervise needs --socket, not --stdio"));
    }
    if serve_args.socket.is_none() {
        return fail(usage_err("--supervise needs --socket PATH"));
    }
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => return fail(input_err(format!("cannot locate stqc: {e}"))),
    };
    let worker_args: Vec<&String> = args.iter().filter(|a| *a != "--supervise").collect();
    let cancel = CancelToken::new();
    interrupt::install(&cancel);
    let mut quick_deaths = 0u32;
    let mut restarts = 0u64;
    loop {
        let mut child = match std::process::Command::new(&exe)
            .arg("serve")
            .args(&worker_args)
            .spawn()
        {
            Ok(c) => c,
            Err(e) => return fail(input_err(format!("cannot spawn worker: {e}"))),
        };
        if let Some(pid_file) = &serve_args.pid_file {
            if let Err(e) = write_atomic(pid_file, &format!("{}\n", child.id())) {
                eprintln!("stqc: supervisor: cannot write {pid_file}: {e}");
            }
        }
        let born = Instant::now();
        let mut forwarded = false;
        // Poll rather than block so SIGINT can be forwarded promptly.
        let status = loop {
            if cancel.is_cancelled() && !forwarded {
                forwarded = true;
                sig::send(child.id(), sig::SIGINT);
            }
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => return fail(input_err(format!("supervisor wait failed: {e}"))),
            }
        };
        match status.code() {
            Some(0) => return ExitCode::SUCCESS,
            Some(code @ (2 | 3)) => {
                eprintln!("stqc: supervisor: worker config error (exit {code}); not restarting");
                return ExitCode::from(code as u8);
            }
            Some(5) => return ExitCode::from(EXIT_INTERRUPTED),
            _ if forwarded => return ExitCode::from(EXIT_INTERRUPTED),
            abnormal => {
                restarts += 1;
                if born.elapsed() < Duration::from_secs(5) {
                    quick_deaths += 1;
                } else {
                    quick_deaths = 0;
                }
                if quick_deaths >= 5 {
                    eprintln!(
                        "stqc: supervisor: worker died {quick_deaths} times in quick \
                         succession; giving up"
                    );
                    return ExitCode::from(EXIT_CRASH);
                }
                let how = match abnormal {
                    Some(code) => format!("exit {code}"),
                    None => "killed by a signal".to_owned(),
                };
                let backoff =
                    Duration::from_millis(100 * (1 << quick_deaths.min(4))).min(Duration::from_secs(2));
                eprintln!(
                    "stqc: supervisor: worker died ({how}); restart #{restarts} in {}ms",
                    backoff.as_millis()
                );
                std::thread::sleep(backoff);
            }
        }
    }
}

/// `stqc call`: one request to a serve daemon over the self-healing
/// [`stq_core::Client`]. The raw attributed response line is printed to
/// stdout; the exit code mirrors the one-shot commands (see
/// `docs/serving.md` for the mapping). By default the historical thin
/// behavior is preserved — one connect attempt, no retries, no
/// client-side deadline; `--connect-timeout-ms`, `--retries`, and
/// `--call-deadline-ms` opt into healing. An unreachable daemon (or an
/// exhausted budget with no attributed answer) exits 6.
#[cfg(unix)]
fn call(args: &[String]) -> ExitCode {
    use stq_util::json::Json;

    let mut endpoints: Vec<stq_core::Endpoint> = Vec::new();
    let mut deadline_ms: Option<u64> = None;
    let mut connect_timeout_ms = 0u64;
    let mut call_deadline_ms: Option<u64> = None;
    let mut retries = 0u32;
    let mut json_out = false;
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                let Some(path) = args.get(i + 1) else {
                    return fail(usage_err("--socket needs a path"));
                };
                endpoints.push(stq_core::Endpoint::Unix(path.into()));
                i += 2;
            }
            "--tcp" => {
                let Some(addr) = args.get(i + 1) else {
                    return fail(usage_err("--tcp needs HOST:PORT"));
                };
                endpoints.push(stq_core::Endpoint::Tcp(addr.clone()));
                i += 2;
            }
            "--endpoint" => {
                let Some(spec) = args.get(i + 1) else {
                    return fail(usage_err(
                        "--endpoint needs a socket path or [tcp:]HOST:PORT",
                    ));
                };
                endpoints.push(stq_core::Endpoint::parse(spec));
                i += 2;
            }
            "--json" => {
                json_out = true;
                i += 1;
            }
            flag @ ("--deadline-ms" | "--connect-timeout-ms" | "--call-deadline-ms"
            | "--retries") => {
                let Some(value) = args.get(i + 1) else {
                    return fail(usage_err(format!("{flag} needs a number")));
                };
                let Ok(n) = value.parse::<u64>() else {
                    return fail(usage_err(format!("{flag}: `{value}` is not a number")));
                };
                match flag {
                    "--deadline-ms" => deadline_ms = Some(n),
                    "--connect-timeout-ms" => connect_timeout_ms = n,
                    "--call-deadline-ms" => call_deadline_ms = Some(n),
                    _ => retries = n.min(u64::from(u32::MAX)) as u32,
                }
                i += 2;
            }
            other => {
                positional.push(other.to_owned());
                i += 1;
            }
        }
    }
    if endpoints.is_empty() {
        return fail(usage_err(
            "call needs at least one of --socket PATH, --tcp HOST:PORT, or --endpoint SPEC",
        ));
    }
    let tried = endpoints
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let Some(method) = positional.first() else {
        return fail(usage_err(
            "call needs a METHOD (define_qualifiers, check, prove, reload, stats, health, \
             shutdown)",
        ));
    };
    let params = match positional.get(1) {
        Some(raw) => match Json::parse(raw) {
            Ok(p @ Json::Obj(_)) => Some(p.to_string()),
            Ok(_) => return fail(usage_err("PARAMS must be a JSON object")),
            Err(e) => return fail(usage_err(format!("PARAMS is not valid JSON: {e}"))),
        },
        None => None,
    };
    let mut client = stq_core::Client::new(stq_core::ClientConfig {
        endpoints,
        connect_timeout: Duration::from_millis(connect_timeout_ms),
        call_deadline: call_deadline_ms.map(Duration::from_millis),
        max_retries: retries,
        ..stq_core::ClientConfig::default()
    });
    let emit = |outcome: &stq_core::CallOutcome, client: &stq_core::Client| {
        if json_out {
            let s = client.stats();
            println!(
                "{{\"response\":{},\"client\":{{\"retries\":{},\"reconnects\":{},\
                 \"resends\":{},\"failovers\":{},\"endpoints_tried\":{},\
                 \"alien_dropped\":{},\"corrupt_lines\":{}}}}}",
                outcome.raw,
                s.retries,
                s.reconnects,
                s.resends,
                s.failovers,
                s.endpoints_tried,
                s.alien_dropped,
                s.corrupt_lines
            );
        } else {
            println!("{}", outcome.raw);
        }
    };
    let outcome = match client.call(method, params.as_deref(), deadline_ms) {
        Ok(outcome) => outcome,
        Err(e @ stq_core::CallError::Ambiguous(_)) => {
            eprintln!("stqc: call: {e}");
            return ExitCode::from(EXIT_CRASH);
        }
        Err(e) => {
            eprintln!("stqc: call: {e}");
            eprintln!(
                "stqc: is the daemon running? endpoint(s) tried: {tried}; start one with \
                 `stqc serve --socket PATH` (or `stqc serve --tcp HOST:PORT`)"
            );
            return ExitCode::from(EXIT_UNREACHABLE);
        }
    };
    emit(&outcome, &client);
    let doc = outcome.doc;
    if doc.get("ok").and_then(Json::as_bool) != Some(true) {
        let code = doc
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or("invalid");
        return ExitCode::from(match code {
            "input" => EXIT_INPUT,
            "overloaded" => EXIT_CRASH,
            "shutting-down" => {
                // The whole endpoint list was exhausted while every
                // daemon drained: nothing is left to answer, which is
                // the unreachable contract (exit 6), not a generic 4.
                eprintln!(
                    "stqc: call: every endpoint is shutting down; endpoint(s) tried: {tried}"
                );
                EXIT_UNREACHABLE
            }
            _ => EXIT_USAGE,
        });
    }
    let result = doc.get("result");
    let field = |name: &str| result.and_then(|r| r.get(name)).and_then(Json::as_bool);
    match method.as_str() {
        "prove" if field("interrupted") == Some(true) => ExitCode::from(EXIT_INTERRUPTED),
        "prove" if field("all_sound") == Some(false) => ExitCode::from(EXIT_UNSOUND),
        "check" if field("clean") == Some(false) => ExitCode::from(EXIT_UNSOUND),
        _ => ExitCode::SUCCESS,
    }
}

#[cfg(not(unix))]
fn call(_args: &[String]) -> ExitCode {
    fail(usage_err("call requires unix sockets"))
}

/// `stqc bench-serve`: measures warm-daemon throughput against the
/// one-shot process baseline and records both in `BENCH_serve.json`
/// (schema in `docs/telemetry.md`). Fails (exit 4) if the daemon does
/// not clear a 5x requests/sec advantage — that margin is the point of
/// serving (see `docs/performance.md`).
#[cfg(unix)]
fn bench_serve(args: &[String]) -> ExitCode {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use std::time::Instant;
    use stq_util::json::Json;

    let mut clients = 8usize;
    let mut requests = 20usize;
    let mut oneshot = 4usize;
    let mut idle_conns = 64usize;
    let mut jobs = stq_util::pool::default_jobs();
    let mut out = "BENCH_serve.json".to_owned();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    return fail(usage_err("--out needs a path"));
                };
                out = path.clone();
                i += 2;
            }
            flag @ ("--clients" | "--requests" | "--oneshot" | "--idle-conns" | "--jobs") => {
                let Some(value) = args.get(i + 1) else {
                    return fail(usage_err(format!("{flag} needs a number")));
                };
                let Ok(n) = value.parse::<usize>() else {
                    return fail(usage_err(format!("{flag}: `{value}` is not a number")));
                };
                match flag {
                    "--clients" => clients = n.clamp(1, 64),
                    "--requests" => requests = n.clamp(1, 10_000),
                    "--oneshot" => oneshot = n.clamp(1, 64),
                    "--idle-conns" => idle_conns = n.min(1024),
                    _ => jobs = if n == 0 { stq_util::pool::default_jobs() } else { n.min(256) },
                }
                i += 2;
            }
            other => {
                return fail(usage_err(format!("bench-serve: unknown argument `{other}`")));
            }
        }
    }

    let socket = std::env::temp_dir().join(format!("stqc-bench-{}.sock", std::process::id()));
    let _ = fs::remove_file(&socket);
    let cfg = stq_core::ServeConfig {
        jobs,
        ..stq_core::ServeConfig::default()
    };
    let server = match stq_core::Server::new(Session::with_builtins(), cfg, CancelToken::new()) {
        Ok(s) => Arc::new(s),
        Err(e) => return fail(input_err(format!("cannot start server: {e}"))),
    };
    // One daemon, both transports: the reactor multiplexes the Unix
    // socket and a loopback TCP listener in the same event loop.
    let tcp_listener = match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        Err(e) => return fail(input_err(format!("cannot bind loopback tcp: {e}"))),
    };
    let tcp_addr = match tcp_listener.local_addr() {
        Ok(a) => a.to_string(),
        Err(e) => return fail(input_err(format!("tcp addr: {e}"))),
    };
    let server_thread = {
        let server = Arc::clone(&server);
        let socket = socket.clone();
        std::thread::spawn(move || server.run_multi(Some(&socket), Some(tcp_listener)))
    };
    // Wait for the daemon to bind.
    let bound_by = Instant::now() + Duration::from_secs(10);
    loop {
        if UnixStream::connect(&socket).is_ok() {
            break;
        }
        if Instant::now() > bound_by {
            return fail(input_err("bench server never bound its socket"));
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let prove_line = "{\"id\":1,\"method\":\"prove\"}\n";
    let roundtrip = |stream: &mut UnixStream, reader: &mut BufReader<UnixStream>| -> Result<Json, CliError> {
        stream
            .write_all(prove_line.as_bytes())
            .map_err(|e| input_err(format!("bench request failed: {e}")))?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| input_err(format!("bench response failed: {e}")))?;
        Json::parse(line.trim()).map_err(|e| input_err(format!("bench response unparseable: {e}")))
    };
    let cache_misses = |doc: &Json| -> u64 {
        doc.get("result")
            .and_then(|r| r.get("cache"))
            .and_then(|c| c.get("misses"))
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX)
    };

    // Warm the resident cache with one full prove, and note the miss
    // count: the measured phase below must add zero.
    let warm_misses = {
        let mut stream = match UnixStream::connect(&socket) {
            Ok(s) => s,
            Err(e) => return fail(input_err(format!("cannot connect: {e}"))),
        };
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(e) => return fail(input_err(format!("cannot clone: {e}"))),
        });
        let doc = match roundtrip(&mut stream, &mut reader) {
            Ok(d) => d,
            Err(e) => return fail(e),
        };
        if doc.get("ok").and_then(Json::as_bool) != Some(true) {
            return fail(input_err(format!("warmup prove failed: {doc}")));
        }
        cache_misses(&doc)
    };

    // Idle-connection dimension: `idle_conns` connections (half Unix,
    // half TCP) held open — but silent — through the measured phases.
    // Under the old thread-per-client accept loop each of these cost a
    // parked thread; under the reactor they cost a registered buffer.
    let mut idle_unix: Vec<UnixStream> = Vec::new();
    let mut idle_tcp: Vec<std::net::TcpStream> = Vec::new();
    for i in 0..idle_conns {
        if i % 2 == 0 {
            match UnixStream::connect(&socket) {
                Ok(s) => idle_unix.push(s),
                Err(e) => return fail(input_err(format!("idle connect: {e}"))),
            }
        } else {
            match std::net::TcpStream::connect(tcp_addr.as_str()) {
                Ok(s) => idle_tcp.push(s),
                Err(e) => return fail(input_err(format!("idle tcp connect: {e}"))),
            }
        }
    }

    // Measured phase, generic over the transport: `clients` concurrent
    // connections, each running `requests` sequential prove round-trips
    // against the warm daemon.
    type PhaseOutcome = Result<(Vec<f64>, u64, String), CliError>;
    fn measured_phase<S, C>(
        connect: C,
        clients: usize,
        requests: usize,
    ) -> Result<(Vec<f64>, u64, String, Duration), CliError>
    where
        S: std::io::Read + std::io::Write + Send + 'static,
        C: Fn() -> std::io::Result<(S, S)> + Send + Sync + Clone + 'static,
    {
        let started = std::time::Instant::now();
        let workers: Vec<std::thread::JoinHandle<PhaseOutcome>> = (0..clients)
            .map(|_| {
                let connect = connect.clone();
                std::thread::spawn(move || {
                    let (mut stream, read_half) =
                        connect().map_err(|e| input_err(format!("cannot connect: {e}")))?;
                    let mut reader = std::io::BufReader::new(read_half);
                    let mut latencies = Vec::with_capacity(requests);
                    let mut line = String::new();
                    // The measured loop must not burn the benched
                    // machine's CPU on client-side work: a cheap
                    // substring check per response, with the full JSON
                    // parse (for the cache ledger) only on each
                    // client's final response.
                    for _ in 0..requests {
                        let sent = std::time::Instant::now();
                        stream
                            .write_all("{\"id\":1,\"method\":\"prove\"}\n".as_bytes())
                            .map_err(|e| input_err(format!("bench request failed: {e}")))?;
                        line.clear();
                        reader
                            .read_line(&mut line)
                            .map_err(|e| input_err(format!("bench response failed: {e}")))?;
                        latencies.push(sent.elapsed().as_secs_f64() * 1000.0);
                        if !line.contains("\"ok\":true") {
                            return Err(input_err(format!(
                                "bench prove failed: {}",
                                line.trim()
                            )));
                        }
                    }
                    let doc = stq_util::json::Json::parse(line.trim())
                        .map_err(|e| input_err(format!("bench response unparseable: {e}")))?;
                    let last_misses = doc
                        .get("result")
                        .and_then(|r| r.get("cache"))
                        .and_then(|c| c.get("misses"))
                        .and_then(stq_util::json::Json::as_u64)
                        .unwrap_or(u64::MAX);
                    Ok((latencies, last_misses, line.trim().to_owned()))
                })
            })
            .collect();
        let mut latencies: Vec<f64> = Vec::with_capacity(clients * requests);
        let mut final_misses = 0u64;
        let mut sample = String::new();
        for handle in workers {
            match handle.join() {
                Ok(Ok((ls, misses, line))) => {
                    latencies.extend(ls);
                    final_misses = final_misses.max(misses);
                    sample = line;
                }
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(input_err("a bench client panicked")),
            }
        }
        Ok((latencies, final_misses, sample, started.elapsed()))
    }

    let unix_connect = {
        let socket = socket.clone();
        move || {
            let s = UnixStream::connect(&socket)?;
            let r = s.try_clone()?;
            Ok((s, r))
        }
    };
    let (mut latencies, unix_final_misses, unix_sample, served_elapsed) =
        match measured_phase(unix_connect, clients, requests) {
            Ok(x) => x,
            Err(e) => return fail(e),
        };
    let total_requests = clients * requests;
    let served_rps = total_requests as f64 / served_elapsed.as_secs_f64();

    // The same workload over TCP, against the same (still warm) daemon.
    let tcp_connect = {
        let addr = tcp_addr.clone();
        move || {
            let s = std::net::TcpStream::connect(addr.as_str())?;
            s.set_nodelay(true)?;
            let r = s.try_clone()?;
            Ok((s, r))
        }
    };
    let (mut tcp_latencies, tcp_final_misses, tcp_sample, tcp_elapsed) =
        match measured_phase(tcp_connect, clients, requests) {
            Ok(x) => x,
            Err(e) => return fail(e),
        };
    let tcp_rps = total_requests as f64 / tcp_elapsed.as_secs_f64();
    let warm_miss_delta = unix_final_misses
        .max(tcp_final_misses)
        .saturating_sub(warm_misses);

    // Telemetry snapshot while every idle connection is still held
    // open, then the concurrent-duplicate workload: pipelined identical
    // uncached proves that must coalesce into one solver run.
    let stats_doc = |sock: &std::path::Path| -> Result<Json, CliError> {
        let mut stream =
            UnixStream::connect(sock).map_err(|e| input_err(format!("cannot connect: {e}")))?;
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| input_err(format!("cannot clone: {e}")))?,
        );
        stream
            .write_all(b"{\"id\":7,\"method\":\"stats\"}\n")
            .map_err(|e| input_err(format!("stats request failed: {e}")))?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| input_err(format!("stats response failed: {e}")))?;
        Json::parse(line.trim()).map_err(|e| input_err(format!("stats unparseable: {e}")))
    };
    let stat_field = |doc: &Json, path: &[&str]| -> u64 {
        let mut cur = doc.get("result");
        for key in path {
            cur = cur.and_then(|v| v.get(key));
        }
        cur.and_then(Json::as_u64).unwrap_or(0)
    };
    let before = match stats_doc(&socket) {
        Ok(d) => d,
        Err(e) => return fail(e),
    };
    let open_connections = stat_field(&before, &["open_connections"]);
    let dedup_before = stat_field(&before, &["dedup_hits"]);

    let burst = 4usize;
    let dedup_identical = {
        let mut stream = match UnixStream::connect(&socket) {
            Ok(s) => s,
            Err(e) => return fail(input_err(format!("cannot connect: {e}"))),
        };
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(e) => return fail(input_err(format!("cannot clone: {e}"))),
        });
        let mut req = String::new();
        for id in 0..burst {
            req.push_str(&format!(
                "{{\"id\":{id},\"method\":\"prove\",\"params\":{{\"cache\":false}}}}\n"
            ));
        }
        if let Err(e) = stream.write_all(req.as_bytes()) {
            return fail(input_err(format!("burst request failed: {e}")));
        }
        let mut bodies: Vec<String> = Vec::new();
        for _ in 0..burst {
            let mut line = String::new();
            if let Err(e) = reader.read_line(&mut line) {
                return fail(input_err(format!("burst response failed: {e}")));
            }
            if !line.contains("\"ok\":true") {
                return fail(input_err(format!("burst prove failed: {}", line.trim())));
            }
            // Strip the per-requester id: everything after the first
            // comma must be byte-identical across the fan-out.
            let trimmed = line.trim();
            bodies.push(trimmed[trimmed.find(',').unwrap_or(0)..].to_owned());
        }
        bodies.windows(2).all(|w| w[0] == w[1])
    };
    let after = match stats_doc(&socket) {
        Ok(d) => d,
        Err(e) => return fail(e),
    };
    let dedup_hits = stat_field(&after, &["dedup_hits"]).saturating_sub(dedup_before);
    let reactor_polls = stat_field(&after, &["reactor", "polls"]);
    let reactor_wakeups = stat_field(&after, &["reactor", "wakeups"]);
    drop(idle_unix);
    drop(idle_tcp);

    // Shut the daemon down cleanly before the one-shot baseline so it
    // is not competing for cores.
    {
        if let Ok(mut stream) = UnixStream::connect(&socket) {
            let _ = stream.write_all(b"{\"id\":99,\"method\":\"shutdown\"}\n");
            let mut line = String::new();
            let _ = BufReader::new(stream).read_line(&mut line);
        }
        let _ = server_thread.join();
    }

    // One-shot baseline: the same prove, paying full process startup
    // every time, with the same concurrency available.
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => return fail(input_err(format!("cannot locate stqc: {e}"))),
    };
    let oneshot_started = Instant::now();
    let spawns: Vec<std::thread::JoinHandle<bool>> = (0..oneshot)
        .map(|_| {
            let exe = exe.clone();
            std::thread::spawn(move || {
                std::process::Command::new(exe)
                    .arg("prove")
                    .stdout(std::process::Stdio::null())
                    .stderr(std::process::Stdio::null())
                    .status()
                    .is_ok_and(|s| s.success())
            })
        })
        .collect();
    let mut oneshot_ok = true;
    for handle in spawns {
        oneshot_ok &= handle.join().unwrap_or(false);
    }
    let oneshot_elapsed = oneshot_started.elapsed();
    if !oneshot_ok {
        return fail(input_err("a one-shot baseline `stqc prove` failed"));
    }
    let oneshot_rps = oneshot as f64 / oneshot_elapsed.as_secs_f64();
    let speedup = served_rps / oneshot_rps;

    // Verdict byte-identity: the daemon's per-qualifier verdict array
    // over both transports must match a one-shot `stqc prove --json`
    // run (same `qual_report_json` rendering on both paths).
    let oneshot_verdicts = match std::process::Command::new(&exe)
        .args(["prove", "--json"])
        .stderr(std::process::Stdio::null())
        .output()
    {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).into_owned(),
        Ok(o) => {
            return fail(input_err(format!(
                "one-shot `stqc prove --json` failed: {}",
                o.status
            )))
        }
        Err(e) => return fail(input_err(format!("cannot run one-shot prove: {e}"))),
    };
    // Canonical verdict digest: names, verdicts, and per-obligation
    // proved/skipped flags — never timings or counters, which
    // legitimately differ run to run (chaos-serve draws the same line).
    let verdict_digest = |raw: &str, nested: bool| -> String {
        let Ok(doc) = Json::parse(raw.trim()) else {
            return String::new();
        };
        let base = if nested { doc.get("result").cloned() } else { Some(doc) };
        let Some(Json::Arr(quals)) = base.and_then(|r| r.get("qualifiers").cloned()) else {
            return String::new();
        };
        quals
            .iter()
            .map(|q| {
                let obls = match q.get("obligations") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|o| {
                            let proved =
                                o.get("proved").and_then(Json::as_bool) == Some(true);
                            let skipped =
                                o.get("skipped").and_then(Json::as_bool) == Some(true);
                            match (proved, skipped) {
                                (true, _) => '+',
                                (false, true) => 's',
                                (false, false) => '-',
                            }
                        })
                        .collect::<String>(),
                    _ => String::new(),
                };
                format!(
                    "{}={}:{obls}",
                    q.get("name").and_then(Json::as_str).unwrap_or("?"),
                    q.get("verdict").and_then(Json::as_str).unwrap_or("?"),
                )
            })
            .collect::<Vec<_>>()
            .join(";")
    };
    let oneshot_quals = verdict_digest(&oneshot_verdicts, false);
    let verdicts_identical = !oneshot_quals.is_empty()
        && verdict_digest(&unix_sample, true) == oneshot_quals
        && verdict_digest(&tcp_sample, true) == oneshot_quals;

    fn pct(sorted: &[f64], p: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    tcp_latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let report = format!(
        "{{\"bench\":\"serve\",\"clients\":{clients},\"requests_per_client\":{requests},\
         \"total_requests\":{total_requests},\"idle_connections\":{idle_conns},\
         \"open_connections\":{open_connections},\"elapsed_ms\":{},\
         \"requests_per_sec\":{served_rps:.2},\
         \"latency_ms\":{{\"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3},\"max\":{:.3}}},\
         \"warm_cache_miss_delta\":{warm_miss_delta},\
         \"warm_cache_hit_rate\":{},\
         \"tcp\":{{\"total_requests\":{total_requests},\"elapsed_ms\":{},\
         \"requests_per_sec\":{tcp_rps:.2},\"latency_ms\":{{\"p50\":{:.3}}}}},\
         \"dedup\":{{\"burst\":{burst},\"dedup_hits\":{dedup_hits},\
         \"byte_identical\":{dedup_identical}}},\
         \"reactor\":{{\"polls\":{reactor_polls},\"wakeups\":{reactor_wakeups}}},\
         \"verdicts_identical\":{verdicts_identical},\
         \"oneshot\":{{\"runs\":{oneshot},\"elapsed_ms\":{},\"requests_per_sec\":{oneshot_rps:.2}}},\
         \"speedup\":{speedup:.2}}}",
        json_ms(served_elapsed),
        pct(&latencies, 0.50),
        pct(&latencies, 0.90),
        pct(&latencies, 0.99),
        latencies.last().copied().unwrap_or(0.0),
        if warm_miss_delta == 0 { "1.0" } else { "0.0" },
        json_ms(tcp_elapsed),
        pct(&tcp_latencies, 0.50),
        json_ms(oneshot_elapsed),
    );
    if fs::write(&out, format!("{report}\n")).is_err() {
        return fail(input_err(format!("cannot write {out}")));
    }
    println!("{report}");
    eprintln!(
        "bench-serve: {served_rps:.0} req/s warm unix, {tcp_rps:.0} req/s warm tcp vs \
         {oneshot_rps:.2} req/s one-shot ({speedup:.1}x), p50 {:.2}ms, warm misses \
         +{warm_miss_delta}, {open_connections} conns open, dedup +{dedup_hits}",
        pct(&latencies, 0.50)
    );
    if warm_miss_delta > 0 {
        eprintln!("stqc: bench-serve: the warm phase missed the cache {warm_miss_delta} time(s)");
        return ExitCode::from(EXIT_CRASH);
    }
    if speedup < 5.0 {
        eprintln!("stqc: bench-serve: speedup {speedup:.2}x is below the required 5x");
        return ExitCode::from(EXIT_CRASH);
    }
    if dedup_hits == 0 {
        eprintln!("stqc: bench-serve: the duplicate burst produced no dedup_hits");
        return ExitCode::from(EXIT_CRASH);
    }
    if !dedup_identical || !verdicts_identical {
        eprintln!(
            "stqc: bench-serve: verdict identity violated \
             (dedup_identical={dedup_identical}, verdicts_identical={verdicts_identical})"
        );
        return ExitCode::from(EXIT_CRASH);
    }
    ExitCode::SUCCESS
}

#[cfg(not(unix))]
fn bench_serve(_args: &[String]) -> ExitCode {
    fail(usage_err("bench-serve requires unix sockets"))
}

/// One entry of the chaos campaign's deterministic request schedule.
#[cfg(unix)]
struct ChaosRequest {
    method: &'static str,
    params: Option<String>,
}

/// Generates the seeded request schedule: full and named proves, clean
/// and faulty checks, stats/health probes. Every method is idempotent
/// and read-only, so the canonical answers are independent of request
/// interleaving — which is what lets N concurrent clients be compared
/// against a sequential fault-free baseline.
#[cfg(unix)]
fn chaos_schedule(seed: u64, count: usize) -> Vec<ChaosRequest> {
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    const NAMES: [&str; 8] = [
        "pos", "neg", "nonzero", "nonnull", "untainted", "tainted", "unique", "unaliased",
    ];
    const CLEAN: &str = "int pos f() { return 7; }";
    const UNCLEAN: &str = "int pos f(int a) { return a; }";
    const BROKEN: &str = "int f( {";
    let mut state = seed ^ 0xC4A0_5057;
    (0..count)
        .map(|_| {
            state = splitmix64(state);
            let r = state;
            match r % 8 {
                0 | 1 => ChaosRequest { method: "prove", params: None },
                2 => ChaosRequest {
                    method: "prove",
                    params: Some(format!(
                        "{{\"names\":[\"{}\"]}}",
                        NAMES[(r >> 8) as usize % NAMES.len()]
                    )),
                },
                3 => ChaosRequest {
                    method: "prove",
                    params: Some(format!(
                        "{{\"names\":[\"{}\",\"{}\"]}}",
                        NAMES[(r >> 8) as usize % NAMES.len()],
                        NAMES[(r >> 16) as usize % NAMES.len()]
                    )),
                },
                4 => ChaosRequest {
                    method: "check",
                    params: Some(format!("{{\"source\":\"{}\"}}", json_escape(CLEAN))),
                },
                5 => ChaosRequest {
                    method: "check",
                    params: Some(format!("{{\"source\":\"{}\"}}", json_escape(UNCLEAN))),
                },
                6 => ChaosRequest {
                    method: "check",
                    params: Some(format!("{{\"source\":\"{}\"}}", json_escape(BROKEN))),
                },
                _ => ChaosRequest {
                    method: if (r >> 8) & 1 == 0 { "stats" } else { "health" },
                    params: None,
                },
            }
        })
        .collect()
}

/// Canonicalizes one response for baseline comparison: only the
/// semantic payload (verdicts, cleanliness, error class) — never
/// timings, counters, or cache telemetry, which legitimately differ
/// between the baseline and the chaos phase.
#[cfg(unix)]
fn chaos_canon(method: &str, doc: &stq_util::json::Json) -> String {
    use stq_util::json::Json;
    if doc.get("ok").and_then(Json::as_bool) != Some(true) {
        let code = doc
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or("?");
        return format!("error:{code}");
    }
    let result = doc.get("result");
    let arr_len = |name: &str| -> usize {
        match result.and_then(|r| r.get(name)) {
            Some(Json::Arr(items)) => items.len(),
            _ => 0,
        }
    };
    match method {
        "prove" => {
            let all_sound = result.and_then(|r| r.get("all_sound")).and_then(Json::as_bool);
            let quals = match result.and_then(|r| r.get("qualifiers")) {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|q| {
                        format!(
                            "{}={}",
                            q.get("name").and_then(Json::as_str).unwrap_or("?"),
                            q.get("verdict").and_then(Json::as_str).unwrap_or("?"),
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(","),
                _ => String::new(),
            };
            format!("prove:all_sound={all_sound:?};{quals}")
        }
        "check" => format!(
            "check:clean={:?};syntax={};diags={}",
            result.and_then(|r| r.get("clean")).and_then(Json::as_bool),
            arr_len("syntax_errors"),
            arr_len("diagnostics"),
        ),
        _ => "ok".to_owned(),
    }
}

/// `stqc chaos-serve`: the chaos soak oracle (see `docs/robustness.md`).
///
/// Phase 1 computes a fault-free baseline: a seeded request schedule is
/// run sequentially against an in-process daemon, and every answer is
/// canonicalized. Phase 2 spawns a *supervised* daemon with wire-fault
/// injection armed and drives the same schedule through N self-healing
/// clients concurrently (optionally SIGKILLing the worker mid-campaign
/// with `--kill-worker`). The oracle holds iff every request resolves
/// to exactly one attributed answer, every canonical answer matches the
/// baseline, and the warm proof cache never misses — across faults,
/// retries, and worker restarts. Results land in `BENCH_chaos.json`.
///
/// With `--daemons N` (N >= 2) the campaign instead runs against a
/// fleet of daemon processes sharing one proof-cache journal, and
/// `--kill-daemon` SIGKILLs a whole daemon mid-campaign — see
/// [`chaos_serve_multi`].
#[cfg(unix)]
fn chaos_serve(args: &[String]) -> ExitCode {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;
    use stq_util::json::Json;

    let mut seed = 7u64;
    let mut count = 200usize;
    let mut clients = 4usize;
    let mut daemons = 1usize;
    let mut kill_worker = false;
    let mut kill_daemon = false;
    let mut out = "BENCH_chaos.json".to_owned();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--kill-worker" => {
                kill_worker = true;
                i += 1;
            }
            "--kill-daemon" => {
                kill_daemon = true;
                i += 1;
            }
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    return fail(usage_err("--out needs a path"));
                };
                out = path.clone();
                i += 2;
            }
            flag @ ("--seed" | "--count" | "--clients" | "--daemons") => {
                let Some(value) = args.get(i + 1) else {
                    return fail(usage_err(format!("{flag} needs a number")));
                };
                let Ok(n) = value.parse::<u64>() else {
                    return fail(usage_err(format!("{flag}: `{value}` is not a number")));
                };
                match flag {
                    "--seed" => seed = n,
                    "--count" => count = (n as usize).clamp(1, 100_000),
                    "--daemons" => daemons = (n as usize).clamp(1, 8),
                    _ => clients = (n as usize).clamp(1, 64),
                }
                i += 2;
            }
            other => {
                return fail(usage_err(format!("chaos-serve: unknown argument `{other}`")));
            }
        }
    }
    if kill_daemon && daemons < 2 {
        return fail(usage_err("--kill-daemon needs --daemons 2 or more"));
    }
    if kill_worker && daemons >= 2 {
        return fail(usage_err("--kill-worker applies to the single-daemon mode; use --kill-daemon"));
    }

    let schedule = Arc::new(chaos_schedule(seed, count));
    let scratch = std::env::temp_dir().join(format!("stqc-chaos-{}", std::process::id()));
    if let Err(e) = fs::create_dir_all(&scratch) {
        return fail(input_err(format!("cannot create {}: {e}", scratch.display())));
    }
    let client_cfg = |endpoints: Vec<stq_core::Endpoint>, salt: u64| stq_core::ClientConfig {
        endpoints,
        connect_timeout: Duration::from_secs(20),
        call_deadline: Some(Duration::from_secs(300)),
        max_retries: 64,
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(50),
        seed: seed ^ salt,
    };
    let unix_ep =
        |socket: &std::path::Path| vec![stq_core::Endpoint::Unix(socket.to_path_buf())];

    // ----- phase 1: the fault-free baseline -----
    eprintln!("chaos-serve: baseline over {count} request(s)...");
    let base_socket = scratch.join("baseline.sock");
    let _ = fs::remove_file(&base_socket);
    let base_server = match stq_core::Server::new(
        Session::with_builtins(),
        stq_core::ServeConfig::default(),
        CancelToken::new(),
    ) {
        Ok(s) => Arc::new(s),
        Err(e) => return fail(input_err(format!("cannot start baseline server: {e}"))),
    };
    let base_thread = {
        let server = Arc::clone(&base_server);
        let socket = base_socket.clone();
        std::thread::spawn(move || server.run_unix(&socket))
    };
    let mut baseline: Vec<String> = Vec::with_capacity(count);
    {
        let mut client = stq_core::Client::new(client_cfg(unix_ep(&base_socket), 0xBA5E));
        for req in schedule.iter() {
            match client.call(req.method, req.params.as_deref(), None) {
                Ok(outcome) => baseline.push(chaos_canon(req.method, &outcome.doc)),
                Err(e) => return fail(input_err(format!("baseline request failed: {e}"))),
            }
        }
        if client.call("shutdown", None, None).is_err() {
            return fail(input_err("baseline shutdown failed"));
        }
    }
    let _ = base_thread.join();
    let baseline = Arc::new(baseline);

    if daemons >= 2 {
        return chaos_serve_multi(
            seed, count, clients, daemons, kill_daemon, &out, schedule, baseline, &scratch,
        );
    }

    // ----- phase 2: the supervised, faulted daemon -----
    let socket = scratch.join("chaos.sock");
    let pid_file = scratch.join("worker.pid");
    let cache_dir = scratch.join("cache");
    let _ = fs::remove_file(&socket);
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => return fail(input_err(format!("cannot locate stqc: {e}"))),
    };
    let nf_count = (count / 3).max(8);
    let nf_span = (count as u64).max(64);
    eprintln!(
        "chaos-serve: supervised daemon with {nf_count} fault(s) planned over \
         the first {nf_span} response write(s)..."
    );
    let mut daemon = match std::process::Command::new(&exe)
        .args(["serve", "--supervise"])
        .arg("--socket")
        .arg(&socket)
        .arg("--pid-file")
        .arg(&pid_file)
        .arg("--cache-dir")
        .arg(&cache_dir)
        .args(["--jobs", "2"])
        .args(["--net-fault-seed", &seed.to_string()])
        .args(["--net-fault-count", &nf_count.to_string()])
        .args(["--net-fault-span", &nf_span.to_string()])
        .stderr(std::process::Stdio::null())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => return fail(input_err(format!("cannot spawn supervised daemon: {e}"))),
    };
    // Everything from here on must kill the daemon on the way out.
    let give_up = |daemon: &mut std::process::Child, err: CliError| -> ExitCode {
        sig::send(daemon.id(), sig::SIGINT);
        let _ = daemon.wait();
        fail(err)
    };

    // Warm the worker's cache with one full prove; every conclusive
    // verdict is persisted eagerly, so from this point the journal on
    // disk is complete and a SIGKILL can never lose warm state.
    let mut warm_client = stq_core::Client::new(client_cfg(unix_ep(&socket), 0x3A4));
    if let Err(e) = warm_client.call("prove", None, None) {
        return give_up(&mut daemon, input_err(format!("warmup prove failed: {e}")));
    }
    let cache_misses = |doc: &Json| -> u64 {
        doc.get("result")
            .and_then(|r| r.get("cache"))
            .and_then(|c| c.get("misses"))
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX)
    };
    let warm_misses = match warm_client.call("stats", None, None) {
        Ok(outcome) => cache_misses(&outcome.doc),
        Err(e) => return give_up(&mut daemon, input_err(format!("warmup stats failed: {e}"))),
    };

    // The concurrent campaign: client `c` owns indices c, c+N, c+2N, …
    let resolved = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    type CampaignOutcome = Result<(Vec<(usize, String)>, stq_core::ClientStats), String>;
    let workers: Vec<std::thread::JoinHandle<CampaignOutcome>> = (0..clients)
        .map(|c| {
            let schedule = Arc::clone(&schedule);
            let socket = socket.clone();
            let resolved = Arc::clone(&resolved);
            let cfg = client_cfg(unix_ep(&socket), 0xC0_0000 + c as u64);
            std::thread::spawn(move || {
                let mut client = stq_core::Client::new(cfg);
                let mut answers = Vec::new();
                let mut idx = c;
                while idx < schedule.len() {
                    let req = &schedule[idx];
                    match client.call(req.method, req.params.as_deref(), None) {
                        Ok(outcome) => {
                            answers.push((idx, chaos_canon(req.method, &outcome.doc)));
                            resolved.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => return Err(format!("request #{idx} ({}): {e}", req.method)),
                    }
                    idx += clients;
                }
                Ok((answers, client.stats()))
            })
        })
        .collect();

    // Mid-campaign worker assassination: once half the requests have
    // resolved, SIGKILL the current worker and wait for the supervisor
    // to install a successor (observed as a pid-file change).
    let killer: Option<std::thread::JoinHandle<Result<u64, String>>> = kill_worker.then(|| {
        let resolved = Arc::clone(&resolved);
        let pid_file = pid_file.clone();
        let half = (count / 2).max(1) as u64;
        std::thread::spawn(move || {
            while resolved.load(Ordering::Relaxed) < half {
                std::thread::sleep(Duration::from_millis(5));
            }
            let old = fs::read_to_string(&pid_file)
                .map_err(|e| format!("cannot read {}: {e}", pid_file.display()))?;
            let pid: u32 = old
                .trim()
                .parse()
                .map_err(|_| format!("{} does not hold a pid", pid_file.display()))?;
            if !sig::send(pid, sig::SIGKILL) {
                return Err(format!("cannot SIGKILL worker {pid}"));
            }
            let respawned_by = Instant::now() + Duration::from_secs(30);
            loop {
                if let Ok(now) = fs::read_to_string(&pid_file) {
                    if !now.trim().is_empty() && now.trim() != old.trim() {
                        return Ok(1);
                    }
                }
                if Instant::now() > respawned_by {
                    return Err("the supervisor never restarted the killed worker".to_owned());
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    });

    let mut answers: Vec<Option<String>> = vec![None; count];
    let mut client_stats = stq_core::ClientStats::default();
    let mut campaign_err: Option<String> = None;
    for handle in workers {
        match handle.join() {
            Ok(Ok((per_client, stats))) => {
                for (idx, canon) in per_client {
                    answers[idx] = Some(canon);
                }
                client_stats.retries += stats.retries;
                client_stats.reconnects += stats.reconnects;
                client_stats.resends += stats.resends;
                client_stats.failovers += stats.failovers;
                client_stats.endpoints_tried += stats.endpoints_tried;
                client_stats.alien_dropped += stats.alien_dropped;
                client_stats.corrupt_lines += stats.corrupt_lines;
            }
            Ok(Err(e)) => campaign_err = Some(e),
            Err(_) => campaign_err = Some("a chaos client panicked".to_owned()),
        }
    }
    let elapsed = started.elapsed();
    let worker_restarts = match killer.map(std::thread::JoinHandle::join) {
        None => 0u64,
        Some(Ok(Ok(n))) => n,
        Some(Ok(Err(e))) => {
            campaign_err.get_or_insert(format!("kill-worker: {e}"));
            0
        }
        Some(Err(_)) => {
            campaign_err.get_or_insert("the killer thread panicked".to_owned());
            0
        }
    };
    if let Some(e) = campaign_err {
        return give_up(&mut daemon, input_err(format!("chaos campaign failed: {e}")));
    }

    // Post-campaign ledger: cache misses and fault counters from the
    // (possibly restarted) worker, then a clean shutdown through the
    // supervisor.
    let mut final_client = stq_core::Client::new(client_cfg(unix_ep(&socket), 0xF1A7));
    let (final_misses, injected, follow_hits, reloads) =
        match final_client.call("stats", None, None) {
            Ok(outcome) => {
                let injected = outcome
                    .doc
                    .get("result")
                    .and_then(|r| r.get("netfault"))
                    .and_then(|n| n.get("injected"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                (
                    cache_misses(&outcome.doc),
                    injected,
                    stats_counter(&outcome.doc, &["cache", "follow_hits"], 0),
                    stats_counter(&outcome.doc, &["reloads"], 0),
                )
            }
            Err(e) => return give_up(&mut daemon, input_err(format!("final stats failed: {e}"))),
        };
    // The shutdown *response* can itself be eaten by an armed wire
    // fault after the worker has already committed to exiting — so the
    // ack is best-effort; the daemon's own clean exit is the contract.
    let _ = final_client.call("shutdown", None, None);
    let clean_exit = {
        let exit_by = Instant::now() + Duration::from_secs(60);
        loop {
            match daemon.try_wait() {
                Ok(Some(status)) => break status.success(),
                Ok(None) if Instant::now() < exit_by => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                _ => {
                    sig::send(daemon.id(), sig::SIGINT);
                    let _ = daemon.wait();
                    break false;
                }
            }
        }
    };

    // The oracle. A restarted worker starts a fresh miss counter over
    // the persisted journal, so the warm rule is "zero misses since
    // restart"; an unkilled worker must add zero over its warm sample.
    let requests_resolved = answers.iter().filter(|a| a.is_some()).count();
    let verdict_mismatches: Vec<usize> = (0..count)
        .filter(|&i| answers[i].as_deref() != Some(baseline[i].as_str()))
        .collect();
    let warm_cache_miss_delta = if worker_restarts > 0 {
        final_misses
    } else {
        final_misses.saturating_sub(warm_misses)
    };
    for &i in verdict_mismatches.iter().take(5) {
        eprintln!(
            "chaos-serve: request #{i} diverged:\n  baseline: {}\n  chaos:    {}",
            baseline[i],
            answers[i].as_deref().unwrap_or("<unresolved>"),
        );
    }

    let report = format!(
        "{{\"bench\":\"chaos-serve\",\"seed\":{seed},\"count\":{count},\"clients\":{clients},\
         \"daemons\":1,\"daemon_killed\":false,\
         \"net_faults\":{{\"planned\":{nf_count},\"injected\":{injected}}},\
         \"requests_resolved\":{requests_resolved},\
         \"verdict_mismatches\":{},\
         \"client\":{{\"retries\":{},\"reconnects\":{},\"resends\":{},\
         \"failovers\":{},\"endpoints_tried\":{},\
         \"alien_lines_dropped\":{},\"corrupt_lines\":{}}},\
         \"warm_cache_miss_delta\":{warm_cache_miss_delta},\
         \"follow_hits\":{follow_hits},\"reloads\":{reloads},\
         \"worker_killed\":{kill_worker},\"worker_restarts\":{worker_restarts},\
         \"clean_shutdown\":{clean_exit},\
         \"elapsed_ms\":{},\"requests_per_sec\":{:.2}}}",
        verdict_mismatches.len(),
        client_stats.retries,
        client_stats.reconnects,
        client_stats.resends,
        client_stats.failovers,
        client_stats.endpoints_tried,
        client_stats.alien_dropped,
        client_stats.corrupt_lines,
        json_ms(elapsed),
        count as f64 / elapsed.as_secs_f64(),
    );
    if fs::write(&out, format!("{report}\n")).is_err() {
        return fail(input_err(format!("cannot write {out}")));
    }
    println!("{report}");
    let _ = fs::remove_dir_all(&scratch);
    eprintln!(
        "chaos-serve: {requests_resolved}/{count} resolved, {} mismatch(es), \
         {injected} fault(s) injected, {} retry(ies), {} reconnect(s), \
         warm misses +{warm_cache_miss_delta}{}",
        verdict_mismatches.len(),
        client_stats.retries,
        client_stats.reconnects,
        if kill_worker {
            format!(", worker killed and restarted {worker_restarts} time(s)")
        } else {
            String::new()
        },
    );
    if !verdict_mismatches.is_empty() {
        eprintln!("stqc: chaos-serve: answers diverged from the fault-free baseline");
        return ExitCode::from(EXIT_UNSOUND);
    }
    if requests_resolved != count {
        eprintln!("stqc: chaos-serve: not every request resolved to an attributed answer");
        return ExitCode::from(EXIT_CRASH);
    }
    if warm_cache_miss_delta > 0 {
        eprintln!("stqc: chaos-serve: the warm proof cache missed {warm_cache_miss_delta} time(s)");
        return ExitCode::from(EXIT_CRASH);
    }
    if worker_restarts == 0 && injected == 0 {
        eprintln!("stqc: chaos-serve: no faults were injected; the soak proved nothing");
        return ExitCode::from(EXIT_CRASH);
    }
    if kill_worker && worker_restarts == 0 {
        eprintln!("stqc: chaos-serve: the worker was never restarted");
        return ExitCode::from(EXIT_CRASH);
    }
    if !clean_exit {
        eprintln!("stqc: chaos-serve: the supervised daemon did not exit cleanly");
        return ExitCode::from(EXIT_CRASH);
    }
    ExitCode::SUCCESS
}

/// Pulls one `u64` counter out of a `stats` response document, walking
/// `result.<path...>`. `missing` is returned when the field is absent —
/// pick it so an absent counter fails the oracle rather than passing it.
#[cfg(unix)]
fn stats_counter(doc: &stq_util::json::Json, path: &[&str], missing: u64) -> u64 {
    let mut cur = doc.get("result");
    for key in path {
        cur = cur.and_then(|j| j.get(key));
    }
    cur.and_then(stq_util::json::Json::as_u64).unwrap_or(missing)
}

/// The multi-daemon leg of `stqc chaos-serve` (`--daemons N`): a fleet
/// of independent daemon processes shares one proof-cache journal, every
/// campaign client carries the whole fleet in its endpoint list (rotated
/// so primaries spread across daemons), and `--kill-daemon` SIGKILLs
/// daemon #0 outright mid-campaign — no supervisor, no restart; recovery
/// is the *clients'* job. The oracle demands what high availability
/// actually means: every request still resolves exactly once with
/// baseline-identical answers, a survivor serves the dead daemon's
/// proofs warm by following the shared journal (zero misses,
/// `follow_hits > 0`), a hot `reload` succeeds on the survivor, and
/// every surviving daemon shuts down cleanly.
#[cfg(unix)]
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn chaos_serve_multi(
    seed: u64,
    count: usize,
    clients: usize,
    daemons: usize,
    kill_daemon: bool,
    out: &str,
    schedule: std::sync::Arc<Vec<ChaosRequest>>,
    baseline: std::sync::Arc<Vec<String>>,
    scratch: &std::path::Path,
) -> ExitCode {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    let client_cfg = |endpoints: Vec<stq_core::Endpoint>, salt: u64| stq_core::ClientConfig {
        endpoints,
        connect_timeout: Duration::from_secs(20),
        call_deadline: Some(Duration::from_secs(300)),
        max_retries: 64,
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(50),
        seed: seed ^ salt,
    };
    let unix_ep =
        |socket: &std::path::Path| vec![stq_core::Endpoint::Unix(socket.to_path_buf())];

    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => return fail(input_err(format!("cannot locate stqc: {e}"))),
    };
    let cache_dir = scratch.join("cache");
    eprintln!(
        "chaos-serve: {daemons} daemons sharing one journal{}...",
        if kill_daemon { "; daemon #0 marked for assassination" } else { "" },
    );
    let mut sockets: Vec<std::path::PathBuf> = Vec::with_capacity(daemons);
    let mut fleet: Vec<std::process::Child> = Vec::with_capacity(daemons);
    for d in 0..daemons {
        let socket = scratch.join(format!("d{d}.sock"));
        let _ = fs::remove_file(&socket);
        let spawned = std::process::Command::new(&exe)
            .arg("serve")
            .arg("--socket")
            .arg(&socket)
            .arg("--cache-dir")
            .arg(&cache_dir)
            .args(["--jobs", "2"])
            .stderr(std::process::Stdio::null())
            .spawn();
        match spawned {
            Ok(child) => {
                sockets.push(socket);
                fleet.push(child);
            }
            Err(e) => {
                for mut child in fleet {
                    sig::send(child.id(), sig::SIGINT);
                    let _ = child.wait();
                }
                return fail(input_err(format!("cannot spawn daemon #{d}: {e}")));
            }
        }
    }
    let give_up = |fleet: &mut Vec<std::process::Child>, err: CliError| -> ExitCode {
        for child in fleet.iter_mut() {
            sig::send(child.id(), sig::SIGINT);
            let _ = child.wait();
        }
        fail(err)
    };

    // Warm daemon #0 — and only daemon #0 — with one full prove. Every
    // conclusive verdict persists eagerly, so once this call returns the
    // shared journal on disk is complete; the other daemons were never
    // proved at and can only answer warm by *following* that journal.
    let mut warm_client = stq_core::Client::new(client_cfg(unix_ep(&sockets[0]), 0x3A4));
    if let Err(e) = warm_client.call("prove", None, None) {
        return give_up(&mut fleet, input_err(format!("warmup prove failed: {e}")));
    }

    // The concurrent campaign: client `c` owns indices c, c+N, c+2N, …
    // and carries the whole fleet in its endpoint list, rotated so the
    // primaries differ across clients.
    let resolved = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    type CampaignOutcome = Result<(Vec<(usize, String)>, stq_core::ClientStats), String>;
    let workers: Vec<std::thread::JoinHandle<CampaignOutcome>> = (0..clients)
        .map(|c| {
            let schedule = Arc::clone(&schedule);
            let resolved = Arc::clone(&resolved);
            let endpoints: Vec<stq_core::Endpoint> = (0..daemons)
                .map(|k| stq_core::Endpoint::Unix(sockets[(c + k) % daemons].clone()))
                .collect();
            let cfg = client_cfg(endpoints, 0xC0_0000 + c as u64);
            std::thread::spawn(move || {
                let mut client = stq_core::Client::new(cfg);
                let mut answers = Vec::new();
                let mut idx = c;
                while idx < schedule.len() {
                    let req = &schedule[idx];
                    match client.call(req.method, req.params.as_deref(), None) {
                        Ok(outcome) => {
                            answers.push((idx, chaos_canon(req.method, &outcome.doc)));
                            resolved.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => return Err(format!("request #{idx} ({}): {e}", req.method)),
                    }
                    idx += clients;
                }
                Ok((answers, client.stats()))
            })
        })
        .collect();

    // Mid-campaign daemon assassination: once half the requests have
    // resolved, SIGKILL daemon #0 — the daemon that computed every proof.
    let victim_pid = fleet[0].id();
    let killer: Option<std::thread::JoinHandle<Result<(), String>>> = kill_daemon.then(|| {
        let resolved = Arc::clone(&resolved);
        let half = (count / 2).max(1) as u64;
        std::thread::spawn(move || {
            while resolved.load(Ordering::Relaxed) < half {
                std::thread::sleep(Duration::from_millis(5));
            }
            if sig::send(victim_pid, sig::SIGKILL) {
                Ok(())
            } else {
                Err(format!("cannot SIGKILL daemon {victim_pid}"))
            }
        })
    });

    let mut answers: Vec<Option<String>> = vec![None; count];
    let mut client_stats = stq_core::ClientStats::default();
    let mut campaign_err: Option<String> = None;
    for handle in workers {
        match handle.join() {
            Ok(Ok((per_client, stats))) => {
                for (idx, canon) in per_client {
                    answers[idx] = Some(canon);
                }
                client_stats.retries += stats.retries;
                client_stats.reconnects += stats.reconnects;
                client_stats.resends += stats.resends;
                client_stats.failovers += stats.failovers;
                client_stats.endpoints_tried += stats.endpoints_tried;
                client_stats.alien_dropped += stats.alien_dropped;
                client_stats.corrupt_lines += stats.corrupt_lines;
            }
            Ok(Err(e)) => campaign_err = Some(e),
            Err(_) => campaign_err = Some("a chaos client panicked".to_owned()),
        }
    }
    let elapsed = started.elapsed();
    match killer.map(std::thread::JoinHandle::join) {
        None | Some(Ok(Ok(()))) => {}
        Some(Ok(Err(e))) => {
            campaign_err.get_or_insert(format!("kill-daemon: {e}"));
        }
        Some(Err(_)) => {
            campaign_err.get_or_insert("the killer thread panicked".to_owned());
        }
    }
    if let Some(e) = campaign_err {
        return give_up(&mut fleet, input_err(format!("chaos campaign failed: {e}")));
    }

    // The survivor's ledger: its cache counters first (so a reload that
    // re-validates libraries cannot perturb the miss count under test),
    // then a hot reload — the fleet must serve across qualifier-library
    // swaps, not just crashes — then the reload counter.
    let survivor = &sockets[1];
    let mut final_client = stq_core::Client::new(client_cfg(unix_ep(survivor), 0xF1A7));
    let (survivor_misses, follow_hits) = match final_client.call("stats", None, None) {
        Ok(outcome) => (
            stats_counter(&outcome.doc, &["cache", "misses"], u64::MAX),
            stats_counter(&outcome.doc, &["cache", "follow_hits"], 0),
        ),
        Err(e) => return give_up(&mut fleet, input_err(format!("survivor stats failed: {e}"))),
    };
    if let Err(e) = final_client.call("reload", None, None) {
        return give_up(&mut fleet, input_err(format!("survivor reload failed: {e}")));
    }
    let reloads = match final_client.call("stats", None, None) {
        Ok(outcome) => stats_counter(&outcome.doc, &["reloads"], 0),
        Err(e) => return give_up(&mut fleet, input_err(format!("survivor stats failed: {e}"))),
    };

    // Shut the survivors down through the protocol; the killed daemon's
    // non-clean exit is the whole point, so only reap it.
    let mut clean_shutdowns = true;
    for (d, child) in fleet.iter_mut().enumerate() {
        if kill_daemon && d == 0 {
            let _ = child.wait();
            continue;
        }
        let mut client =
            stq_core::Client::new(client_cfg(unix_ep(&sockets[d]), 0x0FF0 + d as u64));
        if client.call("shutdown", None, None).is_err() {
            clean_shutdowns = false;
        }
        if !child.wait().ok().is_some_and(|s| s.success()) {
            clean_shutdowns = false;
        }
    }

    // The oracle.
    let requests_resolved = answers.iter().filter(|a| a.is_some()).count();
    let verdict_mismatches: Vec<usize> = (0..count)
        .filter(|&i| answers[i].as_deref() != Some(baseline[i].as_str()))
        .collect();
    for &i in verdict_mismatches.iter().take(5) {
        eprintln!(
            "chaos-serve: request #{i} diverged:\n  baseline: {}\n  chaos:    {}",
            baseline[i],
            answers[i].as_deref().unwrap_or("<unresolved>"),
        );
    }

    let report = format!(
        "{{\"bench\":\"chaos-serve\",\"seed\":{seed},\"count\":{count},\"clients\":{clients},\
         \"daemons\":{daemons},\"daemon_killed\":{kill_daemon},\
         \"net_faults\":{{\"planned\":0,\"injected\":0}},\
         \"requests_resolved\":{requests_resolved},\
         \"verdict_mismatches\":{},\
         \"client\":{{\"retries\":{},\"reconnects\":{},\"resends\":{},\
         \"failovers\":{},\"endpoints_tried\":{},\
         \"alien_lines_dropped\":{},\"corrupt_lines\":{}}},\
         \"warm_cache_miss_delta\":{survivor_misses},\
         \"follow_hits\":{follow_hits},\"reloads\":{reloads},\
         \"worker_killed\":false,\"worker_restarts\":0,\
         \"clean_shutdown\":{clean_shutdowns},\
         \"elapsed_ms\":{},\"requests_per_sec\":{:.2}}}",
        verdict_mismatches.len(),
        client_stats.retries,
        client_stats.reconnects,
        client_stats.resends,
        client_stats.failovers,
        client_stats.endpoints_tried,
        client_stats.alien_dropped,
        client_stats.corrupt_lines,
        json_ms(elapsed),
        count as f64 / elapsed.as_secs_f64(),
    );
    if fs::write(out, format!("{report}\n")).is_err() {
        return fail(input_err(format!("cannot write {out}")));
    }
    println!("{report}");
    let _ = fs::remove_dir_all(scratch);
    eprintln!(
        "chaos-serve: {requests_resolved}/{count} resolved across {daemons} daemon(s), \
         {} mismatch(es), {} failover(s), {follow_hits} follow hit(s), {reloads} reload(s){}",
        verdict_mismatches.len(),
        client_stats.failovers,
        if kill_daemon { ", daemon #0 killed" } else { "" },
    );
    if !verdict_mismatches.is_empty() {
        eprintln!("stqc: chaos-serve: answers diverged from the fault-free baseline");
        return ExitCode::from(EXIT_UNSOUND);
    }
    if requests_resolved != count {
        eprintln!("stqc: chaos-serve: not every request resolved to an attributed answer");
        return ExitCode::from(EXIT_CRASH);
    }
    if survivor_misses != 0 {
        eprintln!(
            "stqc: chaos-serve: the surviving daemon missed {survivor_misses} time(s); \
             the shared journal did not keep it warm"
        );
        return ExitCode::from(EXIT_CRASH);
    }
    if follow_hits == 0 {
        eprintln!("stqc: chaos-serve: the survivor never adopted a peer journal entry");
        return ExitCode::from(EXIT_CRASH);
    }
    if reloads == 0 {
        eprintln!("stqc: chaos-serve: the survivor never completed a hot reload");
        return ExitCode::from(EXIT_CRASH);
    }
    if kill_daemon && client_stats.failovers == 0 {
        eprintln!("stqc: chaos-serve: the daemon died but no client ever failed over");
        return ExitCode::from(EXIT_CRASH);
    }
    if !clean_shutdowns {
        eprintln!("stqc: chaos-serve: a surviving daemon did not exit cleanly");
        return ExitCode::from(EXIT_CRASH);
    }
    ExitCode::SUCCESS
}

#[cfg(not(unix))]
fn chaos_serve(_args: &[String]) -> ExitCode {
    fail(usage_err("chaos-serve requires unix sockets"))
}
