//! `stqc` — the semantic-type-qualifiers command-line tool.
//!
//! ```text
//! stqc prove [--quals FILE] [NAME]       prove qualifier soundness
//! stqc check [--quals FILE] [--flow-sensitive] FILE.c
//!                                        qualifier-check a program
//! stqc run [--entry NAME] FILE.c [INT..] instrument and execute
//! stqc infer --qual NAME FILE.c          infer annotations
//! stqc tables                            regenerate Tables 1 and 2
//! stqc show [--quals FILE] [NAME]        print qualifier definitions
//! ```
//!
//! Qualifier definitions from `--quals` are added on top of the paper's
//! builtin library.

use std::fs;
use std::process::ExitCode;
use stq_core::{CheckOptions, Session, Value, Verdict};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("prove") => prove(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("infer") => infer(&args[1..]),
        Some("tables") => tables(),
        Some("show") => show(&args[1..]),
        _ => {
            eprintln!(
                "usage: stqc <prove|check|run|infer|tables|show> [options]\n\
                 see `stqc --help` in the README for details"
            );
            ExitCode::from(2)
        }
    }
}

/// Builds a session from builtins plus any `--quals FILE` definitions,
/// returning it and the remaining (non-option) arguments.
fn session_from(args: &[String]) -> Result<(Session, Vec<String>, Vec<String>), String> {
    let mut session = Session::with_builtins();
    let mut rest = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quals" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| "--quals needs a file".to_owned())?;
                let src =
                    fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
                session
                    .define_qualifiers(&src)
                    .map_err(|e| format!("{path}: {e}"))?;
                i += 2;
            }
            flag if flag.starts_with("--") => {
                flags.push(flag.to_owned());
                i += 1;
            }
            other => {
                rest.push(other.to_owned());
                i += 1;
            }
        }
    }
    let wf = session.check_well_formed();
    if wf.has_errors() {
        return Err(format!("ill-formed qualifier definitions:\n{wf}"));
    }
    Ok((session, rest, flags))
}

fn fail(msg: String) -> ExitCode {
    eprintln!("stqc: {msg}");
    ExitCode::FAILURE
}

fn prove(args: &[String]) -> ExitCode {
    let (session, rest, _) = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    let reports = match rest.first() {
        Some(name) => match session.prove_sound(name) {
            Some(r) => vec![r],
            None => return fail(format!("unknown qualifier `{name}`")),
        },
        None => session.prove_all_sound(),
    };
    let mut ok = true;
    for r in &reports {
        println!("{r}");
        ok &= r.verdict != Verdict::Unsound;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn check(args: &[String]) -> ExitCode {
    let (session, rest, flags) = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    let Some(path) = rest.first() else {
        return fail("check needs a source file".to_owned());
    };
    let source = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return fail(format!("cannot read {path}: {e}")),
    };
    let program = match session.parse(&source) {
        Ok(p) => p,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    let options = CheckOptions {
        flow_sensitive: flags.iter().any(|f| f == "--flow-sensitive"),
    };
    let result = session.check_with(&program, options);
    for d in result.diags.iter() {
        eprintln!("{path}:{}", d.render(&source));
    }
    println!(
        "{path}: {} dereference(s), {} annotation(s), {} cast(s), {} qualifier error(s)",
        result.stats.dereferences,
        result.stats.annotations,
        result.stats.casts,
        result.stats.qualifier_errors
    );
    if result.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run(args: &[String]) -> ExitCode {
    let (session, mut rest, _) = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    // `--entry NAME`: session_from left NAME in rest; pull it back out.
    let mut entry_name = "main".to_owned();
    if let Some(pos) = args.iter().position(|a| a == "--entry") {
        if let Some(name) = args.get(pos + 1) {
            entry_name = name.clone();
            if let Some(i) = rest.iter().position(|r| r == name) {
                rest.remove(i);
            }
        }
    }
    let Some(path) = rest.first().cloned() else {
        return fail("run needs a source file".to_owned());
    };
    let source = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(format!("cannot read {path}: {e}")),
    };
    let program = match session.parse(&source) {
        Ok(p) => p,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    let call_args: Vec<Value> = rest[1..]
        .iter()
        .filter_map(|a| a.parse::<i64>().ok().map(Value::Int))
        .collect();
    match session.run_instrumented(&program, &entry_name, &call_args) {
        Ok(out) => {
            print!("{}", out.stdout);
            if let Some(v) = out.ret {
                println!("=> {v}");
            }
            println!("({} run-time qualifier check(s) passed)", out.checks_passed);
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("runtime error: {e}")),
    }
}

fn infer(args: &[String]) -> ExitCode {
    let (session, rest, _) = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    // `infer --qual NAME FILE` — the qual name lands in rest after the
    // flag-stripping; expect [NAME, FILE] with --qual marking NAME.
    let (qual, path) = match args.iter().position(|a| a == "--qual") {
        Some(pos) => {
            let Some(name) = args.get(pos + 1) else {
                return fail("--qual needs a name".to_owned());
            };
            let Some(path) = rest.iter().find(|r| *r != name) else {
                return fail("infer needs a source file".to_owned());
            };
            (name.clone(), path.clone())
        }
        None => return fail("infer needs --qual NAME".to_owned()),
    };
    let source = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(format!("cannot read {path}: {e}")),
    };
    let program = match session.parse(&source) {
        Ok(p) => p,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    if session.registry().get_by_name(&qual).map(|d| d.kind) != Some(stq_qualspec::QualKind::Value)
    {
        return fail(format!("`{qual}` is not a registered value qualifier"));
    }
    let result = session.infer_annotations(&program, &qual);
    println!(
        "{} site(s) can carry `{qual}` ({} iteration(s)):",
        result.inferred.len(),
        result.iterations
    );
    for site in &result.inferred {
        println!("  + {site}");
    }
    for site in &result.rejected {
        println!("  - {site}");
    }
    ExitCode::SUCCESS
}

fn show(args: &[String]) -> ExitCode {
    let (session, rest, _) = match session_from(args) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    match rest.first() {
        Some(name) => match session.registry().get_by_name(name) {
            Some(def) => {
                print!("{}", stq_qualspec::def_to_source(def));
                ExitCode::SUCCESS
            }
            None => fail(format!("unknown qualifier `{name}`")),
        },
        None => {
            for def in session.registry().iter() {
                print!("{}", stq_qualspec::def_to_source(def));
                println!();
            }
            ExitCode::SUCCESS
        }
    }
}

fn tables() -> ExitCode {
    let row = stq_corpus::tables::table1();
    println!("{}", stq_corpus::tables::render_table1(&row));
    let rows = stq_corpus::tables::table2();
    println!("{}", stq_corpus::tables::render_table2(&rows));
    ExitCode::SUCCESS
}
