//! Umbrella package for the semantic-type-qualifiers reproduction.
//!
//! The real functionality lives in the `stq-*` crates under `crates/`;
//! this package hosts the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`.
pub use stq_core as core;
