#!/usr/bin/env bash
# Full local gate: release build, test suite, and lint-clean clippy.
# Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cold-parallel scaling smoke (optimized cold path beats legacy sequential)"
cargo test -q --release -p stq-soundness --test perf_smoke -- --ignored --nocapture

echo "==> stqc single-threaded smoke (--jobs 1)"
smoke_src="$(mktemp /tmp/stqc-smoke-XXXXXX.c)"
trap 'rm -f "$smoke_src"' EXIT
printf 'int pos one() { return (int pos) 1; }\n' > "$smoke_src"
./target/release/stqc check --jobs 1 "$smoke_src"
./target/release/stqc prove --jobs 1 pos

echo "==> stqc fuzz smoke (fixed seed, bounded)"
./target/release/stqc fuzz --seed 0 --count 100 --jobs 2

echo "==> stqc fuzz corpus replay"
./target/release/stqc fuzz --replay tests/corpus

echo "==> stqc deadline smoke (expired deadline must exit 5, not hang)"
deadline_rc=0
timeout 30 ./target/release/stqc prove --deadline-ms 0 >/dev/null || deadline_rc=$?
if [ "$deadline_rc" -ne 5 ]; then
    echo "expected exit 5 from an expired deadline, got $deadline_rc" >&2
    exit 1
fi

echo "==> stqc interrupted-then-resumed cache smoke"
cache_dir="$(mktemp -d /tmp/stqc-smoke-cache-XXXXXX)"
trap 'rm -f "$smoke_src"; rm -rf "$cache_dir"' EXIT
interrupted_rc=0
./target/release/stqc prove --cache-dir "$cache_dir" --deadline-ms 0 >/dev/null \
    || interrupted_rc=$?
if [ "$interrupted_rc" -ne 5 ]; then
    echo "expected exit 5 from the interrupted run, got $interrupted_rc" >&2
    exit 1
fi
./target/release/stqc prove --cache-dir "$cache_dir" >/dev/null
warm_stats="$(./target/release/stqc prove --cache-dir "$cache_dir" --stats)"
if ! grep -q ' 0 miss(es)' <<< "$warm_stats"; then
    echo "resumed warm run still missed the cache:" >&2
    echo "$warm_stats" >&2
    exit 1
fi

echo "==> stqc serve smoke (daemon round-trip + clean shutdown)"
serve_sock="/tmp/stqc-smoke-serve-$$.sock"
./target/release/stqc serve --socket "$serve_sock" &
serve_pid=$!
trap 'rm -f "$smoke_src" "$serve_sock"; rm -rf "$cache_dir"; kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    [ -S "$serve_sock" ] && break
    sleep 0.1
done
./target/release/stqc call --socket "$serve_sock" check \
    '{"source":"int pos x = 3;"}' >/dev/null
./target/release/stqc call --socket "$serve_sock" shutdown >/dev/null
serve_rc=0
wait "$serve_pid" || serve_rc=$?
if [ "$serve_rc" -ne 0 ]; then
    echo "expected exit 0 from a requested daemon shutdown, got $serve_rc" >&2
    exit 1
fi
if [ -e "$serve_sock" ]; then
    echo "daemon left its socket file behind: $serve_sock" >&2
    exit 1
fi

echo "==> stqc TCP serve smoke (kernel-assigned port, call --tcp round-trip)"
addr_file="/tmp/stqc-smoke-tcp-$$.addr"
./target/release/stqc serve --tcp 127.0.0.1:0 --addr-file "$addr_file" --jobs 1 &
tcp_pid=$!
trap 'rm -f "$smoke_src" "$serve_sock" "$addr_file"; rm -rf "$cache_dir"; kill "$serve_pid" "$tcp_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    [ -s "$addr_file" ] && break
    sleep 0.1
done
tcp_addr="$(cat "$addr_file")"
./target/release/stqc call --tcp "$tcp_addr" check \
    '{"source":"int pos x = 3;"}' >/dev/null

echo "==> stqc dedup smoke (identical concurrent proves coalesce into one flight)"
# A pipelined burst on one raw TCP connection: a filler prove occupies
# the single worker, then three identical cache-off proves must join
# one single-flight run (dedup_hits:2 in stats afterwards). The burst
# must leave in ONE write(2) — bash printf flushes line by line, and a
# straggler segment can arrive after the first duplicate's flight
# already completed — so it goes through a file and a single cat.
burst_file="/tmp/stqc-smoke-burst-$$.jsonl"
trap 'rm -f "$smoke_src" "$serve_sock" "$addr_file" "$burst_file"; rm -rf "$cache_dir"; kill "$serve_pid" "$tcp_pid" 2>/dev/null || true' EXIT
cat > "$burst_file" << 'EOF'
{"id":0,"method":"prove","params":{"names":["pos"],"cache":false}}
{"id":1,"method":"prove","params":{"cache":false}}
{"id":2,"method":"prove","params":{"cache":false}}
{"id":3,"method":"prove","params":{"cache":false}}
EOF
tcp_host="${tcp_addr%:*}"
tcp_port="${tcp_addr##*:}"
exec 3<>"/dev/tcp/${tcp_host}/${tcp_port}"
cat "$burst_file" >&3
for _ in 1 2 3 4; do
    read -r _ <&3
done
exec 3<&- 3>&-
dedup_stats="$(./target/release/stqc call --tcp "$tcp_addr" stats)"
if ! grep -q '"dedup_hits":2' <<< "$dedup_stats"; then
    echo "expected a 3-burst of identical proves to record dedup_hits:2:" >&2
    echo "$dedup_stats" >&2
    exit 1
fi

./target/release/stqc call --tcp "$tcp_addr" shutdown >/dev/null
tcp_rc=0
wait "$tcp_pid" || tcp_rc=$?
if [ "$tcp_rc" -ne 0 ]; then
    echo "expected exit 0 from a requested TCP daemon shutdown, got $tcp_rc" >&2
    exit 1
fi

echo "==> stqc chaos smoke (seeded soak: faults injected, verdicts match baseline)"
chaos_out="/tmp/stqc-smoke-chaos-$$.json"
trap 'rm -f "$smoke_src" "$serve_sock" "$addr_file" "$chaos_out"; rm -rf "$cache_dir"; kill "$serve_pid" "$tcp_pid" 2>/dev/null || true' EXIT
./target/release/stqc chaos-serve --seed 7 --count 50 --out "$chaos_out"
if ! grep -q '"verdict_mismatches":0' "$chaos_out"; then
    echo "chaos soak report disagrees with its exit code:" >&2
    cat "$chaos_out" >&2
    exit 1
fi

echo "==> stqc HA failover smoke (two daemons, one journal; dead primary rescued warm)"
ha_dir="$(mktemp -d /tmp/stqc-smoke-ha-XXXXXX)"
trap 'rm -f "$smoke_src" "$serve_sock" "$addr_file" "$chaos_out"; rm -rf "$cache_dir" "$ha_dir"; kill "$serve_pid" "$tcp_pid" "$ha_a_pid" "$ha_b_pid" "$ha_r_pid" 2>/dev/null || true' EXIT
./target/release/stqc serve --socket "$ha_dir/a.sock" --cache-dir "$ha_dir/cache" &
ha_a_pid=$!
./target/release/stqc serve --socket "$ha_dir/b.sock" --cache-dir "$ha_dir/cache" &
ha_b_pid=$!
for _ in $(seq 1 100); do
    [ -S "$ha_dir/a.sock" ] && [ -S "$ha_dir/b.sock" ] && break
    sleep 0.1
done
# Warm daemon A (the journal persists eagerly), SIGKILL it, then the
# same prove against the A-then-B endpoint list must be rescued by B —
# and answered warm purely by following the shared journal.
./target/release/stqc call --socket "$ha_dir/a.sock" prove >/dev/null
kill -KILL "$ha_a_pid" 2>/dev/null
failover_json="$(./target/release/stqc call --json \
    --socket "$ha_dir/a.sock" --socket "$ha_dir/b.sock" prove)"
if ! grep -q '"endpoints_tried":2' <<< "$failover_json"; then
    echo "expected the call to dial both endpoints:" >&2
    echo "$failover_json" >&2
    exit 1
fi
if ! grep -q '"misses":0' <<< "$failover_json"; then
    echo "the surviving daemon was not warm via journal follow:" >&2
    echo "$failover_json" >&2
    exit 1
fi
./target/release/stqc call --socket "$ha_dir/b.sock" shutdown >/dev/null
ha_b_rc=0
wait "$ha_b_pid" || ha_b_rc=$?
if [ "$ha_b_rc" -ne 0 ]; then
    echo "expected exit 0 from the surviving daemon's shutdown, got $ha_b_rc" >&2
    exit 1
fi

echo "==> stqc hot-reload smoke (good swap reloads; broken library rolls back)"
reload_lib="$ha_dir/quals.stq"
cat > "$reload_lib" << 'EOF'
value qualifier nonneg(int Expr E)
case E of
    decl int Const C: C, where C >= 0
  | decl int Expr E1, E2: E1 + E2, where nonneg(E1) && nonneg(E2)
invariant value(E) >= 0
EOF
./target/release/stqc serve --socket "$ha_dir/r.sock" --quals "$reload_lib" &
ha_r_pid=$!
for _ in $(seq 1 100); do
    [ -S "$ha_dir/r.sock" ] && break
    sleep 0.1
done
reload_ok="$(./target/release/stqc call --socket "$ha_dir/r.sock" reload)"
if ! grep -q '"reloaded":true' <<< "$reload_ok"; then
    echo "expected a clean reload of the good library:" >&2
    echo "$reload_ok" >&2
    exit 1
fi
printf 'value qualifier broken(\n' > "$reload_lib"
reload_rc=0
reload_bad="$(./target/release/stqc call --socket "$ha_dir/r.sock" reload)" || reload_rc=$?
if [ "$reload_rc" -ne 3 ]; then
    echo "expected exit 3 (input) from a broken-library reload, got $reload_rc" >&2
    exit 1
fi
if ! grep -q 'rolled back' <<< "$reload_bad"; then
    echo "expected the failed reload to report a rollback:" >&2
    echo "$reload_bad" >&2
    exit 1
fi
# The old definitions must still serve after the rollback.
./target/release/stqc call --socket "$ha_dir/r.sock" prove '{"names":["nonneg"]}' >/dev/null
./target/release/stqc call --socket "$ha_dir/r.sock" shutdown >/dev/null

echo "==> all checks passed"
