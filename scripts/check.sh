#!/usr/bin/env bash
# Full local gate: release build, test suite, and lint-clean clippy.
# Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> stqc single-threaded smoke (--jobs 1)"
smoke_src="$(mktemp /tmp/stqc-smoke-XXXXXX.c)"
trap 'rm -f "$smoke_src"' EXIT
printf 'int pos one() { return (int pos) 1; }\n' > "$smoke_src"
./target/release/stqc check --jobs 1 "$smoke_src"
./target/release/stqc prove --jobs 1 pos

echo "==> stqc fuzz smoke (fixed seed, bounded)"
./target/release/stqc fuzz --seed 0 --count 100 --jobs 2

echo "==> stqc fuzz corpus replay"
./target/release/stqc fuzz --replay tests/corpus

echo "==> all checks passed"
