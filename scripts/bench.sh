#!/usr/bin/env bash
# Soundness + prover benchmarks. Emits BENCH_soundness.json at the repo
# root: obligations/sec for the sequential, parallel (jobs=4, cold), and
# warm-cache pipeline modes, the cache hit/miss ledger of a cold vs
# warm second run, and the deadline-enforcement overhead of the warm
# jobs=4 run with a (never-firing) timeout + deadline armed — asserted
# <5% by the bench itself. See docs/performance.md for the numbers.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo bench -p stq-bench --bench soundness_pipeline"
cargo bench -p stq-bench --bench soundness_pipeline

echo "==> cargo bench -p stq-bench --bench prove_qualifiers"
cargo bench -p stq-bench --bench prove_qualifiers

if [[ ! -f BENCH_soundness.json ]]; then
    echo "bench.sh: BENCH_soundness.json was not produced" >&2
    exit 1
fi
echo "==> BENCH_soundness.json"
cat BENCH_soundness.json
