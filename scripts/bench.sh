#!/usr/bin/env bash
# Soundness + prover benchmarks. Emits BENCH_soundness.json at the repo
# root: obligations/sec for the legacy-sequential, optimized parallel
# (jobs=4, cold), and warm-cache pipeline modes, the cache hit/miss
# ledger of a cold vs warm second run, and the deadline-enforcement
# overhead of the warm jobs=4 run with a (never-firing) timeout +
# deadline armed — asserted <5% by the bench itself; the cold-path
# speedup is asserted ≥3x. Also emits BENCH_prover_ablation.json: the
# cold run timed under each combination of the two SolverTuning axes
# (shared theory preprocessing, hash-consed leaf checks). Also emits BENCH_serve.json: the warm
# `stqc serve` daemon's requests/sec and latency percentiles over BOTH
# transports (Unix socket and TCP, one dual-listener daemon) against
# the one-shot process baseline, asserted ≥5x (and zero warm cache
# misses) by `stqc bench-serve` itself — with 64 held-open idle
# connections throughout, a concurrent-duplicate burst that must
# coalesce (dedup_hits > 0, byte-identical fan-out), and daemon
# verdicts asserted identical to one-shot runs. Also emits BENCH_chaos.json:
# the high-availability drill — two daemon processes sharing one
# proof-cache journal, one SIGKILLed mid-campaign — asserted by
# `stqc chaos-serve` itself to keep the exactly-once / baseline-identical
# invariants with the survivor serving the dead daemon's proofs warm via
# journal follow (plus a hot reload). The single-daemon wire-fault +
# worker-SIGKILL soak still runs first as a gate. See
# docs/performance.md, docs/robustness.md, and docs/telemetry.md for the
# numbers and schemas.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo bench -p stq-bench --bench soundness_pipeline"
cargo bench -p stq-bench --bench soundness_pipeline

echo "==> cargo bench -p stq-bench --bench prove_qualifiers"
cargo bench -p stq-bench --bench prove_qualifiers

echo "==> cargo bench -p stq-bench --bench prover_ablation (cold-path tuning ablation)"
cargo bench -p stq-bench --bench prover_ablation

if [[ ! -f BENCH_soundness.json ]]; then
    echo "bench.sh: BENCH_soundness.json was not produced" >&2
    exit 1
fi
echo "==> BENCH_soundness.json"
cat BENCH_soundness.json

if [[ ! -f BENCH_prover_ablation.json ]]; then
    echo "bench.sh: BENCH_prover_ablation.json was not produced" >&2
    exit 1
fi
echo "==> BENCH_prover_ablation.json"
cat BENCH_prover_ablation.json

echo "==> stqc bench-serve (warm daemon, Unix + TCP, vs one-shot baseline)"
cargo build --release
./target/release/stqc bench-serve --out BENCH_serve.json

if [[ ! -f BENCH_serve.json ]]; then
    echo "bench.sh: BENCH_serve.json was not produced" >&2
    exit 1
fi
echo "==> BENCH_serve.json"
cat BENCH_serve.json

echo "==> stqc chaos-serve (seeded soak + worker SIGKILL drill, gate only)"
worker_drill="$(mktemp /tmp/stqc-bench-chaos-worker-XXXXXX.json)"
trap 'rm -f "$worker_drill"' EXIT
./target/release/stqc chaos-serve --seed 7 --count 120 --clients 4 \
    --kill-worker --out "$worker_drill"

echo "==> stqc chaos-serve --daemons 2 --kill-daemon (HA drill)"
./target/release/stqc chaos-serve --seed 7 --count 120 --clients 4 \
    --daemons 2 --kill-daemon --out BENCH_chaos.json

if [[ ! -f BENCH_chaos.json ]]; then
    echo "bench.sh: BENCH_chaos.json was not produced" >&2
    exit 1
fi
echo "==> BENCH_chaos.json"
cat BENCH_chaos.json
