#!/usr/bin/env bash
# Soundness + prover benchmarks. Emits BENCH_soundness.json at the repo
# root: obligations/sec for the sequential, parallel (jobs=4, cold), and
# warm-cache pipeline modes, plus the cache hit/miss ledger of a cold vs
# warm second run. See docs/performance.md for how to read the numbers.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo bench -p stq-bench --bench soundness_pipeline"
cargo bench -p stq-bench --bench soundness_pipeline

echo "==> cargo bench -p stq-bench --bench prove_qualifiers"
cargo bench -p stq-bench --bench prove_qualifiers

if [[ ! -f BENCH_soundness.json ]]; then
    echo "bench.sh: BENCH_soundness.json was not produced" >&2
    exit 1
fi
echo "==> BENCH_soundness.json"
cat BENCH_soundness.json
