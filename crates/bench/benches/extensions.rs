//! Benchmarks for the §8 extensions: whole-program qualifier inference
//! and the interplay of inference with the corpus scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stq_cir::parse::parse_program;
use stq_corpus::grep::grep_dfa_source_with;
use stq_corpus::tables::registry_subset;
use stq_typecheck::infer_annotations;
use stq_util::Symbol;

fn bench_inference(c: &mut Criterion) {
    let registry = registry_subset(&["nonnull"]);
    let mut group = c.benchmark_group("annotation_inference");
    group.sample_size(20);
    for scale in [0.25f64, 0.5, 1.0] {
        let src = grep_dfa_source_with(scale, stq_corpus::grep::GuardStyle::Direct)
            .replace("* nonnull", "*");
        let program = parse_program(&src, &registry.names()).expect("parses");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scale}x")),
            &program,
            |b, p| {
                b.iter(|| {
                    let r = infer_annotations(
                        black_box(&registry),
                        black_box(p),
                        Symbol::intern("nonnull"),
                    );
                    assert!(!r.inferred.is_empty());
                    r.iterations
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
