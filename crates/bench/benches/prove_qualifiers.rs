//! Reproduces the paper's §4 soundness-checking timing claims:
//!
//! > "The value qualifiers nonnull, nonzero, pos, and neg are each proven
//! > sound by our checker in under one second. The reference qualifiers
//! > unique and unaliased are each proven sound in under 30 seconds."
//!
//! The shape to preserve: every qualifier proves sound automatically, the
//! value qualifiers are fast, and the reference qualifiers (with their
//! quantified invariants and preservation case analyses) are the
//! expensive ones.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use stq_qualspec::Registry;
use stq_soundness::{check_qualifier, QualReport, Verdict};

/// One untimed, deterministic pass: prints the prover-work counters
/// behind the timing and returns the instantiation count for the
/// group's throughput.
fn report_effort(group_name: &str, name: &str, report: &QualReport) -> u64 {
    let totals = report.totals();
    println!(
        "{group_name}/{name}: {} instantiation(s), {} decision(s), \
         {} theory check(s), {} FM elimination(s)",
        totals.instantiations, totals.decisions, totals.theory_checks, totals.fm_eliminations
    );
    totals.instantiations as u64
}

fn bench_value_qualifiers(c: &mut Criterion) {
    let registry = Registry::builtins();
    let mut group = c.benchmark_group("prove_value_qualifiers");
    for name in ["pos", "neg", "nonzero", "nonnull"] {
        let def = registry.get_by_name(name).expect("builtin");
        let effort = report_effort(
            "prove_value_qualifiers",
            name,
            &check_qualifier(&registry, def),
        );
        group.throughput(Throughput::Elements(effort));
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = check_qualifier(black_box(&registry), black_box(def));
                assert_eq!(report.verdict, Verdict::Sound);
                report
            })
        });
    }
    group.finish();
}

fn bench_ref_qualifiers(c: &mut Criterion) {
    let registry = Registry::builtins();
    let mut group = c.benchmark_group("prove_ref_qualifiers");
    group.sample_size(20);
    for name in ["unique", "unaliased"] {
        let def = registry.get_by_name(name).expect("builtin");
        let effort = report_effort(
            "prove_ref_qualifiers",
            name,
            &check_qualifier(&registry, def),
        );
        group.throughput(Throughput::Elements(effort));
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = check_qualifier(black_box(&registry), black_box(def));
                assert_eq!(report.verdict, Verdict::Sound);
                report
            })
        });
    }
    group.finish();
}

fn bench_rejecting_broken_rules(c: &mut Criterion) {
    // Rejection must also be fast: the prover gives up after its
    // instantiation rounds produce nothing new.
    let mut registry = Registry::new();
    registry
        .add_source(
            "value qualifier neg(int Expr E)
                case E of
                    decl int Const C: C, where C < 0
                invariant value(E) < 0",
        )
        .expect("parses");
    registry
        .add_source(
            "value qualifier pos(int Expr E)
                case E of
                    decl int Const C: C, where C > 0
                  | decl int Expr E1, E2: E1 - E2, where pos(E1) && pos(E2)
                invariant value(E) > 0",
        )
        .expect("parses");
    let def = registry.get_by_name("pos").expect("defined");
    c.bench_function("reject_broken_pos", |b| {
        b.iter(|| {
            let report = check_qualifier(black_box(&registry), black_box(def));
            assert_eq!(report.verdict, Verdict::Unsound);
            report
        })
    });
}

criterion_group!(
    benches,
    bench_value_qualifiers,
    bench_ref_qualifiers,
    bench_rejecting_broken_rules
);
criterion_main!(benches);
