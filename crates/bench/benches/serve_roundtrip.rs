//! Per-request overhead of the `stqc serve` protocol, measured
//! in-process over a socketpair — no accept loop, no process spawn, so
//! the numbers isolate framing + routing + scheduling from transport
//! setup. Three rungs:
//!
//! * `stats` — answered inline on the reader thread: the floor, pure
//!   parse/route/render round-trip;
//! * `check` — a small program through the queue and worker pool;
//! * `prove_warm` — the steady-state serving claim: a repeated prove
//!   served entirely from the resident warm cache (asserted: zero new
//!   misses across the measured loop).
//!
//! The end-to-end daemon-vs-one-shot comparison (real processes, real
//! socket, concurrent clients) is `stqc bench-serve`, which records
//! `BENCH_serve.json`; see docs/serving.md and docs/telemetry.md.

use criterion::{criterion_group, criterion_main, Criterion};

#[cfg(unix)]
mod unix_bench {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use stq_core::{ServeConfig, Server, Session};
    use stq_util::json::Json;
    use stq_util::CancelToken;

    /// A live in-process connection: the daemon side runs on its own
    /// thread exactly like an accepted socket connection.
    struct Wire {
        client: UnixStream,
        reader: BufReader<UnixStream>,
    }

    impl Wire {
        fn connect(server: &Arc<Server>) -> Wire {
            let (client, daemon_side) = UnixStream::pair().expect("socketpair");
            let srv = Arc::clone(server);
            std::thread::spawn(move || srv.serve_stream(daemon_side));
            let reader = BufReader::new(client.try_clone().expect("stream clones"));
            Wire { client, reader }
        }

        fn roundtrip(&mut self, line: &str) -> String {
            self.client
                .write_all(format!("{line}\n").as_bytes())
                .expect("request written");
            let mut response = String::new();
            self.reader.read_line(&mut response).expect("response read");
            response
        }

        /// One checked round-trip, used outside the measured loops to
        /// pin that the responses being timed are successes.
        fn assert_ok(&mut self, line: &str) -> Json {
            let raw = self.roundtrip(line);
            let doc = Json::parse(raw.trim()).expect("response parses");
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{doc}");
            doc
        }
    }

    fn server() -> Arc<Server> {
        Arc::new(
            Server::new(Session::with_builtins(), ServeConfig::default(), CancelToken::new())
                .expect("in-memory server"),
        )
    }

    fn cache_misses(doc: &Json) -> u64 {
        doc.get("result")
            .and_then(|r| r.get("cache"))
            .and_then(|c| c.get("misses"))
            .and_then(Json::as_u64)
            .expect("prove result carries cache misses")
    }

    pub fn bench_roundtrips(c: &mut Criterion) {
        let server = server();
        let mut wire = Wire::connect(&server);
        let mut group = c.benchmark_group("serve_roundtrip");

        let stats_req = "{\"id\":1,\"method\":\"stats\"}";
        wire.assert_ok(stats_req);
        group.bench_function("stats", |b| b.iter(|| wire.roundtrip(stats_req)));

        let check_req =
            "{\"id\":1,\"method\":\"check\",\"params\":{\"source\":\"int pos x = 3;\"}}";
        let checked = wire.assert_ok(check_req);
        assert_eq!(
            checked
                .get("result")
                .and_then(|r| r.get("clean"))
                .and_then(Json::as_bool),
            Some(true)
        );
        group.bench_function("check", |b| b.iter(|| wire.roundtrip(check_req)));

        let prove_req = "{\"id\":1,\"method\":\"prove\",\"params\":{\"names\":[\"pos\"]}}";
        let warm = wire.assert_ok(prove_req); // first call fills the cache
        let misses_before = cache_misses(&warm);
        group.bench_function("prove_warm", |b| b.iter(|| wire.roundtrip(prove_req)));
        let after = wire.assert_ok(prove_req);
        assert_eq!(
            cache_misses(&after),
            misses_before,
            "the measured warm loop must never miss the resident cache"
        );
        group.finish();
    }
}

#[cfg(unix)]
use unix_bench::bench_roundtrips;

#[cfg(not(unix))]
fn bench_roundtrips(_c: &mut Criterion) {}

criterion_group!(benches, bench_roundtrips);
criterion_main!(benches);
