//! Reproduces the paper's §6 compile-time claim:
//!
//! > "In all of the experiments described below, the extra compile time
//! > for performing qualifier checking in CIL is under one second."
//!
//! plus a scaling sweep over program size (the corpus generator scaled
//! from a quarter to four times the paper's dfa.c), giving the
//! throughput "figure" for the checker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use stq_cir::parse::parse_program;
use stq_cir::pretty::count_lines;
use stq_corpus::grep::grep_dfa_source_scaled;
use stq_corpus::tables::registry_subset;
use stq_typecheck::check_program;

fn bench_paper_scale(c: &mut Criterion) {
    let registry = registry_subset(&["nonnull"]);
    let src = grep_dfa_source_scaled(1.0);
    let program = parse_program(&src, &registry.names()).expect("corpus parses");
    c.bench_function("typecheck_grep_dfa", |b| {
        b.iter(|| check_program(black_box(&registry), black_box(&program)))
    });
}

fn bench_scaling(c: &mut Criterion) {
    let registry = registry_subset(&["nonnull"]);
    let mut group = c.benchmark_group("typecheck_scaling");
    for scale in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let src = grep_dfa_source_scaled(scale);
        let lines = count_lines(&src);
        let program = parse_program(&src, &registry.names()).expect("corpus parses");
        group.throughput(Throughput::Elements(lines as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{lines}loc")),
            &program,
            |b, p| b.iter(|| check_program(black_box(&registry), black_box(p))),
        );
    }
    group.finish();
}

fn bench_parsing(c: &mut Criterion) {
    // Front-end cost for context (the paper's CIL pass is separate from
    // qualifier checking).
    let registry = registry_subset(&["nonnull"]);
    let src = grep_dfa_source_scaled(1.0);
    c.bench_function("parse_grep_dfa", |b| {
        b.iter(|| parse_program(black_box(&src), &registry.names()).expect("parses"))
    });
}

fn bench_flow_sensitivity(c: &mut Criterion) {
    // Ablation: the flow-sensitive extension's checking cost on the
    // cast-free corpus, against the flow-insensitive baseline on the
    // paper's casted corpus. (Precision: 59 errors → 0; this measures
    // the time overhead of refinement.)
    use stq_corpus::grep::grep_dfa_source_direct;
    use stq_typecheck::{check_program_with, CheckOptions};
    let registry = registry_subset(&["nonnull"]);
    let direct = parse_program(&grep_dfa_source_direct(), &registry.names()).expect("parses");
    let mut group = c.benchmark_group("flow_sensitivity");
    group.bench_function("insensitive_direct", |b| {
        b.iter(|| {
            let r = check_program_with(
                black_box(&registry),
                black_box(&direct),
                CheckOptions::default(),
            );
            assert_eq!(r.stats.qualifier_errors, 59);
            r
        })
    });
    group.bench_function("sensitive_direct", |b| {
        b.iter(|| {
            let r = check_program_with(
                black_box(&registry),
                black_box(&direct),
                CheckOptions {
                    flow_sensitive: true,
                },
            );
            assert_eq!(r.stats.qualifier_errors, 0);
            r
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_paper_scale,
    bench_scaling,
    bench_parsing,
    bench_flow_sensitivity
);
criterion_main!(benches);
