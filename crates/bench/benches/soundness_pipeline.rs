//! The parallel + incremental soundness pipeline benchmark
//! (`docs/performance.md`): legacy sequential proving
//! ([`SolverTuning::legacy`]: per-obligation theory preprocessing, no
//! hash-consing — the seed prover's cold path) vs the optimized cold
//! pipeline vs the warm fingerprinted proof cache, over the builtin
//! qualifier library plus the shipped `examples/qualifiers/extra.q`
//! corpus.
//!
//! Unlike the other benches this one emits a machine-readable
//! `BENCH_soundness.json` at the repository root (override the path with
//! `STQ_BENCH_OUT`), with obligations/sec for each mode and the cache
//! hit/miss ledger of the cold and warm runs. The headline `parallel`
//! figure is the pipeline's steady state — `jobs = 4` *with a warm
//! on-disk cache*, exactly what a second `stqc prove --jobs 4
//! --cache-dir` run does; `parallel_cold` isolates the cache-less cold
//! path (shared theory + hash-consed leaf checks + worker reuse + the
//! pool), gated at ≥3x over the legacy baseline; and
//! `parallel_warm_deadline` re-runs the warm mode with a (never-firing)
//! per-obligation timeout and whole-run deadline armed, asserting that
//! deadline enforcement costs <5% (`deadline_overhead` in the JSON).

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use stq_qualspec::Registry;
use stq_soundness::{
    check_all_pipeline, check_all_pipeline_cancellable, check_all_pipeline_tuned, Budget,
    CancelToken, ProofCache, RetryPolicy, SolverTuning, SoundnessReport,
};

const JOBS: usize = 4;

fn registry() -> Registry {
    let mut registry = Registry::builtins();
    let extra = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/qualifiers/extra.q"
    );
    let source = fs::read_to_string(extra).expect("extra.q is shipped with the repo");
    registry.add_source(&source).expect("extra.q parses");
    registry
}

/// Runs `f` repeatedly until ~0.5 s of wall clock (at least `min_runs`),
/// returning (runs, total elapsed, last report).
fn measure(
    min_runs: u32,
    max_runs: u32,
    mut f: impl FnMut() -> SoundnessReport,
) -> (u32, Duration, SoundnessReport) {
    let mut report = f(); // warm-up, uncounted
    let start = Instant::now();
    let mut runs = 0;
    while runs < max_runs && (runs < min_runs || start.elapsed() < Duration::from_millis(500)) {
        report = f();
        runs += 1;
    }
    (runs, start.elapsed(), report)
}

fn obl_per_sec(obligations: usize, runs: u32, elapsed: Duration) -> f64 {
    (obligations as f64 * f64::from(runs)) / elapsed.as_secs_f64().max(1e-9)
}

fn mode_json(label: &str, obligations: usize, runs: u32, elapsed: Duration) -> String {
    format!(
        "\"{label}\":{{\"runs\":{runs},\"total_ms\":{:.3},\"obligations_per_sec\":{:.1}}}",
        elapsed.as_secs_f64() * 1000.0,
        obl_per_sec(obligations, runs, elapsed),
    )
}

fn main() {
    let registry = registry();
    let budget = Budget::default();
    let retry = RetryPolicy::attempts(2);

    // Mode 1: sequential, no cache, legacy solver tuning — the
    // pre-optimization cold baseline (per-obligation theory
    // preprocessing, no hash-consed matching, no worker reuse).
    let (seq_runs, seq_elapsed, seq_report) = measure(2, 50, || {
        check_all_pipeline_tuned(&registry, budget, retry, 1, None, SolverTuning::legacy())
    });
    assert!(seq_report.all_sound(), "{seq_report}");
    let obligations = seq_report.obligation_count();

    // Mode 2: the optimized cold path (jobs = 4, default tuning), still
    // proving everything — shared prepared theory, hash-consed leaf
    // template, per-worker solver reuse.
    let (cold_runs, cold_elapsed, cold_report) = measure(2, 50, || {
        check_all_pipeline_tuned(&registry, budget, retry, JOBS, None, SolverTuning::default())
    });
    assert!(cold_report.all_sound(), "{cold_report}");
    assert_eq!(cold_report.obligation_count(), obligations);

    // Mode 3: the full pipeline — jobs = 4 with an on-disk proof cache
    // (the same ProofCache::at_dir path `stqc --cache-dir` uses), warmed
    // by one cold run and then measured hot.
    let dir = std::env::temp_dir().join(format!("stq-bench-cache-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let cache = ProofCache::at_dir(&dir).expect("temp cache dir");
    let first = check_all_pipeline(&registry, budget, retry, JOBS, Some(&cache));
    assert!(first.all_sound(), "{first}");
    let cold_misses = first.totals.cache_misses;
    let cold_hits = first.totals.cache_hits;
    // A cold run misses every *distinct* obligation; structurally
    // identical obligations across qualifiers (e.g. `nonnull` and
    // `kernel` both establish `value(&L) != NULL`) hit the entry the
    // first occurrence recorded moments earlier.
    assert_eq!(
        cold_misses + cold_hits,
        obligations as u64,
        "every obligation is looked up exactly once"
    );
    assert!(cold_misses > cold_hits, "a cold run mostly misses");
    cache.persist().expect("persist cache");

    // Reload from disk, as a fresh process would.
    let warm_cache = ProofCache::at_dir(&dir).expect("reload cache dir");
    let (warm_runs, warm_elapsed, warm_report) = measure(5, 200, || {
        check_all_pipeline(&registry, budget, retry, JOBS, Some(&warm_cache))
    });
    assert!(warm_report.all_sound(), "{warm_report}");
    let reproved_warm = warm_report.reproved_count();
    assert_eq!(reproved_warm, 0, "warm run must re-prove nothing");
    assert_eq!(warm_report.totals.cache_hits, obligations as u64);
    let _ = fs::remove_dir_all(&dir);

    // Mode 4: deadline enforcement on the steady-state path — the same
    // warm jobs=4 pipeline, but with a per-obligation `--timeout-ms`
    // budget *and* a whole-run `--deadline-ms` token armed (both far too
    // generous to ever fire), so every cancellation/deadline safepoint
    // is live. The timeout is part of every fingerprint, so this variant
    // warms its own cache; the throughput delta against mode 3 is pure
    // enforcement overhead, which must stay under 5%.
    let budget_timed = Budget {
        timeout: Some(Duration::from_secs(3600)),
        ..budget
    };
    let token = CancelToken::deadline_in(Duration::from_secs(3600));
    let dir_timed =
        std::env::temp_dir().join(format!("stq-bench-cache-timed-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir_timed);
    let cache_timed = ProofCache::at_dir(&dir_timed).expect("temp timed cache dir");
    let first_timed =
        check_all_pipeline_cancellable(&registry, budget_timed, retry, JOBS, Some(&cache_timed), &token);
    assert!(first_timed.all_sound(), "{first_timed}");
    cache_timed.persist().expect("persist timed cache");
    let warm_timed = ProofCache::at_dir(&dir_timed).expect("reload timed cache dir");
    let (timed_runs, timed_elapsed, timed_report) = measure(5, 200, || {
        check_all_pipeline_cancellable(&registry, budget_timed, retry, JOBS, Some(&warm_timed), &token)
    });
    assert!(timed_report.all_sound(), "{timed_report}");
    assert!(!timed_report.interrupted(), "the deadline must never fire");
    assert_eq!(timed_report.reproved_count(), 0, "warm timed run re-proves nothing");
    let _ = fs::remove_dir_all(&dir_timed);

    let seq_ops = obl_per_sec(obligations, seq_runs, seq_elapsed);
    let cold_ops = obl_per_sec(obligations, cold_runs, cold_elapsed);
    let warm_ops = obl_per_sec(obligations, warm_runs, warm_elapsed);
    let timed_ops = obl_per_sec(obligations, timed_runs, timed_elapsed);
    // Gated metric: the optimized cold path must beat the legacy
    // sequential baseline by ≥3x even on a single-core box, because most
    // of the win is work elimination (shared theory preprocessing +
    // hash-consed leaf checks), not core count.
    let cold_speedup = cold_ops / seq_ops.max(1e-9);
    assert!(
        cold_speedup >= 3.0,
        "cold-path speedup {cold_speedup:.2}x is below the 3.0x floor"
    );
    // Positive = the armed timeout/deadline run is slower.
    let deadline_overhead = warm_ops / timed_ops.max(1e-9) - 1.0;
    assert!(
        deadline_overhead < 0.05,
        "deadline enforcement overhead {:.1}% exceeds the 5% ceiling",
        deadline_overhead * 100.0
    );
    let warm_hit_rate = 1.0 - (reproved_warm as f64 / obligations as f64);

    println!(
        "soundness_pipeline: {} qualifier(s), {obligations} obligation(s), jobs={JOBS}",
        seq_report.reports.len(),
    );
    println!("  sequential:     {seq_ops:>10.1} obligations/sec ({seq_runs} run(s))");
    println!("  parallel cold:  {cold_ops:>10.1} obligations/sec ({cold_runs} run(s))");
    println!("  parallel warm:  {warm_ops:>10.1} obligations/sec ({warm_runs} run(s))");
    println!(
        "  warm + timeout: {timed_ops:>10.1} obligations/sec ({timed_runs} run(s), \
         deadline overhead {:+.1}%)",
        deadline_overhead * 100.0
    );
    println!(
        "  cache: cold {cold_misses} miss(es)/{cold_hits} hit(s); \
         warm re-proved {reproved_warm} (hit rate {:.0}%)",
        warm_hit_rate * 100.0
    );

    let out = std::env::var("STQ_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_soundness.json"
            ))
        },
        PathBuf::from,
    );
    let json = format!(
        "{{\"bench\":\"soundness_pipeline\",\"qualifiers\":{},\"obligations\":{obligations},\
         \"jobs\":{JOBS},{},{},{},{},\
         \"cache\":{{\"cold_misses\":{cold_misses},\"cold_hits\":{cold_hits},\
         \"warm_hits\":{},\"warm_misses\":{},\"reproved_warm\":{reproved_warm},\
         \"warm_hit_rate\":{warm_hit_rate:.3}}},\
         \"deadline_overhead\":{deadline_overhead:.4},\
         \"speedup_parallel_vs_sequential\":{:.2},\
         \"speedup_parallel_cold_vs_sequential\":{:.2}}}\n",
        seq_report.reports.len(),
        mode_json("sequential", obligations, seq_runs, seq_elapsed),
        mode_json("parallel_cold", obligations, cold_runs, cold_elapsed),
        mode_json("parallel", obligations, warm_runs, warm_elapsed),
        mode_json("parallel_warm_deadline", obligations, timed_runs, timed_elapsed),
        warm_report.totals.cache_hits,
        warm_report.totals.cache_misses,
        warm_ops / seq_ops.max(1e-9),
        cold_speedup,
    );
    fs::write(&out, &json).expect("write BENCH_soundness.json");
    println!("  wrote {}", out.display());
}
