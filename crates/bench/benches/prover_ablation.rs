//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! * **Cold-path solver tuning** — the two [`SolverTuning`] axes of the
//!   optimized cold path (shared preprocessed theory, hash-consed leaf
//!   checks), toggled independently over a full cold run of the builtin
//!   registry. Emits `BENCH_prover_ablation.json` at the repo root
//!   (override with `STQ_ABLATION_OUT`) so `scripts/bench.sh` can record
//!   how much each axis contributes to the headline
//!   `speedup_parallel_cold_vs_sequential` gate.
//! * **E-matching round budget** — the reference-qualifier preservation
//!   proofs need multiple instantiation rounds (store axioms expose new
//!   `select` terms that the freshness and invariant quantifiers then
//!   match). A budget of 1 round fails to prove them; the default
//!   converges. This quantifies the cost of each extra round.
//! * **Recursive qualifier inference depth** — `case` rules recurse into
//!   subexpressions; deep product trees measure how inference cost grows
//!   with expression depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::{Duration, Instant};
use stq_cir::ast::{BinOp, Expr};
use stq_cir::parse::parse_program;
use stq_qualspec::Registry;
use stq_soundness::{
    check_all_pipeline_tuned, obligations_for, Budget, RetryPolicy, SolverTuning,
};
use stq_typecheck::{Inference, TypeEnv};
use stq_util::Symbol;

/// The four combinations of the two cold-path tuning axes, from the seed
/// prover's behavior (both off) to the optimized default (both on).
const TUNING_COMBOS: [(&str, SolverTuning); 4] = [
    (
        "legacy",
        SolverTuning {
            share_theory: false,
            hash_cons: false,
        },
    ),
    (
        "shared_theory",
        SolverTuning {
            share_theory: true,
            hash_cons: false,
        },
    ),
    (
        "hash_cons",
        SolverTuning {
            share_theory: false,
            hash_cons: true,
        },
    ),
    (
        "full",
        SolverTuning {
            share_theory: true,
            hash_cons: true,
        },
    ),
];

fn bench_cold_tuning(c: &mut Criterion) {
    let registry = Registry::builtins();
    let budget = Budget::default();
    let retry = RetryPolicy::attempts(2);
    let run = |tuning: SolverTuning| {
        let report = check_all_pipeline_tuned(&registry, budget, retry, 1, None, tuning);
        assert!(report.all_sound(), "{report}");
        report
    };

    // Untimed measured pass: best-of-3 wall per combo (after one warmup
    // each), plus the theory-prep and interning ledgers that explain the
    // deltas; written to the ablation JSON.
    let obligations = run(SolverTuning::default()).obligation_count();
    let mut rows = Vec::new();
    for (label, tuning) in TUNING_COMBOS {
        run(tuning);
        let mut best = Duration::MAX;
        let mut report = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            let r = run(tuning);
            let wall = t0.elapsed();
            if wall < best {
                best = wall;
                report = Some(r);
            }
        }
        let report = report.expect("three timed runs");
        let totals = &report.totals;
        println!(
            "cold_tuning/{label}: {:.3} ms best-of-3, theory_prep={}fresh/{}reused, \
             interned={}+{}hit",
            best.as_secs_f64() * 1000.0,
            totals.theory_preps,
            totals.theory_reuses,
            totals.interned_terms,
            totals.intern_hits,
        );
        rows.push(format!(
            "\"{label}\":{{\"share_theory\":{},\"hash_cons\":{},\"best_ms\":{:.3},\
             \"obligations_per_sec\":{:.1},\"theory_preps\":{},\"theory_reuses\":{},\
             \"interned_terms\":{},\"intern_hits\":{}}}",
            tuning.share_theory,
            tuning.hash_cons,
            best.as_secs_f64() * 1000.0,
            obligations as f64 / best.as_secs_f64().max(1e-9),
            totals.theory_preps,
            totals.theory_reuses,
            totals.interned_terms,
            totals.intern_hits,
        ));
    }
    let out = std::env::var("STQ_ABLATION_OUT").map_or_else(
        |_| {
            std::path::PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_prover_ablation.json"
            ))
        },
        std::path::PathBuf::from,
    );
    let json = format!(
        "{{\"bench\":\"prover_ablation\",\"obligations\":{obligations},\"jobs\":1,{}}}\n",
        rows.join(",")
    );
    std::fs::write(&out, &json).expect("write BENCH_prover_ablation.json");
    println!("cold_tuning: wrote {}", out.display());

    let mut group = c.benchmark_group("cold_tuning");
    group.sample_size(10);
    for (label, tuning) in TUNING_COMBOS {
        group.bench_with_input(BenchmarkId::from_parameter(label), &tuning, |b, &t| {
            b.iter(|| run(black_box(t)))
        });
    }
    group.finish();
}

fn bench_round_budget(c: &mut Criterion) {
    let registry = Registry::builtins();
    let def = registry.get_by_name("unique").expect("builtin");
    let mut group = c.benchmark_group("ematch_round_budget");
    group.sample_size(20);
    for rounds in [1usize, 2, 4, 8] {
        // The prover is deterministic, so one untimed pass reports the
        // quantifier effort this budget buys (instantiations, not just
        // wall time).
        let mut instantiations = 0u64;
        let mut decisions = 0u64;
        let mut proved = 0usize;
        for mut ob in obligations_for(&registry, def) {
            ob.problem.config.max_rounds = rounds;
            let outcome = ob.problem.prove();
            instantiations += outcome.stats().instantiations as u64;
            decisions += outcome.stats().decisions;
            proved += usize::from(outcome.is_proved());
        }
        println!(
            "ematch_round_budget/{rounds}: {proved}/6 proved, \
             {instantiations} instantiation(s), {decisions} decision(s)"
        );
        group.throughput(Throughput::Elements(instantiations));
        group.bench_with_input(
            BenchmarkId::from_parameter(rounds),
            &rounds,
            |b, &rounds| {
                b.iter(|| {
                    let mut proved = 0;
                    for mut ob in obligations_for(&registry, def) {
                        ob.problem.config.max_rounds = rounds;
                        if ob.problem.prove().is_proved() {
                            proved += 1;
                        }
                    }
                    // All six obligations need ≥2 rounds; with a budget
                    // of 1 some preservation cases cannot finish.
                    if rounds >= 4 {
                        assert_eq!(proved, 6);
                    }
                    proved
                })
            },
        );
    }
    group.finish();
}

fn product_tree(depth: u32) -> Expr {
    if depth == 0 {
        Expr::var("p0")
    } else {
        Expr::binop(BinOp::Mul, product_tree(depth - 1), product_tree(depth - 1))
    }
}

fn bench_inference_depth(c: &mut Criterion) {
    let registry = Registry::builtins();
    let program = parse_program("int pos p0;", &registry.names()).expect("parses");
    let mut group = c.benchmark_group("inference_depth");
    for depth in [2u32, 4, 6, 8] {
        let expr = product_tree(depth);
        let env = TypeEnv::new(&program, &registry);
        let mut inf = Inference::new(&env);
        assert!(inf.has_qual(&expr, Symbol::intern("pos")));
        println!(
            "inference_depth/{depth}: {} match attempt(s), {} memo hit(s)/{} miss(es)",
            inf.match_attempts, inf.memo_hits, inf.memo_misses
        );
        group.bench_with_input(BenchmarkId::from_parameter(depth), &expr, |b, e| {
            b.iter(|| {
                let env = TypeEnv::new(&program, &registry);
                let mut inf = Inference::new(&env);
                let ok = inf.has_qual(black_box(e), Symbol::intern("pos"));
                assert!(ok);
                inf.match_attempts
            })
        });
    }
    group.finish();
}

fn bench_mutual_recursion(c: &mut Criterion) {
    // pos/neg mutual recursion on alternating negation chains.
    let registry = Registry::builtins();
    let program = parse_program("int pos p0;", &registry.names()).expect("parses");
    let mut group = c.benchmark_group("mutual_recursion_chain");
    for depth in [4u32, 8, 16, 32] {
        let mut e = Expr::var("p0");
        for _ in 0..depth {
            e = Expr::unop(stq_cir::ast::UnOp::Neg, e);
        }
        let want = if depth % 2 == 0 { "pos" } else { "neg" };
        group.bench_with_input(BenchmarkId::from_parameter(depth), &e, |b, e| {
            b.iter(|| {
                let env = TypeEnv::new(&program, &registry);
                let mut inf = Inference::new(&env);
                assert!(inf.has_qual(black_box(e), Symbol::intern(want)));
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cold_tuning,
    bench_round_budget,
    bench_inference_depth,
    bench_mutual_recursion
);
criterion_main!(benches);
