//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! * **E-matching round budget** — the reference-qualifier preservation
//!   proofs need multiple instantiation rounds (store axioms expose new
//!   `select` terms that the freshness and invariant quantifiers then
//!   match). A budget of 1 round fails to prove them; the default
//!   converges. This quantifies the cost of each extra round.
//! * **Recursive qualifier inference depth** — `case` rules recurse into
//!   subexpressions; deep product trees measure how inference cost grows
//!   with expression depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use stq_cir::ast::{BinOp, Expr};
use stq_cir::parse::parse_program;
use stq_qualspec::Registry;
use stq_soundness::obligations_for;
use stq_typecheck::{Inference, TypeEnv};
use stq_util::Symbol;

fn bench_round_budget(c: &mut Criterion) {
    let registry = Registry::builtins();
    let def = registry.get_by_name("unique").expect("builtin");
    let mut group = c.benchmark_group("ematch_round_budget");
    group.sample_size(20);
    for rounds in [1usize, 2, 4, 8] {
        // The prover is deterministic, so one untimed pass reports the
        // quantifier effort this budget buys (instantiations, not just
        // wall time).
        let mut instantiations = 0u64;
        let mut decisions = 0u64;
        let mut proved = 0usize;
        for mut ob in obligations_for(&registry, def) {
            ob.problem.config.max_rounds = rounds;
            let outcome = ob.problem.prove();
            instantiations += outcome.stats().instantiations as u64;
            decisions += outcome.stats().decisions;
            proved += usize::from(outcome.is_proved());
        }
        println!(
            "ematch_round_budget/{rounds}: {proved}/6 proved, \
             {instantiations} instantiation(s), {decisions} decision(s)"
        );
        group.throughput(Throughput::Elements(instantiations));
        group.bench_with_input(
            BenchmarkId::from_parameter(rounds),
            &rounds,
            |b, &rounds| {
                b.iter(|| {
                    let mut proved = 0;
                    for mut ob in obligations_for(&registry, def) {
                        ob.problem.config.max_rounds = rounds;
                        if ob.problem.prove().is_proved() {
                            proved += 1;
                        }
                    }
                    // All six obligations need ≥2 rounds; with a budget
                    // of 1 some preservation cases cannot finish.
                    if rounds >= 4 {
                        assert_eq!(proved, 6);
                    }
                    proved
                })
            },
        );
    }
    group.finish();
}

fn product_tree(depth: u32) -> Expr {
    if depth == 0 {
        Expr::var("p0")
    } else {
        Expr::binop(BinOp::Mul, product_tree(depth - 1), product_tree(depth - 1))
    }
}

fn bench_inference_depth(c: &mut Criterion) {
    let registry = Registry::builtins();
    let program = parse_program("int pos p0;", &registry.names()).expect("parses");
    let mut group = c.benchmark_group("inference_depth");
    for depth in [2u32, 4, 6, 8] {
        let expr = product_tree(depth);
        let env = TypeEnv::new(&program, &registry);
        let mut inf = Inference::new(&env);
        assert!(inf.has_qual(&expr, Symbol::intern("pos")));
        println!(
            "inference_depth/{depth}: {} match attempt(s), {} memo hit(s)/{} miss(es)",
            inf.match_attempts, inf.memo_hits, inf.memo_misses
        );
        group.bench_with_input(BenchmarkId::from_parameter(depth), &expr, |b, e| {
            b.iter(|| {
                let env = TypeEnv::new(&program, &registry);
                let mut inf = Inference::new(&env);
                let ok = inf.has_qual(black_box(e), Symbol::intern("pos"));
                assert!(ok);
                inf.match_attempts
            })
        });
    }
    group.finish();
}

fn bench_mutual_recursion(c: &mut Criterion) {
    // pos/neg mutual recursion on alternating negation chains.
    let registry = Registry::builtins();
    let program = parse_program("int pos p0;", &registry.names()).expect("parses");
    let mut group = c.benchmark_group("mutual_recursion_chain");
    for depth in [4u32, 8, 16, 32] {
        let mut e = Expr::var("p0");
        for _ in 0..depth {
            e = Expr::unop(stq_cir::ast::UnOp::Neg, e);
        }
        let want = if depth % 2 == 0 { "pos" } else { "neg" };
        group.bench_with_input(BenchmarkId::from_parameter(depth), &e, |b, e| {
            b.iter(|| {
                let env = TypeEnv::new(&program, &registry);
                let mut inf = Inference::new(&env);
                assert!(inf.has_qual(black_box(e), Symbol::intern(want)));
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_round_budget,
    bench_inference_depth,
    bench_mutual_recursion
);
criterion_main!(benches);
