//! End-to-end regeneration cost of the paper's evaluation tables
//! (generation + parsing + checking + measurement), and of the §6.2
//! uniqueness experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use stq_corpus::tables::{table1, table2, unique_experiment};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_end_to_end", |b| {
        b.iter(|| {
            let row = table1();
            assert_eq!(row.dereferences, 1072);
            assert_eq!(row.errors, 0);
            row
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_end_to_end", |b| {
        b.iter(|| {
            let rows = table2();
            assert_eq!(rows.len(), 3);
            assert_eq!(rows[0].errors, 1); // the bftpd bug
            rows
        })
    });
}

fn bench_unique(c: &mut Criterion) {
    c.bench_function("table_unique_end_to_end", |b| {
        b.iter(|| {
            let (row, references) = unique_experiment();
            assert_eq!(references, 49);
            assert_eq!(row.errors, 0);
            row
        })
    });
}

criterion_group!(benches, bench_table1, bench_table2, bench_unique);
criterion_main!(benches);
