//! Benchmark support crate. The benchmarks themselves live in
//! `benches/`; each regenerates one table, figure, or timing claim from
//! the paper's evaluation:
//!
//! * `prove_qualifiers` — §4's soundness-checking times (value
//!   qualifiers under 1 s, reference qualifiers under 30 s in the paper);
//! * `typecheck_corpus` — §6's "extra compile time … under one second"
//!   claim, plus a program-size scaling sweep;
//! * `tables` — end-to-end regeneration cost of Tables 1 and 2;
//! * `prover_ablation` — design-choice ablations for the prover
//!   (instantiation round budget) and the inference engine (deep
//!   recursive qualifier queries).
