//! Differential testing of the congruence closure: the e-graph's verdict
//! on random equality problems is compared against a naive reference
//! implementation (fixpoint over all term pairs).

use proptest::prelude::*;
use stq_logic::arena::TermArena;
use stq_logic::euf::Egraph;
use stq_logic::term::Term;

/// The term universe: constants a,b,c,d and one/two levels of f/g
/// applications over them.
fn universe() -> Vec<Term> {
    let consts: Vec<Term> = ["a", "b", "c", "d"].iter().map(|n| Term::cnst(n)).collect();
    let mut terms = consts.clone();
    for t in &consts {
        terms.push(Term::app("f", vec![t.clone()]));
        terms.push(Term::app("g", vec![t.clone()]));
    }
    for t in &consts {
        terms.push(Term::app("f", vec![Term::app("f", vec![t.clone()])]));
    }
    terms
}

/// Naive congruence closure over the universe: a partition refined to a
/// fixpoint by symmetry/transitivity (via union-find) and congruence
/// (checked pairwise).
fn reference_closure(eqs: &[(usize, usize)]) -> Vec<usize> {
    let terms = universe();
    let n = terms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            i = parent[i];
        }
        i
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        parent[ra] = rb;
    }
    for &(a, b) in eqs {
        union(&mut parent, a, b);
    }
    // Congruence to fixpoint: f(x) ~ f(y) whenever x ~ y.
    loop {
        let mut changed = false;
        for i in 0..n {
            for j in 0..n {
                if find(&mut parent, i) == find(&mut parent, j) {
                    continue;
                }
                let (Term::App(fi, ai), Term::App(fj, aj)) = (&terms[i], &terms[j]) else {
                    continue;
                };
                if fi != fj || ai.len() != aj.len() || ai.is_empty() {
                    continue;
                }
                let congruent = ai.iter().zip(aj).all(|(x, y)| {
                    let xi = terms.iter().position(|t| t == x).expect("in universe");
                    let yi = terms.iter().position(|t| t == y).expect("in universe");
                    find(&mut parent, xi) == find(&mut parent, yi)
                });
                if congruent {
                    union(&mut parent, i, j);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    (0..n).map(|i| find(&mut parent, i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn egraph_matches_reference_closure(
        eqs in prop::collection::vec((0usize..16, 0usize..16), 0..8)
    ) {
        let terms = universe();
        let mut arena = TermArena::new();
        let mut eg = Egraph::new();
        let refs: Vec<_> = terms.iter().map(|t| eg.intern(&mut arena, t)).collect();
        for &(a, b) in &eqs {
            eg.merge(refs[a], refs[b]).expect("no integers involved");
        }
        let reference = reference_closure(&eqs);
        for i in 0..terms.len() {
            for j in 0..terms.len() {
                let expected = reference[i] == reference[j];
                let actual = eg.find(refs[i]) == eg.find(refs[j]);
                prop_assert_eq!(
                    actual, expected,
                    "disagreement on {} ~ {}", terms[i], terms[j]
                );
            }
        }
    }
}
