//! Property-based tests for the prover.
//!
//! * **Propositional completeness**: over pure propositional formulas the
//!   DPLL core is a decision procedure, so `prove` must agree exactly
//!   with brute-force validity checking.
//! * **Arithmetic soundness**: if Fourier–Motzkin declares a constraint
//!   system infeasible, no integer point satisfies it; and any integer
//!   point found by brute force forces feasibility.

use proptest::prelude::*;
use stq_logic::arith::{feasible, Constraint, LinExpr};
use stq_logic::rat::Rat;
use stq_logic::solver::Problem;
use stq_logic::term::Formula;

// ----- propositional -----

#[derive(Clone, Debug)]
enum P {
    Atom(u8),
    Not(Box<P>),
    And(Box<P>, Box<P>),
    Or(Box<P>, Box<P>),
    Implies(Box<P>, Box<P>),
}

fn p_strategy() -> impl Strategy<Value = P> {
    let leaf = (0u8..4).prop_map(P::Atom);
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| P::Not(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| P::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| P::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| P::Implies(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval(p: &P, world: u8) -> bool {
    match p {
        P::Atom(i) => world & (1 << i) != 0,
        P::Not(a) => !eval(a, world),
        P::And(a, b) => eval(a, world) && eval(b, world),
        P::Or(a, b) => eval(a, world) || eval(b, world),
        P::Implies(a, b) => !eval(a, world) || eval(b, world),
    }
}

fn to_formula(p: &P) -> Formula {
    match p {
        P::Atom(i) => Formula::pred(&format!("p{i}"), vec![]),
        P::Not(a) => to_formula(a).negate(),
        P::And(a, b) => Formula::and(vec![to_formula(a), to_formula(b)]),
        P::Or(a, b) => Formula::or(vec![to_formula(a), to_formula(b)]),
        P::Implies(a, b) => to_formula(a).implies(to_formula(b)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn propositional_prover_matches_truth_tables(p in p_strategy()) {
        let valid = (0u8..16).all(|w| eval(&p, w));
        let mut problem = Problem::new();
        problem.goal(to_formula(&p));
        prop_assert_eq!(
            problem.prove().is_proved(),
            valid,
            "formula {:?}", p
        );
    }

    #[test]
    fn entailment_matches_truth_tables(h in p_strategy(), g in p_strategy()) {
        let entails = (0u8..16).all(|w| !eval(&h, w) || eval(&g, w));
        let mut problem = Problem::new();
        problem.hypothesis(to_formula(&h));
        problem.goal(to_formula(&g));
        prop_assert_eq!(problem.prove().is_proved(), entails);
    }
}

// ----- linear arithmetic -----

#[derive(Clone, Copy, Debug)]
struct RawConstraint {
    /// coefficients of x and y plus constant: cx*x + cy*y + k REL 0
    cx: i8,
    cy: i8,
    k: i8,
    strict: bool,
}

fn constraint_strategy() -> impl Strategy<Value = RawConstraint> {
    (-3i8..=3, -3i8..=3, -6i8..=6, any::<bool>()).prop_map(|(cx, cy, k, strict)| RawConstraint {
        cx,
        cy,
        k,
        strict,
    })
}

fn to_lin(c: RawConstraint) -> Constraint {
    let mut e = LinExpr::constant(Rat::int(i128::from(c.k)));
    e.add_term(0, Rat::int(i128::from(c.cx)));
    e.add_term(1, Rat::int(i128::from(c.cy)));
    if c.strict {
        Constraint::lt0(e)
    } else {
        Constraint::le0(e)
    }
}

fn holds(c: RawConstraint, x: i64, y: i64) -> bool {
    let v = i64::from(c.cx) * x + i64::from(c.cy) * y + i64::from(c.k);
    if c.strict {
        v < 0
    } else {
        v <= 0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn infeasible_systems_have_no_integer_points(
        cs in prop::collection::vec(constraint_strategy(), 1..6)
    ) {
        let lins: Vec<Constraint> = cs.iter().copied().map(to_lin).collect();
        let answer = feasible(&lins);
        // Brute force over a grid comfortably containing any solution of
        // such small systems.
        let mut found = None;
        'search: for x in -25i64..=25 {
            for y in -25i64..=25 {
                if cs.iter().all(|&c| holds(c, x, y)) {
                    found = Some((x, y));
                    break 'search;
                }
            }
        }
        if let Some((x, y)) = found {
            prop_assert!(answer, "({x},{y}) satisfies the system but FM says infeasible");
        }
        // The converse: FM-infeasible must mean no grid point.
        if !answer {
            prop_assert!(found.is_none());
        }
    }

    #[test]
    fn arith_prover_agrees_with_evaluation(
        a in -10i64..=10, b in -10i64..=10, c in -10i64..=10
    ) {
        // a ≤ x ∧ x ≤ b ⊢ x ≤ c holds iff (a > b) ∨ (b ≤ c).
        use stq_logic::term::Term;
        let x = Term::cnst("x");
        let expected = a > b || b <= c;
        let mut problem = Problem::new();
        problem.hypothesis(Term::int(a).le(&x));
        problem.hypothesis(x.le(&Term::int(b)));
        problem.goal(x.le(&Term::int(c)));
        prop_assert_eq!(problem.prove().is_proved(), expected);
    }
}
