//! Resource budgets trip deterministically.
//!
//! The centrepiece is a *matching loop*: an axiom whose instantiation
//! keeps creating fresh trigger matches (`p(f(x)) ⇒ p(f(f(x)))`,
//! triggered on `f(x)`), the classic way an E-matching prover diverges.
//! Simplify bounded exactly this with instantiation limits; these tests
//! pin down that every [`stq_logic::Budget`] limit converts divergence
//! into a clean [`Outcome::ResourceOut`], with identical telemetry on
//! every run.

use std::time::Duration;
use stq_logic::solver::Outcome;
use stq_logic::term::{Formula, Sort, Term};
use stq_logic::{Problem, ProverStats, Resource};
use stq_util::Symbol;

/// Builds the diverging problem: `forall x {f(x)}. p(f(x)) ⇒ p(f(f(x)))`
/// with hypothesis `p(f(c))` and an unrelated, unprovable goal. Every
/// instantiation round manufactures a fresh term `f(f(…f(c)…))` that the
/// trigger matches next round, so instantiation never saturates.
fn matching_loop() -> Problem {
    let x = Term::var("x", Sort::Int);
    let fx = Term::app("f", vec![x.clone()]);
    let ffx = Term::app("f", vec![fx.clone()]);
    let axiom = Formula::forall(
        vec![(Symbol::intern("x"), Sort::Int)],
        vec![vec![fx.clone()]],
        Formula::pred("p", vec![fx]).implies(Formula::pred("p", vec![ffx])),
    );
    let c = Term::cnst("c");
    let mut problem = Problem::new();
    problem.axiom(axiom);
    problem.hypothesis(Formula::pred("p", vec![Term::app("f", vec![c])]));
    problem.goal(Formula::pred("unrelated_goal", vec![]));
    problem
}

/// Wall time varies run to run; everything else must not.
fn deterministic(stats: &ProverStats) -> ProverStats {
    let mut s = stats.clone();
    s.wall = Duration::ZERO;
    s
}

#[test]
fn matching_loop_trips_the_round_limit() {
    let mut problem = matching_loop();
    problem.config.max_rounds = 3;
    let outcome = problem.prove();
    match outcome {
        Outcome::ResourceOut { resource, stats } => {
            assert_eq!(resource, Resource::Rounds);
            assert_eq!(stats.rounds, 3);
            // Each round instantiates on the newest f-chain term.
            assert!(stats.instantiations >= 3);
        }
        other => panic!("expected ResourceOut, got {other:?}"),
    }
}

#[test]
fn matching_loop_trips_the_instantiation_limit() {
    let mut problem = matching_loop();
    problem.config.max_rounds = usize::MAX;
    problem.config.max_instantiations = 5;
    let outcome = problem.prove();
    match outcome {
        Outcome::ResourceOut { resource, stats } => {
            assert_eq!(resource, Resource::Instantiations);
            assert_eq!(stats.instantiations, 5);
        }
        other => panic!("expected ResourceOut, got {other:?}"),
    }
}

#[test]
fn matching_loop_trips_the_clause_limit() {
    let mut problem = matching_loop();
    problem.config.max_rounds = usize::MAX;
    problem.config.max_clauses = 6;
    let outcome = problem.prove();
    match outcome {
        Outcome::ResourceOut { resource, stats } => {
            assert_eq!(resource, Resource::Clauses);
            assert!(stats.clauses > 6);
            assert_eq!(stats.max_clauses, stats.clauses);
        }
        other => panic!("expected ResourceOut, got {other:?}"),
    }
}

#[test]
fn budget_trips_are_deterministic() {
    let run = || {
        let mut problem = matching_loop();
        problem.config.max_rounds = 4;
        problem.prove()
    };
    let (a, b) = (run(), run());
    match (&a, &b) {
        (
            Outcome::ResourceOut {
                resource: ra,
                stats: sa,
            },
            Outcome::ResourceOut {
                resource: rb,
                stats: sb,
            },
        ) => {
            assert_eq!(ra, rb);
            assert_eq!(deterministic(sa), deterministic(sb));
        }
        other => panic!("expected two ResourceOut outcomes, got {other:?}"),
    }
}

#[test]
fn elapsed_deadline_reports_time_out_immediately() {
    let mut problem = matching_loop();
    problem.config.timeout = Some(Duration::ZERO);
    let outcome = problem.prove();
    match outcome {
        Outcome::ResourceOut { resource, stats } => {
            assert_eq!(resource, Resource::Time);
            // The deadline is checked before the first round starts.
            assert_eq!(stats.rounds, 0);
        }
        other => panic!("expected ResourceOut(Time), got {other:?}"),
    }
}

#[test]
fn generous_budget_still_terminates_with_a_verdict() {
    // The same axiom with a *provable* goal: the budget machinery must
    // not get in the way of ordinary proofs.
    let x = Term::var("x", Sort::Int);
    let fx = Term::app("f", vec![x.clone()]);
    let ffx = Term::app("f", vec![fx.clone()]);
    let axiom = Formula::forall(
        vec![(Symbol::intern("x"), Sort::Int)],
        vec![vec![fx.clone()]],
        Formula::pred("p", vec![fx]).implies(Formula::pred("p", vec![ffx])),
    );
    let c = Term::cnst("c");
    let fc = Term::app("f", vec![c]);
    let ffc = Term::app("f", vec![fc.clone()]);
    let mut problem = Problem::new();
    problem.axiom(axiom);
    problem.hypothesis(Formula::pred("p", vec![fc]));
    problem.goal(Formula::pred("p", vec![ffc]));
    let outcome = problem.prove();
    assert!(outcome.is_proved(), "got {outcome:?}");
    assert!(outcome.stats().instantiations >= 1);
}
