//! Congruence closure for equality over uninterpreted functions.
//!
//! This is the EUF core of the Nelson–Oppen combination: ground terms are
//! interned into an arena, equalities merge their equivalence classes, and
//! congruence (`a = b ⇒ f(a) = f(b)`) is propagated with a classic
//! worklist over parent occurrences. Distinct integer literals live in
//! distinct classes by construction, so merging two of them is a conflict.

use crate::term::Term;
use std::collections::HashMap;
use stq_util::Symbol;

/// Index of an interned ground term in the [`Egraph`] arena.
pub type TermRef = u32;

/// The head of an interned term.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Head {
    /// Function symbol (possibly nullary).
    Sym(Symbol),
    /// Integer literal.
    Int(i64),
}

#[derive(Clone, Debug)]
struct Node {
    head: Head,
    args: Vec<TermRef>,
    /// The original term tree, kept for extraction during E-matching.
    term: Term,
}

/// A congruence-closure e-graph over ground terms.
///
/// # Examples
///
/// ```
/// use stq_logic::euf::Egraph;
/// use stq_logic::term::Term;
///
/// let mut eg = Egraph::new();
/// let a = eg.intern(&Term::cnst("a"));
/// let b = eg.intern(&Term::cnst("b"));
/// let fa = eg.intern(&Term::app("f", vec![Term::cnst("a")]));
/// let fb = eg.intern(&Term::app("f", vec![Term::cnst("b")]));
/// assert_ne!(eg.find(fa), eg.find(fb));
/// eg.merge(a, b).unwrap();
/// assert_eq!(eg.find(fa), eg.find(fb)); // congruence
/// ```
#[derive(Clone, Debug, Default)]
pub struct Egraph {
    nodes: Vec<Node>,
    /// Hash-consing table keyed on (head, original child refs).
    intern_table: HashMap<(Head, Vec<TermRef>), TermRef>,
    /// Union-find parent pointers.
    parent: Vec<TermRef>,
    /// Terms in which each term occurs as a direct child (by original ref).
    uses: Vec<Vec<TermRef>>,
    /// Congruence signature table: (head, canonical child reps) → term.
    sig_table: HashMap<(Head, Vec<TermRef>), TermRef>,
    /// Asserted disequalities.
    diseqs: Vec<(TermRef, TermRef)>,
    /// Integer literal value of the class representative, if any.
    int_value: Vec<Option<i64>>,
    /// Number of class unions performed (telemetry; see
    /// [`crate::stats::ProverStats::merges`]).
    merges: u64,
}

/// A contradiction discovered during merging (two distinct integers, or a
/// violated disequality).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EufConflict;

impl Egraph {
    /// Creates an empty e-graph.
    pub fn new() -> Egraph {
        Egraph::default()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interns a ground term (and all its subterms), returning its ref.
    ///
    /// # Panics
    ///
    /// Panics if the term contains variables.
    pub fn intern(&mut self, t: &Term) -> TermRef {
        let (head, args) = match t {
            Term::Var(x, _) => panic!("cannot intern non-ground term (var {x})"),
            Term::Int(v) => (Head::Int(*v), Vec::new()),
            Term::App(f, ts) => {
                let args: Vec<TermRef> = ts.iter().map(|a| self.intern(a)).collect();
                (Head::Sym(*f), args)
            }
        };
        if let Some(&r) = self.intern_table.get(&(head, args.clone())) {
            return r;
        }
        let r = u32::try_from(self.nodes.len()).expect("egraph overflow");
        self.nodes.push(Node {
            head,
            args: args.clone(),
            term: t.clone(),
        });
        self.parent.push(r);
        self.uses.push(Vec::new());
        self.int_value.push(match head {
            Head::Int(v) => Some(v),
            Head::Sym(_) => None,
        });
        for &a in &args {
            let rep = self.find(a);
            self.uses[rep as usize].push(r);
        }
        self.intern_table.insert((head, args.clone()), r);
        // Install the congruence signature; if an equal-signature term
        // already exists they are congruent and must be merged.
        let sig = (head, args.iter().map(|&a| self.find(a)).collect::<Vec<_>>());
        if let Some(&other) = self.sig_table.get(&sig) {
            // Cannot conflict: a brand-new term carries no disequalities,
            // and Int heads are hash-consed so never duplicated.
            self.merge(r, other).expect("fresh merge cannot conflict");
        } else {
            self.sig_table.insert(sig, r);
        }
        r
    }

    /// Finds the canonical representative of `a`'s class.
    pub fn find(&self, mut a: TermRef) -> TermRef {
        while self.parent[a as usize] != a {
            a = self.parent[a as usize];
        }
        a
    }

    /// Asserts `a = b`, propagating congruence.
    ///
    /// # Errors
    ///
    /// Returns [`EufConflict`] if the merge equates two distinct integer
    /// literals or violates a previously asserted disequality.
    pub fn merge(&mut self, a: TermRef, b: TermRef) -> Result<(), EufConflict> {
        let mut pending = vec![(a, b)];
        while let Some((x, y)) = pending.pop() {
            let (rx, ry) = (self.find(x), self.find(y));
            if rx == ry {
                continue;
            }
            // Distinct integer literals cannot be equal.
            if let (Some(u), Some(v)) = (self.int_value[rx as usize], self.int_value[ry as usize]) {
                if u != v {
                    return Err(EufConflict);
                }
            }
            // Union by use-list size: graft the smaller class.
            let (small, big) = if self.uses[rx as usize].len() <= self.uses[ry as usize].len() {
                (rx, ry)
            } else {
                (ry, rx)
            };
            self.parent[small as usize] = big;
            self.merges += 1;
            if self.int_value[big as usize].is_none() {
                self.int_value[big as usize] = self.int_value[small as usize];
            }
            // Recompute signatures of the small class's parents.
            let moved_uses = std::mem::take(&mut self.uses[small as usize]);
            for &u in &moved_uses {
                let node = &self.nodes[u as usize];
                let sig = (
                    node.head,
                    node.args.iter().map(|&c| self.find(c)).collect::<Vec<_>>(),
                );
                if let Some(&other) = self.sig_table.get(&sig) {
                    if self.find(other) != self.find(u) {
                        pending.push((u, other));
                    }
                } else {
                    self.sig_table.insert(sig, u);
                }
            }
            self.uses[big as usize].extend(moved_uses);
            // Violated disequality?
            for &(p, q) in &self.diseqs {
                if self.find(p) == self.find(q) {
                    return Err(EufConflict);
                }
            }
        }
        Ok(())
    }

    /// Asserts `a ≠ b`.
    ///
    /// # Errors
    ///
    /// Returns [`EufConflict`] if `a` and `b` are already in the same class.
    pub fn assert_diseq(&mut self, a: TermRef, b: TermRef) -> Result<(), EufConflict> {
        if self.find(a) == self.find(b) {
            return Err(EufConflict);
        }
        self.diseqs.push((a, b));
        Ok(())
    }

    /// Returns all interned term refs.
    pub fn term_refs(&self) -> impl Iterator<Item = TermRef> + '_ {
        (0..self.nodes.len()).map(|i| i as TermRef)
    }

    /// The original term tree for a ref.
    pub fn term(&self, r: TermRef) -> &Term {
        &self.nodes[r as usize].term
    }

    /// The function symbol heading `r`, if it is an application.
    pub fn head_symbol(&self, r: TermRef) -> Option<Symbol> {
        match self.nodes[r as usize].head {
            Head::Sym(s) => Some(s),
            Head::Int(_) => None,
        }
    }

    /// The integer literal at `r`, if it is one.
    pub fn int_literal(&self, r: TermRef) -> Option<i64> {
        match self.nodes[r as usize].head {
            Head::Int(v) => Some(v),
            Head::Sym(_) => None,
        }
    }

    /// The known integer value of `r`'s class (an integer literal merged
    /// into the class), if any.
    pub fn class_int_value(&self, r: TermRef) -> Option<i64> {
        self.int_value[self.find(r) as usize]
    }

    /// Direct children of `r`.
    pub fn args(&self, r: TermRef) -> &[TermRef] {
        &self.nodes[r as usize].args
    }

    /// All members of `r`'s equivalence class.
    pub fn class_members(&self, r: TermRef) -> Vec<TermRef> {
        let rep = self.find(r);
        self.term_refs().filter(|&t| self.find(t) == rep).collect()
    }

    /// Total class unions performed so far, including congruence-induced
    /// merges propagated by the worklist.
    pub fn merges(&self) -> u64 {
        self.merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(name: &str) -> Term {
        Term::cnst(name)
    }
    fn f(args: Vec<Term>) -> Term {
        Term::app("f", args)
    }

    #[test]
    fn interning_is_shared() {
        let mut eg = Egraph::new();
        let a1 = eg.intern(&f(vec![c("a")]));
        let a2 = eg.intern(&f(vec![c("a")]));
        assert_eq!(a1, a2);
    }

    #[test]
    fn basic_union() {
        let mut eg = Egraph::new();
        let a = eg.intern(&c("a"));
        let b = eg.intern(&c("b"));
        assert_ne!(eg.find(a), eg.find(b));
        eg.merge(a, b).unwrap();
        assert_eq!(eg.find(a), eg.find(b));
    }

    #[test]
    fn congruence_propagates() {
        let mut eg = Egraph::new();
        let a = eg.intern(&c("a"));
        let b = eg.intern(&c("b"));
        let fa = eg.intern(&f(vec![c("a")]));
        let fb = eg.intern(&f(vec![c("b")]));
        eg.merge(a, b).unwrap();
        assert_eq!(eg.find(fa), eg.find(fb));
    }

    #[test]
    fn congruence_propagates_transitively() {
        let mut eg = Egraph::new();
        let a = eg.intern(&c("a"));
        let b = eg.intern(&c("b"));
        let ffa = eg.intern(&f(vec![f(vec![c("a")])]));
        let ffb = eg.intern(&f(vec![f(vec![c("b")])]));
        eg.merge(a, b).unwrap();
        assert_eq!(eg.find(ffa), eg.find(ffb));
    }

    #[test]
    fn congruence_on_late_interning() {
        // Merge first, intern the applications afterwards.
        let mut eg = Egraph::new();
        let a = eg.intern(&c("a"));
        let b = eg.intern(&c("b"));
        eg.merge(a, b).unwrap();
        let fa = eg.intern(&f(vec![c("a")]));
        let fb = eg.intern(&f(vec![c("b")]));
        assert_eq!(eg.find(fa), eg.find(fb));
    }

    #[test]
    fn distinct_integers_conflict() {
        let mut eg = Egraph::new();
        let three = eg.intern(&Term::int(3));
        let five = eg.intern(&Term::int(5));
        assert_eq!(eg.merge(three, five), Err(EufConflict));
    }

    #[test]
    fn integer_conflict_through_constants() {
        let mut eg = Egraph::new();
        let a = eg.intern(&c("a"));
        let three = eg.intern(&Term::int(3));
        let five = eg.intern(&Term::int(5));
        eg.merge(a, three).unwrap();
        assert_eq!(eg.merge(a, five), Err(EufConflict));
    }

    #[test]
    fn disequality_conflicts_immediately() {
        let mut eg = Egraph::new();
        let a = eg.intern(&c("a"));
        let b = eg.intern(&c("b"));
        eg.merge(a, b).unwrap();
        assert_eq!(eg.assert_diseq(a, b), Err(EufConflict));
    }

    #[test]
    fn disequality_conflicts_later_via_congruence() {
        let mut eg = Egraph::new();
        let fa = eg.intern(&f(vec![c("a")]));
        let fb = eg.intern(&f(vec![c("b")]));
        eg.assert_diseq(fa, fb).unwrap();
        let a = eg.intern(&c("a"));
        let b = eg.intern(&c("b"));
        assert_eq!(eg.merge(a, b), Err(EufConflict));
    }

    #[test]
    fn class_members_enumerate() {
        let mut eg = Egraph::new();
        let a = eg.intern(&c("a"));
        let b = eg.intern(&c("b"));
        let _ = eg.intern(&c("d"));
        eg.merge(a, b).unwrap();
        let members = eg.class_members(a);
        assert_eq!(members.len(), 2);
        assert!(members.contains(&a) && members.contains(&b));
    }

    #[test]
    fn class_int_value_flows_through_merges() {
        let mut eg = Egraph::new();
        let a = eg.intern(&c("a"));
        let b = eg.intern(&c("b"));
        let seven = eg.intern(&Term::int(7));
        eg.merge(a, seven).unwrap();
        eg.merge(b, a).unwrap();
        assert_eq!(eg.class_int_value(b), Some(7));
    }

    #[test]
    fn merges_are_counted_including_congruence() {
        let mut eg = Egraph::new();
        let a = eg.intern(&c("a"));
        let b = eg.intern(&c("b"));
        let _fa = eg.intern(&f(vec![c("a")]));
        let _fb = eg.intern(&f(vec![c("b")]));
        assert_eq!(eg.merges(), 0);
        eg.merge(a, b).unwrap();
        // One explicit union plus the congruence-induced f(a) = f(b).
        assert_eq!(eg.merges(), 2);
    }

    #[test]
    #[should_panic(expected = "non-ground")]
    fn interning_variable_panics() {
        use crate::term::Sort;
        let mut eg = Egraph::new();
        let _ = eg.intern(&Term::var("x", Sort::Int));
    }
}
