//! Congruence closure for equality over uninterpreted functions.
//!
//! This is the EUF core of the Nelson–Oppen combination: ground terms are
//! interned into the e-graph from a hash-consed [`TermArena`], equalities
//! merge their equivalence classes, and congruence (`a = b ⇒ f(a) = f(b)`)
//! is propagated with a classic worklist over parent occurrences. Distinct
//! integer literals live in distinct classes by construction, so merging
//! two of them is a conflict.
//!
//! Terms enter via [`Egraph::intern_id`]: because arena ids are already
//! hash-consed, membership is one id lookup instead of a recursive
//! tree-hash, which is what makes per-leaf theory checks cheap. The
//! e-graph also maintains a head index and per-class member lists (kept
//! sorted) so E-matching never scans the whole node table.

use crate::arena::{Head, TermArena, TermId};
use crate::term::Term;
use std::collections::HashMap;
use stq_util::Symbol;

/// Index of an interned ground term in the [`Egraph`] arena.
pub type TermRef = u32;

#[derive(Clone, Debug)]
struct Node {
    head: Head,
    args: Vec<TermRef>,
    /// The term's hash-consed arena id, for O(1) extraction.
    tid: TermId,
}

/// One completed class union, with everything needed to undo it exactly.
#[derive(Clone, Debug)]
struct UnionRecord {
    small: TermRef,
    big: TermRef,
    old_int_big: Option<i64>,
    kept_members: Vec<TermRef>,
    moved_members: Vec<TermRef>,
    old_big_uses: usize,
    inserted_sigs: Vec<(Head, Vec<TermRef>)>,
}

/// A rollback point for [`Egraph::rollback`]: captures how many unions
/// and disequalities existed at [`Egraph::checkpoint`] time.
#[derive(Clone, Copy, Debug)]
pub struct Checkpoint {
    unions: usize,
    diseqs: usize,
}

/// A congruence-closure e-graph over ground terms.
///
/// # Examples
///
/// ```
/// use stq_logic::arena::TermArena;
/// use stq_logic::euf::Egraph;
/// use stq_logic::term::Term;
///
/// let mut arena = TermArena::new();
/// let mut eg = Egraph::new();
/// let a = eg.intern(&mut arena, &Term::cnst("a"));
/// let b = eg.intern(&mut arena, &Term::cnst("b"));
/// let fa = eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("a")]));
/// let fb = eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("b")]));
/// assert_ne!(eg.find(fa), eg.find(fb));
/// eg.merge(a, b).unwrap();
/// assert_eq!(eg.find(fa), eg.find(fb)); // congruence
/// ```
#[derive(Clone, Debug, Default)]
pub struct Egraph {
    nodes: Vec<Node>,
    /// Arena id → e-graph ref. Arena ids are hash-consed, so this map
    /// subsumes a structural interning table.
    tid_map: HashMap<TermId, TermRef>,
    /// Union-find parent pointers.
    parent: Vec<TermRef>,
    /// Terms in which each term occurs as a direct child (by original ref).
    uses: Vec<Vec<TermRef>>,
    /// Congruence signature table: (head, canonical child reps) → term.
    sig_table: HashMap<(Head, Vec<TermRef>), TermRef>,
    /// Asserted disequalities.
    diseqs: Vec<(TermRef, TermRef)>,
    /// Integer literal value of the class representative, if any.
    int_value: Vec<Option<i64>>,
    /// Members of each class, stored (sorted ascending) at the
    /// representative's slot and empty elsewhere.
    members: Vec<Vec<TermRef>>,
    /// E-matching head index: (symbol, arity) → refs in interning order.
    by_head: HashMap<(Symbol, usize), Vec<TermRef>>,
    /// Undo log of completed unions, in completion order, for
    /// [`Egraph::rollback`]. Only populated once recording is on.
    trail: Vec<UnionRecord>,
    /// Whether unions are recorded on the trail. Off by default so
    /// throwaway e-graphs (legacy leaf checks, per-round E-matching) pay
    /// nothing; the first [`Egraph::checkpoint`] switches it on for the
    /// graph's lifetime.
    recording: bool,
    /// Number of class unions performed (telemetry; see
    /// [`crate::stats::ProverStats::merges`]). Cumulative: rollback does
    /// not subtract the undone unions.
    merges: u64,
}

/// A contradiction discovered during merging (two distinct integers, or a
/// violated disequality).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EufConflict;

const NO_MEMBERS: &[TermRef] = &[];

impl Egraph {
    /// Creates an empty e-graph.
    pub fn new() -> Egraph {
        Egraph::default()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interns a ground term (and all its subterms) by way of the arena,
    /// returning its e-graph ref.
    ///
    /// # Panics
    ///
    /// Panics if the term contains variables.
    pub fn intern(&mut self, arena: &mut TermArena, t: &Term) -> TermRef {
        let id = arena.intern(t);
        self.intern_id(arena, id)
    }

    /// Interns an already arena-interned term, returning its e-graph ref.
    /// Repeated calls with the same id are a single hash lookup.
    pub fn intern_id(&mut self, arena: &TermArena, id: TermId) -> TermRef {
        if let Some(&r) = self.tid_map.get(&id) {
            return r;
        }
        let head = arena.head(id);
        let args: Vec<TermRef> = arena
            .args(id)
            .to_vec()
            .into_iter()
            .map(|c| self.intern_id(arena, c))
            .collect();
        let r = u32::try_from(self.nodes.len()).expect("egraph overflow");
        self.nodes.push(Node {
            head,
            args: args.clone(),
            tid: id,
        });
        self.parent.push(r);
        self.uses.push(Vec::new());
        self.members.push(vec![r]);
        self.int_value.push(match head {
            Head::Int(v) => Some(v),
            Head::Sym(_) => None,
        });
        if let Head::Sym(f) = head {
            self.by_head.entry((f, args.len())).or_default().push(r);
        }
        for &a in &args {
            let rep = self.find(a);
            self.uses[rep as usize].push(r);
        }
        self.tid_map.insert(id, r);
        // Install the congruence signature; if an equal-signature term
        // already exists they are congruent and must be merged.
        let sig = (head, args.iter().map(|&a| self.find(a)).collect::<Vec<_>>());
        if let Some(&other) = self.sig_table.get(&sig) {
            // Cannot conflict: a brand-new term carries no disequalities,
            // and Int heads are hash-consed so never duplicated.
            self.merge(r, other).expect("fresh merge cannot conflict");
        } else {
            self.sig_table.insert(sig, r);
        }
        r
    }

    /// Finds the canonical representative of `a`'s class.
    pub fn find(&self, mut a: TermRef) -> TermRef {
        while self.parent[a as usize] != a {
            a = self.parent[a as usize];
        }
        a
    }

    /// Asserts `a = b`, propagating congruence.
    ///
    /// # Errors
    ///
    /// Returns [`EufConflict`] if the merge equates two distinct integer
    /// literals or violates a previously asserted disequality.
    pub fn merge(&mut self, a: TermRef, b: TermRef) -> Result<(), EufConflict> {
        let mut pending = vec![(a, b)];
        while let Some((x, y)) = pending.pop() {
            let (rx, ry) = (self.find(x), self.find(y));
            if rx == ry {
                continue;
            }
            // Distinct integer literals cannot be equal.
            if let (Some(u), Some(v)) = (self.int_value[rx as usize], self.int_value[ry as usize]) {
                if u != v {
                    return Err(EufConflict);
                }
            }
            // Union by use-list size: graft the smaller class.
            let (small, big) = if self.uses[rx as usize].len() <= self.uses[ry as usize].len() {
                (rx, ry)
            } else {
                (ry, rx)
            };
            self.parent[small as usize] = big;
            self.merges += 1;
            let old_int_big = self.int_value[big as usize];
            if old_int_big.is_none() {
                self.int_value[big as usize] = self.int_value[small as usize];
            }
            // Keep the surviving member list sorted so enumeration order
            // is stable no matter which side was grafted.
            let moved_members = std::mem::take(&mut self.members[small as usize]);
            let kept_members = std::mem::take(&mut self.members[big as usize]);
            self.members[big as usize] = merge_sorted(&kept_members, &moved_members);
            // Recompute signatures of the small class's parents.
            let moved_uses = std::mem::take(&mut self.uses[small as usize]);
            let mut inserted_sigs: Vec<(Head, Vec<TermRef>)> = Vec::new();
            for &u in &moved_uses {
                let node = &self.nodes[u as usize];
                let sig = (
                    node.head,
                    node.args.iter().map(|&c| self.find(c)).collect::<Vec<_>>(),
                );
                if let Some(&other) = self.sig_table.get(&sig) {
                    if self.find(other) != self.find(u) {
                        pending.push((u, other));
                    }
                } else if self.recording {
                    self.sig_table.insert(sig.clone(), u);
                    inserted_sigs.push(sig);
                } else {
                    self.sig_table.insert(sig, u);
                }
            }
            let old_big_uses = self.uses[big as usize].len();
            self.uses[big as usize].extend(moved_uses);
            if self.recording {
                self.trail.push(UnionRecord {
                    small,
                    big,
                    old_int_big,
                    kept_members,
                    moved_members,
                    old_big_uses,
                    inserted_sigs,
                });
            }
            // Violated disequality?
            for &(p, q) in &self.diseqs {
                if self.find(p) == self.find(q) {
                    return Err(EufConflict);
                }
            }
        }
        Ok(())
    }

    /// Asserts `a ≠ b`.
    ///
    /// # Errors
    ///
    /// Returns [`EufConflict`] if `a` and `b` are already in the same class.
    pub fn assert_diseq(&mut self, a: TermRef, b: TermRef) -> Result<(), EufConflict> {
        if self.find(a) == self.find(b) {
            return Err(EufConflict);
        }
        self.diseqs.push((a, b));
        Ok(())
    }

    /// Returns all interned term refs.
    pub fn term_refs(&self) -> impl Iterator<Item = TermRef> + '_ {
        (0..self.nodes.len()).map(|i| i as TermRef)
    }

    /// The hash-consed arena id behind a ref.
    pub fn tid(&self, r: TermRef) -> TermId {
        self.nodes[r as usize].tid
    }

    /// The function symbol heading `r`, if it is an application.
    pub fn head_symbol(&self, r: TermRef) -> Option<Symbol> {
        match self.nodes[r as usize].head {
            Head::Sym(s) => Some(s),
            Head::Int(_) => None,
        }
    }

    /// The integer literal at `r`, if it is one.
    pub fn int_literal(&self, r: TermRef) -> Option<i64> {
        match self.nodes[r as usize].head {
            Head::Int(v) => Some(v),
            Head::Sym(_) => None,
        }
    }

    /// The known integer value of `r`'s class (an integer literal merged
    /// into the class), if any.
    pub fn class_int_value(&self, r: TermRef) -> Option<i64> {
        self.int_value[self.find(r) as usize]
    }

    /// Direct children of `r`.
    pub fn args(&self, r: TermRef) -> &[TermRef] {
        &self.nodes[r as usize].args
    }

    /// All members of `r`'s equivalence class, in ascending ref order.
    pub fn class_members(&self, r: TermRef) -> &[TermRef] {
        &self.members[self.find(r) as usize]
    }

    /// Every ref headed by `f` at the given arity, in interning order —
    /// the E-matching candidate index.
    pub fn terms_with_head(&self, f: Symbol, arity: usize) -> &[TermRef] {
        self.by_head
            .get(&(f, arity))
            .map_or(NO_MEMBERS, Vec::as_slice)
    }

    /// Total class unions performed so far, including congruence-induced
    /// merges propagated by the worklist. Cumulative across
    /// [`Egraph::rollback`]: undone unions still count as work done.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Captures a rollback point covering every union and disequality
    /// asserted from here on, and switches union recording on for the
    /// rest of this e-graph's lifetime. Pair with [`Egraph::rollback`]
    /// to use one e-graph as a reusable template: assert a leaf's
    /// equalities, check consistency, then rewind — instead of
    /// re-interning every term into a fresh e-graph per leaf.
    pub fn checkpoint(&mut self) -> Checkpoint {
        self.recording = true;
        Checkpoint {
            unions: self.trail.len(),
            diseqs: self.diseqs.len(),
        }
    }

    /// Rewinds every union and disequality asserted since the
    /// checkpoint, restoring parent pointers, member lists, use lists,
    /// class integer values, and the congruence signature table exactly.
    /// The [`Egraph::merges`] telemetry counter is *not* rewound.
    ///
    /// Interning new terms between checkpoint and rollback is not
    /// supported: rollback only undoes unions, so a term interned while
    /// unions were active would keep use-list entries attached to merged
    /// representatives. (The solver's template e-graph pre-interns every
    /// term the leaf checks can touch, so its per-leaf work is pure
    /// lookups plus unions.)
    pub fn rollback(&mut self, cp: Checkpoint) {
        while self.trail.len() > cp.unions {
            let u = self.trail.pop().expect("trail length checked");
            for sig in &u.inserted_sigs {
                self.sig_table.remove(sig);
            }
            let moved = self.uses[u.big as usize].split_off(u.old_big_uses);
            self.uses[u.small as usize] = moved;
            self.members[u.big as usize] = u.kept_members;
            self.members[u.small as usize] = u.moved_members;
            self.int_value[u.big as usize] = u.old_int_big;
            self.parent[u.small as usize] = u.small;
        }
        self.diseqs.truncate(cp.diseqs);
    }
}

/// Merges two ascending-sorted ref lists into one.
fn merge_sorted(a: &[TermRef], b: &[TermRef]) -> Vec<TermRef> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        if a[ia] <= b[ib] {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out.extend_from_slice(&a[ia..]);
    out.extend_from_slice(&b[ib..]);
    out
}

#[cfg(test)]
mod rollback_tests {
    use super::*;

    fn c(name: &str) -> Term {
        Term::cnst(name)
    }
    fn f(args: Vec<Term>) -> Term {
        Term::app("f", args)
    }

    /// Observable e-graph state, for exact before/after comparison.
    fn observe(eg: &Egraph) -> Vec<(TermRef, Vec<TermRef>, Option<i64>)> {
        eg.term_refs()
            .map(|r| (eg.find(r), eg.class_members(r).to_vec(), eg.class_int_value(r)))
            .collect()
    }

    #[test]
    fn rollback_restores_the_pre_checkpoint_state_exactly() {
        let mut arena = TermArena::new();
        let mut eg = Egraph::new();
        let a = eg.intern(&mut arena, &c("a"));
        let b = eg.intern(&mut arena, &c("b"));
        let d = eg.intern(&mut arena, &c("d"));
        let _fa = eg.intern(&mut arena, &f(vec![c("a")]));
        let _fb = eg.intern(&mut arena, &f(vec![c("b")]));
        let seven = eg.intern(&mut arena, &Term::int(7));
        eg.merge(a, seven).unwrap();

        let before = observe(&eg);
        let cp = eg.checkpoint();
        // A "leaf": merges (with congruence cascade), a disequality.
        eg.merge(a, b).unwrap();
        eg.assert_diseq(b, d).unwrap();
        assert_ne!(observe(&eg), before, "the leaf visibly mutated the graph");
        eg.rollback(cp);
        assert_eq!(observe(&eg), before, "rollback is exact");
        // The graph is fully usable afterwards: a different "leaf" works
        // and sees no residue (b ≠ d is gone, so merging them is fine).
        let cp2 = eg.checkpoint();
        eg.merge(b, d).unwrap();
        assert_eq!(eg.find(b), eg.find(d));
        eg.rollback(cp2);
        assert_eq!(observe(&eg), before);
    }

    #[test]
    fn rollback_after_a_conflict_recovers() {
        let mut arena = TermArena::new();
        let mut eg = Egraph::new();
        let a = eg.intern(&mut arena, &c("a"));
        let three = eg.intern(&mut arena, &Term::int(3));
        let five = eg.intern(&mut arena, &Term::int(5));
        let before = observe(&eg);
        let cp = eg.checkpoint();
        eg.merge(a, three).unwrap();
        assert_eq!(eg.merge(a, five), Err(EufConflict));
        eg.rollback(cp);
        assert_eq!(observe(&eg), before, "partial merges before the conflict are rewound");
        // And the non-conflicting half works cleanly afterwards.
        eg.merge(a, five).unwrap();
        assert_eq!(eg.class_int_value(a), Some(5));
    }

    #[test]
    fn merges_telemetry_is_cumulative_across_rollbacks() {
        let mut arena = TermArena::new();
        let mut eg = Egraph::new();
        let a = eg.intern(&mut arena, &c("a"));
        let b = eg.intern(&mut arena, &c("b"));
        let cp = eg.checkpoint();
        eg.merge(a, b).unwrap();
        assert_eq!(eg.merges(), 1);
        eg.rollback(cp);
        assert_eq!(eg.merges(), 1, "undone unions still count as work done");
    }

    #[test]
    fn rollback_restores_congruence_signatures() {
        // After rollback, re-merging must re-propagate congruence: if the
        // signature table kept leaf-time entries, f(a)/f(b) would not be
        // re-merged on the second pass.
        let mut arena = TermArena::new();
        let mut eg = Egraph::new();
        let a = eg.intern(&mut arena, &c("a"));
        let b = eg.intern(&mut arena, &c("b"));
        let fa = eg.intern(&mut arena, &f(vec![c("a")]));
        let fb = eg.intern(&mut arena, &f(vec![c("b")]));
        let cp = eg.checkpoint();
        eg.merge(a, b).unwrap();
        assert_eq!(eg.find(fa), eg.find(fb));
        eg.rollback(cp);
        assert_ne!(eg.find(fa), eg.find(fb));
        eg.merge(a, b).unwrap();
        assert_eq!(eg.find(fa), eg.find(fb), "congruence fires again after rollback");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(name: &str) -> Term {
        Term::cnst(name)
    }
    fn f(args: Vec<Term>) -> Term {
        Term::app("f", args)
    }

    fn setup() -> (TermArena, Egraph) {
        (TermArena::new(), Egraph::new())
    }

    #[test]
    fn interning_is_shared() {
        let (mut arena, mut eg) = setup();
        let a1 = eg.intern(&mut arena, &f(vec![c("a")]));
        let a2 = eg.intern(&mut arena, &f(vec![c("a")]));
        assert_eq!(a1, a2);
    }

    #[test]
    fn basic_union() {
        let (mut arena, mut eg) = setup();
        let a = eg.intern(&mut arena, &c("a"));
        let b = eg.intern(&mut arena, &c("b"));
        assert_ne!(eg.find(a), eg.find(b));
        eg.merge(a, b).unwrap();
        assert_eq!(eg.find(a), eg.find(b));
    }

    #[test]
    fn congruence_propagates() {
        let (mut arena, mut eg) = setup();
        let a = eg.intern(&mut arena, &c("a"));
        let b = eg.intern(&mut arena, &c("b"));
        let fa = eg.intern(&mut arena, &f(vec![c("a")]));
        let fb = eg.intern(&mut arena, &f(vec![c("b")]));
        eg.merge(a, b).unwrap();
        assert_eq!(eg.find(fa), eg.find(fb));
    }

    #[test]
    fn congruence_propagates_transitively() {
        let (mut arena, mut eg) = setup();
        let a = eg.intern(&mut arena, &c("a"));
        let b = eg.intern(&mut arena, &c("b"));
        let ffa = eg.intern(&mut arena, &f(vec![f(vec![c("a")])]));
        let ffb = eg.intern(&mut arena, &f(vec![f(vec![c("b")])]));
        eg.merge(a, b).unwrap();
        assert_eq!(eg.find(ffa), eg.find(ffb));
    }

    #[test]
    fn congruence_on_late_interning() {
        // Merge first, intern the applications afterwards.
        let (mut arena, mut eg) = setup();
        let a = eg.intern(&mut arena, &c("a"));
        let b = eg.intern(&mut arena, &c("b"));
        eg.merge(a, b).unwrap();
        let fa = eg.intern(&mut arena, &f(vec![c("a")]));
        let fb = eg.intern(&mut arena, &f(vec![c("b")]));
        assert_eq!(eg.find(fa), eg.find(fb));
    }

    #[test]
    fn distinct_integers_conflict() {
        let (mut arena, mut eg) = setup();
        let three = eg.intern(&mut arena, &Term::int(3));
        let five = eg.intern(&mut arena, &Term::int(5));
        assert_eq!(eg.merge(three, five), Err(EufConflict));
    }

    #[test]
    fn integer_conflict_through_constants() {
        let (mut arena, mut eg) = setup();
        let a = eg.intern(&mut arena, &c("a"));
        let three = eg.intern(&mut arena, &Term::int(3));
        let five = eg.intern(&mut arena, &Term::int(5));
        eg.merge(a, three).unwrap();
        assert_eq!(eg.merge(a, five), Err(EufConflict));
    }

    #[test]
    fn disequality_conflicts_immediately() {
        let (mut arena, mut eg) = setup();
        let a = eg.intern(&mut arena, &c("a"));
        let b = eg.intern(&mut arena, &c("b"));
        eg.merge(a, b).unwrap();
        assert_eq!(eg.assert_diseq(a, b), Err(EufConflict));
    }

    #[test]
    fn disequality_conflicts_later_via_congruence() {
        let (mut arena, mut eg) = setup();
        let fa = eg.intern(&mut arena, &f(vec![c("a")]));
        let fb = eg.intern(&mut arena, &f(vec![c("b")]));
        eg.assert_diseq(fa, fb).unwrap();
        let a = eg.intern(&mut arena, &c("a"));
        let b = eg.intern(&mut arena, &c("b"));
        assert_eq!(eg.merge(a, b), Err(EufConflict));
    }

    #[test]
    fn class_members_enumerate_sorted() {
        let (mut arena, mut eg) = setup();
        let a = eg.intern(&mut arena, &c("a"));
        let b = eg.intern(&mut arena, &c("b"));
        let d = eg.intern(&mut arena, &c("d"));
        eg.merge(b, a).unwrap();
        let members = eg.class_members(a);
        assert_eq!(members, &[a, b], "sorted regardless of merge direction");
        assert_eq!(eg.class_members(d), &[d]);
    }

    #[test]
    fn head_index_tracks_interning_order() {
        let (mut arena, mut eg) = setup();
        let fa = eg.intern(&mut arena, &f(vec![c("a")]));
        let fb = eg.intern(&mut arena, &f(vec![c("b")]));
        let _g = eg.intern(&mut arena, &Term::app("g", vec![c("a")]));
        assert_eq!(eg.terms_with_head(Symbol::intern("f"), 1), &[fa, fb]);
        assert!(eg.terms_with_head(Symbol::intern("f"), 2).is_empty());
    }

    #[test]
    fn tids_round_trip_through_the_arena() {
        let (mut arena, mut eg) = setup();
        let t = f(vec![c("a")]);
        let r = eg.intern(&mut arena, &t);
        assert_eq!(arena.term(eg.tid(r)), &t);
        // intern_id on the same arena id is a pure lookup.
        let id = arena.intern(&t);
        assert_eq!(eg.intern_id(&arena, id), r);
    }

    #[test]
    fn class_int_value_flows_through_merges() {
        let (mut arena, mut eg) = setup();
        let a = eg.intern(&mut arena, &c("a"));
        let b = eg.intern(&mut arena, &c("b"));
        let seven = eg.intern(&mut arena, &Term::int(7));
        eg.merge(a, seven).unwrap();
        eg.merge(b, a).unwrap();
        assert_eq!(eg.class_int_value(b), Some(7));
    }

    #[test]
    fn merges_are_counted_including_congruence() {
        let (mut arena, mut eg) = setup();
        let a = eg.intern(&mut arena, &c("a"));
        let b = eg.intern(&mut arena, &c("b"));
        let _fa = eg.intern(&mut arena, &f(vec![c("a")]));
        let _fb = eg.intern(&mut arena, &f(vec![c("b")]));
        assert_eq!(eg.merges(), 0);
        eg.merge(a, b).unwrap();
        // One explicit union plus the congruence-induced f(a) = f(b).
        assert_eq!(eg.merges(), 2);
    }

    #[test]
    #[should_panic(expected = "non-ground")]
    fn interning_variable_panics() {
        use crate::term::Sort;
        let (mut arena, mut eg) = setup();
        let _ = eg.intern(&mut arena, &Term::var("x", Sort::Int));
    }
}
