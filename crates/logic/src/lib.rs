//! A Simplify-style automatic theorem prover.
//!
//! The paper's soundness checker discharges its proof obligations with
//! Simplify, the Nelson–Oppen prover from ESC/Java. Simplify is closed
//! source, so this crate implements the same architecture from scratch:
//!
//! * multi-sorted first-order [`Term`]s and [`Formula`]s ([`term`]),
//! * **congruence closure** for equality over uninterpreted functions
//!   ([`euf`]),
//! * **linear arithmetic** over the ordered rationals with strict
//!   inequalities, decided by Fourier–Motzkin elimination, with exact
//!   integer-disequality reasoning ([`arith`]),
//! * a DPLL-style **case-splitting search** over the propositional
//!   structure with theory consistency checks at the leaves ([`solver`]),
//! * **quantifier instantiation by E-matching** on user-supplied trigger
//!   patterns, the way Simplify's matcher works ([`ematch`]).
//!
//! The prover is *refutation based*: to prove `H₁ ∧ … ∧ Hₙ ⇒ G` it asserts
//! the hypotheses together with `¬G` and searches for a theory-consistent
//! assignment. If every branch is inconsistent the obligation is
//! [`Outcome::Proved`]; if the search saturates with a surviving
//! assignment the prover reports [`Outcome::Refuted`] together with the
//! candidate countermodel literals, which is how the soundness checker
//! explains *why* an erroneous qualifier (such as the paper's `E1 - E2`
//! variant of `pos`) is rejected. Every attempt runs under a
//! [`stats::Budget`]; when a limit trips the prover returns
//! [`Outcome::ResourceOut`] with [`stats::ProverStats`] telemetry instead
//! of diverging ([`stats`]).
//!
//! # Examples
//!
//! Proving that the product of two positive numbers is positive, given the
//! multiplication sign lemma as a triggered axiom (this is the obligation
//! for the second `case` clause of the paper's `pos` qualifier):
//!
//! ```
//! use stq_logic::term::{Formula, Sort, Term};
//! use stq_logic::solver::{Outcome, Problem};
//! use stq_util::Symbol;
//!
//! let x = Term::var("x", Sort::Int);
//! let y = Term::var("y", Sort::Int);
//! let mul = |a: &Term, b: &Term| Term::app("*", vec![a.clone(), b.clone()]);
//!
//! // Background axiom: forall a b. a > 0 && b > 0 => a*b > 0,
//! // triggered on the product term.
//! let a = Term::var("a", Sort::Int);
//! let b = Term::var("b", Sort::Int);
//! let lemma = Formula::forall(
//!     vec![(Symbol::intern("a"), Sort::Int), (Symbol::intern("b"), Sort::Int)],
//!     vec![vec![mul(&a, &b)]],
//!     Formula::and(vec![a.gt0(), b.gt0()]).implies(mul(&a, &b).gt0()),
//! );
//!
//! let mut problem = Problem::new();
//! problem.axiom(lemma);
//! problem.hypothesis(x.gt0());
//! problem.hypothesis(y.gt0());
//! problem.goal(mul(&x, &y).gt0());
//! assert!(matches!(problem.prove(), Outcome::Proved { .. }));
//! ```

pub mod arena;
pub mod arith;
pub mod ematch;
pub mod euf;
pub mod fault;
pub mod fingerprint;
pub mod pre;
pub mod rat;
pub mod solver;
pub mod stats;
pub mod term;
pub mod theory;

pub use fault::{FaultKind, FaultPlan, IoFaultKind, IoFaultPlan};
pub use fingerprint::{Fingerprint, PROVER_VERSION};
pub use solver::{Outcome, Problem, SolverTuning, SolverWorker};
pub use stats::{Budget, BudgetOverride, ProverConfig, ProverStats, Resource, RetryPolicy};
pub use term::{Formula, Sort, Term};
pub use theory::Theory;
