//! Multi-sorted first-order terms and formulas.
//!
//! The vocabulary mirrors the paper's §4 axiomatization: uninterpreted
//! function symbols such as `evalExpr`, `getStore`, `select`, `location`
//! are ordinary [`Term::App`] applications, while the interpreted symbols
//! `+`, `-`, `*`, and `neg` are recognized by the arithmetic solver.

use std::fmt;
use stq_util::Symbol;

/// The sort (logical type) of a term.
///
/// Following the paper we use a logical model of memory in which addresses
/// and C values are integers (`NULL` is the integer 0), so arithmetic is
/// available over all value-sorted terms. The remaining sorts keep the
/// structural vocabulary (states, stores, program syntax) apart.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Sort {
    /// Booleans; only predicates have this sort.
    Bool,
    /// Integers — also used for C values and memory addresses.
    Int,
    /// Any other uninterpreted sort, e.g. `State`, `Store`, `Expr`.
    Other(Symbol),
}

impl Sort {
    /// Convenience constructor for an uninterpreted sort.
    pub fn other(name: &str) -> Sort {
        Sort::Other(Symbol::intern(name))
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => f.write_str("Bool"),
            Sort::Int => f.write_str("Int"),
            Sort::Other(s) => write!(f, "{s}"),
        }
    }
}

/// A first-order term.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Term {
    /// A (possibly quantified) variable with its sort.
    Var(Symbol, Sort),
    /// An integer literal.
    Int(i64),
    /// Application of a function symbol. Nullary applications are
    /// uninterpreted constants.
    App(Symbol, Vec<Term>),
}

impl Term {
    /// A variable.
    pub fn var(name: &str, sort: Sort) -> Term {
        Term::Var(Symbol::intern(name), sort)
    }

    /// An uninterpreted constant (nullary application).
    pub fn cnst(name: &str) -> Term {
        Term::App(Symbol::intern(name), Vec::new())
    }

    /// An application `f(args…)`.
    pub fn app(f: &str, args: Vec<Term>) -> Term {
        Term::App(Symbol::intern(f), args)
    }

    /// An integer literal.
    pub fn int(v: i64) -> Term {
        Term::Int(v)
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Term) -> Term {
        Term::app("+", vec![self.clone(), other.clone()])
    }

    /// `self - other`.
    #[must_use]
    pub fn sub(&self, other: &Term) -> Term {
        Term::app("-", vec![self.clone(), other.clone()])
    }

    /// `self * other`.
    #[must_use]
    pub fn mul(&self, other: &Term) -> Term {
        Term::app("*", vec![self.clone(), other.clone()])
    }

    /// Unary negation `-self`.
    #[must_use]
    pub fn neg(&self) -> Term {
        Term::app("neg", vec![self.clone()])
    }

    /// The formula `self > 0`.
    pub fn gt0(&self) -> Formula {
        Formula::Lt(Term::int(0), self.clone())
    }

    /// The formula `self < 0`.
    pub fn lt0(&self) -> Formula {
        Formula::Lt(self.clone(), Term::int(0))
    }

    /// The formula `self = other`.
    pub fn eq(&self, other: &Term) -> Formula {
        Formula::Eq(self.clone(), other.clone())
    }

    /// The formula `self ≠ other`.
    pub fn ne(&self, other: &Term) -> Formula {
        Formula::Eq(self.clone(), other.clone()).negate()
    }

    /// The formula `self < other`.
    pub fn lt(&self, other: &Term) -> Formula {
        Formula::Lt(self.clone(), other.clone())
    }

    /// The formula `self ≤ other`.
    pub fn le(&self, other: &Term) -> Formula {
        Formula::Le(self.clone(), other.clone())
    }

    /// Capture-avoiding simultaneous substitution of variables by terms.
    ///
    /// Substitution only ever happens with *ground* replacement terms in
    /// this prover (quantifier instantiation and skolemization), so no
    /// renaming is required.
    #[must_use]
    pub fn subst(&self, map: &[(Symbol, Term)]) -> Term {
        match self {
            Term::Var(x, _) => map
                .iter()
                .find(|(y, _)| y == x)
                .map_or_else(|| self.clone(), |(_, t)| t.clone()),
            Term::Int(_) => self.clone(),
            Term::App(f, args) => Term::App(*f, args.iter().map(|a| a.subst(map)).collect()),
        }
    }

    /// Collects the free variables of the term into `out` (terms have no
    /// binders, so all variables are free).
    pub fn free_vars(&self, out: &mut Vec<(Symbol, Sort)>) {
        match self {
            Term::Var(x, s) => {
                if !out.iter().any(|(y, _)| y == x) {
                    out.push((*x, *s));
                }
            }
            Term::Int(_) => {}
            Term::App(_, args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
        }
    }

    /// True if the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(..) => false,
            Term::Int(_) => true,
            Term::App(_, args) => args.iter().all(Term::is_ground),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(x, _) => write!(f, "{x}"),
            Term::Int(v) => write!(f, "{v}"),
            Term::App(g, args) if args.is_empty() => write!(f, "{g}"),
            Term::App(g, args) => {
                write!(f, "{g}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// A trigger for E-matching: a multi-pattern, i.e. a set of terms that must
/// all match (sharing variable bindings) for the axiom to be instantiated.
pub type Trigger = Vec<Term>;

/// A first-order formula in the prover's input language.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// Predicate application `p(args…)`.
    Pred(Symbol, Vec<Term>),
    /// Equality between terms of the same sort.
    Eq(Term, Term),
    /// `lhs ≤ rhs` over integer-sorted terms.
    Le(Term, Term),
    /// `lhs < rhs` over integer-sorted terms.
    Lt(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Universal quantification with E-matching triggers. An empty trigger
    /// list asks the preprocessor to infer one.
    Forall(Vec<(Symbol, Sort)>, Vec<Trigger>, Box<Formula>),
    /// Existential quantification (skolemized away by preprocessing).
    Exists(Vec<(Symbol, Sort)>, Box<Formula>),
}

impl Formula {
    /// Predicate application.
    pub fn pred(name: &str, args: Vec<Term>) -> Formula {
        Formula::Pred(Symbol::intern(name), args)
    }

    /// N-ary conjunction, flattening nested conjunctions and units.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// N-ary disjunction, flattening nested disjunctions and units.
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Logical implication `self ⇒ other`.
    #[must_use]
    pub fn implies(self, other: Formula) -> Formula {
        Formula::or(vec![self.negate(), other])
    }

    /// Logical equivalence `self ⇔ other`.
    #[must_use]
    pub fn iff(self, other: Formula) -> Formula {
        Formula::and(vec![
            self.clone().implies(other.clone()),
            other.implies(self),
        ])
    }

    /// Negation, collapsing double negations.
    #[must_use]
    pub fn negate(self) -> Formula {
        match self {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Universal quantification with explicit triggers.
    pub fn forall(vars: Vec<(Symbol, Sort)>, triggers: Vec<Trigger>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Forall(vars, triggers, Box::new(body))
        }
    }

    /// Existential quantification.
    pub fn exists(vars: Vec<(Symbol, Sort)>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Exists(vars, Box::new(body))
        }
    }

    /// Capture-avoiding substitution of free variables by ground terms.
    #[must_use]
    pub fn subst(&self, map: &[(Symbol, Term)]) -> Formula {
        match self {
            Formula::True | Formula::False => self.clone(),
            Formula::Pred(p, args) => {
                Formula::Pred(*p, args.iter().map(|a| a.subst(map)).collect())
            }
            Formula::Eq(a, b) => Formula::Eq(a.subst(map), b.subst(map)),
            Formula::Le(a, b) => Formula::Le(a.subst(map), b.subst(map)),
            Formula::Lt(a, b) => Formula::Lt(a.subst(map), b.subst(map)),
            Formula::Not(f) => Formula::Not(Box::new(f.subst(map))),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.subst(map)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.subst(map)).collect()),
            Formula::Forall(vars, trs, body) => {
                let filtered: Vec<(Symbol, Term)> = map
                    .iter()
                    .filter(|(x, _)| !vars.iter().any(|(v, _)| v == x))
                    .cloned()
                    .collect();
                Formula::Forall(
                    vars.clone(),
                    trs.iter()
                        .map(|tr| tr.iter().map(|t| t.subst(&filtered)).collect())
                        .collect(),
                    Box::new(body.subst(&filtered)),
                )
            }
            Formula::Exists(vars, body) => {
                let filtered: Vec<(Symbol, Term)> = map
                    .iter()
                    .filter(|(x, _)| !vars.iter().any(|(v, _)| v == x))
                    .cloned()
                    .collect();
                Formula::Exists(vars.clone(), Box::new(body.subst(&filtered)))
            }
        }
    }

    /// Collects free variables (variables not bound by a quantifier).
    pub fn free_vars(&self, out: &mut Vec<(Symbol, Sort)>) {
        fn go(f: &Formula, bound: &mut Vec<Symbol>, out: &mut Vec<(Symbol, Sort)>) {
            match f {
                Formula::True | Formula::False => {}
                Formula::Pred(_, args) => {
                    for a in args {
                        collect_term(a, bound, out);
                    }
                }
                Formula::Eq(a, b) | Formula::Le(a, b) | Formula::Lt(a, b) => {
                    collect_term(a, bound, out);
                    collect_term(b, bound, out);
                }
                Formula::Not(g) => go(g, bound, out),
                Formula::And(gs) | Formula::Or(gs) => {
                    for g in gs {
                        go(g, bound, out);
                    }
                }
                Formula::Forall(vars, _, body) | Formula::Exists(vars, body) => {
                    let n = bound.len();
                    bound.extend(vars.iter().map(|(v, _)| *v));
                    go(body, bound, out);
                    bound.truncate(n);
                }
            }
        }
        fn collect_term(t: &Term, bound: &[Symbol], out: &mut Vec<(Symbol, Sort)>) {
            match t {
                Term::Var(x, s) => {
                    if !bound.contains(x) && !out.iter().any(|(y, _)| y == x) {
                        out.push((*x, *s));
                    }
                }
                Term::Int(_) => {}
                Term::App(_, args) => {
                    for a in args {
                        collect_term(a, bound, out);
                    }
                }
            }
        }
        go(self, &mut Vec::new(), out);
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => f.write_str("true"),
            Formula::False => f.write_str("false"),
            Formula::Pred(p, args) if args.is_empty() => write!(f, "{p}"),
            Formula::Pred(p, args) => {
                write!(f, "{p}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Formula::Eq(a, b) => write!(f, "({a} = {b})"),
            Formula::Le(a, b) => write!(f, "({a} <= {b})"),
            Formula::Lt(a, b) => write!(f, "({a} < {b})"),
            Formula::Not(g) => write!(f, "!{g}"),
            Formula::And(gs) => {
                f.write_str("(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" && ")?;
                    }
                    write!(f, "{g}")?;
                }
                f.write_str(")")
            }
            Formula::Or(gs) => {
                f.write_str("(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" || ")?;
                    }
                    write!(f, "{g}")?;
                }
                f.write_str(")")
            }
            Formula::Forall(vars, _, body) => {
                f.write_str("(forall ")?;
                for (i, (v, s)) in vars.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{v}:{s}")?;
                }
                write!(f, ". {body})")
            }
            Formula::Exists(vars, body) => {
                f.write_str("(exists ")?;
                for (i, (v, s)) in vars.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{v}:{s}")?;
                }
                write!(f, ". {body})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Term {
        Term::var("x", Sort::Int)
    }

    #[test]
    fn substitution_replaces_variables() {
        let t = x().add(&Term::int(1));
        let s = t.subst(&[(Symbol::intern("x"), Term::int(41))]);
        assert_eq!(s, Term::int(41).add(&Term::int(1)));
    }

    #[test]
    fn substitution_leaves_other_vars() {
        let t = Term::var("y", Sort::Int);
        let s = t.subst(&[(Symbol::intern("x"), Term::int(0))]);
        assert_eq!(s, t);
    }

    #[test]
    fn groundness() {
        assert!(Term::int(3).is_ground());
        assert!(Term::cnst("sigma").is_ground());
        assert!(!x().is_ground());
        assert!(!Term::app("f", vec![x()]).is_ground());
    }

    #[test]
    fn and_flattens_and_drops_units() {
        let f = Formula::and(vec![
            Formula::True,
            Formula::and(vec![x().gt0(), Formula::True]),
        ]);
        assert_eq!(f, x().gt0());
    }

    #[test]
    fn or_flattens_and_drops_units() {
        let f = Formula::or(vec![Formula::False, x().gt0(), Formula::False]);
        assert_eq!(f, x().gt0());
    }

    #[test]
    fn empty_and_is_true_empty_or_is_false() {
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
    }

    #[test]
    fn double_negation_collapses() {
        let f = x().gt0();
        assert_eq!(f.clone().negate().negate(), f);
    }

    #[test]
    fn implication_encodes_as_disjunction() {
        let f = x().gt0().implies(x().lt0());
        match f {
            Formula::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn formula_substitution_respects_binders() {
        let xsym = Symbol::intern("x");
        let inner = Formula::forall(vec![(xsym, Sort::Int)], vec![], x().gt0());
        // x is bound, so substitution must not touch the body.
        let s = inner.subst(&[(xsym, Term::int(5))]);
        match s {
            Formula::Forall(_, _, body) => assert_eq!(*body, x().gt0()),
            other => panic!("expected Forall, got {other:?}"),
        }
    }

    #[test]
    fn free_vars_excludes_bound() {
        let xsym = Symbol::intern("x");
        let f = Formula::and(vec![
            Formula::forall(vec![(xsym, Sort::Int)], vec![], x().gt0()),
            Term::var("y", Sort::Int).gt0(),
        ]);
        let mut vars = Vec::new();
        f.free_vars(&mut vars);
        assert_eq!(vars, vec![(Symbol::intern("y"), Sort::Int)]);
    }

    #[test]
    fn display_round_trip_smoke() {
        let f = Formula::forall(
            vec![(Symbol::intern("a"), Sort::Int)],
            vec![],
            Term::var("a", Sort::Int)
                .gt0()
                .implies(Formula::pred("p", vec![Term::var("a", Sort::Int)])),
        );
        let shown = f.to_string();
        assert!(shown.contains("forall a:Int"));
        assert!(shown.contains("p(a)"));
    }

    #[test]
    fn forall_with_no_vars_is_body() {
        let body = x().gt0();
        assert_eq!(Formula::forall(vec![], vec![], body.clone()), body);
        assert_eq!(Formula::exists(vec![], body.clone()), body);
    }
}
