//! A hash-consed arena of ground terms.
//!
//! The prover's hot loops — congruence closure at every DPLL leaf,
//! E-matching every round — repeatedly walk the same `Box`-based
//! [`Term`] trees, re-hashing and re-cloning structure that never
//! changes within an attempt. The arena interns each distinct ground
//! term once and hands out a dense [`TermId`]; equal ids mean equal
//! terms, so structural equality, hashing, and child access are all
//! O(1) from then on. A worker keeps one arena alive across obligations
//! ([`crate::theory`]) and truncates it back to the shared-theory
//! watermark between attempts.

use crate::term::Term;
use std::collections::HashMap;
use stq_util::Symbol;

/// Index of an interned ground term in a [`TermArena`].
pub type TermId = u32;

/// The head of an interned term: a function symbol (possibly nullary)
/// or an integer literal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Head {
    /// Function symbol.
    Sym(Symbol),
    /// Integer literal.
    Int(i64),
}

#[derive(Clone, Debug)]
struct ANode {
    head: Head,
    args: Vec<TermId>,
}

/// A hash-consing arena for ground terms.
///
/// # Examples
///
/// ```
/// use stq_logic::arena::TermArena;
/// use stq_logic::term::Term;
///
/// let mut arena = TermArena::new();
/// let a1 = arena.intern(&Term::app("f", vec![Term::cnst("a")]));
/// let a2 = arena.intern(&Term::app("f", vec![Term::cnst("a")]));
/// assert_eq!(a1, a2); // O(1) structural equality from here on
/// ```
#[derive(Clone, Debug, Default)]
pub struct TermArena {
    nodes: Vec<ANode>,
    /// Hash-consing table: (head, child ids) → id.
    table: HashMap<(Head, Vec<TermId>), TermId>,
    /// The materialized term tree per id, built once at interning time
    /// so instantiation substitutions never re-walk the arena.
    terms: Vec<Term>,
    created: u64,
    hits: u64,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> TermArena {
        TermArena::default()
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes created since construction (monotone; deltas are the
    /// per-attempt `interned_terms` telemetry).
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Hash-consing hits since construction (monotone; deltas are the
    /// per-attempt `intern_hits` telemetry).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Interns a ground term (and all its subterms), returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the term contains variables.
    pub fn intern(&mut self, t: &Term) -> TermId {
        match t {
            Term::Var(x, _) => panic!("cannot intern non-ground term (var {x})"),
            Term::Int(v) => self.intern_node(Head::Int(*v), Vec::new(), || Term::Int(*v)),
            Term::App(f, ts) => {
                let args: Vec<TermId> = ts.iter().map(|a| self.intern(a)).collect();
                self.intern_node(Head::Sym(*f), args, || t.clone())
            }
        }
    }

    /// Interns an application `f(args…)` whose children are already
    /// interned, without materializing the argument terms first.
    pub fn intern_app(&mut self, f: Symbol, args: Vec<TermId>) -> TermId {
        if let Some(&id) = self.table.get(&(Head::Sym(f), args.clone())) {
            self.hits += 1;
            return id;
        }
        let term = Term::App(f, args.iter().map(|&a| self.terms[a as usize].clone()).collect());
        self.intern_node(Head::Sym(f), args, || term)
    }

    fn intern_node(&mut self, head: Head, args: Vec<TermId>, term: impl FnOnce() -> Term) -> TermId {
        if let Some(&id) = self.table.get(&(head, args.clone())) {
            self.hits += 1;
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("term arena overflow");
        self.terms.push(term());
        self.nodes.push(ANode {
            head,
            args: args.clone(),
        });
        self.table.insert((head, args), id);
        self.created += 1;
        id
    }

    /// The head of an interned term.
    pub fn head(&self, id: TermId) -> Head {
        self.nodes[id as usize].head
    }

    /// Direct children of an interned term.
    pub fn args(&self, id: TermId) -> &[TermId] {
        &self.nodes[id as usize].args
    }

    /// The integer literal at `id`, if it is one.
    pub fn int_value(&self, id: TermId) -> Option<i64> {
        match self.nodes[id as usize].head {
            Head::Int(v) => Some(v),
            Head::Sym(_) => None,
        }
    }

    /// The materialized term tree for an id.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id as usize]
    }

    /// Drops every node interned at or after position `len`, removing
    /// its hash-consing entry — the scoped reset that returns a
    /// worker's arena to the shared-theory watermark between
    /// obligations. Ids below `len` remain valid.
    pub fn truncate(&mut self, len: usize) {
        for node in self.nodes.drain(len..) {
            self.table.remove(&(node.head, node.args));
        }
        self.terms.truncate(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_shared_and_counted() {
        let mut arena = TermArena::new();
        let a1 = arena.intern(&Term::app("f", vec![Term::cnst("a")]));
        let a2 = arena.intern(&Term::app("f", vec![Term::cnst("a")]));
        assert_eq!(a1, a2);
        // f(a) and a created once each; the second intern hits twice.
        assert_eq!(arena.created(), 2);
        assert_eq!(arena.hits(), 2);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut arena = TermArena::new();
        let a = arena.intern(&Term::cnst("a"));
        let b = arena.intern(&Term::cnst("b"));
        let i = arena.intern(&Term::int(3));
        assert_ne!(a, b);
        assert_ne!(a, i);
        assert_eq!(arena.int_value(i), Some(3));
        assert_eq!(arena.int_value(a), None);
    }

    #[test]
    fn terms_round_trip() {
        let mut arena = TermArena::new();
        let t = Term::app("f", vec![Term::cnst("a"), Term::int(7)]);
        let id = arena.intern(&t);
        assert_eq!(arena.term(id), &t);
        assert_eq!(arena.args(id).len(), 2);
        assert_eq!(arena.head(id), Head::Sym(Symbol::intern("f")));
    }

    #[test]
    fn intern_app_matches_intern() {
        let mut arena = TermArena::new();
        let a = arena.intern(&Term::cnst("a"));
        let via_parts = arena.intern_app(Symbol::intern("f"), vec![a]);
        let via_term = arena.intern(&Term::app("f", vec![Term::cnst("a")]));
        assert_eq!(via_parts, via_term);
        assert_eq!(arena.term(via_parts), &Term::app("f", vec![Term::cnst("a")]));
    }

    #[test]
    fn truncate_forgets_and_reuses_ids() {
        let mut arena = TermArena::new();
        let a = arena.intern(&Term::cnst("a"));
        let mark = arena.len();
        let b1 = arena.intern(&Term::cnst("b"));
        arena.truncate(mark);
        assert_eq!(arena.len(), mark);
        // The surviving prefix still hash-conses.
        assert_eq!(arena.intern(&Term::cnst("a")), a);
        // The dropped term re-interns at the same position.
        let b2 = arena.intern(&Term::cnst("b"));
        assert_eq!(b1, b2);
    }

    #[test]
    #[should_panic(expected = "non-ground")]
    fn interning_variable_panics() {
        use crate::term::Sort;
        let mut arena = TermArena::new();
        let _ = arena.intern(&Term::var("x", Sort::Int));
    }
}
