//! Prover telemetry and resource budgets.
//!
//! The paper's empirical claims are *timings* (§4, §6), so the prover must
//! be measurable: [`ProverStats`] counts the work a proof attempt performs
//! at every layer — DPLL search, theory checks, congruence closure,
//! Fourier–Motzkin, and E-matching — and [`Budget`] bounds that work so a
//! pathological obligation (a matching loop, say) terminates with
//! [`Resource`]`Out` instead of diverging. Simplify shipped the same
//! machinery (instantiation counters and resource limits) for the same
//! reason.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Resource limits for the prover.
///
/// A fresh [`Budget`] (via `Default`) is generous enough for every
/// obligation the qualifier corpus generates; tighten it to bound latency
/// or to study prover behaviour under pressure. When any limit trips, the
/// prover returns [`crate::solver::Outcome::ResourceOut`] naming the
/// exhausted [`Resource`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Maximum E-matching instantiation rounds.
    pub max_rounds: usize,
    /// Maximum total quantifier instantiations.
    pub max_instantiations: usize,
    /// Maximum number of clauses before giving up.
    pub max_clauses: usize,
    /// Maximum DPLL decisions before giving up.
    pub max_decisions: u64,
    /// Optional wall-clock deadline for the whole proof attempt.
    pub timeout: Option<Duration>,
}

/// Former name of [`Budget`], kept for compatibility.
pub type ProverConfig = Budget;

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_rounds: 8,
            max_instantiations: 4000,
            max_clauses: 50_000,
            max_decisions: 2_000_000,
            timeout: None,
        }
    }
}

impl Budget {
    /// A budget with a wall-clock deadline on top of the default limits.
    pub fn with_timeout(timeout: Duration) -> Budget {
        Budget {
            timeout: Some(timeout),
            ..Budget::default()
        }
    }

    /// This budget with the given per-request overrides applied: each
    /// `Some` field of `over` replaces the corresponding base limit.
    /// This is the serve daemon's budget wiring — a resident server
    /// holds one default [`Budget`] and derives a per-request one from
    /// whatever limits the request carries, without the request being
    /// able to *unset* a limit the server imposes (absent fields
    /// inherit, they do not reset to unbounded).
    #[must_use]
    pub fn overridden(self, over: BudgetOverride) -> Budget {
        Budget {
            max_rounds: over.max_rounds.unwrap_or(self.max_rounds),
            max_instantiations: over.max_instantiations.unwrap_or(self.max_instantiations),
            max_clauses: over.max_clauses.unwrap_or(self.max_clauses),
            max_decisions: over.max_decisions.unwrap_or(self.max_decisions),
            timeout: over.timeout.or(self.timeout),
        }
    }

    /// This budget with every limit multiplied by `factor` (saturating),
    /// including the wall-clock deadline. Attempt `k` of the retry
    /// escalation ladder runs under `base.scaled(factor^(k-1))`.
    #[must_use]
    pub fn scaled(&self, factor: u32) -> Budget {
        Budget {
            max_rounds: self.max_rounds.saturating_mul(factor as usize),
            max_instantiations: self.max_instantiations.saturating_mul(factor as usize),
            max_clauses: self.max_clauses.saturating_mul(factor as usize),
            max_decisions: self.max_decisions.saturating_mul(u64::from(factor)),
            timeout: self.timeout.map(|t| t.saturating_mul(factor)),
        }
    }
}

/// Per-request [`Budget`] overrides (see [`Budget::overridden`]): the
/// shape of the optional `budget` object a serve-protocol request may
/// carry. `None` fields inherit the server's base budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetOverride {
    pub max_rounds: Option<usize>,
    pub max_instantiations: Option<usize>,
    pub max_clauses: Option<usize>,
    pub max_decisions: Option<u64>,
    pub timeout: Option<Duration>,
}

impl BudgetOverride {
    /// True when no field is set (the request carried no overrides).
    pub fn is_empty(&self) -> bool {
        *self == BudgetOverride::default()
    }
}

/// Budget-escalation retry policy for obligations that come back
/// [`Resource`]`Out`: attempt `k` (1-based) re-runs the proof under the
/// base [`Budget`] scaled by `factor^(k-1)`, up to `max_attempts` total
/// attempts. `Proved`, `Refuted`, and `Crashed` outcomes are never
/// retried — only resource exhaustion is transient.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total proof attempts per obligation, including the first
    /// (`1` = no retry). Zero is treated as one.
    pub max_attempts: u32,
    /// Geometric budget multiplier between attempts.
    pub factor: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            factor: 2,
        }
    }
}

impl RetryPolicy {
    /// The no-retry policy (single attempt).
    pub fn none() -> RetryPolicy {
        RetryPolicy::default()
    }

    /// A policy running up to `max_attempts` total attempts with the
    /// default 2x escalation factor.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// Total attempts, normalised so a zero configuration still runs once.
    pub fn attempt_cap(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// The budget for 1-based `attempt`, escalated from `base`.
    pub fn budget_for(&self, base: Budget, attempt: u32) -> Budget {
        let mut budget = base;
        for _ in 1..attempt {
            budget = budget.scaled(self.factor.max(1));
        }
        budget
    }
}

/// The budgeted resource a proof attempt ran out of.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// [`Budget::max_rounds`] E-matching rounds were executed.
    Rounds,
    /// [`Budget::max_instantiations`] quantifier instances were generated.
    Instantiations,
    /// [`Budget::max_decisions`] DPLL decisions were made.
    Decisions,
    /// The clause database outgrew [`Budget::max_clauses`].
    Clauses,
    /// A wall-clock deadline passed — either this attempt's
    /// [`Budget::timeout`] or the run-wide deadline carried by the
    /// obligation's `CancelToken`. Distinguishes *time* exhaustion from
    /// the step-counted limits above.
    Time,
    /// The attempt was cancelled externally (SIGINT, caller abort) via
    /// its `CancelToken` before reaching any conclusion. Unlike the
    /// other variants this is not a budget limit: the obligation was
    /// interrupted, not exhausted, and the run that produced it is
    /// reported as interrupted.
    Cancelled,
    /// A [`crate::fault::FaultPlan`] forced this exhaustion (testing
    /// only; never produced by a real budget limit).
    Injected,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::Rounds => "instantiation rounds",
            Resource::Instantiations => "quantifier instantiations",
            Resource::Decisions => "DPLL decisions",
            Resource::Clauses => "clauses",
            Resource::Time => "wall-clock time",
            Resource::Cancelled => "external cancellation",
            Resource::Injected => "injected fault",
        })
    }
}

/// Counters describing the work a proof attempt performed.
///
/// Populated by the solver and its theory modules: the DPLL counters by
/// [`crate::solver`], congruence merges by [`crate::euf`], variable
/// eliminations by [`crate::arith`], and the matching counters by
/// [`crate::ematch`]. All counters are cumulative over the whole attempt.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProverStats {
    /// E-matching instantiation rounds executed.
    pub rounds: usize,
    /// Quantifier instances generated (total across all triggers).
    pub instantiations: usize,
    /// Quantifier instances generated per trigger pattern.
    pub instantiations_by_trigger: BTreeMap<String, u64>,
    /// Candidate bindings the E-matcher examined (before deduplication).
    pub ematch_candidates: u64,
    /// DPLL decisions made.
    pub decisions: u64,
    /// DPLL unit propagations performed.
    pub propagations: u64,
    /// DPLL conflicts encountered (propagation and theory conflicts).
    pub conflicts: u64,
    /// Nelson–Oppen theory-consistency checks at search leaves.
    pub theory_checks: u64,
    /// Congruence-closure class merges (unions), across all checks.
    pub merges: u64,
    /// Fourier–Motzkin variable eliminations, across all checks.
    pub fm_eliminations: u64,
    /// Attempts that re-ran the clausification front end on the
    /// background axioms (the legacy cold path; see
    /// [`crate::theory::Theory`]).
    pub theory_preps: u64,
    /// Attempts that started from a prepared shared-theory core — either
    /// cloned from a [`crate::theory::Theory`] or reused in place by a
    /// [`crate::solver::SolverWorker`] — skipping axiom preprocessing.
    pub theory_reuses: u64,
    /// Distinct term nodes created by hash-consing interning over the
    /// attempt (with [`crate::solver::SolverTuning::hash_cons`] off, the
    /// sum over the throwaway per-leaf/per-round arenas instead).
    pub interned_terms: u64,
    /// Interning requests answered by an existing hash-consed node. A
    /// high hit/created ratio is what makes the optimized leaf checks
    /// O(1) per atom.
    pub intern_hits: u64,
    /// Final clause count.
    pub clauses: usize,
    /// Peak clause count over all rounds.
    pub max_clauses: usize,
    /// Proof-cache hits: obligations answered from a cached conclusive
    /// outcome without running the prover (see `stq_soundness::cache`).
    pub cache_hits: u64,
    /// Proof-cache misses: obligations that had to be proved.
    pub cache_misses: u64,
    /// Cached entries discarded as untrustworthy (written by a different
    /// prover version or an unreadable format) when a cache was loaded.
    pub cache_invalidations: u64,
    /// Wall-clock time of the proof attempt.
    pub wall: Duration,
}

impl ProverStats {
    /// Accumulates another attempt's counters into this one (for
    /// aggregate reporting across obligations). `clauses` and
    /// `max_clauses` take the maximum; everything else sums.
    pub fn absorb(&mut self, other: &ProverStats) {
        self.rounds += other.rounds;
        self.instantiations += other.instantiations;
        for (trigger, n) in &other.instantiations_by_trigger {
            *self
                .instantiations_by_trigger
                .entry(trigger.clone())
                .or_insert(0) += n;
        }
        self.ematch_candidates += other.ematch_candidates;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.theory_checks += other.theory_checks;
        self.merges += other.merges;
        self.fm_eliminations += other.fm_eliminations;
        self.theory_preps += other.theory_preps;
        self.theory_reuses += other.theory_reuses;
        self.interned_terms += other.interned_terms;
        self.intern_hits += other.intern_hits;
        self.clauses = self.clauses.max(other.clauses);
        self.max_clauses = self.max_clauses.max(other.max_clauses);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_invalidations += other.cache_invalidations;
        self.wall += other.wall;
    }

    /// This stats record with the wall-clock field zeroed — the form the
    /// determinism tests compare, since wall time is the one counter a
    /// deterministic prover cannot reproduce.
    #[must_use]
    pub fn without_wall(&self) -> ProverStats {
        ProverStats {
            wall: Duration::ZERO,
            ..self.clone()
        }
    }
}

/// Former name of [`ProverStats`], kept for compatibility.
pub type Stats = ProverStats;

impl fmt::Display for ProverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} insts={} decisions={} props={} conflicts={} \
             theory={} merges={} fm={} clauses={} (peak {}) wall={:?}",
            self.rounds,
            self.instantiations,
            self.decisions,
            self.propagations,
            self.conflicts,
            self.theory_checks,
            self.merges,
            self.fm_eliminations,
            self.clauses,
            self.max_clauses,
            self.wall,
        )?;
        if self.theory_preps > 0 || self.theory_reuses > 0 {
            write!(
                f,
                " theory_prep={}fresh/{}reused",
                self.theory_preps, self.theory_reuses
            )?;
        }
        if self.interned_terms > 0 || self.intern_hits > 0 {
            write!(
                f,
                " interned={}+{}hit",
                self.interned_terms, self.intern_hits
            )?;
        }
        if self.cache_hits > 0 || self.cache_misses > 0 || self.cache_invalidations > 0 {
            write!(
                f,
                " cache={}hit/{}miss/{}stale",
                self.cache_hits, self.cache_misses, self.cache_invalidations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_has_no_deadline() {
        assert!(Budget::default().timeout.is_none());
    }

    #[test]
    fn with_timeout_sets_only_the_deadline() {
        let b = Budget::with_timeout(Duration::from_millis(5));
        assert_eq!(b.timeout, Some(Duration::from_millis(5)));
        assert_eq!(b.max_rounds, Budget::default().max_rounds);
    }

    #[test]
    fn absorb_sums_counters_and_maxes_clauses() {
        let mut a = ProverStats {
            rounds: 1,
            instantiations: 2,
            decisions: 3,
            clauses: 10,
            max_clauses: 12,
            ..ProverStats::default()
        };
        a.instantiations_by_trigger.insert("f(X)".into(), 2);
        let mut b = ProverStats {
            rounds: 2,
            instantiations: 5,
            decisions: 7,
            clauses: 4,
            max_clauses: 40,
            ..ProverStats::default()
        };
        b.instantiations_by_trigger.insert("f(X)".into(), 3);
        b.instantiations_by_trigger.insert("g(Y)".into(), 1);
        a.absorb(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.instantiations, 7);
        assert_eq!(a.decisions, 10);
        assert_eq!(a.clauses, 10);
        assert_eq!(a.max_clauses, 40);
        assert_eq!(a.instantiations_by_trigger["f(X)"], 5);
        assert_eq!(a.instantiations_by_trigger["g(Y)"], 1);
    }

    #[test]
    fn resource_display_is_human_readable() {
        assert_eq!(Resource::Time.to_string(), "wall-clock time");
        assert_eq!(Resource::Rounds.to_string(), "instantiation rounds");
        assert_eq!(Resource::Cancelled.to_string(), "external cancellation");
        assert_eq!(Resource::Injected.to_string(), "injected fault");
    }

    #[test]
    fn scaled_multiplies_every_limit() {
        let base = Budget {
            max_rounds: 2,
            max_instantiations: 10,
            max_clauses: 100,
            max_decisions: 1000,
            timeout: Some(Duration::from_millis(8)),
        };
        let doubled = base.scaled(2);
        assert_eq!(doubled.max_rounds, 4);
        assert_eq!(doubled.max_instantiations, 20);
        assert_eq!(doubled.max_clauses, 200);
        assert_eq!(doubled.max_decisions, 2000);
        assert_eq!(doubled.timeout, Some(Duration::from_millis(16)));
    }

    #[test]
    fn scaled_saturates_instead_of_overflowing() {
        let huge = Budget {
            max_decisions: u64::MAX / 2 + 1,
            ..Budget::default()
        };
        assert_eq!(huge.scaled(4).max_decisions, u64::MAX);
    }

    #[test]
    fn retry_policy_escalates_geometrically() {
        let policy = RetryPolicy {
            max_attempts: 3,
            factor: 2,
        };
        let base = Budget::default();
        assert_eq!(policy.budget_for(base, 1), base);
        assert_eq!(policy.budget_for(base, 2).max_rounds, base.max_rounds * 2);
        assert_eq!(policy.budget_for(base, 3).max_rounds, base.max_rounds * 4);
    }

    #[test]
    fn retry_policy_zero_configs_degrade_to_single_attempt() {
        let policy = RetryPolicy {
            max_attempts: 0,
            factor: 0,
        };
        assert_eq!(policy.attempt_cap(), 1);
        // factor 0 is clamped to 1: escalation becomes a no-op rather
        // than zeroing the budget.
        assert_eq!(policy.budget_for(Budget::default(), 3), Budget::default());
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::attempts(3).max_attempts, 3);
    }
}
