//! Linear arithmetic decision procedure.
//!
//! Simplify contains a Simplex-based decision procedure for linear rational
//! arithmetic; this crate uses the older but equally decisive
//! **Fourier–Motzkin elimination**, which is comfortably fast for the small
//! constraint systems that qualifier proof obligations generate (a handful
//! of atoms each).
//!
//! The procedure works over *atoms*: opaque identifiers standing for ground
//! terms whose top symbol is not interpreted (the solver assigns them after
//! canonicalizing terms by congruence-closure representative). All atoms
//! are integer-valued in the paper's logical memory model, so strict
//! inequalities are tightened (`e < 0` becomes `e ≤ -1` after clearing
//! denominators), giving the prover useful integer reasoning on top of the
//! rational core.

use crate::rat::Rat;
use std::collections::BTreeMap;
use std::fmt;

/// An opaque arithmetic variable standing for a ground term.
pub type AtomId = u32;

/// A linear expression `konst + Σ coeff·atom`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LinExpr {
    /// Coefficients per atom; zero coefficients are never stored.
    pub terms: BTreeMap<AtomId, Rat>,
    /// The constant offset.
    pub konst: Rat,
}

impl LinExpr {
    /// The constant expression `v`.
    pub fn constant(v: Rat) -> LinExpr {
        LinExpr {
            terms: BTreeMap::new(),
            konst: v,
        }
    }

    /// The expression consisting of a single atom with coefficient one.
    pub fn atom(a: AtomId) -> LinExpr {
        let mut terms = BTreeMap::new();
        terms.insert(a, Rat::ONE);
        LinExpr {
            terms,
            konst: Rat::ZERO,
        }
    }

    /// Adds `coeff·atom` into the expression.
    pub fn add_term(&mut self, a: AtomId, coeff: Rat) {
        let entry = self.terms.entry(a).or_insert(Rat::ZERO);
        *entry = *entry + coeff;
        if entry.is_zero() {
            self.terms.remove(&a);
        }
    }

    /// Pointwise sum.
    #[must_use]
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.konst = out.konst + other.konst;
        for (&a, &c) in &other.terms {
            out.add_term(a, c);
        }
        out
    }

    /// Pointwise difference.
    #[must_use]
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-Rat::ONE))
    }

    /// Multiplies every coefficient and the constant by `k`.
    #[must_use]
    pub fn scale(&self, k: Rat) -> LinExpr {
        if k.is_zero() {
            return LinExpr::constant(Rat::ZERO);
        }
        LinExpr {
            terms: self.terms.iter().map(|(&a, &c)| (a, c * k)).collect(),
            konst: self.konst * k,
        }
    }

    /// True if the expression mentions no atoms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// If the expression mentions no atoms, its value.
    pub fn as_constant(&self) -> Option<Rat> {
        self.is_constant().then_some(self.konst)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.konst)?;
        for (a, c) in &self.terms {
            write!(f, " + {c}·a{a}")?;
        }
        Ok(())
    }
}

/// Relation of a constraint `expr REL 0`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rel {
    /// `expr ≤ 0`.
    Le,
    /// `expr < 0`.
    Lt,
    /// `expr = 0`.
    Eq,
}

/// A single linear constraint `expr REL 0`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Relation to zero.
    pub rel: Rel,
}

impl Constraint {
    /// `expr ≤ 0`.
    pub fn le0(expr: LinExpr) -> Constraint {
        Constraint { expr, rel: Rel::Le }
    }

    /// `expr < 0`.
    pub fn lt0(expr: LinExpr) -> Constraint {
        Constraint { expr, rel: Rel::Lt }
    }

    /// `expr = 0`.
    pub fn eq0(expr: LinExpr) -> Constraint {
        Constraint { expr, rel: Rel::Eq }
    }
}

/// Tightens a strict constraint over integer-valued atoms:
/// after scaling to integer coefficients, `e < 0` is equivalent to
/// `e + 1 ≤ 0`.
fn tighten(c: &Constraint) -> Constraint {
    match c.rel {
        Rel::Lt => {
            // Scale so every coefficient and the constant are integers.
            let mut lcm: i128 = 1;
            let mut dens: Vec<i128> = c.expr.terms.values().map(|r| r.denom()).collect();
            dens.push(c.expr.konst.denom());
            for d in dens {
                let g = gcd(lcm, d);
                lcm = lcm / g * d;
            }
            let scaled = c.expr.scale(Rat::int(lcm));
            let mut expr = scaled;
            expr.konst = expr.konst + Rat::ONE;
            Constraint { expr, rel: Rel::Le }
        }
        _ => c.clone(),
    }
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    if a == 0 {
        1
    } else {
        a
    }
}

/// Decides whether a conjunction of linear constraints over integer-valued
/// atoms has a rational solution (after integer tightening of strict
/// inequalities).
///
/// Returns `true` if the system is feasible.
///
/// # Examples
///
/// ```
/// use stq_logic::arith::{Constraint, LinExpr, feasible};
/// use stq_logic::rat::Rat;
///
/// // x > 0 && x < 1 has no integer solution: infeasible after tightening.
/// let x = LinExpr::atom(0);
/// let gt0 = Constraint::lt0(x.scale(-Rat::ONE)); // -x < 0
/// let lt1 = Constraint::lt0(x.add(&LinExpr::constant(-Rat::ONE))); // x - 1 < 0
/// assert!(!feasible(&[gt0, lt1]));
/// ```
pub fn feasible(constraints: &[Constraint]) -> bool {
    feasible_counted(constraints).0
}

/// [`feasible`], additionally reporting how many variables were
/// eliminated (Gaussian pivots on equalities plus Fourier–Motzkin
/// eliminations) — the prover's `fm_eliminations` telemetry counter.
pub fn feasible_counted(constraints: &[Constraint]) -> (bool, u64) {
    let mut eliminations: u64 = 0;
    let mut ineqs: Vec<Constraint> = Vec::new();
    let mut eqs: Vec<LinExpr> = Vec::new();
    for c in constraints {
        let t = tighten(c);
        match t.rel {
            Rel::Eq => eqs.push(t.expr),
            _ => ineqs.push(t),
        }
    }

    // Gaussian elimination on equalities: solve each for one atom and
    // substitute everywhere.
    while let Some(eq) = eqs.pop() {
        match eq.terms.iter().next() {
            None => {
                if !eq.konst.is_zero() {
                    return (false, eliminations);
                }
            }
            Some((&pivot, &coeff)) => {
                eliminations += 1;
                // pivot = -(eq - coeff*pivot) / coeff
                let mut rest = eq.clone();
                rest.terms.remove(&pivot);
                let replacement = rest.scale(-Rat::ONE / coeff);
                let subst = |e: &LinExpr| -> LinExpr {
                    match e.terms.get(&pivot) {
                        None => e.clone(),
                        Some(&k) => {
                            let mut out = e.clone();
                            out.terms.remove(&pivot);
                            out.add(&replacement.scale(k))
                        }
                    }
                };
                eqs = eqs.iter().map(&subst).collect();
                for c in &mut ineqs {
                    c.expr = subst(&c.expr);
                }
            }
        }
    }

    // Fourier–Motzkin elimination on the remaining inequalities.
    loop {
        // Trivial constant constraints.
        let mut remaining = Vec::new();
        for c in ineqs {
            if let Some(v) = c.expr.as_constant() {
                let ok = match c.rel {
                    Rel::Le => v <= Rat::ZERO,
                    Rel::Lt => v < Rat::ZERO,
                    Rel::Eq => v.is_zero(),
                };
                if !ok {
                    return (false, eliminations);
                }
            } else {
                remaining.push(c);
            }
        }
        ineqs = remaining;
        let Some(&var) = ineqs.iter().flat_map(|c| c.expr.terms.keys()).next() else {
            return (true, eliminations);
        };
        eliminations += 1;

        // Partition by the sign of var's coefficient.
        let mut lowers: Vec<(LinExpr, Rel)> = Vec::new(); // var ≥/> bound
        let mut uppers: Vec<(LinExpr, Rel)> = Vec::new(); // var ≤/< bound
        let mut others: Vec<Constraint> = Vec::new();
        for c in ineqs {
            match c.expr.terms.get(&var).copied() {
                None => others.push(c),
                Some(coeff) => {
                    // c.expr = coeff*var + rest REL 0  ⇒
                    //   coeff > 0: var ≤(REL) -rest/coeff  (upper bound)
                    //   coeff < 0: var ≥(REL) -rest/coeff  (lower bound)
                    let mut rest = c.expr.clone();
                    rest.terms.remove(&var);
                    let bound = rest.scale(-Rat::ONE / coeff);
                    if coeff.is_positive() {
                        uppers.push((bound, c.rel));
                    } else {
                        lowers.push((bound, c.rel));
                    }
                }
            }
        }

        // Combine every lower with every upper: lower ≤/< var ≤/< upper
        // implies lower REL upper, strict iff either side is strict.
        for (lo, lo_rel) in &lowers {
            for (hi, hi_rel) in &uppers {
                let strict = *lo_rel == Rel::Lt || *hi_rel == Rel::Lt;
                let expr = lo.sub(hi); // lo - hi REL 0
                others.push(Constraint {
                    expr,
                    rel: if strict { Rel::Lt } else { Rel::Le },
                });
            }
        }
        ineqs = others;
    }
}

/// Decides whether the constraint system *entails* `expr = 0`, by checking
/// that both `expr < 0` and `expr > 0` are infeasible together with the
/// system. Used for exact integer-disequality reasoning: a disequality
/// `a ≠ b` conflicts exactly when `a = b` is entailed.
pub fn entails_eq0(constraints: &[Constraint], expr: &LinExpr) -> bool {
    entails_eq0_counted(constraints, expr).0
}

/// [`entails_eq0`], additionally reporting the variable eliminations the
/// two underlying feasibility checks performed.
pub fn entails_eq0_counted(constraints: &[Constraint], expr: &LinExpr) -> (bool, u64) {
    let mut with_lt = constraints.to_vec();
    with_lt.push(Constraint::lt0(expr.clone()));
    let mut with_gt = constraints.to_vec();
    with_gt.push(Constraint::lt0(expr.scale(-Rat::ONE)));
    let (lt_feasible, lt_elims) = feasible_counted(&with_lt);
    // Short-circuit like `&&`: the second system is only solved when the
    // first was infeasible, so the count matches the work actually done.
    if lt_feasible {
        return (false, lt_elims);
    }
    let (gt_feasible, gt_elims) = feasible_counted(&with_gt);
    (!gt_feasible, lt_elims + gt_elims)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> LinExpr {
        LinExpr::atom(0)
    }
    fn y() -> LinExpr {
        LinExpr::atom(1)
    }
    fn k(v: i128) -> LinExpr {
        LinExpr::constant(Rat::int(v))
    }

    #[test]
    fn empty_system_feasible() {
        assert!(feasible(&[]));
    }

    #[test]
    fn constant_contradiction() {
        // 1 ≤ 0 is infeasible.
        assert!(!feasible(&[Constraint::le0(k(1))]));
        assert!(feasible(&[Constraint::le0(k(0))]));
        assert!(!feasible(&[Constraint::lt0(k(0))]));
    }

    #[test]
    fn bounds_conflict() {
        // x ≥ 5 (5 - x ≤ 0) and x ≤ 3 (x - 3 ≤ 0): infeasible.
        let ge5 = Constraint::le0(k(5).sub(&x()));
        let le3 = Constraint::le0(x().sub(&k(3)));
        assert!(!feasible(&[ge5.clone(), le3]));
        // x ≥ 5 alone is fine.
        assert!(feasible(&[ge5]));
    }

    #[test]
    fn strict_cycle_is_infeasible() {
        // x < y and y < x.
        let a = Constraint::lt0(x().sub(&y()));
        let b = Constraint::lt0(y().sub(&x()));
        assert!(!feasible(&[a, b]));
    }

    #[test]
    fn non_strict_cycle_is_feasible() {
        // x ≤ y and y ≤ x: satisfied by x = y.
        let a = Constraint::le0(x().sub(&y()));
        let b = Constraint::le0(y().sub(&x()));
        assert!(feasible(&[a, b]));
    }

    #[test]
    fn equalities_substitute() {
        // x = y, x ≤ 2, y ≥ 5: infeasible.
        let eq = Constraint::eq0(x().sub(&y()));
        let le2 = Constraint::le0(x().sub(&k(2)));
        let ge5 = Constraint::le0(k(5).sub(&y()));
        assert!(!feasible(&[eq.clone(), le2.clone(), ge5]));
        // x = y, x ≤ 2, y ≤ 5: feasible.
        let le5 = Constraint::le0(y().sub(&k(5)));
        assert!(feasible(&[eq, le2, le5]));
    }

    #[test]
    fn inconsistent_constant_equality() {
        assert!(!feasible(&[Constraint::eq0(k(3))]));
        assert!(feasible(&[Constraint::eq0(k(0))]));
    }

    #[test]
    fn integer_tightening_closes_open_interval() {
        // 0 < x < 1 has rational solutions but no integer ones.
        let gt0 = Constraint::lt0(x().scale(-Rat::ONE));
        let lt1 = Constraint::lt0(x().sub(&k(1)));
        assert!(!feasible(&[gt0, lt1]));
    }

    #[test]
    fn integer_tightening_respects_wider_interval() {
        // 0 < x < 2 has the integer solution x = 1.
        let gt0 = Constraint::lt0(x().scale(-Rat::ONE));
        let lt2 = Constraint::lt0(x().sub(&k(2)));
        assert!(feasible(&[gt0, lt2]));
    }

    #[test]
    fn chained_elimination() {
        // x ≤ y, y ≤ z, z ≤ x - 1: infeasible.
        let z = LinExpr::atom(2);
        let c1 = Constraint::le0(x().sub(&y()));
        let c2 = Constraint::le0(y().sub(&z));
        let c3 = Constraint::le0(z.sub(&x()).add(&k(1)));
        assert!(!feasible(&[c1, c2, c3]));
    }

    #[test]
    fn positive_product_shape() {
        // The pos obligation after lemma instantiation: p > 0 as an atom
        // (the product), together with p ≤ 0 from the negated goal.
        let p = LinExpr::atom(7);
        let lemma = Constraint::lt0(p.scale(-Rat::ONE)); // p > 0
        let negated_goal = Constraint::le0(p.clone()); // p ≤ 0
        assert!(!feasible(&[lemma, negated_goal]));
    }

    #[test]
    fn entailment_of_equality() {
        // x ≤ 0 and x ≥ 0 entail x = 0.
        let le = Constraint::le0(x());
        let ge = Constraint::le0(x().scale(-Rat::ONE));
        assert!(entails_eq0(&[le.clone(), ge], &x()));
        assert!(!entails_eq0(&[le], &x()));
    }

    #[test]
    fn linexpr_algebra() {
        let e = x().scale(Rat::int(2)).add(&k(3));
        assert_eq!(e.terms.get(&0), Some(&Rat::int(2)));
        assert_eq!(e.konst, Rat::int(3));
        let z = e.sub(&e);
        assert!(z.is_constant());
        assert_eq!(z.as_constant(), Some(Rat::ZERO));
    }

    #[test]
    fn add_term_cancels_to_zero() {
        let mut e = x();
        e.add_term(0, -Rat::ONE);
        assert!(e.is_constant());
    }

    #[test]
    fn feasible_counted_reports_eliminations() {
        // x ≤ y, y ≤ z, z ≤ x - 1 forces FM to eliminate variables
        // before finding the contradiction.
        let z = LinExpr::atom(2);
        let c1 = Constraint::le0(x().sub(&y()));
        let c2 = Constraint::le0(y().sub(&z));
        let c3 = Constraint::le0(z.sub(&x()).add(&k(1)));
        let (ok, elims) = feasible_counted(&[c1, c2, c3]);
        assert!(!ok);
        assert!(elims >= 1, "at least one variable must be eliminated");
        // A constraint-free system does no elimination work.
        assert_eq!(feasible_counted(&[]), (true, 0));
    }

    #[test]
    fn entails_eq0_counted_agrees_with_uncounted() {
        let le = Constraint::le0(x());
        let ge = Constraint::le0(x().scale(-Rat::ONE));
        let (entailed, elims) = entails_eq0_counted(&[le.clone(), ge], &x());
        assert!(entailed);
        assert!(elims >= 2, "both directions must be checked");
        let (not_entailed, _) = entails_eq0_counted(&[le], &x());
        assert!(!not_entailed);
    }
}
