//! The refutation-based prover: DPLL case splitting over the clausal
//! structure, Nelson–Oppen theory checks (congruence closure + linear
//! arithmetic) at the leaves, and rounds of E-matching instantiation.
//!
//! To prove `axioms, hypotheses ⊢ goal` the solver asserts the axioms and
//! hypotheses together with the negated goal and searches for a
//! theory-consistent assignment. Universal quantifiers become proxy atoms
//! ([`crate::pre`]); whenever the search finds a candidate model, every
//! quantifier asserted true in it is instantiated against the current
//! ground terms, and the search repeats with the new clauses. The
//! obligation is proved when the search space is exhausted.
//!
//! Every attempt runs under a [`Budget`] and reports [`ProverStats`]
//! telemetry (see [`crate::stats`]); an attempt that hits a limit
//! terminates with [`Outcome::ResourceOut`] instead of diverging.

use crate::arith::{entails_eq0_counted, feasible_counted, Constraint, LinExpr};
use crate::ematch::match_trigger_counted;
use crate::euf::Egraph;
use crate::fault::{self, FaultKind};
use crate::pre::{Atom, Clause, Clausifier, Lit};
use crate::rat::Rat;
use crate::stats::{Budget, ProverStats, Resource};
use crate::term::{Formula, Term};
use std::any::Any;
use std::collections::HashSet;
use std::time::Instant;
use stq_util::CancelToken;

pub use crate::stats::{ProverConfig, Stats};

/// The result of a proof attempt: proved, refuted, out of budget, or
/// (under [`Problem::prove_isolated`]) a contained crash.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The obligation is valid: every case was refuted.
    Proved {
        /// Work counters.
        stats: ProverStats,
    },
    /// The search saturated without refuting the negated obligation:
    /// instantiation produced nothing new and a theory-consistent
    /// assignment survives. `model` holds a human-readable candidate
    /// countermodel — the literal assignment of the surviving branch —
    /// useful for diagnosing unsound qualifiers.
    Refuted {
        /// Pretty-printed literals of the surviving assignment.
        model: Vec<String>,
        /// Work counters.
        stats: ProverStats,
    },
    /// A [`Budget`] limit tripped before the search could conclude either
    /// way. The obligation might be provable with a larger budget.
    ResourceOut {
        /// The budgeted resource that ran out.
        resource: Resource,
        /// Work counters at the point the limit tripped.
        stats: ProverStats,
    },
    /// The proof attempt panicked (a prover bug, or an injected fault
    /// from [`crate::fault`]) and [`Problem::prove_isolated`] contained
    /// the crash. Says nothing about the obligation's validity.
    Crashed {
        /// The panic payload, when it was a string (the usual case).
        message: String,
        /// Work counters are lost when an attempt unwinds; always empty.
        stats: ProverStats,
    },
}

impl Outcome {
    /// True if the obligation was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, Outcome::Proved { .. })
    }

    /// True if the search saturated with a surviving candidate model.
    pub fn is_refuted(&self) -> bool {
        matches!(self, Outcome::Refuted { .. })
    }

    /// True if a budget limit tripped before a conclusion.
    pub fn is_resource_out(&self) -> bool {
        matches!(self, Outcome::ResourceOut { .. })
    }

    /// True if the attempt panicked and the crash was contained.
    pub fn is_crashed(&self) -> bool {
        matches!(self, Outcome::Crashed { .. })
    }

    /// The work counters.
    pub fn stats(&self) -> &ProverStats {
        match self {
            Outcome::Proved { stats }
            | Outcome::Refuted { stats, .. }
            | Outcome::ResourceOut { stats, .. }
            | Outcome::Crashed { stats, .. } => stats,
        }
    }

    fn stats_mut(&mut self) -> &mut ProverStats {
        match self {
            Outcome::Proved { stats }
            | Outcome::Refuted { stats, .. }
            | Outcome::ResourceOut { stats, .. }
            | Outcome::Crashed { stats, .. } => stats,
        }
    }

    /// The contained panic message, when the attempt crashed.
    pub fn crash_message(&self) -> Option<&str> {
        match self {
            Outcome::Crashed { message, .. } => Some(message),
            _ => None,
        }
    }

    /// The candidate countermodel, when the search saturated.
    pub fn model(&self) -> Option<&[String]> {
        match self {
            Outcome::Refuted { model, .. } => Some(model),
            _ => None,
        }
    }

    /// The exhausted resource, when a budget limit tripped.
    pub fn resource(&self) -> Option<Resource> {
        match self {
            Outcome::ResourceOut { resource, .. } => Some(*resource),
            _ => None,
        }
    }
}

/// A proof obligation: background axioms, hypotheses, and a goal.
///
/// See the crate-level documentation for a complete example.
#[derive(Clone, Debug, Default)]
pub struct Problem {
    axioms: Vec<Formula>,
    hyps: Vec<Formula>,
    goal: Option<Formula>,
    /// Resource limits; adjust before calling [`Problem::prove`].
    pub config: Budget,
    /// Cooperative cancellation handle, polled at round starts, every
    /// [`DEADLINE_CHECK_INTERVAL`] DPLL decisions, and between
    /// E-matching quantifiers. An external [`CancelToken::cancel`]
    /// yields [`Resource::Cancelled`]; a token deadline folds into the
    /// attempt's effective deadline and yields [`Resource::Time`], same
    /// as [`Budget::timeout`]. The default token never fires and is
    /// **not** part of the fingerprint: cancellation affects whether an
    /// attempt concludes, never what it concludes.
    pub cancel: CancelToken,
}

impl Problem {
    /// Creates an empty problem with default limits.
    pub fn new() -> Problem {
        Problem {
            axioms: Vec::new(),
            hyps: Vec::new(),
            goal: None,
            config: Budget::default(),
            cancel: CancelToken::default(),
        }
    }

    /// Sets the resource budget (chainable alternative to assigning
    /// [`Problem::config`] directly).
    pub fn budget(&mut self, budget: Budget) -> &mut Problem {
        self.config = budget;
        self
    }

    /// Adds a background axiom (typically universally quantified with
    /// explicit triggers).
    pub fn axiom(&mut self, f: Formula) -> &mut Problem {
        self.axioms.push(f);
        self
    }

    /// Adds a hypothesis.
    pub fn hypothesis(&mut self, f: Formula) -> &mut Problem {
        self.hyps.push(f);
        self
    }

    /// Sets the goal to prove.
    pub fn goal(&mut self, f: Formula) -> &mut Problem {
        self.goal = Some(f);
        self
    }

    /// The obligation's stable structural fingerprint under this
    /// problem's base budget ([`Problem::config`]) and the given retry
    /// ladder — the proof-cache key. Symbol-independent (hashes symbol
    /// strings with de-Bruijn-indexed binders, never interner ids) and
    /// versioned by [`crate::fingerprint::PROVER_VERSION`]; see
    /// [`crate::fingerprint`].
    pub fn fingerprint(&self, retry: crate::stats::RetryPolicy) -> crate::fingerprint::Fingerprint {
        crate::fingerprint::fingerprint_obligation(
            &self.axioms,
            &self.hyps,
            self.goal.as_ref(),
            &self.config,
            retry,
        )
    }

    /// Attempts to prove `axioms ∧ hypotheses ⇒ goal` within the
    /// configured [`Budget`], stamping wall-clock time into the stats.
    ///
    /// Each call counts as one *solver entry* for the thread's installed
    /// [`crate::fault::FaultPlan`] (if any), and honours any fault the
    /// plan schedules for it.
    ///
    /// # Panics
    ///
    /// Panics if no goal was set, or if the fault plan schedules a
    /// [`FaultKind::Panic`] or [`FaultKind::TheoryError`] at this entry.
    /// Use [`Problem::prove_isolated`] to contain panics as
    /// [`Outcome::Crashed`].
    pub fn prove(&self) -> Outcome {
        let start = Instant::now();
        // Effective deadline: the earlier of the per-attempt budget
        // timeout and the run-wide token deadline. Both report
        // `Resource::Time` — they are the same "wall clock ran out"
        // condition at different scopes.
        let deadline = match (self.config.timeout.map(|t| start + t), self.cancel.deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let (entry, fault) = fault::next_entry();
        let theory_fault = match fault {
            Some(FaultKind::Panic) => panic!("injected panic at solver entry {entry}"),
            Some(FaultKind::ResourceOut) => {
                return Outcome::ResourceOut {
                    resource: Resource::Injected,
                    stats: ProverStats {
                        wall: start.elapsed(),
                        ..ProverStats::default()
                    },
                };
            }
            Some(FaultKind::TheoryError) => Some(entry),
            None => None,
        };
        let mut outcome = self.prove_inner(deadline, theory_fault);
        outcome.stats_mut().wall = start.elapsed();
        outcome
    }

    /// As [`Problem::prove`], but contains any panic the attempt raises
    /// — from a prover bug, a library-misuse invariant, or an injected
    /// fault — and degrades it to [`Outcome::Crashed`] carrying the
    /// panic message. This is the entry point batch drivers should use:
    /// one crashing obligation must not take down its neighbours.
    pub fn prove_isolated(&self) -> Outcome {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.prove())) {
            Ok(outcome) => outcome,
            Err(payload) => Outcome::Crashed {
                message: panic_message(payload.as_ref()),
                stats: ProverStats::default(),
            },
        }
    }

    fn prove_inner(&self, deadline: Option<Instant>, theory_fault: Option<u64>) -> Outcome {
        // A cancel observed before any work still reports as this
        // attempt's outcome: batch drivers treat it like any other
        // inconclusive result and never cache it.
        if self.cancel.is_cancelled() {
            return Outcome::ResourceOut {
                resource: Resource::Cancelled,
                stats: ProverStats::default(),
            };
        }
        let goal = self.goal.clone().expect("no goal set on problem");
        // Free variables act as uninterpreted constants (proving a goal
        // with free variables proves it for arbitrary values).
        let goal = ground_free_vars(&goal);
        let mut cl = Clausifier::new();
        let mut clauses: Vec<Clause> = Vec::new();
        let mut seen: HashSet<Vec<Lit>> = HashSet::new();

        let add_clauses =
            |cs: Vec<Clause>, clauses: &mut Vec<Clause>, seen: &mut HashSet<Vec<Lit>>| -> usize {
                let mut added = 0;
                for c in cs {
                    let mut key = c.clone();
                    key.sort_by_key(|l| (l.atom, l.pos));
                    key.dedup();
                    // A clause containing both polarities of an atom is a
                    // tautology; drop it.
                    let tautology = key
                        .windows(2)
                        .any(|w| w[0].atom == w[1].atom && w[0].pos != w[1].pos);
                    if tautology {
                        continue;
                    }
                    if seen.insert(key.clone()) {
                        clauses.push(key);
                        added += 1;
                    }
                }
                added
            };

        for ax in &self.axioms {
            let cs = cl.assert_formula(&ground_free_vars(ax));
            add_clauses(cs, &mut clauses, &mut seen);
        }
        for h in &self.hyps {
            let cs = cl.assert_formula(&ground_free_vars(h));
            add_clauses(cs, &mut clauses, &mut seen);
        }
        let negated = goal.negate();
        let cs = cl.assert_formula(&negated);
        add_clauses(cs, &mut clauses, &mut seen);

        let mut stats = ProverStats::default();
        let mut instantiated: HashSet<String> = HashSet::new();

        for round in 0..self.config.max_rounds {
            if self.cancel.is_cancelled() {
                return Outcome::ResourceOut {
                    resource: Resource::Cancelled,
                    stats,
                };
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Outcome::ResourceOut {
                    resource: Resource::Time,
                    stats,
                };
            }
            stats.rounds = round + 1;
            stats.clauses = clauses.len();
            stats.max_clauses = stats.max_clauses.max(clauses.len());
            let mut search = Search {
                cl: &cl,
                clauses: &clauses,
                decisions: 0,
                propagations: 0,
                conflicts: 0,
                theory_checks: 0,
                merges: 0,
                fm_eliminations: 0,
                // The decision budget spans the whole attempt, not one round.
                max_decisions: self.config.max_decisions.saturating_sub(stats.decisions),
                deadline,
                cancel: &self.cancel,
                exhausted: false,
                timed_out: false,
                cancelled: false,
                theory_fault,
            };
            let natoms = cl.atoms().len();
            let mut assign = vec![None; natoms];
            let result = search.dpll(&mut assign);
            stats.decisions += search.decisions;
            stats.propagations += search.propagations;
            stats.conflicts += search.conflicts;
            stats.theory_checks += search.theory_checks;
            stats.merges += search.merges;
            stats.fm_eliminations += search.fm_eliminations;
            if search.exhausted {
                return Outcome::ResourceOut {
                    resource: if search.cancelled {
                        Resource::Cancelled
                    } else if search.timed_out {
                        Resource::Time
                    } else {
                        Resource::Decisions
                    },
                    stats,
                };
            }
            let Some(model) = result else {
                return Outcome::Proved { stats };
            };

            // Instantiate quantifiers asserted true in the model.
            let mut eg = Egraph::new();
            intern_all_atoms(&cl, &mut eg);
            assert_model_equalities(&cl, &model, &mut eg);
            stats.merges += eg.merges();

            let active: Vec<usize> = model
                .iter()
                .enumerate()
                .filter_map(|(i, v)| match (cl.atom(i), v) {
                    (Atom::Quant(q), Some(true)) => Some(*q),
                    _ => None,
                })
                .collect();

            let mut new_clauses: Vec<Clause> = Vec::new();
            let mut fresh = Vec::new();
            let mut instantiation_cap_hit = false;
            for q in active {
                // E-matching safepoint: one poll per active quantifier
                // bounds the time between polls by one trigger sweep.
                if self.cancel.is_cancelled() {
                    return Outcome::ResourceOut {
                        resource: Resource::Cancelled,
                        stats,
                    };
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Outcome::ResourceOut {
                        resource: Resource::Time,
                        stats,
                    };
                }
                let closure = cl.quants[q].clone();
                let proxy_atom = find_quant_atom(&cl, q);
                for trigger in &closure.triggers {
                    let (bindings, candidates) = match_trigger_counted(&eg, trigger);
                    stats.ematch_candidates += candidates;
                    for binding in bindings {
                        if stats.instantiations >= self.config.max_instantiations {
                            instantiation_cap_hit = true;
                            break;
                        }
                        // The trigger must bind every quantified variable.
                        if !closure
                            .vars
                            .iter()
                            .all(|(v, _)| binding.iter().any(|(x, _)| x == v))
                        {
                            continue;
                        }
                        let key = format!("{q}|{binding:?}");
                        if !instantiated.insert(key) {
                            continue;
                        }
                        stats.instantiations += 1;
                        *stats
                            .instantiations_by_trigger
                            .entry(render_trigger(trigger))
                            .or_insert(0) += 1;
                        let inst = closure.body.subst(&binding);
                        let mut inst_clauses = cl.clausify(&inst);
                        // Guard each clause with the proxy: ¬Q ∨ instance.
                        if let Some(p) = proxy_atom {
                            for c in &mut inst_clauses {
                                c.push(Lit {
                                    atom: p,
                                    pos: false,
                                });
                            }
                        }
                        fresh.extend(inst_clauses);
                    }
                }
            }
            let added = add_clauses(fresh, &mut new_clauses, &mut seen);
            clauses.extend(new_clauses);
            stats.clauses = clauses.len();
            stats.max_clauses = stats.max_clauses.max(clauses.len());
            if clauses.len() > self.config.max_clauses {
                return Outcome::ResourceOut {
                    resource: Resource::Clauses,
                    stats,
                };
            }
            if added == 0 {
                if instantiation_cap_hit {
                    // The cap stopped instantiation before saturation; the
                    // surviving model is not evidence of anything.
                    return Outcome::ResourceOut {
                        resource: Resource::Instantiations,
                        stats,
                    };
                }
                // True saturation: no instantiation produces anything new,
                // and a theory-consistent assignment survives.
                return Outcome::Refuted {
                    model: render_model(&cl, &model),
                    stats,
                };
            }
        }

        Outcome::ResourceOut {
            resource: Resource::Rounds,
            stats,
        }
    }
}

/// Extracts the human-readable message from a caught panic payload.
/// `panic!` with a literal yields `&'static str`; with formatting,
/// `String`; anything else is opaque.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Renders a trigger multi-pattern as the stable string key used in
/// [`ProverStats::instantiations_by_trigger`].
fn render_trigger(trigger: &[Term]) -> String {
    let parts: Vec<String> = trigger.iter().map(ToString::to_string).collect();
    parts.join(", ")
}

/// Replaces each free variable with an uninterpreted constant of the same
/// name, so formulas with free variables are checked for arbitrary values.
fn ground_free_vars(f: &Formula) -> Formula {
    let mut fv = Vec::new();
    f.free_vars(&mut fv);
    if fv.is_empty() {
        return f.clone();
    }
    let map: Vec<(stq_util::Symbol, Term)> = fv
        .into_iter()
        .map(|(v, _)| (v, Term::App(v, Vec::new())))
        .collect();
    f.subst(&map)
}

fn find_quant_atom(cl: &Clausifier, q: usize) -> Option<usize> {
    cl.atoms()
        .iter()
        .position(|a| matches!(a, Atom::Quant(i) if *i == q))
}

fn render_model(cl: &Clausifier, model: &[Option<bool>]) -> Vec<String> {
    model
        .iter()
        .enumerate()
        .filter_map(|(i, v)| {
            let pos = (*v)?;
            let atom = match cl.atom(i) {
                Atom::Eq(a, b) => format!("{a} = {b}"),
                Atom::Le(a, b) => format!("{a} <= {b}"),
                Atom::Lt(a, b) => format!("{a} < {b}"),
                Atom::Pred(p, args) if args.is_empty() => format!("{p}"),
                Atom::Pred(p, args) => {
                    let rendered: Vec<String> = args.iter().map(ToString::to_string).collect();
                    format!("{p}({})", rendered.join(", "))
                }
                // Quantifier proxies carry no ground information worth
                // showing in a countermodel.
                Atom::Quant(_) => return None,
            };
            Some(if pos { atom } else { format!("!({atom})") })
        })
        .collect()
}

fn intern_all_atoms(cl: &Clausifier, eg: &mut Egraph) {
    for atom in cl.atoms() {
        match atom {
            Atom::Eq(a, b) | Atom::Le(a, b) | Atom::Lt(a, b) => {
                if a.is_ground() {
                    eg.intern(a);
                }
                if b.is_ground() {
                    eg.intern(b);
                }
            }
            Atom::Pred(p, args) => {
                if args.iter().all(Term::is_ground) {
                    eg.intern(&Term::App(*p, args.clone()));
                }
            }
            Atom::Quant(_) => {}
        }
    }
}

fn assert_model_equalities(cl: &Clausifier, model: &[Option<bool>], eg: &mut Egraph) {
    for (i, v) in model.iter().enumerate() {
        if *v == Some(true) {
            if let Atom::Eq(a, b) = cl.atom(i) {
                if a.is_ground() && b.is_ground() {
                    let ra = eg.intern(a);
                    let rb = eg.intern(b);
                    // The model passed the theory check, so this merge
                    // cannot conflict; ignore the result defensively.
                    let _ = eg.merge(ra, rb);
                }
            }
        }
    }
}

struct Search<'a> {
    cl: &'a Clausifier,
    clauses: &'a [Clause],
    decisions: u64,
    propagations: u64,
    conflicts: u64,
    theory_checks: u64,
    merges: u64,
    fm_eliminations: u64,
    max_decisions: u64,
    deadline: Option<Instant>,
    cancel: &'a CancelToken,
    exhausted: bool,
    timed_out: bool,
    cancelled: bool,
    /// When set (by an installed [`crate::fault::FaultPlan`]), the first
    /// theory-consistency check panics, simulating a theory-solver bug
    /// deep inside the search. Carries the solver entry index for the
    /// panic message.
    theory_fault: Option<u64>,
}

/// How many decisions elapse between wall-clock deadline checks; each
/// decision already scans every clause, so checking this often keeps the
/// overhead of `Instant::now` well under the noise floor.
const DEADLINE_CHECK_INTERVAL: u64 = 64;

impl Search<'_> {
    /// Returns a theory-consistent assignment, or `None` if none exists
    /// (i.e. the clause set is unsatisfiable modulo the theories).
    fn dpll(&mut self, assign: &mut Vec<Option<bool>>) -> Option<Vec<Option<bool>>> {
        if self.exhausted {
            return None;
        }
        // Unit propagation to fixpoint.
        let mut trail: Vec<usize> = Vec::new();
        loop {
            let mut progressed = false;
            for clause in self.clauses {
                let mut satisfied = false;
                let mut unassigned: Option<Lit> = None;
                let mut unassigned_count = 0;
                for &lit in clause {
                    match assign[lit.atom] {
                        Some(v) if v == lit.pos => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            unassigned_count += 1;
                            unassigned = Some(lit);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => {
                        // Conflict: undo propagation and fail this branch.
                        self.conflicts += 1;
                        for &a in &trail {
                            assign[a] = None;
                        }
                        return None;
                    }
                    1 => {
                        let lit = unassigned.expect("count is one");
                        assign[lit.atom] = Some(lit.pos);
                        trail.push(lit.atom);
                        self.propagations += 1;
                        progressed = true;
                    }
                    _ => {}
                }
            }
            if !progressed {
                break;
            }
        }

        // Pick a branching literal from the first unsatisfied clause.
        let mut branch: Option<Lit> = None;
        'outer: for clause in self.clauses {
            let mut satisfied = false;
            for &lit in clause {
                if assign[lit.atom] == Some(lit.pos) {
                    satisfied = true;
                    break;
                }
            }
            if satisfied {
                continue;
            }
            for &lit in clause {
                if assign[lit.atom].is_none() {
                    branch = Some(lit);
                    break 'outer;
                }
            }
        }

        match branch {
            None => {
                // All clauses satisfied: check theory consistency.
                if self.theory_consistent(assign) {
                    let model = assign.clone();
                    for &a in &trail {
                        assign[a] = None;
                    }
                    Some(model)
                } else {
                    // A theory-rejected leaf is a conflict too.
                    self.conflicts += 1;
                    for &a in &trail {
                        assign[a] = None;
                    }
                    None
                }
            }
            Some(lit) => {
                self.decisions += 1;
                if self.decisions > self.max_decisions {
                    self.exhausted = true;
                    for &a in &trail {
                        assign[a] = None;
                    }
                    return None;
                }
                if self.decisions.is_multiple_of(DEADLINE_CHECK_INTERVAL) {
                    if self.cancel.is_cancelled() {
                        self.exhausted = true;
                        self.cancelled = true;
                        for &a in &trail {
                            assign[a] = None;
                        }
                        return None;
                    }
                    if self.deadline.is_some_and(|d| Instant::now() >= d) {
                        self.exhausted = true;
                        self.timed_out = true;
                        for &a in &trail {
                            assign[a] = None;
                        }
                        return None;
                    }
                }
                for value in [lit.pos, !lit.pos] {
                    assign[lit.atom] = Some(value);
                    if let Some(model) = self.dpll(assign) {
                        assign[lit.atom] = None;
                        for &a in &trail {
                            assign[a] = None;
                        }
                        return Some(model);
                    }
                }
                assign[lit.atom] = None;
                for &a in &trail {
                    assign[a] = None;
                }
                None
            }
        }
    }

    /// Nelson–Oppen style consistency check of the assigned literals:
    /// congruence closure over the equalities and predicate facts, then
    /// Fourier–Motzkin over the (EUF-canonicalized) arithmetic literals,
    /// then exact handling of integer disequalities.
    fn theory_consistent(&mut self, assign: &[Option<bool>]) -> bool {
        if let Some(entry) = self.theory_fault {
            panic!("injected theory-solver failure at solver entry {entry}");
        }
        self.theory_checks += 1;
        let mut eg = Egraph::new();
        let consistent = self.theory_consistent_inner(assign, &mut eg);
        self.merges += eg.merges();
        consistent
    }

    fn theory_consistent_inner(&mut self, assign: &[Option<bool>], eg: &mut Egraph) -> bool {
        let true_term = Term::int(1);
        let false_term = Term::int(0);

        let mut diseqs: Vec<(Term, Term)> = Vec::new();
        let mut arith_pos: Vec<(usize, bool)> = Vec::new(); // (atom, polarity)

        // Phase 1: EUF assertions.
        for (i, v) in assign.iter().enumerate() {
            let Some(value) = *v else { continue };
            match self.cl.atom(i) {
                Atom::Eq(a, b) => {
                    let ra = eg.intern(a);
                    let rb = eg.intern(b);
                    if value {
                        if eg.merge(ra, rb).is_err() {
                            return false;
                        }
                        arith_pos.push((i, true));
                    } else {
                        if eg.assert_diseq(ra, rb).is_err() {
                            return false;
                        }
                        diseqs.push((a.clone(), b.clone()));
                    }
                }
                Atom::Pred(p, args) => {
                    let t = eg.intern(&Term::App(*p, args.clone()));
                    let marker = eg.intern(if value { &true_term } else { &false_term });
                    if eg.merge(t, marker).is_err() {
                        return false;
                    }
                }
                Atom::Le(..) | Atom::Lt(..) => {
                    // Intern the operands so canonicalization sees them.
                    if let Atom::Le(a, b) | Atom::Lt(a, b) = self.cl.atom(i) {
                        eg.intern(a);
                        eg.intern(b);
                    }
                    arith_pos.push((i, value));
                }
                Atom::Quant(_) => {}
            }
        }

        // Phase 2: arithmetic.
        let mut constraints: Vec<Constraint> = Vec::new();
        for (i, value) in arith_pos {
            match self.cl.atom(i) {
                Atom::Eq(a, b) => {
                    let la = linearize(eg, a);
                    let lb = linearize(eg, b);
                    constraints.push(Constraint::eq0(la.sub(&lb)));
                }
                Atom::Le(a, b) => {
                    let la = linearize(eg, a);
                    let lb = linearize(eg, b);
                    if value {
                        // a ≤ b  ⇔  a - b ≤ 0
                        constraints.push(Constraint::le0(la.sub(&lb)));
                    } else {
                        // ¬(a ≤ b)  ⇔  b < a  ⇔  b - a < 0
                        constraints.push(Constraint::lt0(lb.sub(&la)));
                    }
                }
                Atom::Lt(a, b) => {
                    let la = linearize(eg, a);
                    let lb = linearize(eg, b);
                    if value {
                        constraints.push(Constraint::lt0(la.sub(&lb)));
                    } else {
                        constraints.push(Constraint::le0(lb.sub(&la)));
                    }
                }
                _ => unreachable!("only arithmetic atoms recorded"),
            }
        }
        let (arith_ok, elims) = feasible_counted(&constraints);
        self.fm_eliminations += elims;
        if !arith_ok {
            return false;
        }

        // Phase 3: integer disequalities. A disequality a ≠ b conflicts
        // exactly when the arithmetic constraints entail a = b.
        for (a, b) in &diseqs {
            let la = linearize(eg, a);
            let lb = linearize(eg, b);
            let (entailed, elims) = entails_eq0_counted(&constraints, &la.sub(&lb));
            self.fm_eliminations += elims;
            if entailed {
                return false;
            }
        }
        true
    }
}

/// Converts a ground term into a linear expression over opaque atoms,
/// canonicalizing uninterpreted subterms by their congruence-closure
/// representative (this is how equality facts flow into arithmetic).
fn linearize(eg: &mut Egraph, t: &Term) -> LinExpr {
    match t {
        Term::Int(v) => LinExpr::constant(Rat::from(*v)),
        Term::App(f, args) => match (f.as_str(), args.len()) {
            ("+", 2) => {
                let a = linearize(eg, &args[0]);
                let b = linearize(eg, &args[1]);
                a.add(&b)
            }
            ("-", 2) => {
                let a = linearize(eg, &args[0]);
                let b = linearize(eg, &args[1]);
                a.sub(&b)
            }
            ("neg", 1) => linearize(eg, &args[0]).scale(-Rat::ONE),
            ("*", 2) => {
                let a = linearize(eg, &args[0]);
                let b = linearize(eg, &args[1]);
                if let Some(k) = a.as_constant() {
                    b.scale(k)
                } else if let Some(k) = b.as_constant() {
                    a.scale(k)
                } else {
                    opaque(eg, t)
                }
            }
            _ => opaque(eg, t),
        },
        Term::Var(..) => unreachable!("ground terms only in theory check"),
    }
}

fn opaque(eg: &mut Egraph, t: &Term) -> LinExpr {
    let r = eg.intern(t);
    if let Some(v) = eg.class_int_value(r) {
        return LinExpr::constant(Rat::from(v));
    }
    LinExpr::atom(eg.find(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    fn x() -> Term {
        Term::cnst("x")
    }
    fn y() -> Term {
        Term::cnst("y")
    }

    fn prove(hyps: Vec<Formula>, goal: Formula) -> bool {
        let mut p = Problem::new();
        for h in hyps {
            p.hypothesis(h);
        }
        p.goal(goal);
        p.prove().is_proved()
    }

    #[test]
    fn trivial_goal() {
        assert!(prove(vec![], Formula::True));
    }

    #[test]
    fn unprovable_false() {
        assert!(!prove(vec![], Formula::False));
    }

    #[test]
    fn hypothesis_discharges_goal() {
        let p = Formula::pred("p", vec![]);
        assert!(prove(vec![p.clone()], p));
    }

    #[test]
    fn modus_ponens() {
        let p = Formula::pred("p", vec![]);
        let q = Formula::pred("q", vec![]);
        assert!(prove(vec![p.clone(), p.implies(q.clone())], q));
    }

    #[test]
    fn arithmetic_transitivity() {
        // x < y, y < 3 ⊢ x < 3
        assert!(prove(
            vec![x().lt(&y()), y().lt(&Term::int(3))],
            x().lt(&Term::int(3)),
        ));
    }

    #[test]
    fn arithmetic_non_theorem() {
        // x < y does not entail y < x.
        assert!(!prove(vec![x().lt(&y())], y().lt(&x())));
    }

    #[test]
    fn euf_congruence() {
        // x = y ⊢ f(x) = f(y)
        let fx = Term::app("f", vec![x()]);
        let fy = Term::app("f", vec![y()]);
        assert!(prove(vec![x().eq(&y())], fx.eq(&fy)));
    }

    #[test]
    fn euf_not_injective() {
        // f(x) = f(y) does not entail x = y.
        let fx = Term::app("f", vec![x()]);
        let fy = Term::app("f", vec![y()]);
        assert!(!prove(vec![fx.eq(&fy)], x().eq(&y())));
    }

    #[test]
    fn equalities_flow_into_arithmetic() {
        // x = y + 1 ∧ y ≥ 0 ⊢ x > 0
        assert!(prove(
            vec![x().eq(&y().add(&Term::int(1))), Term::int(0).le(&y()),],
            x().gt0(),
        ));
    }

    #[test]
    fn disequality_reasoning() {
        // x ≤ 0 ∧ x ≥ 0 ⊢ x = 0, via disequality entailment.
        assert!(prove(
            vec![x().le(&Term::int(0)), Term::int(0).le(&x())],
            x().eq(&Term::int(0)),
        ));
    }

    #[test]
    fn case_split_over_disjunction() {
        // (p ∨ q), p ⇒ r, q ⇒ r ⊢ r
        let p = Formula::pred("p", vec![]);
        let q = Formula::pred("q", vec![]);
        let r = Formula::pred("r", vec![]);
        assert!(prove(
            vec![
                Formula::or(vec![p.clone(), q.clone()]),
                p.implies(r.clone()),
                q.implies(r.clone()),
            ],
            r,
        ));
    }

    #[test]
    fn distinct_integer_literals() {
        // x = 3 ⊢ x ≠ 5
        assert!(prove(vec![x().eq(&Term::int(3))], x().ne(&Term::int(5)),));
    }

    #[test]
    fn axiom_instantiation_by_trigger() {
        // forall a. p(a) ⇒ q(a), with trigger p(a); p(c) ⊢ q(c).
        let a = Term::var("a", Sort::Int);
        let ax = Formula::forall(
            vec![(stq_util::Symbol::intern("a"), Sort::Int)],
            vec![vec![Term::app("pp", vec![a.clone()])]],
            Formula::pred("pp", vec![a.clone()]).implies(Formula::pred("qq", vec![a])),
        );
        let c = Term::cnst("c");
        let mut p = Problem::new();
        p.axiom(ax);
        p.hypothesis(Formula::pred("pp", vec![c.clone()]));
        p.goal(Formula::pred("qq", vec![c]));
        assert!(p.prove().is_proved());
    }

    #[test]
    fn multiplication_sign_lemma() {
        // The paper's pos obligation: with the triggered sign lemma,
        // x > 0 ∧ y > 0 ⊢ x*y > 0.
        let a = Term::var("a", Sort::Int);
        let b = Term::var("b", Sort::Int);
        let lemma = Formula::forall(
            vec![
                (stq_util::Symbol::intern("a"), Sort::Int),
                (stq_util::Symbol::intern("b"), Sort::Int),
            ],
            vec![vec![a.mul(&b)]],
            Formula::and(vec![a.gt0(), b.gt0()]).implies(a.mul(&b).gt0()),
        );
        let mut p = Problem::new();
        p.axiom(lemma);
        p.hypothesis(x().gt0());
        p.hypothesis(y().gt0());
        p.goal(x().mul(&y()).gt0());
        assert!(p.prove().is_proved());
    }

    #[test]
    fn subtraction_of_positives_is_not_positive() {
        // The paper's erroneous E1 - E2 rule must NOT be provable.
        let outcome = {
            let mut p = Problem::new();
            p.hypothesis(x().gt0());
            p.hypothesis(y().gt0());
            p.goal(x().sub(&y()).gt0());
            p.prove()
        };
        assert!(!outcome.is_proved());
        match outcome {
            Outcome::Refuted { model, .. } => assert!(!model.is_empty()),
            other => panic!("expected a countermodel, got {other:?}"),
        }
    }

    #[test]
    fn negation_of_negative_is_positive() {
        // neg qualifier: x < 0 ⊢ -x > 0.
        assert!(prove(vec![x().lt0()], x().neg().gt0()));
    }

    #[test]
    fn nested_forall_hypothesis_via_proxy() {
        // (forall a. p(a)) ⊢ p(c): the hypothesis quantifier becomes a
        // proxy that unit-propagates to true and instantiates on c.
        let a = Term::var("a", Sort::Int);
        let hyp = Formula::forall(
            vec![(stq_util::Symbol::intern("a"), Sort::Int)],
            vec![vec![Term::app("p2", vec![a.clone()])]],
            Formula::pred("p2", vec![a]),
        );
        let c = Term::cnst("c");
        // Mention p2(c) in the goal so the trigger has something to match.
        assert!(prove(vec![hyp], Formula::pred("p2", vec![c])));
    }

    #[test]
    fn guarded_quantifier_under_disjunction() {
        // h: q ∨ (forall a. {p3(a)} p3(a) ⇒ r), ¬q, p3(c) ⊢ r... simplified:
        // the quantifier proxy participates in case splitting.
        let a = Term::var("a", Sort::Int);
        let q = Formula::pred("q3", vec![]);
        let r = Formula::pred("r3", vec![]);
        let fa = Formula::forall(
            vec![(stq_util::Symbol::intern("a"), Sort::Int)],
            vec![vec![Term::app("p3", vec![a.clone()])]],
            Formula::pred("p3", vec![a]).implies(r.clone()),
        );
        let hyp = Formula::or(vec![q.clone(), fa]);
        let c = Term::cnst("c");
        assert!(prove(
            vec![hyp, q.negate(), Formula::pred("p3", vec![c])],
            r,
        ));
    }

    #[test]
    fn negated_goal_forall_skolemizes() {
        // ⊢ forall a. p4(a) is not provable without axioms; the prover
        // skolemizes and reports unknown rather than looping.
        let a = Term::var("a", Sort::Int);
        let goal = Formula::forall(
            vec![(stq_util::Symbol::intern("a"), Sort::Int)],
            vec![],
            Formula::pred("p4", vec![a]),
        );
        assert!(!prove(vec![], goal));
    }

    #[test]
    fn goal_forall_provable_from_axiom() {
        // forall a. {p5(a)} p5(a) ⊢ forall b. p5(b): skolemize the goal to
        // p5(sk); the axiom instantiates on sk via its trigger... note the
        // trigger p5(a) matches the goal's skolemized p5(sk) term.
        let a = Term::var("a", Sort::Int);
        let ax = Formula::forall(
            vec![(stq_util::Symbol::intern("a"), Sort::Int)],
            vec![vec![Term::app("p5t", vec![a.clone()])]],
            Formula::pred("p5", vec![Term::app("p5t", vec![a])]),
        );
        let b = Term::var("b", Sort::Int);
        let goal = Formula::forall(
            vec![(stq_util::Symbol::intern("b"), Sort::Int)],
            vec![],
            Formula::pred("p5", vec![Term::app("p5t", vec![b])]),
        );
        assert!(prove(vec![ax], goal));
    }

    #[test]
    fn select_store_axioms() {
        // The store axioms used by the soundness checker.
        let s = Term::var("s", Sort::other("Store"));
        let aa = Term::var("a", Sort::Int);
        let bb = Term::var("b", Sort::Int);
        let vv = Term::var("v", Sort::Int);
        let store = |s: &Term, a: &Term, v: &Term| {
            Term::app("store", vec![s.clone(), a.clone(), v.clone()])
        };
        let select = |s: &Term, a: &Term| Term::app("select", vec![s.clone(), a.clone()]);
        let vars = |names: &[&str]| -> Vec<(stq_util::Symbol, Sort)> {
            names
                .iter()
                .map(|n| {
                    let sort = if *n == "s" {
                        Sort::other("Store")
                    } else {
                        Sort::Int
                    };
                    (stq_util::Symbol::intern(n), sort)
                })
                .collect()
        };
        let ax1 = Formula::forall(
            vars(&["s", "a", "v"]),
            vec![vec![select(&store(&s, &aa, &vv), &aa)]],
            select(&store(&s, &aa, &vv), &aa).eq(&vv),
        );
        let ax2 = Formula::forall(
            vars(&["s", "a", "b", "v"]),
            vec![vec![select(&store(&s, &aa, &vv), &bb)]],
            Formula::or(vec![
                aa.eq(&bb),
                select(&store(&s, &aa, &vv), &bb).eq(&select(&s, &bb)),
            ]),
        );

        let sigma = Term::cnst("sigma");
        let l1 = Term::cnst("l1");
        let l2 = Term::cnst("l2");
        let val = Term::int(7);

        // select(store(σ, l1, 7), l1) = 7
        let mut p = Problem::new();
        p.axiom(ax1.clone());
        p.axiom(ax2.clone());
        p.goal(select(&store(&sigma, &l1, &val), &l1).eq(&val));
        assert!(p.prove().is_proved());

        // l1 ≠ l2 ⊢ select(store(σ, l1, 7), l2) = select(σ, l2)
        let mut p = Problem::new();
        p.axiom(ax1);
        p.axiom(ax2);
        p.hypothesis(l1.ne(&l2));
        p.goal(select(&store(&sigma, &l1, &val), &l2).eq(&select(&sigma, &l2)));
        assert!(p.prove().is_proved());
    }

    #[test]
    fn iff_round_trips_through_the_prover() {
        // (p ⇔ q), p ⊢ q and (p ⇔ q), ¬p ⊢ ¬q.
        let p = Formula::pred("pi", vec![]);
        let q = Formula::pred("qi", vec![]);
        assert!(prove(vec![p.clone().iff(q.clone()), p.clone()], q.clone(),));
        assert!(prove(
            vec![p.clone().iff(q.clone()), p.clone().negate()],
            q.negate(),
        ));
        // p ⇔ q alone does not prove q.
        let r = prove(
            vec![p.clone().iff(Formula::pred("qi", vec![]))],
            Formula::pred("qi", vec![]),
        );
        assert!(!r);
    }

    #[test]
    fn stats_are_populated() {
        let mut p = Problem::new();
        p.hypothesis(x().gt0());
        p.goal(x().gt0());
        let outcome = p.prove();
        assert!(outcome.is_proved());
        let stats = outcome.stats();
        assert!(stats.rounds >= 1);
        // Proving anything requires refuting every branch, so at least
        // one conflict; the hypothesis and negated goal unit-propagate.
        assert!(stats.conflicts >= 1);
        assert!(stats.propagations >= 1);
        assert!(stats.clauses >= 2);
    }

    #[test]
    fn theory_checks_and_eliminations_are_counted() {
        // x < y, y < 3 ⊢ x < 3 is propositionally consistent when the
        // negated goal is asserted, so refuting it takes a theory check
        // with Fourier–Motzkin work.
        let mut p = Problem::new();
        p.hypothesis(x().lt(&y()));
        p.hypothesis(y().lt(&Term::int(3)));
        p.goal(x().lt(&Term::int(3)));
        let outcome = p.prove();
        assert!(outcome.is_proved());
        let stats = outcome.stats();
        assert!(stats.theory_checks >= 1);
        assert!(stats.fm_eliminations >= 1);
    }

    #[test]
    fn instantiations_are_attributed_to_triggers() {
        // The sign-lemma proof instantiates exactly one trigger: a * b.
        let a = Term::var("a", Sort::Int);
        let b = Term::var("b", Sort::Int);
        let lemma = Formula::forall(
            vec![
                (stq_util::Symbol::intern("a"), Sort::Int),
                (stq_util::Symbol::intern("b"), Sort::Int),
            ],
            vec![vec![a.mul(&b)]],
            Formula::and(vec![a.gt0(), b.gt0()]).implies(a.mul(&b).gt0()),
        );
        let mut p = Problem::new();
        p.axiom(lemma);
        p.hypothesis(x().gt0());
        p.hypothesis(y().gt0());
        p.goal(x().mul(&y()).gt0());
        let outcome = p.prove();
        assert!(outcome.is_proved());
        let stats = outcome.stats();
        assert!(stats.instantiations >= 1);
        assert!(stats.ematch_candidates >= 1);
        let per_trigger: u64 = stats.instantiations_by_trigger.values().sum();
        assert_eq!(per_trigger, stats.instantiations as u64);
        assert!(stats
            .instantiations_by_trigger
            .keys()
            .any(|k| k.contains('*')));
    }

    #[test]
    fn proved_wall_time_is_stamped() {
        let mut p = Problem::new();
        p.goal(Formula::True);
        // Duration is monotone but can legitimately measure zero on a
        // trivial goal; the stamp itself must exist for every outcome.
        let _ = p.prove().stats().wall;
    }

    #[test]
    fn zero_decision_budget_reports_resource_out() {
        let p = Formula::pred("p", vec![]);
        let q = Formula::pred("q", vec![]);
        let r = Formula::pred("r", vec![]);
        let mut problem = Problem::new();
        problem.config.max_decisions = 0;
        problem.hypothesis(Formula::or(vec![p, q]));
        problem.goal(r);
        let outcome = problem.prove();
        assert_eq!(outcome.resource(), Some(Resource::Decisions));
    }

    #[test]
    fn pre_cancelled_token_reports_cancelled_not_time() {
        let mut p = Problem::new();
        p.goal(Term::int(1).eq(&Term::int(1)));
        p.cancel = CancelToken::new();
        p.cancel.cancel();
        let outcome = p.prove();
        assert_eq!(outcome.resource(), Some(Resource::Cancelled));
        // Cancellation is not a crash and not a conclusion.
        assert!(!outcome.is_proved() && !outcome.is_refuted() && !outcome.is_crashed());
    }

    #[test]
    fn expired_token_deadline_reports_time() {
        let mut p = Problem::new();
        p.hypothesis(x().lt(&y()));
        p.hypothesis(y().lt(&Term::int(3)));
        p.goal(x().lt(&Term::int(3)));
        p.cancel = CancelToken::deadline_in(std::time::Duration::ZERO);
        let outcome = p.prove();
        assert_eq!(outcome.resource(), Some(Resource::Time));
    }

    #[test]
    fn default_token_changes_nothing() {
        // The always-quiet token must not perturb outcomes: same proof,
        // same conclusion, with and without an explicit fresh token.
        let mut p = Problem::new();
        p.hypothesis(x().gt0());
        p.goal(x().gt0());
        assert!(p.prove().is_proved());
        p.cancel = CancelToken::new();
        assert!(p.prove().is_proved());
    }

    #[test]
    #[should_panic(expected = "no goal")]
    fn missing_goal_panics() {
        Problem::new().prove();
    }

    #[test]
    fn prove_isolated_contains_the_missing_goal_panic() {
        let outcome = Problem::new().prove_isolated();
        assert!(outcome.is_crashed());
        assert!(
            outcome.crash_message().unwrap().contains("no goal"),
            "{outcome:?}"
        );
        assert!(!outcome.is_proved() && !outcome.is_refuted() && !outcome.is_resource_out());
    }

    fn trivial_problem() -> Problem {
        let mut p = Problem::new();
        p.goal(Term::int(1).eq(&Term::int(1)));
        p
    }

    #[test]
    fn injected_panic_is_contained_and_scoped_to_its_entry() {
        fault::install(fault::FaultPlan::new().inject(1, FaultKind::Panic));
        let p = trivial_problem();
        assert!(p.prove_isolated().is_proved(), "entry 0: no fault");
        let crashed = p.prove_isolated();
        assert_eq!(
            crashed.crash_message(),
            Some("injected panic at solver entry 1")
        );
        assert!(p.prove_isolated().is_proved(), "entry 2: no fault");
        fault::clear();
    }

    #[test]
    fn injected_resource_out_names_the_injected_resource() {
        fault::install(fault::FaultPlan::new().inject(0, FaultKind::ResourceOut));
        let outcome = trivial_problem().prove();
        assert_eq!(outcome.resource(), Some(Resource::Injected));
        fault::clear();
    }

    #[test]
    fn injected_theory_error_crashes_from_inside_the_search() {
        fault::install(fault::FaultPlan::new().inject(0, FaultKind::TheoryError));
        // Transitivity is invisible to the propositional skeleton, so the
        // refutation search must reach a theory-consistency check.
        let mut p = Problem::new();
        p.hypothesis(x().lt(&y()));
        p.hypothesis(y().lt(&Term::int(3)));
        p.goal(x().lt(&Term::int(3)));
        let outcome = p.prove_isolated();
        fault::clear();
        assert!(outcome.is_crashed(), "{outcome:?}");
        assert!(
            outcome
                .crash_message()
                .unwrap()
                .contains("theory-solver failure"),
            "{outcome:?}"
        );
        // The same problem proves once the plan is gone.
        assert!(p.prove_isolated().is_proved());
    }
}
