//! The refutation-based prover: DPLL case splitting over the clausal
//! structure, Nelson–Oppen theory checks (congruence closure + linear
//! arithmetic) at the leaves, and rounds of E-matching instantiation.
//!
//! To prove `axioms, hypotheses ⊢ goal` the solver asserts the axioms and
//! hypotheses together with the negated goal and searches for a
//! theory-consistent assignment. Universal quantifiers become proxy atoms
//! ([`crate::pre`]); whenever the search finds a candidate model, every
//! quantifier asserted true in it is instantiated against the current
//! ground terms, and the search repeats with the new clauses. The
//! obligation is proved when the search space is exhausted.
//!
//! Every attempt runs under a [`Budget`] and reports [`ProverStats`]
//! telemetry (see [`crate::stats`]); an attempt that hits a limit
//! terminates with [`Outcome::ResourceOut`] instead of diverging.
//!
//! # Cold-path performance
//!
//! Three mechanisms make cold (cache-miss) proving cheap, all of them
//! observable in [`ProverStats`] and individually disengageable through
//! [`SolverTuning`] for ablation:
//!
//! * **Shared axiomatization** ([`crate::theory`]): a [`Theory`] attached
//!   via [`Problem::set_theory`] is clausified once; each attempt starts
//!   from the prepared core instead of re-running the front end on every
//!   background axiom (`theory_reuses` vs `theory_preps`).
//! * **Hash-consed terms** ([`crate::arena`]): ground atom sides are
//!   interned into a per-attempt arena, so the EUF leaf checks and
//!   E-matching rounds intern by id lookup instead of recursive tree
//!   walks (`interned_terms` / `intern_hits`).
//! * **Per-worker solver reuse** ([`SolverWorker`]): a worker keeps one
//!   theory-loaded core alive across obligations, rolling it back to the
//!   shared-theory watermark between attempts instead of rebuilding it.
//!
//! Tuning never changes verdicts: the optimized and legacy paths follow
//! the same decision, instantiation, and theory-check sequence, which the
//! cross-tuning determinism tests pin down counter-for-counter.

use crate::arena::{Head, TermArena, TermId};
use crate::arith::{entails_eq0_counted, feasible_counted, Constraint, LinExpr};
use crate::ematch::{match_trigger_counted, Binding};
use crate::euf::{self, Egraph};
use crate::fault::{self, FaultKind};
use crate::pre::{Atom, Clause, Clausifier, Lit};
use crate::rat::Rat;
use crate::stats::{Budget, ProverStats, Resource};
use crate::term::{Formula, Term};
use crate::theory::{ground_free_vars, CachedAtom, SolveCore, Theory};
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;
use stq_util::{CancelToken, Symbol};

pub use crate::stats::{ProverConfig, Stats};

/// The result of a proof attempt: proved, refuted, out of budget, or
/// (under [`Problem::prove_isolated`]) a contained crash.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The obligation is valid: every case was refuted.
    Proved {
        /// Work counters.
        stats: ProverStats,
    },
    /// The search saturated without refuting the negated obligation:
    /// instantiation produced nothing new and a theory-consistent
    /// assignment survives. `model` holds a human-readable candidate
    /// countermodel — the literal assignment of the surviving branch —
    /// useful for diagnosing unsound qualifiers.
    Refuted {
        /// Pretty-printed literals of the surviving assignment.
        model: Vec<String>,
        /// Work counters.
        stats: ProverStats,
    },
    /// A [`Budget`] limit tripped before the search could conclude either
    /// way. The obligation might be provable with a larger budget.
    ResourceOut {
        /// The budgeted resource that ran out.
        resource: Resource,
        /// Work counters at the point the limit tripped.
        stats: ProverStats,
    },
    /// The proof attempt panicked (a prover bug, or an injected fault
    /// from [`crate::fault`]) and [`Problem::prove_isolated`] contained
    /// the crash. Says nothing about the obligation's validity.
    Crashed {
        /// The panic payload, when it was a string (the usual case).
        message: String,
        /// Work counters are lost when an attempt unwinds; always empty.
        stats: ProverStats,
    },
}

impl Outcome {
    /// True if the obligation was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, Outcome::Proved { .. })
    }

    /// True if the search saturated with a surviving candidate model.
    pub fn is_refuted(&self) -> bool {
        matches!(self, Outcome::Refuted { .. })
    }

    /// True if a budget limit tripped before a conclusion.
    pub fn is_resource_out(&self) -> bool {
        matches!(self, Outcome::ResourceOut { .. })
    }

    /// True if the attempt panicked and the crash was contained.
    pub fn is_crashed(&self) -> bool {
        matches!(self, Outcome::Crashed { .. })
    }

    /// The work counters.
    pub fn stats(&self) -> &ProverStats {
        match self {
            Outcome::Proved { stats }
            | Outcome::Refuted { stats, .. }
            | Outcome::ResourceOut { stats, .. }
            | Outcome::Crashed { stats, .. } => stats,
        }
    }

    fn stats_mut(&mut self) -> &mut ProverStats {
        match self {
            Outcome::Proved { stats }
            | Outcome::Refuted { stats, .. }
            | Outcome::ResourceOut { stats, .. }
            | Outcome::Crashed { stats, .. } => stats,
        }
    }

    /// The contained panic message, when the attempt crashed.
    pub fn crash_message(&self) -> Option<&str> {
        match self {
            Outcome::Crashed { message, .. } => Some(message),
            _ => None,
        }
    }

    /// The candidate countermodel, when the search saturated.
    pub fn model(&self) -> Option<&[String]> {
        match self {
            Outcome::Refuted { model, .. } => Some(model),
            _ => None,
        }
    }

    /// The exhausted resource, when a budget limit tripped.
    pub fn resource(&self) -> Option<Resource> {
        match self {
            Outcome::ResourceOut { resource, .. } => Some(*resource),
            _ => None,
        }
    }
}

/// Performance tuning knobs for the solver's cold path. Both default to
/// **on**; the ablation bench flips them off to measure each mechanism's
/// contribution. Tuning is deliberately excluded from obligation
/// fingerprints: it must never change a verdict, only the work profile.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SolverTuning {
    /// Start attempts from the prepared [`Theory`] core instead of
    /// re-clausifying the background axioms per attempt.
    pub share_theory: bool,
    /// Hash-cons ground terms in a per-attempt arena and run the EUF /
    /// E-matching hot loops over interned ids. Off, every search leaf
    /// re-interns `Box`ed term trees the way the seed prover did.
    pub hash_cons: bool,
}

impl Default for SolverTuning {
    fn default() -> SolverTuning {
        SolverTuning {
            share_theory: true,
            hash_cons: true,
        }
    }
}

impl SolverTuning {
    /// Every optimization disengaged — the seed prover's work profile,
    /// kept alive as the ablation baseline.
    pub fn legacy() -> SolverTuning {
        SolverTuning {
            share_theory: false,
            hash_cons: false,
        }
    }
}

/// A proof obligation: background axioms, hypotheses, and a goal.
///
/// See the crate-level documentation for a complete example.
#[derive(Clone, Debug, Default)]
pub struct Problem {
    axioms: Vec<Formula>,
    hyps: Vec<Formula>,
    goal: Option<Formula>,
    /// Shared preprocessed background axiomatization, logically
    /// equivalent to listing its axioms first via [`Problem::axiom`].
    theory: Option<Arc<Theory>>,
    /// Resource limits; adjust before calling [`Problem::prove`].
    pub config: Budget,
    /// Cold-path performance knobs; see [`SolverTuning`].
    pub tuning: SolverTuning,
    /// Cooperative cancellation handle, polled at round starts, every
    /// [`DEADLINE_CHECK_INTERVAL`] DPLL decisions, and between
    /// E-matching quantifiers. An external [`CancelToken::cancel`]
    /// yields [`Resource::Cancelled`]; a token deadline folds into the
    /// attempt's effective deadline and yields [`Resource::Time`], same
    /// as [`Budget::timeout`]. The default token never fires and is
    /// **not** part of the fingerprint: cancellation affects whether an
    /// attempt concludes, never what it concludes.
    pub cancel: CancelToken,
}

impl Problem {
    /// Creates an empty problem with default limits.
    pub fn new() -> Problem {
        Problem::default()
    }

    /// Sets the resource budget (chainable alternative to assigning
    /// [`Problem::config`] directly).
    pub fn budget(&mut self, budget: Budget) -> &mut Problem {
        self.config = budget;
        self
    }

    /// Adds a background axiom (typically universally quantified with
    /// explicit triggers).
    pub fn axiom(&mut self, f: Formula) -> &mut Problem {
        self.axioms.push(f);
        self
    }

    /// Adds a hypothesis.
    pub fn hypothesis(&mut self, f: Formula) -> &mut Problem {
        self.hyps.push(f);
        self
    }

    /// Sets the goal to prove.
    pub fn goal(&mut self, f: Formula) -> &mut Problem {
        self.goal = Some(f);
        self
    }

    /// Attaches a shared preprocessed background theory. Its axioms are
    /// asserted before this problem's own [`Problem::axiom`]s, and (with
    /// [`SolverTuning::share_theory`] on) the expensive clausification
    /// front end for them is skipped by starting from the theory's
    /// prepared core. The theory's axioms are part of the obligation
    /// fingerprint exactly as inline axioms would be.
    pub fn set_theory(&mut self, theory: Arc<Theory>) -> &mut Problem {
        self.theory = Some(theory);
        self
    }

    /// The attached shared theory, if any.
    pub fn theory(&self) -> Option<&Arc<Theory>> {
        self.theory.as_ref()
    }

    /// The obligation's stable structural fingerprint under this
    /// problem's base budget ([`Problem::config`]) and the given retry
    /// ladder — the proof-cache key. Symbol-independent (hashes symbol
    /// strings with de-Bruijn-indexed binders, never interner ids) and
    /// versioned by [`crate::fingerprint::PROVER_VERSION`]; see
    /// [`crate::fingerprint`]. Theory axioms hash exactly as inline
    /// axioms do, so moving axioms into a shared [`Theory`] preserves
    /// the key; [`SolverTuning`] is excluded because it cannot change
    /// outcomes.
    pub fn fingerprint(&self, retry: crate::stats::RetryPolicy) -> crate::fingerprint::Fingerprint {
        crate::fingerprint::fingerprint_obligation(
            self.theory.as_ref().map_or(&[][..], |t| t.axioms()),
            &self.axioms,
            &self.hyps,
            self.goal.as_ref(),
            &self.config,
            retry,
        )
    }

    /// Attempts to prove `axioms ∧ hypotheses ⇒ goal` within the
    /// configured [`Budget`], stamping wall-clock time into the stats.
    ///
    /// Each call counts as one *solver entry* for the thread's installed
    /// [`crate::fault::FaultPlan`] (if any), and honours any fault the
    /// plan schedules for it.
    ///
    /// # Panics
    ///
    /// Panics if no goal was set, or if the fault plan schedules a
    /// [`FaultKind::Panic`] or [`FaultKind::TheoryError`] at this entry.
    /// Use [`Problem::prove_isolated`] to contain panics as
    /// [`Outcome::Crashed`].
    pub fn prove(&self) -> Outcome {
        self.timed_attempt(|deadline, theory_fault| self.solve_once(None, deadline, theory_fault))
    }

    /// As [`Problem::prove`], but contains any panic the attempt raises
    /// — from a prover bug, a library-misuse invariant, or an injected
    /// fault — and degrades it to [`Outcome::Crashed`] carrying the
    /// panic message. This is the entry point batch drivers should use:
    /// one crashing obligation must not take down its neighbours.
    pub fn prove_isolated(&self) -> Outcome {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.prove())) {
            Ok(outcome) => outcome,
            Err(payload) => Outcome::Crashed {
                message: panic_message(payload.as_ref()),
                stats: ProverStats::default(),
            },
        }
    }

    /// The per-attempt preamble every entry point shares: wall-clock
    /// stamping, effective-deadline computation, fault-plan entry
    /// accounting, and the pre-work cancellation check.
    fn timed_attempt(&self, body: impl FnOnce(Option<Instant>, Option<u64>) -> Outcome) -> Outcome {
        let start = Instant::now();
        // Effective deadline: the earlier of the per-attempt budget
        // timeout and the run-wide token deadline. Both report
        // `Resource::Time` — they are the same "wall clock ran out"
        // condition at different scopes.
        let deadline = match (self.config.timeout.map(|t| start + t), self.cancel.deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let (entry, fault) = fault::next_entry();
        let theory_fault = match fault {
            Some(FaultKind::Panic) => panic!("injected panic at solver entry {entry}"),
            Some(FaultKind::ResourceOut) => {
                return Outcome::ResourceOut {
                    resource: Resource::Injected,
                    stats: ProverStats {
                        wall: start.elapsed(),
                        ..ProverStats::default()
                    },
                };
            }
            Some(FaultKind::TheoryError) => Some(entry),
            None => None,
        };
        // A cancel observed before any work still reports as this
        // attempt's outcome: batch drivers treat it like any other
        // inconclusive result and never cache it.
        if self.cancel.is_cancelled() {
            return Outcome::ResourceOut {
                resource: Resource::Cancelled,
                stats: ProverStats {
                    wall: start.elapsed(),
                    ..ProverStats::default()
                },
            };
        }
        let mut outcome = body(deadline, theory_fault);
        outcome.stats_mut().wall = start.elapsed();
        outcome
    }

    /// One proof attempt over either a caller-provided reusable core
    /// (reset to its theory watermark first) or a core built here —
    /// cloned from the prepared theory when sharing is on, rebuilt from
    /// scratch otherwise.
    fn solve_once(
        &self,
        reuse: Option<&mut SolveCore>,
        deadline: Option<Instant>,
        theory_fault: Option<u64>,
    ) -> Outcome {
        if let Some(core) = reuse {
            // Reset up front rather than on completion: a panicking
            // attempt leaves the core dirty, and the rollback here heals
            // it before the next obligation runs.
            core.reset();
            let mut outcome = self.prove_with_core(core, deadline, theory_fault);
            outcome.stats_mut().theory_reuses = 1;
            return outcome;
        }
        if self.tuning.share_theory {
            if let Some(theory) = &self.theory {
                let mut core = theory.prepared_core();
                let mut outcome = self.prove_with_core(&mut core, deadline, theory_fault);
                outcome.stats_mut().theory_reuses = 1;
                return outcome;
            }
        }
        let mut core = self.fresh_core();
        let mut outcome = self.prove_with_core(&mut core, deadline, theory_fault);
        outcome.stats_mut().theory_preps = 1;
        outcome
    }

    /// Builds a core from scratch, re-asserting the theory axioms (the
    /// legacy per-attempt preprocessing path).
    fn fresh_core(&self) -> SolveCore {
        let mut core = SolveCore::empty();
        if let Some(theory) = &self.theory {
            for ax in theory.axioms() {
                core.assert_formula(&ground_free_vars(ax));
            }
        }
        core
    }

    fn prove_with_core(
        &self,
        core: &mut SolveCore,
        deadline: Option<Instant>,
        theory_fault: Option<u64>,
    ) -> Outcome {
        let goal = self.goal.clone().expect("no goal set on problem");
        // Free variables act as uninterpreted constants (proving a goal
        // with free variables proves it for arbitrary values).
        let goal = ground_free_vars(&goal);

        // Arena counters are monotone; the deltas over this attempt are
        // its interning telemetry.
        let arena_created0 = core.arena.created();
        let arena_hits0 = core.arena.hits();

        for ax in &self.axioms {
            core.assert_formula(&ground_free_vars(ax));
        }
        for h in &self.hyps {
            core.assert_formula(&ground_free_vars(h));
        }
        core.assert_formula(&goal.negate());

        let mut stats = ProverStats::default();
        // Instantiation dedup keys on hash-consed ids: atom tables only
        // grow within an attempt, so ids are stable across rounds.
        let mut instantiated: HashSet<(usize, Binding)> = HashSet::new();
        // Trigger display names, rendered once per (quantifier, trigger)
        // instead of once per instantiation.
        let mut trigger_names: HashMap<(usize, usize), String> = HashMap::new();
        // Legacy-mode interning telemetry, summed from the short-lived
        // per-leaf and per-round arenas.
        let mut legacy_interned: u64 = 0;
        let mut legacy_hits: u64 = 0;
        // Hash-consing mode shares one leaf template across rounds: the
        // atom table only grows, so each round extends the template with
        // the new atoms instead of rebuilding it from scratch.
        let mut leaf_ctx: Option<LeafCtx> = None;
        // ... and the same for the per-round E-matching e-graph: one
        // persistent graph, extended as atoms arrive, with the model's
        // equality merges rolled back after each round's matching.
        let mut ematch_ctx: Option<EmatchCtx> = None;

        let mut outcome = 'solve: {
            for round in 0..self.config.max_rounds {
                if self.cancel.is_cancelled() {
                    break 'solve Outcome::ResourceOut {
                        resource: Resource::Cancelled,
                        stats,
                    };
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    break 'solve Outcome::ResourceOut {
                        resource: Resource::Time,
                        stats,
                    };
                }
                stats.rounds = round + 1;
                stats.clauses = core.clauses.len();
                stats.max_clauses = stats.max_clauses.max(core.clauses.len());
                if self.tuning.hash_cons {
                    core.extend_atom_tids();
                }
                let cached = self.tuning.hash_cons.then(|| CachedView {
                    arena: &core.arena,
                    atom_tids: &core.atom_tids,
                    tid_zero: core.tid_zero,
                    tid_one: core.tid_one,
                });
                if let Some(view) = cached {
                    leaf_ctx.get_or_insert_with(LeafCtx::empty).extend(view);
                }
                let mut search = Search {
                    cl: &core.cl,
                    clauses: &core.clauses,
                    cached,
                    leaf: leaf_ctx.take(),
                    decisions: 0,
                    propagations: 0,
                    conflicts: 0,
                    theory_checks: 0,
                    merges: 0,
                    fm_eliminations: 0,
                    interned_terms: 0,
                    intern_hits: 0,
                    // The decision budget spans the whole attempt, not one round.
                    max_decisions: self.config.max_decisions.saturating_sub(stats.decisions),
                    deadline,
                    cancel: &self.cancel,
                    exhausted: false,
                    timed_out: false,
                    cancelled: false,
                    theory_fault,
                };
                let natoms = core.cl.atoms().len();
                let mut assign = vec![None; natoms];
                let result = search.dpll(&mut assign);
                stats.decisions += search.decisions;
                stats.propagations += search.propagations;
                stats.conflicts += search.conflicts;
                stats.theory_checks += search.theory_checks;
                stats.merges += search.merges;
                stats.fm_eliminations += search.fm_eliminations;
                legacy_interned += search.interned_terms;
                legacy_hits += search.intern_hits;
                leaf_ctx = search.leaf.take();
                if search.exhausted {
                    break 'solve Outcome::ResourceOut {
                        resource: if search.cancelled {
                            Resource::Cancelled
                        } else if search.timed_out {
                            Resource::Time
                        } else {
                            Resource::Decisions
                        },
                        stats,
                    };
                }
                let Some(model) = result else {
                    break 'solve Outcome::Proved { stats };
                };

                // Instantiate quantifiers asserted true in the model.
                // The round e-graph holds every ground atom side; in
                // hash-consing mode one persistent graph is extended with
                // the atoms each round adds and the model's equalities
                // are rolled back after matching, otherwise a throwaway
                // round arena is rebuilt exactly as the seed prover did.
                let mut round_arena = TermArena::new();
                let mut legacy_eg = Egraph::new();
                let merges_before;
                let (eg, ematch_arena): (&mut Egraph, &TermArena) = if self.tuning.hash_cons {
                    let ctx = ematch_ctx.get_or_insert_with(EmatchCtx::empty);
                    for ca in &core.atom_tids[ctx.next_atom..] {
                        if let Some(id) = ca.fst {
                            ctx.eg.intern_id(&core.arena, id);
                        }
                        if let Some(id) = ca.snd {
                            ctx.eg.intern_id(&core.arena, id);
                        }
                    }
                    ctx.next_atom = core.atom_tids.len();
                    merges_before = ctx.eg.merges();
                    ctx.rewind = Some(ctx.eg.checkpoint());
                    for (i, v) in model.iter().enumerate() {
                        if *v == Some(true) {
                            if let Atom::Eq(..) = core.cl.atom(i) {
                                let ca = core.atom_tids[i];
                                if let (Some(a), Some(b)) = (ca.fst, ca.snd) {
                                    let ra = ctx.eg.intern_id(&core.arena, a);
                                    let rb = ctx.eg.intern_id(&core.arena, b);
                                    // The model passed the theory check, so
                                    // this merge cannot conflict; ignore the
                                    // result defensively.
                                    let _ = ctx.eg.merge(ra, rb);
                                }
                            }
                        }
                    }
                    (&mut ctx.eg, &core.arena)
                } else {
                    intern_all_atoms(&core.cl, &mut round_arena, &mut legacy_eg);
                    assert_model_equalities(&core.cl, &model, &mut round_arena, &mut legacy_eg);
                    merges_before = 0;
                    (&mut legacy_eg, &round_arena)
                };
                stats.merges += eg.merges() - merges_before;

                let active: Vec<usize> = model
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| match (core.cl.atom(i), v) {
                        (Atom::Quant(q), Some(true)) => Some(*q),
                        _ => None,
                    })
                    .collect();

                let mut fresh = Vec::new();
                let mut instantiation_cap_hit = false;
                for q in active {
                    // E-matching safepoint: one poll per active quantifier
                    // bounds the time between polls by one trigger sweep.
                    if self.cancel.is_cancelled() {
                        break 'solve Outcome::ResourceOut {
                            resource: Resource::Cancelled,
                            stats,
                        };
                    }
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        break 'solve Outcome::ResourceOut {
                            resource: Resource::Time,
                            stats,
                        };
                    }
                    let closure = core.cl.quants[q].clone();
                    let proxy_atom = core.cl.quant_atom(q);
                    for (ti, trigger) in closure.triggers.iter().enumerate() {
                        let (bindings, candidates) = match_trigger_counted(eg, trigger);
                        stats.ematch_candidates += candidates;
                        for binding in bindings {
                            if stats.instantiations >= self.config.max_instantiations {
                                instantiation_cap_hit = true;
                                break;
                            }
                            // The trigger must bind every quantified variable.
                            if !closure
                                .vars
                                .iter()
                                .all(|(v, _)| binding.iter().any(|(x, _)| x == v))
                            {
                                continue;
                            }
                            if !instantiated.insert((q, binding.clone())) {
                                continue;
                            }
                            stats.instantiations += 1;
                            let name = trigger_names
                                .entry((q, ti))
                                .or_insert_with(|| render_trigger(trigger))
                                .clone();
                            *stats.instantiations_by_trigger.entry(name).or_insert(0) += 1;
                            let subst: Vec<(Symbol, Term)> = binding
                                .iter()
                                .map(|&(x, id)| (x, ematch_arena.term(id).clone()))
                                .collect();
                            let inst = closure.body.subst(&subst);
                            let mut inst_clauses = core.cl.clausify(&inst);
                            // Guard each clause with the proxy: ¬Q ∨ instance.
                            if let Some(p) = proxy_atom {
                                for c in &mut inst_clauses {
                                    c.push(Lit {
                                        atom: p,
                                        pos: false,
                                    });
                                }
                            }
                            fresh.extend(inst_clauses);
                        }
                    }
                }
                if let Some(ctx) = ematch_ctx.as_mut() {
                    if let Some(cp) = ctx.rewind.take() {
                        ctx.eg.rollback(cp);
                    }
                }
                if !self.tuning.hash_cons {
                    legacy_interned += round_arena.created();
                    legacy_hits += round_arena.hits();
                }
                let added = core.add_clauses(fresh);
                stats.clauses = core.clauses.len();
                stats.max_clauses = stats.max_clauses.max(core.clauses.len());
                if core.clauses.len() > self.config.max_clauses {
                    break 'solve Outcome::ResourceOut {
                        resource: Resource::Clauses,
                        stats,
                    };
                }
                if added == 0 {
                    if instantiation_cap_hit {
                        // The cap stopped instantiation before saturation; the
                        // surviving model is not evidence of anything.
                        break 'solve Outcome::ResourceOut {
                            resource: Resource::Instantiations,
                            stats,
                        };
                    }
                    // True saturation: no instantiation produces anything new,
                    // and a theory-consistent assignment survives.
                    break 'solve Outcome::Refuted {
                        model: render_model(&core.cl, &model),
                        stats,
                    };
                }
            }

            Outcome::ResourceOut {
                resource: Resource::Rounds,
                stats,
            }
        };

        // Interning telemetry, stamped once at the single exit: arena
        // deltas when hash-consing, per-leaf/per-round sums otherwise.
        let s = outcome.stats_mut();
        if self.tuning.hash_cons {
            s.interned_terms = core.arena.created() - arena_created0;
            s.intern_hits = core.arena.hits() - arena_hits0;
        } else {
            s.interned_terms = legacy_interned;
            s.intern_hits = legacy_hits;
        }
        outcome
    }
}

/// A worker that keeps one theory-loaded solving core alive across many
/// proving attempts — the per-worker solver-reuse mechanism of the
/// parallel checking pipeline.
///
/// Between obligations the core is rolled back to its shared-theory
/// watermark (a push/pop-style scoped reset) instead of being rebuilt,
/// so the background axioms are clausified exactly once per worker
/// lifetime. The rollback runs at the *start* of each attempt, which
/// also heals a core left dirty by a contained panic.
pub struct SolverWorker {
    theory: Arc<Theory>,
    core: SolveCore,
}

impl SolverWorker {
    /// A worker primed with the given theory.
    pub fn new(theory: Arc<Theory>) -> SolverWorker {
        let core = theory.prepared_core();
        SolverWorker { theory, core }
    }

    /// Proves one obligation, reusing this worker's resident core when
    /// the problem carries the same shared theory (and theory sharing is
    /// tuned on); otherwise falls back to [`Problem::prove`] semantics.
    /// Outcomes and stats are identical either way — reuse only skips
    /// redundant preprocessing.
    pub fn prove(&mut self, problem: &Problem) -> Outcome {
        let reusable = problem.tuning.share_theory
            && problem
                .theory()
                .is_some_and(|t| Arc::ptr_eq(t, &self.theory));
        problem.timed_attempt(|deadline, theory_fault| {
            let reuse = reusable.then_some(&mut self.core);
            problem.solve_once(reuse, deadline, theory_fault)
        })
    }

    /// As [`SolverWorker::prove`], containing panics as
    /// [`Outcome::Crashed`]. The next attempt's watermark rollback
    /// discards whatever the crashed attempt left in the core.
    pub fn prove_isolated(&mut self, problem: &Problem) -> Outcome {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.prove(problem))) {
            Ok(outcome) => outcome,
            Err(payload) => Outcome::Crashed {
                message: panic_message(payload.as_ref()),
                stats: ProverStats::default(),
            },
        }
    }
}

/// Extracts the human-readable message from a caught panic payload.
/// `panic!` with a literal yields `&'static str`; with formatting,
/// `String`; anything else is opaque.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Renders a trigger multi-pattern as the stable string key used in
/// [`ProverStats::instantiations_by_trigger`].
fn render_trigger(trigger: &[Term]) -> String {
    let parts: Vec<String> = trigger.iter().map(ToString::to_string).collect();
    parts.join(", ")
}

fn render_model(cl: &Clausifier, model: &[Option<bool>]) -> Vec<String> {
    model
        .iter()
        .enumerate()
        .filter_map(|(i, v)| {
            let pos = (*v)?;
            let atom = match cl.atom(i) {
                Atom::Eq(a, b) => format!("{a} = {b}"),
                Atom::Le(a, b) => format!("{a} <= {b}"),
                Atom::Lt(a, b) => format!("{a} < {b}"),
                Atom::Pred(p, args) if args.is_empty() => format!("{p}"),
                Atom::Pred(p, args) => {
                    let rendered: Vec<String> = args.iter().map(ToString::to_string).collect();
                    format!("{p}({})", rendered.join(", "))
                }
                // Quantifier proxies carry no ground information worth
                // showing in a countermodel.
                Atom::Quant(_) => return None,
            };
            Some(if pos { atom } else { format!("!({atom})") })
        })
        .collect()
}

/// Legacy (non-hash-consing) round setup: intern every ground atom side
/// into a throwaway arena + e-graph, exactly as the seed prover did.
fn intern_all_atoms(cl: &Clausifier, arena: &mut TermArena, eg: &mut Egraph) {
    for atom in cl.atoms() {
        match atom {
            Atom::Eq(a, b) | Atom::Le(a, b) | Atom::Lt(a, b) => {
                if a.is_ground() {
                    eg.intern(arena, a);
                }
                if b.is_ground() {
                    eg.intern(arena, b);
                }
            }
            Atom::Pred(p, args) => {
                if args.iter().all(Term::is_ground) {
                    eg.intern(arena, &Term::App(*p, args.clone()));
                }
            }
            Atom::Quant(_) => {}
        }
    }
}

fn assert_model_equalities(
    cl: &Clausifier,
    model: &[Option<bool>],
    arena: &mut TermArena,
    eg: &mut Egraph,
) {
    for (i, v) in model.iter().enumerate() {
        if *v == Some(true) {
            if let Atom::Eq(a, b) = cl.atom(i) {
                if a.is_ground() && b.is_ground() {
                    let ra = eg.intern(arena, a);
                    let rb = eg.intern(arena, b);
                    // The model passed the theory check, so this merge
                    // cannot conflict; ignore the result defensively.
                    let _ = eg.merge(ra, rb);
                }
            }
        }
    }
}

/// Hash-consed hot-path view over the attempt core: the shared arena,
/// the per-atom cached term ids, and the pinned `0`/`1` literals.
#[derive(Clone, Copy)]
struct CachedView<'a> {
    arena: &'a TermArena,
    atom_tids: &'a [CachedAtom],
    tid_zero: TermId,
    tid_one: TermId,
}

/// The arithmetic shape of an atom recorded during the EUF phase of a
/// leaf check, consumed by the shared Fourier–Motzkin phases.
#[derive(Clone, Copy)]
enum ArithKind {
    Eq,
    Le,
    Lt,
}

/// The hash-consed leaf checker's reusable template e-graph: every atom
/// operand (and the `0`/`1` markers) interned once per round, with the
/// per-atom e-graph refs precomputed. A leaf check asserts its handful
/// of equalities directly on the template and rewinds them afterwards
/// ([`Egraph::checkpoint`]/[`Egraph::rollback`]), so per-leaf cost scales
/// with the *assignment's* merge count instead of the term universe.
struct LeafCtx {
    eg: Egraph,
    /// Per-atom `[fst, snd]` operand refs, indexed like
    /// [`CachedView::atom_tids`].
    atom_refs: Vec<[Option<euf::TermRef>; 2]>,
    /// The interned `0` literal, the "false" marker for predicate atoms.
    ref_zero: euf::TermRef,
    /// The interned `1` literal, the "true" marker for predicate atoms.
    ref_one: euf::TermRef,
}

/// One attempt's persistent E-matching e-graph (hash-consing mode).
/// The term universe only grows (atom tables are append-only), so each
/// round interns just the new atoms' operands; the round's model
/// equalities are merged on top of a checkpoint and rolled back after
/// matching. Intern order equals the per-round rebuild order, so refs,
/// class structure, and therefore instantiation order are identical to
/// rebuilding from scratch.
struct EmatchCtx {
    eg: Egraph,
    /// Atoms `0..next_atom` are already interned.
    next_atom: usize,
    /// The checkpoint taken before this round's model merges, consumed
    /// by the end-of-round rollback.
    rewind: Option<euf::Checkpoint>,
}

impl EmatchCtx {
    fn empty() -> EmatchCtx {
        EmatchCtx {
            eg: Egraph::new(),
            next_atom: 0,
            rewind: None,
        }
    }
}

impl LeafCtx {
    fn empty() -> LeafCtx {
        LeafCtx {
            eg: Egraph::new(),
            atom_refs: Vec::new(),
            ref_zero: 0,
            ref_one: 0,
        }
    }

    /// Interns the ground operands of every atom added since the last
    /// call (the atom table only grows between rounds, so refs stay
    /// stable). Hash-consed arena ids cannot collide on congruence
    /// signatures while no equalities are asserted — and every leaf's
    /// unions are rolled back before the next extension — so extending
    /// performs no unions and the template stays a pure term universe.
    fn extend(&mut self, view: CachedView<'_>) {
        for ca in &view.atom_tids[self.atom_refs.len()..] {
            self.atom_refs.push([
                ca.fst.map(|id| self.eg.intern_id(view.arena, id)),
                ca.snd.map(|id| self.eg.intern_id(view.arena, id)),
            ]);
        }
        self.ref_zero = self.eg.intern_id(view.arena, view.tid_zero);
        self.ref_one = self.eg.intern_id(view.arena, view.tid_one);
    }
}

struct Search<'a> {
    cl: &'a Clausifier,
    clauses: &'a [Clause],
    /// `Some` when hash-consing is tuned on: leaves intern by id lookup
    /// through this view. `None` falls back to per-leaf tree interning.
    cached: Option<CachedView<'a>>,
    /// The round's template e-graph; `Some` exactly when `cached` is.
    leaf: Option<LeafCtx>,
    decisions: u64,
    propagations: u64,
    conflicts: u64,
    theory_checks: u64,
    merges: u64,
    fm_eliminations: u64,
    /// Legacy-mode telemetry: nodes created in per-leaf arenas.
    interned_terms: u64,
    /// Legacy-mode telemetry: hash-consing hits in per-leaf arenas.
    intern_hits: u64,
    max_decisions: u64,
    deadline: Option<Instant>,
    cancel: &'a CancelToken,
    exhausted: bool,
    timed_out: bool,
    cancelled: bool,
    /// When set (by an installed [`crate::fault::FaultPlan`]), the first
    /// theory-consistency check panics, simulating a theory-solver bug
    /// deep inside the search. Carries the solver entry index for the
    /// panic message.
    theory_fault: Option<u64>,
}

/// How many decisions elapse between wall-clock deadline checks; each
/// decision already scans every clause, so checking this often keeps the
/// overhead of `Instant::now` well under the noise floor.
const DEADLINE_CHECK_INTERVAL: u64 = 64;

impl Search<'_> {
    /// Returns a theory-consistent assignment, or `None` if none exists
    /// (i.e. the clause set is unsatisfiable modulo the theories).
    fn dpll(&mut self, assign: &mut Vec<Option<bool>>) -> Option<Vec<Option<bool>>> {
        if self.exhausted {
            return None;
        }
        // Unit propagation to fixpoint.
        let mut trail: Vec<usize> = Vec::new();
        loop {
            let mut progressed = false;
            for clause in self.clauses {
                let mut satisfied = false;
                let mut unassigned: Option<Lit> = None;
                let mut unassigned_count = 0;
                for &lit in clause {
                    match assign[lit.atom] {
                        Some(v) if v == lit.pos => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            unassigned_count += 1;
                            unassigned = Some(lit);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => {
                        // Conflict: undo propagation and fail this branch.
                        self.conflicts += 1;
                        for &a in &trail {
                            assign[a] = None;
                        }
                        return None;
                    }
                    1 => {
                        let lit = unassigned.expect("count is one");
                        assign[lit.atom] = Some(lit.pos);
                        trail.push(lit.atom);
                        self.propagations += 1;
                        progressed = true;
                    }
                    _ => {}
                }
            }
            if !progressed {
                break;
            }
        }

        // Pick a branching literal from the first unsatisfied clause.
        let mut branch: Option<Lit> = None;
        'outer: for clause in self.clauses {
            let mut satisfied = false;
            for &lit in clause {
                if assign[lit.atom] == Some(lit.pos) {
                    satisfied = true;
                    break;
                }
            }
            if satisfied {
                continue;
            }
            for &lit in clause {
                if assign[lit.atom].is_none() {
                    branch = Some(lit);
                    break 'outer;
                }
            }
        }

        match branch {
            None => {
                // All clauses satisfied: check theory consistency.
                if self.theory_consistent(assign) {
                    let model = assign.clone();
                    for &a in &trail {
                        assign[a] = None;
                    }
                    Some(model)
                } else {
                    // A theory-rejected leaf is a conflict too.
                    self.conflicts += 1;
                    for &a in &trail {
                        assign[a] = None;
                    }
                    None
                }
            }
            Some(lit) => {
                self.decisions += 1;
                if self.decisions > self.max_decisions {
                    self.exhausted = true;
                    for &a in &trail {
                        assign[a] = None;
                    }
                    return None;
                }
                if self.decisions.is_multiple_of(DEADLINE_CHECK_INTERVAL) {
                    if self.cancel.is_cancelled() {
                        self.exhausted = true;
                        self.cancelled = true;
                        for &a in &trail {
                            assign[a] = None;
                        }
                        return None;
                    }
                    if self.deadline.is_some_and(|d| Instant::now() >= d) {
                        self.exhausted = true;
                        self.timed_out = true;
                        for &a in &trail {
                            assign[a] = None;
                        }
                        return None;
                    }
                }
                for value in [lit.pos, !lit.pos] {
                    assign[lit.atom] = Some(value);
                    if let Some(model) = self.dpll(assign) {
                        assign[lit.atom] = None;
                        for &a in &trail {
                            assign[a] = None;
                        }
                        return Some(model);
                    }
                }
                assign[lit.atom] = None;
                for &a in &trail {
                    assign[a] = None;
                }
                None
            }
        }
    }

    /// Nelson–Oppen style consistency check of the assigned literals:
    /// congruence closure over the equalities and predicate facts, then
    /// Fourier–Motzkin over the (EUF-canonicalized) arithmetic literals,
    /// then exact handling of integer disequalities.
    fn theory_consistent(&mut self, assign: &[Option<bool>]) -> bool {
        if let Some(entry) = self.theory_fault {
            panic!("injected theory-solver failure at solver entry {entry}");
        }
        self.theory_checks += 1;
        match self.leaf.take() {
            Some(mut ctx) => {
                let view = self.cached.expect("leaf template implies a cached view");
                let before = ctx.eg.merges();
                let cp = ctx.eg.checkpoint();
                let ok = self.consistent_cached(assign, view, &mut ctx);
                ctx.eg.rollback(cp);
                self.merges += ctx.eg.merges() - before;
                self.leaf = Some(ctx);
                ok
            }
            None => {
                let mut leaf_arena = TermArena::new();
                let mut eg = Egraph::new();
                let ok = self.consistent_legacy(assign, &mut leaf_arena, &mut eg);
                self.interned_terms += leaf_arena.created();
                self.intern_hits += leaf_arena.hits();
                self.merges += eg.merges();
                ok
            }
        }
    }

    /// Hash-consed leaf check on the round's template e-graph: every
    /// assigned atom's operand refs are precomputed, so the EUF phase is
    /// a handful of class unions with zero interning traffic (the caller
    /// rewinds them afterwards). Verdicts match the legacy per-leaf
    /// rebuild exactly: congruence closure restricted to the assigned
    /// atoms' subterm-closed universe is unchanged by the template's
    /// extra terms, which can join classes but never equate two assigned
    /// terms (or inject an integer value) that the smaller universe
    /// wouldn't.
    fn consistent_cached(
        &mut self,
        assign: &[Option<bool>],
        view: CachedView<'_>,
        ctx: &mut LeafCtx,
    ) -> bool {
        let mut diseqs: Vec<(TermId, TermId)> = Vec::new();
        let mut arith: Vec<(TermId, TermId, ArithKind, bool)> = Vec::new();
        let eg = &mut ctx.eg;

        // Phase 1: EUF assertions.
        for (i, v) in assign.iter().enumerate() {
            let Some(value) = *v else { continue };
            let ca = view.atom_tids[i];
            let [fst, snd] = ctx.atom_refs[i];
            match self.cl.atom(i) {
                Atom::Eq(..) => {
                    let a = ca.fst.expect("equality operands are ground");
                    let b = ca.snd.expect("equality operands are ground");
                    let ra = fst.expect("equality operands are interned");
                    let rb = snd.expect("equality operands are interned");
                    if value {
                        if eg.merge(ra, rb).is_err() {
                            return false;
                        }
                        arith.push((a, b, ArithKind::Eq, true));
                    } else {
                        if eg.assert_diseq(ra, rb).is_err() {
                            return false;
                        }
                        diseqs.push((a, b));
                    }
                }
                Atom::Pred(..) => {
                    let rt = fst.expect("predicate arguments are interned");
                    let marker = if value { ctx.ref_one } else { ctx.ref_zero };
                    if eg.merge(rt, marker).is_err() {
                        return false;
                    }
                }
                Atom::Le(..) => {
                    let a = ca.fst.expect("inequality operands are ground");
                    let b = ca.snd.expect("inequality operands are ground");
                    arith.push((a, b, ArithKind::Le, value));
                }
                Atom::Lt(..) => {
                    let a = ca.fst.expect("inequality operands are ground");
                    let b = ca.snd.expect("inequality operands are ground");
                    arith.push((a, b, ArithKind::Lt, value));
                }
                Atom::Quant(_) => {}
            }
        }

        arith_phases(eg, view.arena, &arith, &diseqs, &mut self.fm_eliminations)
    }

    /// Legacy leaf check: a throwaway arena per leaf, re-interning every
    /// assigned atom's term trees — the seed prover's work profile, kept
    /// for the ablation baseline. Interning terms before ids preserves
    /// the e-graph's ref numbering, so arithmetic atom keys (and thus the
    /// whole search trace) match the cached path exactly.
    fn consistent_legacy(
        &mut self,
        assign: &[Option<bool>],
        arena: &mut TermArena,
        eg: &mut Egraph,
    ) -> bool {
        let true_term = Term::int(1);
        let false_term = Term::int(0);

        let mut diseqs: Vec<(TermId, TermId)> = Vec::new();
        let mut arith: Vec<(TermId, TermId, ArithKind, bool)> = Vec::new();

        // Phase 1: EUF assertions.
        for (i, v) in assign.iter().enumerate() {
            let Some(value) = *v else { continue };
            match self.cl.atom(i) {
                Atom::Eq(a, b) => {
                    let ra = eg.intern(arena, a);
                    let rb = eg.intern(arena, b);
                    if value {
                        if eg.merge(ra, rb).is_err() {
                            return false;
                        }
                        arith.push((eg.tid(ra), eg.tid(rb), ArithKind::Eq, true));
                    } else {
                        if eg.assert_diseq(ra, rb).is_err() {
                            return false;
                        }
                        diseqs.push((eg.tid(ra), eg.tid(rb)));
                    }
                }
                Atom::Pred(p, args) => {
                    let t = eg.intern(arena, &Term::App(*p, args.clone()));
                    let marker = eg.intern(arena, if value { &true_term } else { &false_term });
                    if eg.merge(t, marker).is_err() {
                        return false;
                    }
                }
                Atom::Le(a, b) => {
                    let ra = eg.intern(arena, a);
                    let rb = eg.intern(arena, b);
                    arith.push((eg.tid(ra), eg.tid(rb), ArithKind::Le, value));
                }
                Atom::Lt(a, b) => {
                    let ra = eg.intern(arena, a);
                    let rb = eg.intern(arena, b);
                    arith.push((eg.tid(ra), eg.tid(rb), ArithKind::Lt, value));
                }
                Atom::Quant(_) => {}
            }
        }

        arith_phases(eg, arena, &arith, &diseqs, &mut self.fm_eliminations)
    }
}

/// Phases 2 and 3 of the leaf check, shared by both interning modes:
/// Fourier–Motzkin feasibility over the linearized arithmetic literals,
/// then exact integer-disequality entailment.
fn arith_phases(
    eg: &mut Egraph,
    arena: &TermArena,
    arith: &[(TermId, TermId, ArithKind, bool)],
    diseqs: &[(TermId, TermId)],
    fm_eliminations: &mut u64,
) -> bool {
    // Phase 2: arithmetic.
    let mut constraints: Vec<Constraint> = Vec::new();
    for &(a, b, kind, value) in arith {
        let la = linearize(arena, eg, a);
        let lb = linearize(arena, eg, b);
        match (kind, value) {
            (ArithKind::Eq, _) => constraints.push(Constraint::eq0(la.sub(&lb))),
            // a ≤ b  ⇔  a - b ≤ 0
            (ArithKind::Le, true) => constraints.push(Constraint::le0(la.sub(&lb))),
            // ¬(a ≤ b)  ⇔  b < a  ⇔  b - a < 0
            (ArithKind::Le, false) => constraints.push(Constraint::lt0(lb.sub(&la))),
            (ArithKind::Lt, true) => constraints.push(Constraint::lt0(la.sub(&lb))),
            (ArithKind::Lt, false) => constraints.push(Constraint::le0(lb.sub(&la))),
        }
    }
    let (arith_ok, elims) = feasible_counted(&constraints);
    *fm_eliminations += elims;
    if !arith_ok {
        return false;
    }

    // Phase 3: integer disequalities. A disequality a ≠ b conflicts
    // exactly when the arithmetic constraints entail a = b.
    for &(a, b) in diseqs {
        let la = linearize(arena, eg, a);
        let lb = linearize(arena, eg, b);
        let (entailed, elims) = entails_eq0_counted(&constraints, &la.sub(&lb));
        *fm_eliminations += elims;
        if entailed {
            return false;
        }
    }
    true
}

/// Converts an interned ground term into a linear expression over opaque
/// atoms, canonicalizing uninterpreted subterms by their
/// congruence-closure representative (this is how equality facts flow
/// into arithmetic).
fn linearize(arena: &TermArena, eg: &mut Egraph, id: TermId) -> LinExpr {
    match arena.head(id) {
        Head::Int(v) => LinExpr::constant(Rat::from(v)),
        Head::Sym(f) => {
            let args = arena.args(id);
            match (f.as_str(), args.len()) {
                ("+", 2) => {
                    let (x, y) = (args[0], args[1]);
                    let a = linearize(arena, eg, x);
                    let b = linearize(arena, eg, y);
                    a.add(&b)
                }
                ("-", 2) => {
                    let (x, y) = (args[0], args[1]);
                    let a = linearize(arena, eg, x);
                    let b = linearize(arena, eg, y);
                    a.sub(&b)
                }
                ("neg", 1) => {
                    let x = args[0];
                    linearize(arena, eg, x).scale(-Rat::ONE)
                }
                ("*", 2) => {
                    let (x, y) = (args[0], args[1]);
                    let a = linearize(arena, eg, x);
                    let b = linearize(arena, eg, y);
                    if let Some(k) = a.as_constant() {
                        b.scale(k)
                    } else if let Some(k) = b.as_constant() {
                        a.scale(k)
                    } else {
                        opaque(arena, eg, id)
                    }
                }
                _ => opaque(arena, eg, id),
            }
        }
    }
}

fn opaque(arena: &TermArena, eg: &mut Egraph, id: TermId) -> LinExpr {
    let r = eg.intern_id(arena, id);
    if let Some(v) = eg.class_int_value(r) {
        return LinExpr::constant(Rat::from(v));
    }
    LinExpr::atom(eg.find(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    fn x() -> Term {
        Term::cnst("x")
    }
    fn y() -> Term {
        Term::cnst("y")
    }

    fn prove(hyps: Vec<Formula>, goal: Formula) -> bool {
        let mut p = Problem::new();
        for h in hyps {
            p.hypothesis(h);
        }
        p.goal(goal);
        p.prove().is_proved()
    }

    #[test]
    fn trivial_goal() {
        assert!(prove(vec![], Formula::True));
    }

    #[test]
    fn unprovable_false() {
        assert!(!prove(vec![], Formula::False));
    }

    #[test]
    fn hypothesis_discharges_goal() {
        let p = Formula::pred("p", vec![]);
        assert!(prove(vec![p.clone()], p));
    }

    #[test]
    fn modus_ponens() {
        let p = Formula::pred("p", vec![]);
        let q = Formula::pred("q", vec![]);
        assert!(prove(vec![p.clone(), p.implies(q.clone())], q));
    }

    #[test]
    fn arithmetic_transitivity() {
        // x < y, y < 3 ⊢ x < 3
        assert!(prove(
            vec![x().lt(&y()), y().lt(&Term::int(3))],
            x().lt(&Term::int(3)),
        ));
    }

    #[test]
    fn arithmetic_non_theorem() {
        // x < y does not entail y < x.
        assert!(!prove(vec![x().lt(&y())], y().lt(&x())));
    }

    #[test]
    fn euf_congruence() {
        // x = y ⊢ f(x) = f(y)
        let fx = Term::app("f", vec![x()]);
        let fy = Term::app("f", vec![y()]);
        assert!(prove(vec![x().eq(&y())], fx.eq(&fy)));
    }

    #[test]
    fn euf_not_injective() {
        // f(x) = f(y) does not entail x = y.
        let fx = Term::app("f", vec![x()]);
        let fy = Term::app("f", vec![y()]);
        assert!(!prove(vec![fx.eq(&fy)], x().eq(&y())));
    }

    #[test]
    fn equalities_flow_into_arithmetic() {
        // x = y + 1 ∧ y ≥ 0 ⊢ x > 0
        assert!(prove(
            vec![x().eq(&y().add(&Term::int(1))), Term::int(0).le(&y()),],
            x().gt0(),
        ));
    }

    #[test]
    fn disequality_reasoning() {
        // x ≤ 0 ∧ x ≥ 0 ⊢ x = 0, via disequality entailment.
        assert!(prove(
            vec![x().le(&Term::int(0)), Term::int(0).le(&x())],
            x().eq(&Term::int(0)),
        ));
    }

    #[test]
    fn case_split_over_disjunction() {
        // (p ∨ q), p ⇒ r, q ⇒ r ⊢ r
        let p = Formula::pred("p", vec![]);
        let q = Formula::pred("q", vec![]);
        let r = Formula::pred("r", vec![]);
        assert!(prove(
            vec![
                Formula::or(vec![p.clone(), q.clone()]),
                p.implies(r.clone()),
                q.implies(r.clone()),
            ],
            r,
        ));
    }

    #[test]
    fn distinct_integer_literals() {
        // x = 3 ⊢ x ≠ 5
        assert!(prove(vec![x().eq(&Term::int(3))], x().ne(&Term::int(5)),));
    }

    #[test]
    fn axiom_instantiation_by_trigger() {
        // forall a. p(a) ⇒ q(a), with trigger p(a); p(c) ⊢ q(c).
        let a = Term::var("a", Sort::Int);
        let ax = Formula::forall(
            vec![(stq_util::Symbol::intern("a"), Sort::Int)],
            vec![vec![Term::app("pp", vec![a.clone()])]],
            Formula::pred("pp", vec![a.clone()]).implies(Formula::pred("qq", vec![a])),
        );
        let c = Term::cnst("c");
        let mut p = Problem::new();
        p.axiom(ax);
        p.hypothesis(Formula::pred("pp", vec![c.clone()]));
        p.goal(Formula::pred("qq", vec![c]));
        assert!(p.prove().is_proved());
    }

    #[test]
    fn multiplication_sign_lemma() {
        // The paper's pos obligation: with the triggered sign lemma,
        // x > 0 ∧ y > 0 ⊢ x*y > 0.
        let a = Term::var("a", Sort::Int);
        let b = Term::var("b", Sort::Int);
        let lemma = Formula::forall(
            vec![
                (stq_util::Symbol::intern("a"), Sort::Int),
                (stq_util::Symbol::intern("b"), Sort::Int),
            ],
            vec![vec![a.mul(&b)]],
            Formula::and(vec![a.gt0(), b.gt0()]).implies(a.mul(&b).gt0()),
        );
        let mut p = Problem::new();
        p.axiom(lemma);
        p.hypothesis(x().gt0());
        p.hypothesis(y().gt0());
        p.goal(x().mul(&y()).gt0());
        assert!(p.prove().is_proved());
    }

    #[test]
    fn subtraction_of_positives_is_not_positive() {
        // The paper's erroneous E1 - E2 rule must NOT be provable.
        let outcome = {
            let mut p = Problem::new();
            p.hypothesis(x().gt0());
            p.hypothesis(y().gt0());
            p.goal(x().sub(&y()).gt0());
            p.prove()
        };
        assert!(!outcome.is_proved());
        match outcome {
            Outcome::Refuted { model, .. } => assert!(!model.is_empty()),
            other => panic!("expected a countermodel, got {other:?}"),
        }
    }

    #[test]
    fn negation_of_negative_is_positive() {
        // neg qualifier: x < 0 ⊢ -x > 0.
        assert!(prove(vec![x().lt0()], x().neg().gt0()));
    }

    #[test]
    fn nested_forall_hypothesis_via_proxy() {
        // (forall a. p(a)) ⊢ p(c): the hypothesis quantifier becomes a
        // proxy that unit-propagates to true and instantiates on c.
        let a = Term::var("a", Sort::Int);
        let hyp = Formula::forall(
            vec![(stq_util::Symbol::intern("a"), Sort::Int)],
            vec![vec![Term::app("p2", vec![a.clone()])]],
            Formula::pred("p2", vec![a]),
        );
        let c = Term::cnst("c");
        // Mention p2(c) in the goal so the trigger has something to match.
        assert!(prove(vec![hyp], Formula::pred("p2", vec![c])));
    }

    #[test]
    fn guarded_quantifier_under_disjunction() {
        // h: q ∨ (forall a. {p3(a)} p3(a) ⇒ r), ¬q, p3(c) ⊢ r... simplified:
        // the quantifier proxy participates in case splitting.
        let a = Term::var("a", Sort::Int);
        let q = Formula::pred("q3", vec![]);
        let r = Formula::pred("r3", vec![]);
        let fa = Formula::forall(
            vec![(stq_util::Symbol::intern("a"), Sort::Int)],
            vec![vec![Term::app("p3", vec![a.clone()])]],
            Formula::pred("p3", vec![a]).implies(r.clone()),
        );
        let hyp = Formula::or(vec![q.clone(), fa]);
        let c = Term::cnst("c");
        assert!(prove(
            vec![hyp, q.negate(), Formula::pred("p3", vec![c])],
            r,
        ));
    }

    #[test]
    fn negated_goal_forall_skolemizes() {
        // ⊢ forall a. p4(a) is not provable without axioms; the prover
        // skolemizes and reports unknown rather than looping.
        let a = Term::var("a", Sort::Int);
        let goal = Formula::forall(
            vec![(stq_util::Symbol::intern("a"), Sort::Int)],
            vec![],
            Formula::pred("p4", vec![a]),
        );
        assert!(!prove(vec![], goal));
    }

    #[test]
    fn goal_forall_provable_from_axiom() {
        // forall a. {p5(a)} p5(a) ⊢ forall b. p5(b): skolemize the goal to
        // p5(sk); the axiom instantiates on sk via its trigger... note the
        // trigger p5(a) matches the goal's skolemized p5(sk) term.
        let a = Term::var("a", Sort::Int);
        let ax = Formula::forall(
            vec![(stq_util::Symbol::intern("a"), Sort::Int)],
            vec![vec![Term::app("p5t", vec![a.clone()])]],
            Formula::pred("p5", vec![Term::app("p5t", vec![a])]),
        );
        let b = Term::var("b", Sort::Int);
        let goal = Formula::forall(
            vec![(stq_util::Symbol::intern("b"), Sort::Int)],
            vec![],
            Formula::pred("p5", vec![Term::app("p5t", vec![b])]),
        );
        assert!(prove(vec![ax], goal));
    }

    #[test]
    fn select_store_axioms() {
        // The store axioms used by the soundness checker.
        let s = Term::var("s", Sort::other("Store"));
        let aa = Term::var("a", Sort::Int);
        let bb = Term::var("b", Sort::Int);
        let vv = Term::var("v", Sort::Int);
        let store = |s: &Term, a: &Term, v: &Term| {
            Term::app("store", vec![s.clone(), a.clone(), v.clone()])
        };
        let select = |s: &Term, a: &Term| Term::app("select", vec![s.clone(), a.clone()]);
        let vars = |names: &[&str]| -> Vec<(stq_util::Symbol, Sort)> {
            names
                .iter()
                .map(|n| {
                    let sort = if *n == "s" {
                        Sort::other("Store")
                    } else {
                        Sort::Int
                    };
                    (stq_util::Symbol::intern(n), sort)
                })
                .collect()
        };
        let ax1 = Formula::forall(
            vars(&["s", "a", "v"]),
            vec![vec![select(&store(&s, &aa, &vv), &aa)]],
            select(&store(&s, &aa, &vv), &aa).eq(&vv),
        );
        let ax2 = Formula::forall(
            vars(&["s", "a", "b", "v"]),
            vec![vec![select(&store(&s, &aa, &vv), &bb)]],
            Formula::or(vec![
                aa.eq(&bb),
                select(&store(&s, &aa, &vv), &bb).eq(&select(&s, &bb)),
            ]),
        );

        let sigma = Term::cnst("sigma");
        let l1 = Term::cnst("l1");
        let l2 = Term::cnst("l2");
        let val = Term::int(7);

        // select(store(σ, l1, 7), l1) = 7
        let mut p = Problem::new();
        p.axiom(ax1.clone());
        p.axiom(ax2.clone());
        p.goal(select(&store(&sigma, &l1, &val), &l1).eq(&val));
        assert!(p.prove().is_proved());

        // l1 ≠ l2 ⊢ select(store(σ, l1, 7), l2) = select(σ, l2)
        let mut p = Problem::new();
        p.axiom(ax1);
        p.axiom(ax2);
        p.hypothesis(l1.ne(&l2));
        p.goal(select(&store(&sigma, &l1, &val), &l2).eq(&select(&sigma, &l2)));
        assert!(p.prove().is_proved());
    }

    #[test]
    fn iff_round_trips_through_the_prover() {
        // (p ⇔ q), p ⊢ q and (p ⇔ q), ¬p ⊢ ¬q.
        let p = Formula::pred("pi", vec![]);
        let q = Formula::pred("qi", vec![]);
        assert!(prove(vec![p.clone().iff(q.clone()), p.clone()], q.clone(),));
        assert!(prove(
            vec![p.clone().iff(q.clone()), p.clone().negate()],
            q.negate(),
        ));
        // p ⇔ q alone does not prove q.
        let r = prove(
            vec![p.clone().iff(Formula::pred("qi", vec![]))],
            Formula::pred("qi", vec![]),
        );
        assert!(!r);
    }

    #[test]
    fn stats_are_populated() {
        let mut p = Problem::new();
        p.hypothesis(x().gt0());
        p.goal(x().gt0());
        let outcome = p.prove();
        assert!(outcome.is_proved());
        let stats = outcome.stats();
        assert!(stats.rounds >= 1);
        // Proving anything requires refuting every branch, so at least
        // one conflict; the hypothesis and negated goal unit-propagate.
        assert!(stats.conflicts >= 1);
        assert!(stats.propagations >= 1);
        assert!(stats.clauses >= 2);
    }

    #[test]
    fn theory_checks_and_eliminations_are_counted() {
        // x < y, y < 3 ⊢ x < 3 is propositionally consistent when the
        // negated goal is asserted, so refuting it takes a theory check
        // with Fourier–Motzkin work.
        let mut p = Problem::new();
        p.hypothesis(x().lt(&y()));
        p.hypothesis(y().lt(&Term::int(3)));
        p.goal(x().lt(&Term::int(3)));
        let outcome = p.prove();
        assert!(outcome.is_proved());
        let stats = outcome.stats();
        assert!(stats.theory_checks >= 1);
        assert!(stats.fm_eliminations >= 1);
    }

    #[test]
    fn instantiations_are_attributed_to_triggers() {
        // The sign-lemma proof instantiates exactly one trigger: a * b.
        let a = Term::var("a", Sort::Int);
        let b = Term::var("b", Sort::Int);
        let lemma = Formula::forall(
            vec![
                (stq_util::Symbol::intern("a"), Sort::Int),
                (stq_util::Symbol::intern("b"), Sort::Int),
            ],
            vec![vec![a.mul(&b)]],
            Formula::and(vec![a.gt0(), b.gt0()]).implies(a.mul(&b).gt0()),
        );
        let mut p = Problem::new();
        p.axiom(lemma);
        p.hypothesis(x().gt0());
        p.hypothesis(y().gt0());
        p.goal(x().mul(&y()).gt0());
        let outcome = p.prove();
        assert!(outcome.is_proved());
        let stats = outcome.stats();
        assert!(stats.instantiations >= 1);
        assert!(stats.ematch_candidates >= 1);
        let per_trigger: u64 = stats.instantiations_by_trigger.values().sum();
        assert_eq!(per_trigger, stats.instantiations as u64);
        assert!(stats
            .instantiations_by_trigger
            .keys()
            .any(|k| k.contains('*')));
    }

    #[test]
    fn proved_wall_time_is_stamped() {
        let mut p = Problem::new();
        p.goal(Formula::True);
        // Duration is monotone but can legitimately measure zero on a
        // trivial goal; the stamp itself must exist for every outcome.
        let _ = p.prove().stats().wall;
    }

    #[test]
    fn zero_decision_budget_reports_resource_out() {
        let p = Formula::pred("p", vec![]);
        let q = Formula::pred("q", vec![]);
        let r = Formula::pred("r", vec![]);
        let mut problem = Problem::new();
        problem.config.max_decisions = 0;
        problem.hypothesis(Formula::or(vec![p, q]));
        problem.goal(r);
        let outcome = problem.prove();
        assert_eq!(outcome.resource(), Some(Resource::Decisions));
    }

    #[test]
    fn pre_cancelled_token_reports_cancelled_not_time() {
        let mut p = Problem::new();
        p.goal(Term::int(1).eq(&Term::int(1)));
        p.cancel = CancelToken::new();
        p.cancel.cancel();
        let outcome = p.prove();
        assert_eq!(outcome.resource(), Some(Resource::Cancelled));
        // Cancellation is not a crash and not a conclusion.
        assert!(!outcome.is_proved() && !outcome.is_refuted() && !outcome.is_crashed());
    }

    #[test]
    fn expired_token_deadline_reports_time() {
        let mut p = Problem::new();
        p.hypothesis(x().lt(&y()));
        p.hypothesis(y().lt(&Term::int(3)));
        p.goal(x().lt(&Term::int(3)));
        p.cancel = CancelToken::deadline_in(std::time::Duration::ZERO);
        let outcome = p.prove();
        assert_eq!(outcome.resource(), Some(Resource::Time));
    }

    #[test]
    fn default_token_changes_nothing() {
        // The always-quiet token must not perturb outcomes: same proof,
        // same conclusion, with and without an explicit fresh token.
        let mut p = Problem::new();
        p.hypothesis(x().gt0());
        p.goal(x().gt0());
        assert!(p.prove().is_proved());
        p.cancel = CancelToken::new();
        assert!(p.prove().is_proved());
    }

    #[test]
    #[should_panic(expected = "no goal")]
    fn missing_goal_panics() {
        Problem::new().prove();
    }

    #[test]
    fn prove_isolated_contains_the_missing_goal_panic() {
        let outcome = Problem::new().prove_isolated();
        assert!(outcome.is_crashed());
        assert!(
            outcome.crash_message().unwrap().contains("no goal"),
            "{outcome:?}"
        );
        assert!(!outcome.is_proved() && !outcome.is_refuted() && !outcome.is_resource_out());
    }

    fn trivial_problem() -> Problem {
        let mut p = Problem::new();
        p.goal(Term::int(1).eq(&Term::int(1)));
        p
    }

    #[test]
    fn injected_panic_is_contained_and_scoped_to_its_entry() {
        fault::install(fault::FaultPlan::new().inject(1, FaultKind::Panic));
        let p = trivial_problem();
        assert!(p.prove_isolated().is_proved(), "entry 0: no fault");
        let crashed = p.prove_isolated();
        assert_eq!(
            crashed.crash_message(),
            Some("injected panic at solver entry 1")
        );
        assert!(p.prove_isolated().is_proved(), "entry 2: no fault");
        fault::clear();
    }

    #[test]
    fn injected_resource_out_names_the_injected_resource() {
        fault::install(fault::FaultPlan::new().inject(0, FaultKind::ResourceOut));
        let outcome = trivial_problem().prove();
        assert_eq!(outcome.resource(), Some(Resource::Injected));
        fault::clear();
    }

    #[test]
    fn injected_theory_error_crashes_from_inside_the_search() {
        fault::install(fault::FaultPlan::new().inject(0, FaultKind::TheoryError));
        // Transitivity is invisible to the propositional skeleton, so the
        // refutation search must reach a theory-consistency check.
        let mut p = Problem::new();
        p.hypothesis(x().lt(&y()));
        p.hypothesis(y().lt(&Term::int(3)));
        p.goal(x().lt(&Term::int(3)));
        let outcome = p.prove_isolated();
        fault::clear();
        assert!(outcome.is_crashed(), "{outcome:?}");
        assert!(
            outcome
                .crash_message()
                .unwrap()
                .contains("theory-solver failure"),
            "{outcome:?}"
        );
        // The same problem proves once the plan is gone.
        assert!(p.prove_isolated().is_proved());
    }

    // ---- shared theory / tuning / worker-reuse determinism ----

    fn sign_lemma() -> Formula {
        let a = Term::var("a", Sort::Int);
        let b = Term::var("b", Sort::Int);
        Formula::forall(
            vec![
                (stq_util::Symbol::intern("a"), Sort::Int),
                (stq_util::Symbol::intern("b"), Sort::Int),
            ],
            vec![vec![a.mul(&b)]],
            Formula::and(vec![a.gt0(), b.gt0()]).implies(a.mul(&b).gt0()),
        )
    }

    /// A mixed batch exercising instantiation, case splits, EUF, FM, and
    /// a refutation, all against one shared theory.
    fn theory_batch() -> (Arc<Theory>, Vec<Problem>) {
        let theory = Arc::new(Theory::new(vec![sign_lemma()]));
        let mut problems = Vec::new();
        let mut p = Problem::new();
        p.set_theory(Arc::clone(&theory));
        p.hypothesis(x().gt0());
        p.hypothesis(y().gt0());
        p.goal(x().mul(&y()).gt0());
        problems.push(p);
        let mut p = Problem::new();
        p.set_theory(Arc::clone(&theory));
        p.hypothesis(x().lt(&y()));
        p.hypothesis(y().lt(&Term::int(3)));
        p.goal(x().lt(&Term::int(3)));
        problems.push(p);
        let mut p = Problem::new();
        p.set_theory(Arc::clone(&theory));
        p.hypothesis(x().gt0());
        p.hypothesis(y().gt0());
        p.goal(x().sub(&y()).gt0()); // refuted
        problems.push(p);
        (theory, problems)
    }

    /// The seed counters that must be identical across tuning modes,
    /// workers, and job counts (everything except wall time and the
    /// mode-specific prep/interning telemetry).
    /// Zeroes the counters that legitimately differ between tuning
    /// modes, leaving the search-trace counters (decisions, conflicts,
    /// propagations, rounds, instantiations, theory checks, clauses)
    /// that every tuning must reproduce exactly. `merges` and
    /// `fm_eliminations` measure *how* a leaf verdict was computed — the
    /// template e-graph reaches the same verdicts with different union
    /// and elimination schedules — and the theory-prep/interning
    /// counters measure the preprocessing the tunings exist to vary.
    fn seed_counters(stats: &ProverStats) -> ProverStats {
        ProverStats {
            theory_preps: 0,
            theory_reuses: 0,
            interned_terms: 0,
            intern_hits: 0,
            merges: 0,
            fm_eliminations: 0,
            ..stats.without_wall()
        }
    }

    fn verdict(o: &Outcome) -> String {
        match o {
            Outcome::Proved { .. } => "proved".into(),
            Outcome::Refuted { model, .. } => format!("refuted:{model:?}"),
            Outcome::ResourceOut { resource, .. } => format!("out:{resource:?}"),
            Outcome::Crashed { message, .. } => format!("crashed:{message}"),
        }
    }

    #[test]
    fn theory_axioms_prove_like_inline_axioms() {
        let theory = Arc::new(Theory::new(vec![sign_lemma()]));
        let mut shared = Problem::new();
        shared.set_theory(theory);
        shared.hypothesis(x().gt0());
        shared.hypothesis(y().gt0());
        shared.goal(x().mul(&y()).gt0());
        let mut inline = Problem::new();
        inline.axiom(sign_lemma());
        inline.hypothesis(x().gt0());
        inline.hypothesis(y().gt0());
        inline.goal(x().mul(&y()).gt0());
        let a = shared.prove();
        let b = inline.prove();
        assert_eq!(verdict(&a), verdict(&b));
        assert_eq!(seed_counters(a.stats()), seed_counters(b.stats()));
        // The shared path reuses the prepared core; the inline path
        // preprocessed its axioms itself.
        assert_eq!(a.stats().theory_reuses, 1);
        assert_eq!(a.stats().theory_preps, 0);
        assert_eq!(b.stats().theory_preps, 1);
    }

    #[test]
    fn tuning_never_changes_verdicts_or_seed_counters() {
        let (_theory, problems) = theory_batch();
        let combos = [
            SolverTuning::default(),
            SolverTuning {
                share_theory: true,
                hash_cons: false,
            },
            SolverTuning {
                share_theory: false,
                hash_cons: true,
            },
            SolverTuning::legacy(),
        ];
        for template in &problems {
            let baseline = template.prove();
            for tuning in combos {
                let mut p = template.clone();
                p.tuning = tuning;
                let outcome = p.prove();
                assert_eq!(
                    verdict(&outcome),
                    verdict(&baseline),
                    "verdict drifted under {tuning:?}"
                );
                assert_eq!(
                    seed_counters(outcome.stats()),
                    seed_counters(baseline.stats()),
                    "work counters drifted under {tuning:?}"
                );
            }
        }
    }

    #[test]
    fn worker_reuse_matches_standalone_proving() {
        let (theory, problems) = theory_batch();
        let mut worker = SolverWorker::new(theory);
        for problem in &problems {
            let reused = worker.prove(problem);
            let standalone = problem.prove();
            assert_eq!(verdict(&reused), verdict(&standalone));
            assert_eq!(
                seed_counters(reused.stats()),
                seed_counters(standalone.stats())
            );
            assert_eq!(reused.stats().theory_reuses, 1);
            assert_eq!(reused.stats().theory_preps, 0);
        }
    }

    #[test]
    fn worker_falls_back_for_foreign_theories() {
        let (theory, _) = theory_batch();
        let mut worker = SolverWorker::new(theory);
        // A problem with a *different* theory instance must not reuse the
        // resident core.
        let other = Arc::new(Theory::new(vec![sign_lemma()]));
        let mut p = Problem::new();
        p.set_theory(other);
        p.hypothesis(x().gt0());
        p.goal(x().gt0());
        let outcome = worker.prove(&p);
        assert!(outcome.is_proved());
        // Falls back to the clone-the-prepared-core path.
        assert_eq!(outcome.stats().theory_reuses, 1);
    }

    #[test]
    fn worker_survives_and_heals_after_contained_panics() {
        let (theory, problems) = theory_batch();
        let mut worker = SolverWorker::new(Arc::clone(&theory));
        let expected: Vec<String> = problems.iter().map(|p| verdict(&p.prove())).collect();

        // Crash the worker mid-batch via an injected panic, then keep
        // proving: the start-of-attempt rollback must heal the core.
        fault::install(fault::FaultPlan::new().inject(1, FaultKind::Panic));
        let first = worker.prove_isolated(&problems[0]);
        let crashed = worker.prove_isolated(&problems[1]);
        let healed = worker.prove_isolated(&problems[2]);
        fault::clear();
        assert_eq!(verdict(&first), expected[0]);
        assert!(crashed.is_crashed());
        assert_eq!(verdict(&healed), expected[2]);

        // And a full clean pass afterwards still matches.
        for (problem, want) in problems.iter().zip(&expected) {
            assert_eq!(verdict(&worker.prove(problem)), *want);
        }
    }

    #[test]
    fn interning_telemetry_is_populated_in_both_modes() {
        let (_theory, problems) = theory_batch();
        let mut optimized = problems[0].clone();
        optimized.tuning = SolverTuning::default();
        let mut legacy = problems[0].clone();
        legacy.tuning = SolverTuning::legacy();
        let opt_stats = optimized.prove().stats().clone();
        let leg_stats = legacy.prove().stats().clone();
        assert!(opt_stats.interned_terms > 0);
        assert!(leg_stats.interned_terms > 0);
        // Hash-consing makes interning per-attempt instead of per-leaf:
        // far fewer nodes are ever created.
        assert!(
            opt_stats.interned_terms < leg_stats.interned_terms,
            "expected arena sharing to reduce interning: {} vs {}",
            opt_stats.interned_terms,
            leg_stats.interned_terms
        );
    }

    #[test]
    fn theory_fingerprint_matches_inline_axioms() {
        use crate::stats::RetryPolicy;
        let theory = Arc::new(Theory::new(vec![sign_lemma()]));
        let mut shared = Problem::new();
        shared.set_theory(theory);
        shared.hypothesis(x().gt0());
        shared.goal(x().mul(&y()).gt0());
        let mut inline = Problem::new();
        inline.axiom(sign_lemma());
        inline.hypothesis(x().gt0());
        inline.goal(x().mul(&y()).gt0());
        assert_eq!(
            shared.fingerprint(RetryPolicy::none()),
            inline.fingerprint(RetryPolicy::none()),
            "splitting axioms into a shared theory must not change cache keys"
        );
        // Tuning is excluded from the key.
        let mut tuned = shared.clone();
        tuned.tuning = SolverTuning::legacy();
        assert_eq!(
            shared.fingerprint(RetryPolicy::none()),
            tuned.fingerprint(RetryPolicy::none())
        );
    }
}
