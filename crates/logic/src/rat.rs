//! Exact rational arithmetic for the linear-arithmetic decision procedure.
//!
//! Fourier–Motzkin elimination multiplies coefficients together, so the
//! numbers can grow; `i128` components give enormous headroom for the small
//! constraint systems that qualifier proof obligations produce.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number, always kept in lowest terms with a positive
/// denominator.
///
/// # Examples
///
/// ```
/// use stq_logic::rat::Rat;
///
/// let half = Rat::new(1, 2);
/// let third = Rat::new(1, 3);
/// assert_eq!(half + third, Rat::new(5, 6));
/// assert!(half > third);
/// assert_eq!(Rat::new(2, 4), half);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or on `i128` overflow during normalization.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = num.checked_neg().expect("rational overflow");
            den = den.checked_neg().expect("rational overflow");
        }
        Rat { num, den }
    }

    /// An integer as a rational.
    pub fn int(v: i128) -> Rat {
        Rat { num: v, den: 1 }
    }

    /// The numerator (sign-carrying).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// True if the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// True if the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// True if the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// True if the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    #[must_use]
    pub fn recip(self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// The floor of the rational, as an integer.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// The ceiling of the rational, as an integer.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        let num = self
            .num
            .checked_mul(rhs.den)
            .and_then(|a| rhs.num.checked_mul(self.den).and_then(|b| a.checked_add(b)))
            .expect("rational overflow in add");
        let den = self
            .den
            .checked_mul(rhs.den)
            .expect("rational overflow in add");
        Rat::new(num, den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        let num = self
            .num
            .checked_mul(rhs.num)
            .expect("rational overflow in mul");
        let den = self
            .den
            .checked_mul(rhs.den)
            .expect("rational overflow in mul");
        Rat::new(num, den)
    }
}

impl Div for Rat {
    type Output = Rat;
    // Division by multiplication with the reciprocal is the intended
    // exact-rational algorithm.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: self.num.checked_neg().expect("rational overflow in neg"),
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational overflow in cmp");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational overflow in cmp");
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::ZERO
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::int(i128::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-3, -6), Rat::new(1, 2));
        assert_eq!(Rat::new(3, -6), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::int(2));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 2) < Rat::new(2, 3));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::int(5) > Rat::new(9, 2));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(4).floor(), 4);
        assert_eq!(Rat::int(4).ceil(), 4);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn zero_reciprocal_panics() {
        let _ = Rat::ZERO.recip();
    }

    #[test]
    fn predicates() {
        assert!(Rat::ZERO.is_zero());
        assert!(Rat::ONE.is_positive());
        assert!((-Rat::ONE).is_negative());
        assert!(Rat::int(3).is_integer());
        assert!(!Rat::new(1, 2).is_integer());
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 4).to_string(), "3/4");
        assert_eq!(Rat::int(-2).to_string(), "-2");
    }
}
