//! Deterministic fault injection for robustness testing.
//!
//! The checking pipeline promises to *degrade* under prover faults — a
//! panicking obligation becomes [`crate::solver::Outcome::Crashed`], an
//! exhausted budget becomes `ResourceOut` and may be retried — but those
//! paths only stay honest if tests can force them on demand. A
//! [`FaultPlan`] schedules synthetic faults at specific *solver entries*
//! (the Nth call to [`crate::solver::Problem::prove`] under the current
//! installation), so a test can crash exactly obligation `k` of a batch
//! and assert that the other `n - 1` still get verdicts.
//!
//! Plans are installed per thread, so injection cannot leak across
//! `cargo test` threads — but a single *installation* may be shared with
//! worker threads: [`handle`] captures the installing thread's plan
//! together with its entry counter (an atomic), and [`adopt`] attaches
//! that handle to another thread. Entry numbering is then **global
//! across the sharing threads** — each solver entry claims the next
//! index with an atomic fetch-add — so under the parallel proving pool
//! `--fault-panic-at k` still fires at exactly one solver entry, no
//! matter which worker reaches it. (Which obligation draws index `k` is
//! scheduling-dependent; that exactly one does is not.)
//!
//! ```
//! use stq_logic::fault::{self, FaultKind, FaultPlan};
//! use stq_logic::solver::{Outcome, Problem};
//! use stq_logic::term::Term;
//!
//! fault::install(FaultPlan::new().inject(0, FaultKind::Panic));
//! let mut p = Problem::new();
//! p.goal(Term::int(1).eq(&Term::int(1)));
//! let outcome = p.prove_isolated(); // entry 0: the injected panic fires
//! assert!(matches!(outcome, Outcome::Crashed { .. }));
//! let outcome = p.prove_isolated(); // entry 1: no fault scheduled
//! assert!(outcome.is_proved());
//! fault::clear();
//! ```

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The kind of synthetic fault to inject at a solver entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic immediately on entry, before any search runs. Exercises the
    /// [`crate::solver::Problem::prove_isolated`] containment path.
    Panic,
    /// Return [`crate::solver::Outcome::ResourceOut`] with
    /// [`crate::stats::Resource::Injected`] immediately, as if a budget
    /// limit had tripped. Exercises the retry-escalation ladder.
    ResourceOut,
    /// Panic from *inside* the theory solver (the Nelson–Oppen
    /// consistency check), several frames deep in the DPLL search.
    /// Exercises containment of crashes in the middle of the stack.
    TheoryError,
}

/// A deterministic schedule of synthetic faults, keyed by solver entry
/// index (0-based count of [`crate::solver::Problem::prove`] calls under
/// the current installation, shared across threads that [`adopt`]ed it).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<u64, FaultKind>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `kind` at solver entry `at` (chainable).
    #[must_use]
    pub fn inject(mut self, at: u64, kind: FaultKind) -> FaultPlan {
        self.faults.insert(at, kind);
        self
    }

    /// A pseudo-random plan: `count` faults scattered over the first
    /// `span` solver entries, fully determined by `seed` (splitmix64, so
    /// the same seed reproduces the same schedule on every platform).
    pub fn seeded(seed: u64, count: usize, span: u64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let mut s = seed;
        let span = span.max(1);
        for _ in 0..count {
            s = splitmix64(s);
            let at = s % span;
            s = splitmix64(s);
            let kind = match s % 3 {
                0 => FaultKind::Panic,
                1 => FaultKind::ResourceOut,
                _ => FaultKind::TheoryError,
            };
            plan.faults.insert(at, kind);
        }
        plan
    }

    /// True if no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The fault scheduled at entry `at`, if any.
    pub fn fault_at(&self, at: u64) -> Option<FaultKind> {
        self.faults.get(&at).copied()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One installation of a [`FaultPlan`]: the plan plus its entry counter.
/// Shared (via [`Handle`]) by every thread participating in the same
/// checking run, so entry indices are allocated once, globally.
#[derive(Debug)]
struct Installation {
    plan: FaultPlan,
    entries: AtomicU64,
}

/// A cloneable reference to the current thread's fault installation,
/// for propagation onto worker threads via [`adopt`].
#[derive(Clone, Debug)]
pub struct Handle(Arc<Installation>);

thread_local! {
    /// The installation this thread participates in, if any.
    static INSTALLED: RefCell<Option<Arc<Installation>>> = const { RefCell::new(None) };
    /// Entry counting when no plan is installed (kept thread-local and
    /// cheap: it only feeds [`entries`] and panic messages).
    static FALLBACK: Cell<u64> = const { Cell::new(0) };
}

/// Installs `plan` on the current thread and resets the entry counter, so
/// entry indices are relative to the install point.
pub fn install(plan: FaultPlan) {
    INSTALLED.with(|p| {
        *p.borrow_mut() = Some(Arc::new(Installation {
            plan,
            entries: AtomicU64::new(0),
        }));
    });
    FALLBACK.with(|e| e.set(0));
}

/// Removes any installed (or adopted) plan and resets the entry counter.
pub fn clear() {
    INSTALLED.with(|p| *p.borrow_mut() = None);
    FALLBACK.with(|e| e.set(0));
}

/// A shareable handle to this thread's current installation (`None` when
/// no plan is installed). Pool drivers capture this before spawning
/// workers and pass it to [`adopt`] in each worker's init hook.
pub fn handle() -> Option<Handle> {
    INSTALLED.with(|p| p.borrow().clone().map(Handle))
}

/// Attaches `handle`'s installation — plan *and* shared entry counter —
/// to the current thread. `None` detaches (like [`clear`], but without
/// touching the originating thread). Worker threads adopt the driving
/// thread's handle so a batch has one global entry numbering.
pub fn adopt(handle: Option<Handle>) {
    INSTALLED.with(|p| *p.borrow_mut() = handle.map(|h| h.0));
}

/// Number of solver entries observed under this thread's installation
/// since [`install`] (summed over every thread sharing it), or on this
/// thread since the last [`clear`]/thread start when nothing is
/// installed.
pub fn entries() -> u64 {
    INSTALLED.with(|p| match p.borrow().as_ref() {
        Some(inst) => inst.entries.load(Ordering::Relaxed),
        None => FALLBACK.with(Cell::get),
    })
}

/// Records one solver entry and returns its index plus the fault (if any)
/// the installed plan schedules for it. Called by the solver; cheap when
/// no plan is installed. With a shared installation the index is claimed
/// atomically, so every entry across all participating threads gets a
/// distinct one.
pub(crate) fn next_entry() -> (u64, Option<FaultKind>) {
    INSTALLED.with(|p| match p.borrow().as_ref() {
        Some(inst) => {
            let entry = inst.entries.fetch_add(1, Ordering::Relaxed);
            (entry, inst.plan.fault_at(entry))
        }
        None => {
            let entry = FALLBACK.with(|e| {
                let n = e.get();
                e.set(n + 1);
                n
            });
            (entry, None)
        }
    })
}

// ---------------------------------------------------------------------------
// I/O fault injection
// ---------------------------------------------------------------------------

/// The kind of synthetic I/O fault to inject at a persistence write.
///
/// These model the two failure shapes a crash-safe cache must survive:
/// an `ENOSPC`-style hard failure and a torn write (power loss or kill
/// mid-`write(2)`). The proof cache consults [`next_io_write`] before
/// each physical write operation and simulates the scheduled fault; the
/// corruption-recovery tests then assert that neither shape ever poisons
/// a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The write fails (like a full disk) with **no** bytes reaching the
    /// file.
    FullDisk,
    /// Only a prefix of the bytes reaches the file before the write
    /// fails — the on-disk tail is torn mid-entry.
    TornWrite,
}

/// A deterministic schedule of synthetic I/O faults, keyed by write
/// operation index (0-based count of physical cache writes under the
/// current installation on this thread).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    faults: BTreeMap<u64, IoFaultKind>,
}

impl IoFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> IoFaultPlan {
        IoFaultPlan::default()
    }

    /// Schedules `kind` at write operation `at` (chainable).
    #[must_use]
    pub fn inject(mut self, at: u64, kind: IoFaultKind) -> IoFaultPlan {
        self.faults.insert(at, kind);
        self
    }

    /// True if no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault scheduled at write operation `at`, if any.
    pub fn fault_at(&self, at: u64) -> Option<IoFaultKind> {
        self.faults.get(&at).copied()
    }
}

thread_local! {
    /// The I/O fault plan installed on this thread, with its write
    /// counter. Unlike solver fault plans this is strictly per-thread:
    /// cache persistence runs on the driving thread, never on pool
    /// workers.
    static IO_INSTALLED: RefCell<Option<(IoFaultPlan, u64)>> = const { RefCell::new(None) };
}

/// Installs `plan` on the current thread and resets its write counter.
pub fn install_io(plan: IoFaultPlan) {
    IO_INSTALLED.with(|p| *p.borrow_mut() = Some((plan, 0)));
}

/// Removes any installed I/O fault plan from the current thread.
pub fn clear_io() {
    IO_INSTALLED.with(|p| *p.borrow_mut() = None);
}

/// Records one physical cache-write operation and returns the fault (if
/// any) the installed plan schedules for it. Free when no plan is
/// installed.
pub fn next_io_write() -> Option<IoFaultKind> {
    IO_INSTALLED.with(|p| {
        let mut slot = p.borrow_mut();
        let (plan, counter) = slot.as_mut()?;
        let op = *counter;
        *counter += 1;
        plan.fault_at(op)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.fault_at(0), None);
    }

    #[test]
    fn inject_schedules_at_the_given_entry() {
        let plan = FaultPlan::new()
            .inject(3, FaultKind::Panic)
            .inject(5, FaultKind::ResourceOut);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.fault_at(3), Some(FaultKind::Panic));
        assert_eq!(plan.fault_at(5), Some(FaultKind::ResourceOut));
        assert_eq!(plan.fault_at(4), None);
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 10, 100);
        let b = FaultPlan::seeded(42, 10, 100);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // A different seed gives a different schedule (with overwhelming
        // probability for this seed pair; pinned here, so deterministic).
        assert_ne!(a, FaultPlan::seeded(43, 10, 100));
    }

    #[test]
    fn entry_counter_tracks_installs() {
        install(FaultPlan::new());
        assert_eq!(entries(), 0);
        let (e0, k0) = next_entry();
        assert_eq!((e0, k0), (0, None));
        let (e1, _) = next_entry();
        assert_eq!(e1, 1);
        assert_eq!(entries(), 2);
        install(FaultPlan::new().inject(0, FaultKind::Panic));
        assert_eq!(entries(), 0, "install resets the counter");
        let (_, kind) = next_entry();
        assert_eq!(kind, Some(FaultKind::Panic));
        clear();
        assert_eq!(entries(), 0);
        assert_eq!(next_entry().1, None);
        clear();
    }

    #[test]
    fn adopted_threads_share_one_entry_numbering() {
        install(FaultPlan::new().inject(5, FaultKind::Panic));
        let h = handle();
        assert!(h.is_some());
        let hits: Vec<u64> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let h = h.clone();
                    s.spawn(move || {
                        adopt(h);
                        let mut hit = 0;
                        for _ in 0..4 {
                            let (_, kind) = next_entry();
                            if kind.is_some() {
                                hit += 1;
                            }
                        }
                        hit
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().expect("worker"))
                .collect()
        });
        // 16 entries drawn across 4 threads: indices 0..16 each claimed
        // exactly once, so the fault at entry 5 fired exactly once.
        assert_eq!(hits.iter().sum::<u64>(), 1);
        assert_eq!(entries(), 16, "counter is shared, not per-thread");
        clear();
    }

    #[test]
    fn io_plan_fires_at_its_write_index_then_goes_quiet() {
        clear_io();
        assert_eq!(next_io_write(), None, "no plan installed");
        install_io(IoFaultPlan::new().inject(1, IoFaultKind::TornWrite));
        assert_eq!(next_io_write(), None, "write 0: no fault");
        assert_eq!(next_io_write(), Some(IoFaultKind::TornWrite));
        assert_eq!(next_io_write(), None, "write 2: no fault");
        clear_io();
        assert_eq!(next_io_write(), None);
    }

    #[test]
    fn io_plans_are_thread_local() {
        install_io(IoFaultPlan::new().inject(0, IoFaultKind::FullDisk));
        let other = std::thread::scope(|s| s.spawn(next_io_write).join().expect("worker"));
        assert_eq!(other, None, "sibling thread sees no plan");
        assert_eq!(next_io_write(), Some(IoFaultKind::FullDisk));
        clear_io();
    }

    #[test]
    fn handle_is_none_without_an_installation() {
        clear();
        assert!(handle().is_none());
        // Adopting None is a per-thread clear.
        install(FaultPlan::new().inject(0, FaultKind::Panic));
        adopt(None);
        assert_eq!(next_entry().1, None);
        clear();
    }
}
