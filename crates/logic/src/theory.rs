//! Shared preprocessed background axiomatization.
//!
//! The soundness checker discharges dozens of obligations against the
//! *same* ~20 background axioms. The seed prover re-ran NNF,
//! clausification, quantifier interning, and trigger inference on all of
//! them for every single obligation — the dominant cost of a cold
//! attempt. A [`Theory`] does that preprocessing exactly once and holds
//! the result as a reusable [`SolveCore`]: per-obligation solving either
//! clones the prepared core (cheap — table copies, no re-parsing) or,
//! with a [`crate::solver::SolverWorker`], reuses one long-lived core
//! across obligations via watermark-based scoped resets.

use crate::arena::{TermArena, TermId};
use crate::pre::{Atom, Clause, Clausifier, ClausifierMark, Lit};
use crate::term::{Formula, Term};
use std::collections::HashSet;

/// A background axiom set preprocessed once for reuse across many
/// proving attempts.
///
/// Construction runs the full clausification front end (NNF,
/// skolemization, trigger inference, quantifier-proxy interning) and
/// hash-conses every ground atom side, then freezes a watermark. Cores
/// handed out by [`prepared_core`](Theory::prepared_core) start at that
/// watermark; per-obligation additions land above it and can be rolled
/// back with [`SolveCore::reset`].
#[derive(Clone, Debug)]
pub struct Theory {
    axioms: Vec<Formula>,
    prepared: SolveCore,
}

impl Theory {
    /// Preprocesses an axiom set into a reusable core.
    pub fn new(axioms: Vec<Formula>) -> Theory {
        let mut core = SolveCore::empty();
        for ax in &axioms {
            core.assert_formula(&ground_free_vars(ax));
        }
        core.extend_atom_tids();
        core.set_mark();
        Theory { axioms, prepared: core }
    }

    /// The axioms this theory was built from, in assertion order.
    pub fn axioms(&self) -> &[Formula] {
        &self.axioms
    }

    /// A fresh solving core with the background theory already asserted.
    pub(crate) fn prepared_core(&self) -> SolveCore {
        self.prepared.clone()
    }
}

/// Ground atom sides hash-consed into a core's arena, aligned with the
/// clausifier's atom table. `None` marks a non-ground side (or a
/// quantifier proxy), which the solver skips exactly as the seed did.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CachedAtom {
    pub fst: Option<TermId>,
    pub snd: Option<TermId>,
}

/// Watermark capturing a core's shared-theory prefix.
#[derive(Clone, Copy, Debug, Default)]
struct CoreMark {
    cl: Option<ClausifierMark>,
    nclauses: usize,
    arena_len: usize,
    natoms: usize,
}

/// The mutable state of one proving attempt: clausifier tables, the
/// clause store with its dedup set, the hash-consing term arena, and the
/// per-atom interned-term cache.
#[derive(Clone, Debug)]
pub(crate) struct SolveCore {
    pub cl: Clausifier,
    pub clauses: Vec<Clause>,
    pub seen: HashSet<Vec<Lit>>,
    pub arena: TermArena,
    /// Cached ground term ids per atom id (kept in lockstep with
    /// `cl.atoms()` by [`extend_atom_tids`](Self::extend_atom_tids)).
    pub atom_tids: Vec<CachedAtom>,
    /// Arena id of the literal `0` (pinned at construction).
    pub tid_zero: TermId,
    /// Arena id of the literal `1` (pinned at construction).
    pub tid_one: TermId,
    mark: CoreMark,
}

impl SolveCore {
    /// An empty core with the `0`/`1` literals pre-interned (they anchor
    /// predicate truth values in the EUF leaf check).
    pub fn empty() -> SolveCore {
        let mut arena = TermArena::new();
        let tid_zero = arena.intern(&Term::int(0));
        let tid_one = arena.intern(&Term::int(1));
        SolveCore {
            cl: Clausifier::new(),
            clauses: Vec::new(),
            seen: HashSet::new(),
            arena,
            atom_tids: Vec::new(),
            tid_zero,
            tid_one,
            mark: CoreMark::default(),
        }
    }

    /// Clausifies `f` and adds the result, returning how many clauses
    /// were new.
    pub fn assert_formula(&mut self, f: &Formula) -> usize {
        let cs = self.cl.assert_formula(f);
        self.add_clauses(cs)
    }

    /// Normalizes, deduplicates, and stores clauses, returning how many
    /// were new. Tautologies (both polarities of one atom) are dropped.
    pub fn add_clauses(&mut self, cs: Vec<Clause>) -> usize {
        let mut added = 0;
        for c in cs {
            let mut key = c;
            key.sort_by_key(|l| (l.atom, l.pos));
            key.dedup();
            let tautology = key
                .windows(2)
                .any(|w| w[0].atom == w[1].atom && w[0].pos != w[1].pos);
            if tautology {
                continue;
            }
            if self.seen.insert(key.clone()) {
                self.clauses.push(key);
                added += 1;
            }
        }
        added
    }

    /// Hash-conses the ground sides of every atom interned since the
    /// last call, keeping `atom_tids` aligned with the atom table.
    pub fn extend_atom_tids(&mut self) {
        let SolveCore {
            cl,
            arena,
            atom_tids,
            ..
        } = self;
        for i in atom_tids.len()..cl.atoms().len() {
            atom_tids.push(cache_atom(arena, cl.atom(i)));
        }
    }

    /// Freezes the current state as the shared-theory watermark that
    /// [`reset`](Self::reset) rolls back to.
    pub fn set_mark(&mut self) {
        self.mark = CoreMark {
            cl: Some(self.cl.mark()),
            nclauses: self.clauses.len(),
            arena_len: self.arena.len(),
            natoms: self.atom_tids.len(),
        };
    }

    /// Rolls every table back to the watermark — the push/pop-style
    /// scoped reset that lets one worker core serve many obligations.
    pub fn reset(&mut self) {
        if let Some(clmark) = &self.mark.cl {
            self.cl.truncate_to(clmark);
        }
        for c in self.clauses.drain(self.mark.nclauses..) {
            self.seen.remove(&c);
        }
        self.arena.truncate(self.mark.arena_len);
        self.atom_tids.truncate(self.mark.natoms);
    }
}

fn cache_atom(arena: &mut TermArena, atom: &Atom) -> CachedAtom {
    match atom {
        Atom::Eq(a, b) | Atom::Le(a, b) | Atom::Lt(a, b) => CachedAtom {
            fst: a.is_ground().then(|| arena.intern(a)),
            snd: b.is_ground().then(|| arena.intern(b)),
        },
        Atom::Pred(p, args) => {
            let fst = args.iter().all(Term::is_ground).then(|| {
                let ids: Vec<TermId> = args.iter().map(|a| arena.intern(a)).collect();
                arena.intern_app(*p, ids)
            });
            CachedAtom { fst, snd: None }
        }
        Atom::Quant(_) => CachedAtom {
            fst: None,
            snd: None,
        },
    }
}

/// Replaces free variables with nullary applications so formulas can be
/// treated as ground (proving a goal with free variables proves it for
/// arbitrary values).
pub(crate) fn ground_free_vars(f: &Formula) -> Formula {
    let mut fv = Vec::new();
    f.free_vars(&mut fv);
    if fv.is_empty() {
        return f.clone();
    }
    let map: Vec<(stq_util::Symbol, Term)> = fv
        .into_iter()
        .map(|(v, _)| (v, Term::App(v, Vec::new())))
        .collect();
    f.subst(&map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;
    use stq_util::Symbol;

    fn x() -> Term {
        Term::var("x", Sort::Int)
    }

    fn sample_axiom() -> Formula {
        Formula::forall(
            vec![(Symbol::intern("x"), Sort::Int)],
            vec![vec![Term::app("f", vec![x()])]],
            Formula::pred("p", vec![Term::app("f", vec![x()])]),
        )
    }

    #[test]
    fn theory_preprocesses_axioms_once() {
        let theory = Theory::new(vec![sample_axiom(), Term::cnst("a").gt0()]);
        assert_eq!(theory.axioms().len(), 2);
        let core = theory.prepared_core();
        assert_eq!(core.cl.quants.len(), 1);
        assert_eq!(core.clauses.len(), 2);
        // Atom cache is aligned with the atom table.
        assert_eq!(core.atom_tids.len(), core.cl.atoms().len());
    }

    #[test]
    fn reset_rolls_back_to_the_theory_watermark() {
        let theory = Theory::new(vec![sample_axiom()]);
        let mut core = theory.prepared_core();
        let base_clauses = core.clauses.len();
        let base_atoms = core.cl.atoms().len();
        let base_arena = core.arena.len();

        core.assert_formula(&ground_free_vars(&Term::cnst("b").gt0().negate()));
        core.extend_atom_tids();
        assert!(core.clauses.len() > base_clauses);
        assert!(core.arena.len() > base_arena);

        core.reset();
        assert_eq!(core.clauses.len(), base_clauses);
        assert_eq!(core.cl.atoms().len(), base_atoms);
        assert_eq!(core.arena.len(), base_arena);
        assert_eq!(core.atom_tids.len(), base_atoms);

        // The reset core behaves identically to a fresh clone.
        let fresh = theory.prepared_core();
        let n1 = core.assert_formula(&ground_free_vars(&Term::cnst("b").gt0().negate()));
        let mut fresh2 = fresh;
        let n2 = fresh2.assert_formula(&ground_free_vars(&Term::cnst("b").gt0().negate()));
        assert_eq!(n1, n2);
        assert_eq!(format!("{:?}", core.clauses), format!("{:?}", fresh2.clauses));
    }

    #[test]
    fn zero_and_one_are_pinned() {
        let core = SolveCore::empty();
        assert_eq!(core.arena.term(core.tid_zero), &Term::int(0));
        assert_eq!(core.arena.term(core.tid_one), &Term::int(1));
    }

    #[test]
    fn duplicate_clauses_are_not_double_counted() {
        let mut core = SolveCore::empty();
        let n1 = core.assert_formula(&Term::cnst("a").gt0());
        let n2 = core.assert_formula(&Term::cnst("a").gt0());
        assert_eq!(n1, 1);
        assert_eq!(n2, 0);
        assert_eq!(core.clauses.len(), 1);
    }
}
