//! Formula preprocessing: negation normal form, skolemization, clausal
//! form with quantifier proxies, and trigger inference.
//!
//! The pipeline mirrors Simplify's front end:
//!
//! 1. **NNF + skolemization** — negations are pushed to the atoms;
//!    existentials (including negated universals) are replaced by skolem
//!    functions of the enclosing universal variables.
//! 2. **Clausification** — the quantifier-free structure is distributed
//!    into conjunctive normal form. Remaining (positive) universal
//!    subformulas become opaque *quantifier proxy atoms*; when the search
//!    asserts such an atom true, the corresponding quantifier becomes
//!    available for E-matching instantiation.
//! 3. **Trigger inference** — a `Forall` without explicit triggers gets
//!    them inferred: the smallest set of uninterpreted application
//!    subterms covering all bound variables.

use crate::term::{Formula, Sort, Term, Trigger};
use std::collections::HashMap;
use stq_util::Symbol;

/// An atom after preprocessing.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Atom {
    /// Equality, with the operands stored in sorted order so `a = b` and
    /// `b = a` share an atom.
    Eq(Term, Term),
    /// `lhs ≤ rhs`.
    Le(Term, Term),
    /// `lhs < rhs`.
    Lt(Term, Term),
    /// Uninterpreted predicate application.
    Pred(Symbol, Vec<Term>),
    /// Proxy for a universally quantified subformula (index into
    /// [`Clausifier::quants`]).
    Quant(usize),
}

/// A literal: an atom with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Lit {
    /// Index into the clausifier's atom table.
    pub atom: usize,
    /// True for the positive occurrence.
    pub pos: bool,
}

impl Lit {
    /// The opposite-polarity literal.
    #[must_use]
    pub fn negated(self) -> Lit {
        Lit {
            atom: self.atom,
            pos: !self.pos,
        }
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A universally quantified formula awaiting instantiation.
#[derive(Clone, Debug)]
pub struct QuantClosure {
    /// Bound variables with their sorts.
    pub vars: Vec<(Symbol, Sort)>,
    /// Alternative triggers (each a multi-pattern).
    pub triggers: Vec<Trigger>,
    /// Body; NNF, skolem-free of existentials, may contain nested foralls.
    pub body: Formula,
}

/// Shared state for turning formulas into clauses.
///
/// `Clone` supports the shared-theory fast path: a fully preprocessed
/// background clausifier is cloned per worker instead of re-running NNF
/// and clausification on every obligation.
#[derive(Clone, Default, Debug)]
pub struct Clausifier {
    atoms: Vec<Atom>,
    atom_ids: HashMap<Atom, usize>,
    /// Quantifier proxy table.
    pub quants: Vec<QuantClosure>,
    quant_ids: HashMap<(Vec<(Symbol, Sort)>, Formula), usize>,
    /// Per-quantifier proxy atom id (the `Atom::Quant(q)` atom), filled
    /// in when the proxy is first clausified.
    quant_atoms: Vec<Option<usize>>,
    skolem_counter: usize,
}

/// A watermark into a [`Clausifier`], capturing the shared-theory prefix
/// so per-obligation additions can be rolled back with
/// [`Clausifier::truncate_to`].
#[derive(Clone, Copy, Debug)]
pub struct ClausifierMark {
    atoms: usize,
    quants: usize,
    skolems: usize,
}

impl Clausifier {
    /// Creates an empty clausifier.
    pub fn new() -> Clausifier {
        Clausifier::default()
    }

    /// The atom table built so far.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The atom behind an id.
    pub fn atom(&self, id: usize) -> &Atom {
        &self.atoms[id]
    }

    fn intern_atom(&mut self, a: Atom) -> usize {
        if let Some(&id) = self.atom_ids.get(&a) {
            return id;
        }
        let id = self.atoms.len();
        self.atoms.push(a.clone());
        self.atom_ids.insert(a, id);
        id
    }

    fn intern_quant(&mut self, q: QuantClosure) -> usize {
        let key = (q.vars.clone(), q.body.clone());
        if let Some(&id) = self.quant_ids.get(&key) {
            return id;
        }
        let id = self.quants.len();
        self.quants.push(q);
        self.quant_atoms.push(None);
        self.quant_ids.insert(key, id);
        id
    }

    /// The proxy atom id for quantifier `q`, if it has been clausified.
    pub(crate) fn quant_atom(&self, q: usize) -> Option<usize> {
        self.quant_atoms[q]
    }

    /// Captures the current table sizes so later additions can be undone.
    pub fn mark(&self) -> ClausifierMark {
        ClausifierMark {
            atoms: self.atoms.len(),
            quants: self.quants.len(),
            skolems: self.skolem_counter,
        }
    }

    /// Rolls the tables back to a previously captured [`mark`](Self::mark),
    /// dropping every atom, quantifier, and skolem allocated since. The
    /// scoped reset that returns a reused worker to its shared-theory
    /// watermark between obligations.
    pub fn truncate_to(&mut self, mark: &ClausifierMark) {
        for a in self.atoms.drain(mark.atoms..) {
            self.atom_ids.remove(&a);
        }
        for q in self.quants.drain(mark.quants..) {
            self.quant_ids.remove(&(q.vars, q.body));
        }
        self.quant_atoms.truncate(mark.quants);
        // Surviving proxies may point at dropped atoms if the proxy atom
        // was first clausified after the mark; forget those so they are
        // re-interned on the next clausification.
        for slot in &mut self.quant_atoms {
            if slot.is_some_and(|a| a >= mark.atoms) {
                *slot = None;
            }
        }
        self.skolem_counter = mark.skolems;
    }

    fn fresh_skolem(&mut self, univ: &[(Symbol, Sort)]) -> Term {
        let name = format!("sk!{}", self.skolem_counter);
        self.skolem_counter += 1;
        Term::App(
            Symbol::intern(&name),
            univ.iter().map(|&(v, s)| Term::Var(v, s)).collect(),
        )
    }

    /// Converts a formula to NNF, replacing existentials with skolem terms.
    ///
    /// `univ` is the stack of enclosing universal variables (skolem
    /// functions depend on them); `positive` is the current polarity.
    pub fn nnf(&mut self, f: &Formula, positive: bool, univ: &mut Vec<(Symbol, Sort)>) -> Formula {
        match (f, positive) {
            (Formula::True, true) | (Formula::False, false) => Formula::True,
            (Formula::True, false) | (Formula::False, true) => Formula::False,
            (Formula::Not(g), _) => self.nnf(g, !positive, univ),
            (Formula::And(gs), true) | (Formula::Or(gs), false) => {
                Formula::and(gs.iter().map(|g| self.nnf(g, positive, univ)).collect())
            }
            (Formula::And(gs), false) | (Formula::Or(gs), true) => {
                Formula::or(gs.iter().map(|g| self.nnf(g, positive, univ)).collect())
            }
            (Formula::Pred(..) | Formula::Eq(..) | Formula::Le(..) | Formula::Lt(..), true) => {
                f.clone()
            }
            (Formula::Pred(..) | Formula::Eq(..) | Formula::Le(..) | Formula::Lt(..), false) => {
                f.clone().negate()
            }
            (Formula::Forall(vars, triggers, body), true) => {
                let n = univ.len();
                univ.extend(vars.iter().copied());
                let body = self.nnf(body, true, univ);
                univ.truncate(n);
                Formula::Forall(vars.clone(), triggers.clone(), Box::new(body))
            }
            (Formula::Exists(vars, body), false) => {
                // ¬∃x.φ ≡ ∀x.¬φ
                let n = univ.len();
                univ.extend(vars.iter().copied());
                let body = self.nnf(body, false, univ);
                univ.truncate(n);
                Formula::Forall(vars.clone(), Vec::new(), Box::new(body))
            }
            (Formula::Exists(vars, body), true) | (Formula::Forall(vars, _, body), false) => {
                // ∃ in positive position (or negated ∀): skolemize.
                let map: Vec<(Symbol, Term)> = vars
                    .iter()
                    .map(|&(v, _)| (v, self.fresh_skolem(univ)))
                    .collect();
                let body = body.subst(&map);
                self.nnf(&body, positive, univ)
            }
        }
    }

    /// Clausifies an NNF formula (no `Not` above atoms, no existentials)
    /// by distribution. Positive `Forall` subformulas become quantifier
    /// proxy atoms asserted in a unit clause (at top level) or embedded in
    /// the clause structure.
    pub fn clausify(&mut self, f: &Formula) -> Vec<Clause> {
        match f {
            Formula::True => Vec::new(),
            Formula::False => vec![Vec::new()],
            Formula::And(gs) => gs.iter().flat_map(|g| self.clausify(g)).collect(),
            Formula::Or(gs) => {
                // Distribute: CNF(g1 ∨ g2) = { c1 ∪ c2 | ci ∈ CNF(gi) }.
                let mut acc: Vec<Clause> = vec![Vec::new()];
                for g in gs {
                    let cs = self.clausify(g);
                    let mut next = Vec::new();
                    for base in &acc {
                        for c in &cs {
                            let mut merged = base.clone();
                            merged.extend_from_slice(c);
                            next.push(merged);
                        }
                    }
                    acc = next;
                }
                acc
            }
            Formula::Not(inner) => {
                let lit = self.literal_of(inner, false);
                vec![vec![lit]]
            }
            Formula::Pred(..) | Formula::Eq(..) | Formula::Le(..) | Formula::Lt(..) => {
                vec![vec![self.literal_of(f, true)]]
            }
            Formula::Forall(vars, triggers, body) => {
                let triggers = if triggers.is_empty() {
                    infer_triggers(vars, body)
                } else {
                    triggers.clone()
                };
                let q = self.intern_quant(QuantClosure {
                    vars: vars.clone(),
                    triggers,
                    body: (**body).clone(),
                });
                let atom = self.intern_atom(Atom::Quant(q));
                self.quant_atoms[q] = Some(atom);
                vec![vec![Lit { atom, pos: true }]]
            }
            Formula::Exists(..) => {
                unreachable!("existentials are removed by nnf before clausification")
            }
        }
    }

    fn literal_of(&mut self, f: &Formula, pos: bool) -> Lit {
        let atom = match f {
            Formula::Pred(p, args) => Atom::Pred(*p, args.clone()),
            Formula::Eq(a, b) => {
                if a <= b {
                    Atom::Eq(a.clone(), b.clone())
                } else {
                    Atom::Eq(b.clone(), a.clone())
                }
            }
            Formula::Le(a, b) => Atom::Le(a.clone(), b.clone()),
            Formula::Lt(a, b) => Atom::Lt(a.clone(), b.clone()),
            other => unreachable!("not an atom in NNF: {other}"),
        };
        let atom = self.intern_atom(atom);
        Lit { atom, pos }
    }

    /// Full pipeline: NNF, skolemize, clausify.
    pub fn assert_formula(&mut self, f: &Formula) -> Vec<Clause> {
        let nnf = self.nnf(f, true, &mut Vec::new());
        self.clausify(&nnf)
    }
}

/// Symbols interpreted by the arithmetic solver; never useful as triggers.
pub fn is_interpreted(sym: Symbol) -> bool {
    matches!(sym.as_str(), "+" | "-" | "*" | "neg")
}

/// Infers E-matching triggers for a quantifier body: every *maximal*
/// uninterpreted application subterm containing all bound variables
/// becomes a single-pattern trigger; if no single term covers all
/// variables, a greedy multi-pattern is assembled.
pub fn infer_triggers(vars: &[(Symbol, Sort)], body: &Formula) -> Vec<Trigger> {
    let mut candidates: Vec<Term> = Vec::new();
    collect_candidates(body, vars, &mut candidates);

    let var_names: Vec<Symbol> = vars.iter().map(|&(v, _)| v).collect();
    let covers = |t: &Term| -> Vec<Symbol> {
        let mut fv = Vec::new();
        t.free_vars(&mut fv);
        var_names
            .iter()
            .copied()
            .filter(|v| fv.iter().any(|(x, _)| x == v))
            .collect()
    };

    // Single-pattern triggers: candidates covering every variable.
    let full: Vec<Trigger> = candidates
        .iter()
        .filter(|t| covers(t).len() == var_names.len())
        .map(|t| vec![t.clone()])
        .collect();
    if !full.is_empty() {
        return full;
    }

    // Greedy multi-pattern: repeatedly take the candidate covering the
    // most still-uncovered variables.
    let mut uncovered: Vec<Symbol> = var_names.clone();
    let mut multi: Trigger = Vec::new();
    while !uncovered.is_empty() {
        let best = candidates
            .iter()
            .max_by_key(|t| covers(t).iter().filter(|v| uncovered.contains(v)).count());
        match best {
            Some(t) if covers(t).iter().any(|v| uncovered.contains(v)) => {
                uncovered.retain(|v| !covers(t).contains(v));
                multi.push(t.clone());
            }
            _ => return Vec::new(), // cannot cover: quantifier never fires
        }
    }
    vec![multi]
}

fn collect_candidates(f: &Formula, vars: &[(Symbol, Sort)], out: &mut Vec<Term>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Pred(_, args) => {
            for a in args {
                collect_term_candidates(a, vars, out);
            }
        }
        Formula::Eq(a, b) | Formula::Le(a, b) | Formula::Lt(a, b) => {
            collect_term_candidates(a, vars, out);
            collect_term_candidates(b, vars, out);
        }
        Formula::Not(g) => collect_candidates(g, vars, out),
        Formula::And(gs) | Formula::Or(gs) => {
            for g in gs {
                collect_candidates(g, vars, out);
            }
        }
        Formula::Forall(_, _, body) | Formula::Exists(_, body) => {
            collect_candidates(body, vars, out);
        }
    }
}

fn collect_term_candidates(t: &Term, vars: &[(Symbol, Sort)], out: &mut Vec<Term>) {
    match t {
        Term::Var(..) | Term::Int(_) => {}
        Term::App(f, args) => {
            let mut fv = Vec::new();
            t.free_vars(&mut fv);
            let mentions_bound = fv.iter().any(|(x, _)| vars.iter().any(|(v, _)| v == x));
            let is_skolem = f.as_str().starts_with("sk!");
            if mentions_bound && !is_interpreted(*f) && !is_skolem {
                if !out.contains(t) {
                    out.push(t.clone());
                }
            } else {
                // Interpreted head: look inside for uninterpreted pieces.
                for a in args {
                    collect_term_candidates(a, vars, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Term {
        Term::var("x", Sort::Int)
    }
    fn xsym() -> Symbol {
        Symbol::intern("x")
    }

    #[test]
    fn nnf_pushes_negation_over_and() {
        let mut cl = Clausifier::new();
        let f = Formula::and(vec![x().gt0(), x().lt0()]).negate();
        let nnf = cl.nnf(&f, true, &mut Vec::new());
        match nnf {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Formula::Not(_)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn negated_forall_skolemizes() {
        let mut cl = Clausifier::new();
        let f = Formula::forall(vec![(xsym(), Sort::Int)], vec![], x().gt0()).negate();
        let nnf = cl.nnf(&f, true, &mut Vec::new());
        // Should be ¬(sk!0 > 0) with a ground skolem constant.
        match &nnf {
            Formula::Not(inner) => match &**inner {
                Formula::Lt(zero, sk) => {
                    assert_eq!(*zero, Term::int(0));
                    assert!(sk.is_ground());
                }
                other => panic!("expected Lt, got {other:?}"),
            },
            other => panic!("expected Not, got {other:?}"),
        }
    }

    #[test]
    fn exists_under_forall_gets_skolem_function() {
        let mut cl = Clausifier::new();
        let y = Term::var("y", Sort::Int);
        let f = Formula::forall(
            vec![(xsym(), Sort::Int)],
            vec![],
            Formula::exists(vec![(Symbol::intern("y"), Sort::Int)], x().eq(&y)),
        );
        let nnf = cl.nnf(&f, true, &mut Vec::new());
        match nnf {
            Formula::Forall(_, _, body) => match &*body {
                Formula::Eq(_, b) | Formula::Eq(b, _) if matches!(b, Term::App(..)) => {
                    // skolem function applied to the universal variable
                    if let Term::App(f, args) = b {
                        assert!(f.as_str().starts_with("sk!"));
                        assert_eq!(args.len(), 1);
                    }
                }
                other => panic!("expected Eq with skolem app, got {other:?}"),
            },
            other => panic!("expected Forall, got {other:?}"),
        }
    }

    #[test]
    fn clausify_conjunction_of_disjunction() {
        let mut cl = Clausifier::new();
        let f = Formula::and(vec![
            Formula::or(vec![x().gt0(), x().lt0()]),
            x().eq(&Term::int(3)),
        ]);
        let clauses = cl.assert_formula(&f);
        assert_eq!(clauses.len(), 2);
        assert_eq!(clauses[0].len(), 2);
        assert_eq!(clauses[1].len(), 1);
    }

    #[test]
    fn distribution_over_or_of_ands() {
        let mut cl = Clausifier::new();
        // (a ∧ b) ∨ c  →  (a ∨ c) ∧ (b ∨ c)
        let a = Formula::pred("a", vec![]);
        let b = Formula::pred("b", vec![]);
        let c = Formula::pred("c", vec![]);
        let f = Formula::or(vec![Formula::and(vec![a, b]), c]);
        let clauses = cl.assert_formula(&f);
        assert_eq!(clauses.len(), 2);
        assert!(clauses.iter().all(|cl| cl.len() == 2));
    }

    #[test]
    fn equality_atoms_are_normalized() {
        let mut cl = Clausifier::new();
        let ab = Term::cnst("a").eq(&Term::cnst("b"));
        let ba = Term::cnst("b").eq(&Term::cnst("a"));
        let c1 = cl.assert_formula(&ab);
        let c2 = cl.assert_formula(&ba);
        assert_eq!(c1[0][0].atom, c2[0][0].atom);
    }

    #[test]
    fn forall_becomes_quant_proxy() {
        let mut cl = Clausifier::new();
        let f = Formula::forall(
            vec![(xsym(), Sort::Int)],
            vec![vec![Term::app("f", vec![x()])]],
            Formula::pred("p", vec![x()]),
        );
        let clauses = cl.assert_formula(&f);
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].len(), 1);
        assert!(matches!(cl.atom(clauses[0][0].atom), Atom::Quant(0)));
        assert_eq!(cl.quants.len(), 1);
    }

    #[test]
    fn duplicate_quantifiers_share_proxy() {
        let mut cl = Clausifier::new();
        let make = || {
            Formula::forall(
                vec![(xsym(), Sort::Int)],
                vec![],
                Formula::pred("p", vec![x()]),
            )
        };
        let c1 = cl.assert_formula(&make());
        let c2 = cl.assert_formula(&make());
        assert_eq!(c1[0][0].atom, c2[0][0].atom);
        assert_eq!(cl.quants.len(), 1);
    }

    #[test]
    fn truncate_to_rolls_back_atoms_quants_and_skolems() {
        let mut cl = Clausifier::new();
        let shared = Formula::forall(
            vec![(xsym(), Sort::Int)],
            vec![vec![Term::app("f", vec![x()])]],
            Formula::pred("p", vec![x()]),
        );
        let c1 = cl.assert_formula(&shared);
        let mark = cl.mark();

        // Per-obligation additions: a fresh atom, a fresh quantifier, and
        // a skolem from a negated forall.
        cl.assert_formula(&Term::cnst("a").eq(&Term::cnst("b")));
        cl.assert_formula(&Formula::forall(
            vec![(xsym(), Sort::Int)],
            vec![],
            Formula::pred("q", vec![Term::app("g", vec![x()])]),
        ));
        let skolemized = cl.assert_formula(
            &Formula::forall(vec![(xsym(), Sort::Int)], vec![], x().gt0()).negate(),
        );
        assert!(!skolemized.is_empty());

        cl.truncate_to(&mark);
        assert_eq!(cl.atoms().len(), 1);
        assert_eq!(cl.quants.len(), 1);

        // The shared prefix still dedups: re-asserting yields the same
        // atom, and a re-run of the per-obligation work re-interns into
        // the same slots (skolem counter rolled back too).
        let c1b = cl.assert_formula(&shared);
        assert_eq!(c1[0][0].atom, c1b[0][0].atom);
        let sk1 = format!("{:?}", cl.assert_formula(
            &Formula::forall(vec![(xsym(), Sort::Int)], vec![], x().gt0()).negate(),
        ));
        cl.truncate_to(&mark);
        let sk2 = format!("{:?}", cl.assert_formula(
            &Formula::forall(vec![(xsym(), Sort::Int)], vec![], x().gt0()).negate(),
        ));
        assert_eq!(sk1, sk2, "skolem names replay identically after reset");
    }

    #[test]
    fn quant_atom_is_recorded_and_forgotten_on_truncate() {
        let mut cl = Clausifier::new();
        let f = Formula::forall(
            vec![(xsym(), Sort::Int)],
            vec![vec![Term::app("f", vec![x()])]],
            Formula::pred("p", vec![x()]),
        );
        let clauses = cl.assert_formula(&f);
        assert_eq!(cl.quant_atom(0), Some(clauses[0][0].atom));

        let mark = cl.mark();
        cl.assert_formula(&Formula::forall(
            vec![(xsym(), Sort::Int)],
            vec![],
            Formula::pred("q", vec![Term::app("g", vec![x()])]),
        ));
        assert!(cl.quant_atom(1).is_some());
        cl.truncate_to(&mark);
        assert_eq!(cl.quants.len(), 1);
        assert_eq!(cl.quant_atom(0), Some(clauses[0][0].atom));
    }

    #[test]
    fn trigger_inference_prefers_full_coverage() {
        let vars = vec![(xsym(), Sort::Int)];
        let body = Formula::pred("p", vec![Term::app("f", vec![x()])]);
        let triggers = infer_triggers(&vars, &body);
        assert_eq!(triggers, vec![vec![Term::app("f", vec![x()])]]);
    }

    #[test]
    fn trigger_inference_builds_multipattern() {
        let vars = vec![(xsym(), Sort::Int), (Symbol::intern("y"), Sort::Int)];
        let y = Term::var("y", Sort::Int);
        let body = Formula::or(vec![
            Formula::pred("p", vec![Term::app("f", vec![x()])]),
            Formula::pred("q", vec![Term::app("g", vec![y])]),
        ]);
        let triggers = infer_triggers(&vars, &body);
        assert_eq!(triggers.len(), 1);
        assert_eq!(triggers[0].len(), 2);
    }

    #[test]
    fn trigger_inference_skips_interpreted_heads() {
        let vars = vec![(xsym(), Sort::Int)];
        // x + 1 > 0 with f(x) nested under +: candidate should be f(x),
        // not the + term.
        let body = Term::app("f", vec![x()]).add(&Term::int(1)).gt0();
        let triggers = infer_triggers(&vars, &body);
        assert_eq!(triggers, vec![vec![Term::app("f", vec![x()])]]);
    }

    #[test]
    fn uncoverable_quantifier_gets_no_triggers() {
        let vars = vec![(xsym(), Sort::Int)];
        let body = x().gt0(); // only interpreted structure
        assert!(infer_triggers(&vars, &body).is_empty());
    }
}
