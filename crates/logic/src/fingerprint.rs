//! Stable structural fingerprints of proof obligations.
//!
//! The incremental proving pipeline keys its proof cache on a canonical
//! hash of everything that determines a proof attempt's outcome: the
//! axioms, hypotheses, and goal (hashed **structurally**, with quantified
//! variables replaced by de-Bruijn indices and every symbol hashed by its
//! *string*, so interner ids — which differ between processes and even
//! between runs — never leak into the key), the resource budget the
//! attempt starts from, the retry ladder that may escalate it, and the
//! prover version. The prover is deterministic, so two problems with the
//! same fingerprint reach the same conclusive outcome; bumping
//! [`PROVER_VERSION`] on any behavioural prover change invalidates every
//! cached proof at once.
//!
//! The hash itself is FNV-1a over the canonical byte encoding, run in two
//! lanes with distinct offset bases for a 128-bit value. FNV is not
//! collision-resistant against adversaries, but the cache is a local
//! performance artifact, not a trust boundary; 128 bits make accidental
//! collisions negligible.

use crate::stats::{Budget, RetryPolicy};
use crate::term::{Formula, Sort, Term};
use std::fmt;
use std::str::FromStr;
use stq_util::Symbol;

/// The prover's behavioural version. Part of every [`Fingerprint`] and of
/// the on-disk cache header: bump the `-r` suffix whenever a change to
/// the solver, preprocessor, theories, or obligation encoding could
/// alter any proof outcome, and every stale cached proof dies with it.
pub const PROVER_VERSION: &str = concat!("stq-prover-", env!("CARGO_PKG_VERSION"), "-r2");

/// A 128-bit stable structural hash of a proof obligation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for Fingerprint {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Fingerprint, Self::Err> {
        u128::from_str_radix(s, 16).map(Fingerprint)
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = FNV_OFFSET_A ^ 0x9e37_79b9_7f4a_7c15;

/// Two-lane FNV-1a, producing a 128-bit digest.
pub(crate) struct StableHasher {
    a: u64,
    b: u64,
}

impl StableHasher {
    pub(crate) fn new() -> StableHasher {
        StableHasher {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Length-prefixed so `("ab","c")` and `("a","bc")` hash apart.
    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    pub(crate) fn finish(&self) -> Fingerprint {
        Fingerprint((u128::from(self.a) << 64) | u128::from(self.b))
    }
}

// Node tags for the canonical encoding. Every variant gets a distinct
// byte so structurally different trees cannot collide by concatenation.
const TAG_SORT_BOOL: u8 = 0x01;
const TAG_SORT_INT: u8 = 0x02;
const TAG_SORT_OTHER: u8 = 0x03;
const TAG_TERM_BOUND: u8 = 0x10;
const TAG_TERM_FREE: u8 = 0x11;
const TAG_TERM_INT: u8 = 0x12;
const TAG_TERM_APP: u8 = 0x13;
const TAG_F_TRUE: u8 = 0x20;
const TAG_F_FALSE: u8 = 0x21;
const TAG_F_PRED: u8 = 0x22;
const TAG_F_EQ: u8 = 0x23;
const TAG_F_LE: u8 = 0x24;
const TAG_F_LT: u8 = 0x25;
const TAG_F_NOT: u8 = 0x26;
const TAG_F_AND: u8 = 0x27;
const TAG_F_OR: u8 = 0x28;
const TAG_F_FORALL: u8 = 0x29;
const TAG_F_EXISTS: u8 = 0x2a;
const TAG_SECTION: u8 = 0x30;

fn hash_sort(h: &mut StableHasher, sort: Sort) {
    match sort {
        Sort::Bool => h.write_u8(TAG_SORT_BOOL),
        Sort::Int => h.write_u8(TAG_SORT_INT),
        Sort::Other(name) => {
            h.write_u8(TAG_SORT_OTHER);
            h.write_str(name.as_str());
        }
    }
}

fn hash_term(h: &mut StableHasher, term: &Term, binders: &[Symbol]) {
    match term {
        Term::Var(x, sort) => {
            // De-Bruijn index from the innermost binder; free variables
            // (and all function symbols) hash by name string, never by
            // interner id.
            match binders.iter().rev().position(|b| b == x) {
                Some(idx) => {
                    h.write_u8(TAG_TERM_BOUND);
                    h.write_u64(idx as u64);
                }
                None => {
                    h.write_u8(TAG_TERM_FREE);
                    h.write_str(x.as_str());
                }
            }
            hash_sort(h, *sort);
        }
        Term::Int(v) => {
            h.write_u8(TAG_TERM_INT);
            h.write_u64(*v as u64);
        }
        Term::App(f, args) => {
            h.write_u8(TAG_TERM_APP);
            h.write_str(f.as_str());
            h.write_u64(args.len() as u64);
            for a in args {
                hash_term(h, a, binders);
            }
        }
    }
}

fn hash_formula(h: &mut StableHasher, formula: &Formula, binders: &mut Vec<Symbol>) {
    match formula {
        Formula::True => h.write_u8(TAG_F_TRUE),
        Formula::False => h.write_u8(TAG_F_FALSE),
        Formula::Pred(p, args) => {
            h.write_u8(TAG_F_PRED);
            h.write_str(p.as_str());
            h.write_u64(args.len() as u64);
            for a in args {
                hash_term(h, a, binders);
            }
        }
        Formula::Eq(a, b) => {
            h.write_u8(TAG_F_EQ);
            hash_term(h, a, binders);
            hash_term(h, b, binders);
        }
        Formula::Le(a, b) => {
            h.write_u8(TAG_F_LE);
            hash_term(h, a, binders);
            hash_term(h, b, binders);
        }
        Formula::Lt(a, b) => {
            h.write_u8(TAG_F_LT);
            hash_term(h, a, binders);
            hash_term(h, b, binders);
        }
        Formula::Not(g) => {
            h.write_u8(TAG_F_NOT);
            hash_formula(h, g, binders);
        }
        Formula::And(gs) => {
            h.write_u8(TAG_F_AND);
            h.write_u64(gs.len() as u64);
            for g in gs {
                hash_formula(h, g, binders);
            }
        }
        Formula::Or(gs) => {
            h.write_u8(TAG_F_OR);
            h.write_u64(gs.len() as u64);
            for g in gs {
                hash_formula(h, g, binders);
            }
        }
        Formula::Forall(vars, triggers, body) => {
            h.write_u8(TAG_F_FORALL);
            h.write_u64(vars.len() as u64);
            for (v, sort) in vars {
                // The binder's *name* is erased (de-Bruijn), its sort kept.
                hash_sort(h, *sort);
                binders.push(*v);
            }
            // Triggers steer E-matching, so they are outcome-relevant.
            h.write_u64(triggers.len() as u64);
            for trigger in triggers {
                h.write_u64(trigger.len() as u64);
                for t in trigger {
                    hash_term(h, t, binders);
                }
            }
            hash_formula(h, body, binders);
            binders.truncate(binders.len() - vars.len());
        }
        Formula::Exists(vars, body) => {
            h.write_u8(TAG_F_EXISTS);
            h.write_u64(vars.len() as u64);
            for (v, sort) in vars {
                hash_sort(h, *sort);
                binders.push(*v);
            }
            hash_formula(h, body, binders);
            binders.truncate(binders.len() - vars.len());
        }
    }
}

fn hash_budget(h: &mut StableHasher, budget: &Budget) {
    h.write_u64(budget.max_rounds as u64);
    h.write_u64(budget.max_instantiations as u64);
    h.write_u64(budget.max_clauses as u64);
    h.write_u64(budget.max_decisions);
    match budget.timeout {
        // A wall-clock deadline makes outcomes machine-dependent, so
        // timed budgets fold the deadline in and simply never share
        // cache entries with untimed ones.
        Some(t) => {
            h.write_u8(1);
            h.write_u64(t.as_millis() as u64);
        }
        None => h.write_u8(0),
    }
}

/// Canonically hashes one obligation: `theory ∧ axioms ∧ hyps ⊢ goal`,
/// plus the base budget the first attempt runs under, the retry ladder,
/// and [`PROVER_VERSION`]. Used by
/// [`crate::solver::Problem::fingerprint`].
///
/// Shared-theory axioms and per-problem axioms are hashed as *one*
/// section-1 sequence (theory first, with a combined length prefix):
/// moving axioms between an inline list and a shared
/// [`crate::theory::Theory`] is a representation change, not a semantic
/// one, and must not churn the proof cache.
pub(crate) fn fingerprint_obligation(
    theory: &[Formula],
    axioms: &[Formula],
    hyps: &[Formula],
    goal: Option<&Formula>,
    budget: &Budget,
    retry: RetryPolicy,
) -> Fingerprint {
    let mut h = StableHasher::new();
    h.write_str(PROVER_VERSION);
    let mut binders = Vec::new();
    h.write_u8(TAG_SECTION);
    h.write_u8(1);
    h.write_u64((theory.len() + axioms.len()) as u64);
    for f in theory.iter().chain(axioms) {
        hash_formula(&mut h, f, &mut binders);
    }
    h.write_u8(TAG_SECTION);
    h.write_u8(2);
    h.write_u64(hyps.len() as u64);
    for f in hyps {
        hash_formula(&mut h, f, &mut binders);
    }
    h.write_u8(TAG_SECTION);
    h.write_u8(3);
    match goal {
        Some(g) => hash_formula(&mut h, g, &mut binders),
        None => h.write_u8(0),
    }
    hash_budget(&mut h, budget);
    h.write_u64(u64::from(retry.attempt_cap()));
    h.write_u64(u64::from(retry.factor));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Problem;

    fn x() -> Term {
        Term::var("x", Sort::Int)
    }

    fn problem(goal: Formula) -> Problem {
        let mut p = Problem::new();
        p.goal(goal);
        p
    }

    #[test]
    fn equal_problems_have_equal_fingerprints() {
        let a = problem(x().gt0()).fingerprint(RetryPolicy::none());
        let b = problem(x().gt0()).fingerprint(RetryPolicy::none());
        assert_eq!(a, b);
    }

    #[test]
    fn different_goals_have_different_fingerprints() {
        let a = problem(x().gt0()).fingerprint(RetryPolicy::none());
        let b = problem(x().lt0()).fingerprint(RetryPolicy::none());
        assert_ne!(a, b);
    }

    #[test]
    fn hypotheses_and_axioms_are_distinguished() {
        let mut a = problem(x().gt0());
        a.hypothesis(x().lt(&Term::int(9)));
        let mut b = problem(x().gt0());
        b.axiom(x().lt(&Term::int(9)));
        assert_ne!(
            a.fingerprint(RetryPolicy::none()),
            b.fingerprint(RetryPolicy::none())
        );
    }

    #[test]
    fn bound_variable_names_are_erased() {
        let quant = |name: &str| {
            let v = Term::var(name, Sort::Int);
            Formula::forall(
                vec![(Symbol::intern(name), Sort::Int)],
                vec![vec![Term::app("f", vec![v.clone()])]],
                v.gt0(),
            )
        };
        assert_eq!(
            problem(quant("p")).fingerprint(RetryPolicy::none()),
            problem(quant("qDifferent")).fingerprint(RetryPolicy::none()),
            "alpha-equivalent quantifiers fingerprint identically"
        );
    }

    #[test]
    fn free_variable_names_matter() {
        let a = problem(Term::var("a", Sort::Int).gt0()).fingerprint(RetryPolicy::none());
        let b = problem(Term::var("b", Sort::Int).gt0()).fingerprint(RetryPolicy::none());
        assert_ne!(a, b, "free symbols are part of the obligation");
    }

    #[test]
    fn budget_and_retry_are_part_of_the_key() {
        let base = problem(x().gt0());
        let fp = base.fingerprint(RetryPolicy::none());
        let mut starved = base.clone();
        starved.config.max_rounds = 1;
        assert_ne!(fp, starved.fingerprint(RetryPolicy::none()));
        assert_ne!(fp, base.fingerprint(RetryPolicy::attempts(3)));
    }

    #[test]
    fn fingerprints_are_stable_across_interner_population_order() {
        // Interning unrelated symbols between two fingerprint calls must
        // not change the hash: ids shift, strings do not.
        let before = problem(Term::cnst("stableSym").gt0()).fingerprint(RetryPolicy::none());
        for i in 0..100 {
            Symbol::intern(&format!("fingerprint-noise-{i}"));
        }
        let after = problem(Term::cnst("stableSym").gt0()).fingerprint(RetryPolicy::none());
        assert_eq!(before, after);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let fp = problem(x().gt0()).fingerprint(RetryPolicy::none());
        let shown = fp.to_string();
        assert_eq!(shown.len(), 32, "fixed-width hex: {shown}");
        assert_eq!(shown.parse::<Fingerprint>().unwrap(), fp);
    }

    #[test]
    fn version_is_woven_into_the_hash() {
        // Indirect check: the fingerprint of a fixed trivial problem is
        // pinned here. If PROVER_VERSION (or the encoding) changes, this
        // test reminds the author that every cache entry just became
        // stale — update the constant knowingly.
        let fp = problem(Formula::True).fingerprint(RetryPolicy::none());
        assert_eq!(fp, problem(Formula::True).fingerprint(RetryPolicy::none()));
        assert!(PROVER_VERSION.contains("stq-prover-"));
    }
}
