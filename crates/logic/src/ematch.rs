//! E-matching: finding instances of axiom triggers among ground terms.
//!
//! Simplify instantiates universally quantified axioms by matching each
//! axiom's *trigger* (a term pattern, or a multi-pattern) against the
//! ground terms currently known to the prover, **modulo the equalities**
//! in the congruence closure. This module implements that matcher: a
//! pattern `f(X, g(Y))` matches any e-class containing a term headed by
//! `f` whose arguments' classes (recursively) match, binding `X` and `Y`
//! to ground terms.
//!
//! Candidate enumeration is index-driven: unanchored application
//! patterns consult the e-graph's `(head, arity)` index instead of
//! scanning every node, and bindings carry hash-consed [`TermId`]s so
//! downstream deduplication never formats or clones term trees.

use crate::arena::TermId;
use crate::euf::{Egraph, TermRef};
use crate::term::Term;
use std::collections::HashSet;
use stq_util::Symbol;

/// A substitution produced by matching: variable → hash-consed ground
/// term id (resolve through the attempt's [`crate::arena::TermArena`]).
pub type Binding = Vec<(Symbol, TermId)>;

fn match_into(
    eg: &Egraph,
    pat: &Term,
    class: TermRef,
    binding: &mut Vec<(Symbol, TermRef)>,
    out: &mut Vec<Vec<(Symbol, TermRef)>>,
    rest: &[(&Term, Option<TermRef>)],
) {
    match pat {
        Term::Var(x, _) => {
            if let Some(&(_, bound)) = binding.iter().find(|(y, _)| y == x) {
                if eg.find(bound) == eg.find(class) {
                    continue_match(eg, binding, out, rest);
                }
            } else {
                binding.push((*x, eg.find(class)));
                continue_match(eg, binding, out, rest);
                binding.pop();
            }
        }
        Term::Int(v) => {
            if eg.class_int_value(class) == Some(*v) {
                continue_match(eg, binding, out, rest);
            }
        }
        Term::App(f, pargs) => {
            for &member in eg.class_members(class) {
                if eg.head_symbol(member) == Some(*f) && eg.args(member).len() == pargs.len() {
                    // Match each argument pattern in sequence by chaining
                    // them onto the work list.
                    let args: Vec<TermRef> = eg.args(member).to_vec();
                    let mut chained: Vec<(&Term, Option<TermRef>)> = pargs
                        .iter()
                        .zip(args.iter())
                        .map(|(p, &a)| (p, Some(a)))
                        .collect();
                    chained.extend_from_slice(rest);
                    continue_match(eg, binding, out, &chained);
                }
            }
        }
    }
}

fn continue_match(
    eg: &Egraph,
    binding: &mut Vec<(Symbol, TermRef)>,
    out: &mut Vec<Vec<(Symbol, TermRef)>>,
    work: &[(&Term, Option<TermRef>)],
) {
    match work.split_first() {
        None => out.push(binding.clone()),
        Some((&(pat, target), rest)) => match target {
            Some(class) => match_into(eg, pat, class, binding, out, rest),
            None => {
                // Unanchored pattern: try every class whose head matches.
                // Application heads hit the (head, arity) index directly.
                let candidates: Vec<TermRef> = match pat {
                    Term::App(f, pargs) => eg.terms_with_head(*f, pargs.len()).to_vec(),
                    Term::Int(v) => eg
                        .term_refs()
                        .filter(|&r| eg.int_literal(r) == Some(*v))
                        .collect(),
                    Term::Var(..) => eg.term_refs().collect(),
                };
                // One attempt per class: match_into enumerates the class's
                // members itself, so visiting a class twice only duplicates
                // work (duplicates are also collapsed at the end).
                let mut seen_classes = HashSet::new();
                for r in candidates {
                    if seen_classes.insert(eg.find(r)) {
                        match_into(eg, pat, r, binding, out, rest);
                    }
                }
            }
        },
    }
}

/// Finds all substitutions under which every pattern of the multi-pattern
/// `trigger` matches some ground term in the e-graph (modulo congruence).
///
/// Bindings map each pattern variable to the hash-consed id of a concrete
/// ground term drawn from the matched class. Duplicate bindings (equal up
/// to congruence) are collapsed.
///
/// # Examples
///
/// ```
/// use stq_logic::arena::TermArena;
/// use stq_logic::ematch::match_trigger;
/// use stq_logic::euf::Egraph;
/// use stq_logic::term::{Sort, Term};
///
/// let mut arena = TermArena::new();
/// let mut eg = Egraph::new();
/// eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("a")]));
/// let pat = Term::app("f", vec![Term::var("X", Sort::Int)]);
/// let matches = match_trigger(&eg, &[pat]);
/// assert_eq!(matches.len(), 1);
/// assert_eq!(arena.term(matches[0][0].1), &Term::cnst("a"));
/// ```
pub fn match_trigger(eg: &Egraph, trigger: &[Term]) -> Vec<Binding> {
    match_trigger_counted(eg, trigger).0
}

/// [`match_trigger`], additionally reporting how many raw candidate
/// bindings the matcher examined before congruence deduplication — the
/// prover's `ematch_candidates` telemetry counter, a direct measure of
/// matching effort even when most candidates collapse to known instances.
pub fn match_trigger_counted(eg: &Egraph, trigger: &[Term]) -> (Vec<Binding>, u64) {
    let work: Vec<(&Term, Option<TermRef>)> = trigger.iter().map(|p| (p, None)).collect();
    let mut raw = Vec::new();
    continue_match(eg, &mut Vec::new(), &mut raw, &work);
    let candidates = raw.len() as u64;

    // Deduplicate by the canonical class of each bound variable.
    let mut seen: HashSet<Vec<(Symbol, TermRef)>> = HashSet::new();
    let mut out = Vec::new();
    for binding in raw {
        let mut key: Vec<(Symbol, TermRef)> =
            binding.iter().map(|&(x, r)| (x, eg.find(r))).collect();
        key.sort();
        if seen.insert(key) {
            out.push(binding.into_iter().map(|(x, r)| (x, eg.tid(r))).collect());
        }
    }
    (out, candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::TermArena;
    use crate::term::Sort;

    fn var(n: &str) -> Term {
        Term::var(n, Sort::Int)
    }

    fn setup() -> (TermArena, Egraph) {
        (TermArena::new(), Egraph::new())
    }

    /// Resolves a binding's term ids back to terms for assertion purposes.
    fn resolved(arena: &TermArena, b: &Binding) -> Vec<(Symbol, Term)> {
        b.iter().map(|&(x, id)| (x, arena.term(id).clone())).collect()
    }

    #[test]
    fn simple_match() {
        let (mut arena, mut eg) = setup();
        eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("a"), Term::cnst("b")]));
        let pat = Term::app("f", vec![var("X"), var("Y")]);
        let ms = match_trigger(&eg, &[pat]);
        assert_eq!(ms.len(), 1);
        let m = resolved(&arena, &ms[0]);
        assert!(m.contains(&(Symbol::intern("X"), Term::cnst("a"))));
        assert!(m.contains(&(Symbol::intern("Y"), Term::cnst("b"))));
    }

    #[test]
    fn no_match_for_missing_head() {
        let (mut arena, mut eg) = setup();
        eg.intern(&mut arena, &Term::app("g", vec![Term::cnst("a")]));
        let pat = Term::app("f", vec![var("X")]);
        assert!(match_trigger(&eg, &[pat]).is_empty());
    }

    #[test]
    fn nested_pattern() {
        let (mut arena, mut eg) = setup();
        eg.intern(
            &mut arena,
            &Term::app("f", vec![Term::app("g", vec![Term::cnst("a")])]),
        );
        let pat = Term::app("f", vec![Term::app("g", vec![var("X")])]);
        let ms = match_trigger(&eg, &[pat]);
        assert_eq!(ms.len(), 1);
        assert_eq!(arena.term(ms[0][0].1), &Term::cnst("a"));
    }

    #[test]
    fn match_modulo_congruence() {
        // f(a) exists; a = b; pattern f(X) should also offer a match where
        // X is drawn from the merged class.
        let (mut arena, mut eg) = setup();
        let a = eg.intern(&mut arena, &Term::cnst("a"));
        let b = eg.intern(&mut arena, &Term::cnst("b"));
        eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("a")]));
        eg.merge(a, b).unwrap();
        // Pattern with nested structure: match g(X) where only b's class
        // has g... build g(b).
        eg.intern(&mut arena, &Term::app("g", vec![Term::cnst("b")]));
        let pat = Term::app("h2", vec![]);
        assert!(match_trigger(&eg, &[pat]).is_empty());
        // f(X) matches with X in the {a, b} class.
        let ms = match_trigger(&eg, &[Term::app("f", vec![var("X")])]);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn nested_congruent_match() {
        // c = g(a); term f(c) exists. Pattern f(g(X)) should match with
        // X = a because c's class contains g(a).
        let (mut arena, mut eg) = setup();
        let cc = eg.intern(&mut arena, &Term::cnst("c"));
        let ga = eg.intern(&mut arena, &Term::app("g", vec![Term::cnst("a")]));
        eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("c")]));
        eg.merge(cc, ga).unwrap();
        let pat = Term::app("f", vec![Term::app("g", vec![var("X")])]);
        let ms = match_trigger(&eg, &[pat]);
        assert_eq!(ms.len(), 1);
        assert_eq!(arena.term(ms[0][0].1), &Term::cnst("a"));
    }

    #[test]
    fn repeated_variable_requires_equal_classes() {
        let (mut arena, mut eg) = setup();
        eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("a"), Term::cnst("a")]));
        eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("a"), Term::cnst("b")]));
        let pat = Term::app("f", vec![var("X"), var("X")]);
        let ms = match_trigger(&eg, &[pat]);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn repeated_variable_matches_after_merge() {
        let (mut arena, mut eg) = setup();
        let a = eg.intern(&mut arena, &Term::cnst("a"));
        let b = eg.intern(&mut arena, &Term::cnst("b"));
        eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("a"), Term::cnst("b")]));
        let pat = Term::app("f", vec![var("X"), var("X")]);
        assert!(match_trigger(&eg, std::slice::from_ref(&pat)).is_empty());
        eg.merge(a, b).unwrap();
        assert_eq!(match_trigger(&eg, &[pat]).len(), 1);
    }

    #[test]
    fn multi_pattern_shares_bindings() {
        let (mut arena, mut eg) = setup();
        eg.intern(&mut arena, &Term::app("p", vec![Term::cnst("a")]));
        eg.intern(&mut arena, &Term::app("q", vec![Term::cnst("a")]));
        eg.intern(&mut arena, &Term::app("q", vec![Term::cnst("b")]));
        let tr = vec![
            Term::app("p", vec![var("X")]),
            Term::app("q", vec![var("X")]),
        ];
        let ms = match_trigger(&eg, &tr);
        assert_eq!(ms.len(), 1);
        assert_eq!(arena.term(ms[0][0].1), &Term::cnst("a"));
    }

    #[test]
    fn integer_literal_pattern() {
        let (mut arena, mut eg) = setup();
        eg.intern(&mut arena, &Term::app("f", vec![Term::int(0)]));
        eg.intern(&mut arena, &Term::app("f", vec![Term::int(1)]));
        let pat = Term::app("f", vec![Term::int(0)]);
        assert_eq!(match_trigger(&eg, &[pat]).len(), 1);
    }

    #[test]
    fn multiple_matches_enumerate() {
        let (mut arena, mut eg) = setup();
        eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("a")]));
        eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("b")]));
        eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("c")]));
        let ms = match_trigger(&eg, &[Term::app("f", vec![var("X")])]);
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn counted_matching_reports_raw_candidates() {
        // f(a) and f(b) with a = b: two raw candidates collapse to one
        // binding modulo congruence, but both were examined.
        let (mut arena, mut eg) = setup();
        let a = eg.intern(&mut arena, &Term::cnst("a"));
        let b = eg.intern(&mut arena, &Term::cnst("b"));
        eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("a")]));
        eg.intern(&mut arena, &Term::app("f", vec![Term::cnst("b")]));
        eg.merge(a, b).unwrap();
        let (ms, candidates) = match_trigger_counted(&eg, &[Term::app("f", vec![var("X")])]);
        assert_eq!(ms.len(), 1);
        assert!(candidates >= ms.len() as u64);
    }
}
