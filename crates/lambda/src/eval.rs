//! Big-step operational semantics (paper §5.1).
//!
//! Evaluation relates `⟨σ, s⟩ → ⟨σ', v⟩`. The store types each cell with
//! the `ref` annotation it was allocated at, which is what the
//! store-conformance side of the preservation theorem (Γ ~ σ) checks.

use crate::syntax::{LExpr, LStmt, LType, Op};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use stq_util::Symbol;

/// Run-time values (paper §5.1).
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Integer constant.
    Int(i64),
    /// `()`.
    Unit,
    /// A closure.
    Closure {
        /// Bound variable.
        param: Symbol,
        /// Parameter annotation (kept for conformance checking).
        param_ty: LType,
        /// Body.
        body: Rc<LStmt>,
        /// Captured environment.
        env: Env,
    },
    /// A store location.
    Loc(usize),
}

impl Value {
    /// The integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Unit => f.write_str("()"),
            Value::Closure { param, .. } => write!(f, "<closure \\{param}>"),
            Value::Loc(l) => write!(f, "loc#{l}"),
        }
    }
}

/// A run-time environment.
pub type Env = HashMap<Symbol, Value>;

/// The store σ: each cell holds a value and the cell type it was
/// allocated at.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Store {
    cells: Vec<(Value, LType)>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Allocates a cell, returning its location.
    pub fn alloc(&mut self, v: Value, ty: LType) -> usize {
        self.cells.push((v, ty));
        self.cells.len() - 1
    }

    /// Reads a cell.
    pub fn read(&self, l: usize) -> Option<&Value> {
        self.cells.get(l).map(|(v, _)| v)
    }

    /// Writes a cell (the cell type is fixed at allocation).
    pub fn write(&mut self, l: usize, v: Value) -> bool {
        match self.cells.get_mut(l) {
            Some(cell) => {
                cell.0 = v;
                true
            }
            None => false,
        }
    }

    /// Iterates over `(location, value, cell type)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Value, &LType)> {
        self.cells.iter().enumerate().map(|(l, (v, t))| (l, v, t))
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// An evaluation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A stuck state (ill-typed program).
    Stuck(String),
    /// Fuel exhausted (possible divergence via Landin's knot).
    OutOfFuel,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Stuck(what) => write!(f, "stuck: {what}"),
            EvalError::OutOfFuel => f.write_str("out of fuel"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates a closed statement with the given fuel, returning the value
/// and the final store.
///
/// # Errors
///
/// [`EvalError::Stuck`] on ill-typed programs, [`EvalError::OutOfFuel`]
/// if the step budget is exhausted.
pub fn eval_program(s: &LStmt, fuel: u64) -> Result<(Value, Store), EvalError> {
    let mut store = Store::new();
    let mut fuel = fuel;
    let v = eval_stmt(s, &Env::new(), &mut store, &mut fuel)?;
    Ok((v, store))
}

fn tick(fuel: &mut u64) -> Result<(), EvalError> {
    if *fuel == 0 {
        return Err(EvalError::OutOfFuel);
    }
    *fuel -= 1;
    Ok(())
}

/// Evaluates an expression (side-effect-free: the store is read-only).
pub fn eval_expr(e: &LExpr, env: &Env, store: &Store, fuel: &mut u64) -> Result<Value, EvalError> {
    tick(fuel)?;
    match e {
        LExpr::Int(c) => Ok(Value::Int(*c)),
        LExpr::Unit => Ok(Value::Unit),
        LExpr::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| EvalError::Stuck(format!("unbound {x}"))),
        LExpr::Lam(x, ty, body) => Ok(Value::Closure {
            param: *x,
            param_ty: ty.clone(),
            body: Rc::new((**body).clone()),
            env: env.clone(),
        }),
        LExpr::Deref(inner) => match eval_expr(inner, env, store, fuel)? {
            Value::Loc(l) => store
                .read(l)
                .cloned()
                .ok_or_else(|| EvalError::Stuck(format!("dangling loc#{l}"))),
            other => Err(EvalError::Stuck(format!("deref of {other}"))),
        },
        LExpr::Neg(inner) => match eval_expr(inner, env, store, fuel)? {
            Value::Int(v) => Ok(Value::Int(v.wrapping_neg())),
            other => Err(EvalError::Stuck(format!("negation of {other}"))),
        },
        LExpr::Binop(op, a, b) => {
            let va = eval_expr(a, env, store, fuel)?;
            let vb = eval_expr(b, env, store, fuel)?;
            match (va, vb) {
                (Value::Int(x), Value::Int(y)) => Ok(Value::Int(match op {
                    Op::Add => x.wrapping_add(y),
                    Op::Sub => x.wrapping_sub(y),
                    Op::Mul => x.wrapping_mul(y),
                })),
                (a, b) => Err(EvalError::Stuck(format!("{op} on {a}, {b}"))),
            }
        }
    }
}

/// Evaluates a statement, threading the store.
pub fn eval_stmt(
    s: &LStmt,
    env: &Env,
    store: &mut Store,
    fuel: &mut u64,
) -> Result<Value, EvalError> {
    tick(fuel)?;
    match s {
        LStmt::Expr(e) => eval_expr(e, env, store, fuel),
        LStmt::Seq(a, b) => {
            eval_stmt(a, env, store, fuel)?;
            eval_stmt(b, env, store, fuel)
        }
        LStmt::Let(x, bound, body) => {
            let v = eval_stmt(bound, env, store, fuel)?;
            let mut inner = env.clone();
            inner.insert(*x, v);
            eval_stmt(body, &inner, store, fuel)
        }
        LStmt::Ref(init, cell_ty) => {
            let v = eval_stmt(init, env, store, fuel)?;
            let l = store.alloc(v, cell_ty.clone());
            Ok(Value::Loc(l))
        }
        LStmt::Assign(target, value) => {
            let t = eval_stmt(target, env, store, fuel)?;
            let v = eval_stmt(value, env, store, fuel)?;
            match t {
                Value::Loc(l) => {
                    if store.write(l, v) {
                        Ok(Value::Unit)
                    } else {
                        Err(EvalError::Stuck(format!("dangling loc#{l}")))
                    }
                }
                other => Err(EvalError::Stuck(format!("assign to {other}"))),
            }
        }
        LStmt::App(fun, arg) => {
            let f = eval_stmt(fun, env, store, fuel)?;
            let a = eval_stmt(arg, env, store, fuel)?;
            match f {
                Value::Closure {
                    param, body, env, ..
                } => {
                    let mut inner = env.clone();
                    inner.insert(param, a);
                    eval_stmt(&body, &inner, store, fuel)
                }
                other => Err(EvalError::Stuck(format!("apply {other}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(s: &LStmt) -> (Value, Store) {
        eval_program(s, 100_000).expect("evaluation")
    }

    #[test]
    fn arithmetic() {
        let e = LExpr::Int(6).binop(Op::Mul, LExpr::Int(7));
        let (v, _) = run(&LStmt::expr(e));
        assert_eq!(v.as_int(), Some(42));
    }

    #[test]
    fn let_and_sequencing() {
        let s = LStmt::let_in(
            "x",
            LStmt::expr(LExpr::Int(10)),
            LStmt::Seq(
                Box::new(LStmt::expr(LExpr::Unit)),
                Box::new(LStmt::expr(LExpr::var("x").binop(Op::Add, LExpr::Int(1)))),
            ),
        );
        assert_eq!(run(&s).0.as_int(), Some(11));
    }

    #[test]
    fn references_read_and_write() {
        // let r = ref 1 in (r := 5; !r)
        let s = LStmt::let_in(
            "r",
            LStmt::Ref(Box::new(LStmt::expr(LExpr::Int(1))), LType::int()),
            LStmt::Seq(
                Box::new(LStmt::Assign(
                    Box::new(LStmt::expr(LExpr::var("r"))),
                    Box::new(LStmt::expr(LExpr::Int(5))),
                )),
                Box::new(LStmt::expr(LExpr::Deref(Box::new(LExpr::var("r"))))),
            ),
        );
        let (v, store) = run(&s);
        assert_eq!(v.as_int(), Some(5));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn application_beta_reduces() {
        let double = LExpr::Lam(
            Symbol::intern("x"),
            LType::int(),
            Box::new(LStmt::expr(LExpr::var("x").binop(Op::Mul, LExpr::Int(2)))),
        );
        let s = LStmt::App(
            Box::new(LStmt::expr(double)),
            Box::new(LStmt::expr(LExpr::Int(21))),
        );
        assert_eq!(run(&s).0.as_int(), Some(42));
    }

    #[test]
    fn closures_capture_lexically() {
        // let y = 10 in let f = \x. x + y in let y = 0 in f 1  ⇒ 11
        let f = LExpr::Lam(
            Symbol::intern("x"),
            LType::int(),
            Box::new(LStmt::expr(LExpr::var("x").binop(Op::Add, LExpr::var("y")))),
        );
        let s = LStmt::let_in(
            "y",
            LStmt::expr(LExpr::Int(10)),
            LStmt::let_in(
                "f",
                LStmt::expr(f),
                LStmt::let_in(
                    "y",
                    LStmt::expr(LExpr::Int(0)),
                    LStmt::App(
                        Box::new(LStmt::expr(LExpr::var("f"))),
                        Box::new(LStmt::expr(LExpr::Int(1))),
                    ),
                ),
            ),
        );
        assert_eq!(run(&s).0.as_int(), Some(11));
    }

    #[test]
    fn stuck_states_are_reported() {
        let s = LStmt::expr(LExpr::Deref(Box::new(LExpr::Int(1))));
        assert!(matches!(eval_program(&s, 1000), Err(EvalError::Stuck(_))));
    }

    #[test]
    fn fuel_bounds_divergence() {
        // Landin's knot: r := λx. (!r) x; (!r) 0 — diverges.
        let loopfn = LExpr::Lam(
            Symbol::intern("x"),
            LType::int(),
            Box::new(LStmt::App(
                Box::new(LStmt::expr(LExpr::Deref(Box::new(LExpr::var("r"))))),
                Box::new(LStmt::expr(LExpr::var("x"))),
            )),
        );
        let fun_ty = LType::fun(LType::int(), LType::int());
        let dummy = LExpr::Lam(
            Symbol::intern("x"),
            LType::int(),
            Box::new(LStmt::expr(LExpr::var("x"))),
        );
        let s = LStmt::let_in(
            "r",
            LStmt::Ref(Box::new(LStmt::expr(dummy)), fun_ty),
            LStmt::Seq(
                Box::new(LStmt::Assign(
                    Box::new(LStmt::expr(LExpr::var("r"))),
                    Box::new(LStmt::expr(loopfn)),
                )),
                Box::new(LStmt::App(
                    Box::new(LStmt::expr(LExpr::Deref(Box::new(LExpr::var("r"))))),
                    Box::new(LStmt::expr(LExpr::Int(0))),
                )),
            ),
        );
        // Modest fuel: each loop iteration deepens the native call
        // stack, so a large budget would overflow before running out.
        assert_eq!(eval_program(&s, 2_000), Err(EvalError::OutOfFuel));
    }
}
