//! Random well-typed program generation for differential testing of the
//! preservation theorem.
//!
//! Programs are well-typed *by construction*: `ref` annotations are the
//! principal types of their initializers (possibly weakened by dropping
//! qualifiers — exercising subsumption), assignment right-hand sides are
//! re-generated until they conform to the cell type, and applications are
//! built around freshly generated arguments.

use crate::rules::QualSystem;
use crate::syntax::{Core, LExpr, LStmt, LType, Op};
use crate::ty::subtype;
use crate::typecheck::{infer_stmt, TyEnv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stq_util::Symbol;

/// Generator limits.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Maximum statement nesting depth.
    pub max_depth: u32,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { max_depth: 6 }
    }
}

/// Generates a closed, well-typed program from a seed.
///
/// # Examples
///
/// ```
/// use stq_lambda::gen::{generate_program, GenConfig};
/// use stq_lambda::rules::QualSystem;
/// use stq_lambda::typecheck::{infer_stmt, TyEnv};
///
/// let sys = QualSystem::paper_builtins();
/// let program = generate_program(42, &sys, GenConfig::default());
/// assert!(infer_stmt(&sys, &TyEnv::new(), &program).is_ok());
/// ```
pub fn generate_program(seed: u64, sys: &QualSystem, config: GenConfig) -> LStmt {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = Gen {
        rng: &mut rng,
        sys,
        fresh: 0,
    };
    let scope = Vec::new();
    gen.stmt(config.max_depth, &scope)
}

struct Gen<'a> {
    rng: &'a mut StdRng,
    sys: &'a QualSystem,
    fresh: u32,
}

type Scope = Vec<(Symbol, LType)>;

impl Gen<'_> {
    fn fresh_name(&mut self) -> Symbol {
        self.fresh += 1;
        Symbol::intern(&format!("v{}", self.fresh))
    }

    fn env_of(scope: &Scope) -> TyEnv {
        scope.iter().cloned().collect()
    }

    /// A well-typed integer expression over the int-cored variables in
    /// scope.
    fn int_expr(&mut self, depth: u32, scope: &Scope) -> LExpr {
        let int_vars: Vec<&Symbol> = scope
            .iter()
            .filter(|(_, t)| matches!(t.core, Core::Int))
            .map(|(x, _)| x)
            .collect();
        let choice = if depth == 0 {
            self.rng.gen_range(0..2)
        } else {
            self.rng.gen_range(0..5)
        };
        match choice {
            0 => LExpr::Int(self.rng.gen_range(-10..=10)),
            1 if !int_vars.is_empty() => {
                let i = self.rng.gen_range(0..int_vars.len());
                LExpr::Var(*int_vars[i])
            }
            1 => LExpr::Int(self.rng.gen_range(1..=5)),
            2 => LExpr::Neg(Box::new(self.int_expr(depth - 1, scope))),
            _ => {
                let op = match self.rng.gen_range(0..3) {
                    0 => Op::Add,
                    1 => Op::Sub,
                    _ => Op::Mul,
                };
                self.int_expr(depth - 1, scope)
                    .binop(op, self.int_expr(depth - 1, scope))
            }
        }
    }

    fn stmt(&mut self, depth: u32, scope: &Scope) -> LStmt {
        if depth == 0 {
            return LStmt::Expr(self.int_expr(1, scope));
        }
        match self.rng.gen_range(0..8) {
            // Plain expression.
            0 => LStmt::Expr(self.int_expr(depth, scope)),
            // Sequencing.
            1 => LStmt::Seq(
                Box::new(self.stmt(depth - 1, scope)),
                Box::new(self.stmt(depth - 1, scope)),
            ),
            // Allocation bound by a let, with a possibly weakened
            // annotation (exercises subsumption).
            2 | 3 => {
                let init = self.stmt(depth - 1, scope);
                let ty = infer_stmt(self.sys, &Self::env_of(scope), &init)
                    .expect("generated statements are well-typed");
                let mut cell = ty.clone();
                // Randomly drop some qualifiers (weakening the cell type
                // remains sound: the initializer is still a subtype).
                let quals: Vec<Symbol> = cell.quals.iter().copied().collect();
                for q in quals {
                    if self.rng.gen_bool(0.5) {
                        cell.quals.remove(&q);
                    }
                }
                let name = self.fresh_name();
                let mut inner = scope.clone();
                inner.push((name, cell.clone().reference()));
                let body = self.stmt(depth - 1, &inner);
                LStmt::Let(
                    name,
                    Box::new(LStmt::Ref(Box::new(init), cell)),
                    Box::new(body),
                )
            }
            // Assignment through a reference in scope.
            4 => {
                let refs: Vec<(Symbol, LType)> = scope
                    .iter()
                    .filter(|(_, t)| matches!(t.core, Core::Ref(_)))
                    .cloned()
                    .collect();
                match refs.is_empty() {
                    true => LStmt::Expr(self.int_expr(depth, scope)),
                    false => {
                        let (r, rty) = refs[self.rng.gen_range(0..refs.len())].clone();
                        let cell = match &rty.core {
                            Core::Ref(c) => (**c).clone(),
                            _ => unreachable!("filtered to refs"),
                        };
                        // Try to find a conforming right-hand side.
                        let env = Self::env_of(scope);
                        for _ in 0..8 {
                            let candidate = LStmt::Expr(self.int_expr(depth - 1, scope));
                            if matches!(cell.core, Core::Int) {
                                if let Ok(t) = infer_stmt(self.sys, &env, &candidate) {
                                    if subtype(&t, &cell) {
                                        return LStmt::Assign(
                                            Box::new(LStmt::Expr(LExpr::Var(r))),
                                            Box::new(candidate),
                                        );
                                    }
                                }
                            }
                        }
                        // Fallback: r := !r always preserves the cell type.
                        LStmt::Assign(
                            Box::new(LStmt::Expr(LExpr::Var(r))),
                            Box::new(LStmt::Expr(LExpr::Deref(Box::new(LExpr::Var(r))))),
                        )
                    }
                }
            }
            // Dereference of a reference in scope.
            5 => {
                let refs: Vec<Symbol> = scope
                    .iter()
                    .filter(|(_, t)| matches!(t.core, Core::Ref(_)))
                    .map(|(x, _)| *x)
                    .collect();
                match refs.is_empty() {
                    true => LStmt::Expr(self.int_expr(depth, scope)),
                    false => {
                        let r = refs[self.rng.gen_range(0..refs.len())];
                        LStmt::Expr(LExpr::Deref(Box::new(LExpr::Var(r))))
                    }
                }
            }
            // Immediate application of a lambda to a generated argument.
            6 => {
                let arg = self.stmt(depth - 1, scope);
                let arg_ty = infer_stmt(self.sys, &Self::env_of(scope), &arg)
                    .expect("generated statements are well-typed");
                let x = self.fresh_name();
                let mut inner = scope.clone();
                inner.push((x, arg_ty.clone()));
                let body = self.stmt(depth - 1, &inner);
                let lam = LExpr::Lam(x, arg_ty, Box::new(body));
                LStmt::App(Box::new(LStmt::Expr(lam)), Box::new(arg))
            }
            // Let over an arbitrary statement.
            _ => {
                let bound = self.stmt(depth - 1, scope);
                let ty = infer_stmt(self.sys, &Self::env_of(scope), &bound)
                    .expect("generated statements are well-typed");
                let name = self.fresh_name();
                let mut inner = scope.clone();
                inner.push((name, ty));
                let body = self.stmt(depth - 1, &inner);
                LStmt::Let(name, Box::new(bound), Box::new(body))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_typecheck() {
        let sys = QualSystem::paper_builtins();
        for seed in 0..200 {
            let p = generate_program(seed, &sys, GenConfig::default());
            let r = infer_stmt(&sys, &TyEnv::new(), &p);
            assert!(r.is_ok(), "seed {seed}: {p} failed: {:?}", r.err());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let sys = QualSystem::paper_builtins();
        let a = generate_program(7, &sys, GenConfig::default());
        let b = generate_program(7, &sys, GenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn generation_varies_with_seed() {
        let sys = QualSystem::paper_builtins();
        let distinct: std::collections::HashSet<String> = (0..50)
            .map(|s| generate_program(s, &sys, GenConfig::default()).to_string())
            .collect();
        assert!(
            distinct.len() > 25,
            "only {} distinct programs",
            distinct.len()
        );
    }
}
