//! Syntax of the formal core calculus (paper Figure 8).
//!
//! A simply-typed lambda calculus with ML-style references and
//! user-defined value qualifiers. Statements are potentially
//! side-effecting; expressions are side-effect-free. We conservatively
//! extend the paper's expression grammar with integer unary/binary
//! operators so the `T-QUALCASE` template (whose running example is
//! `e1 * e2`) has instances to range over.

use std::collections::BTreeSet;
use std::fmt;
use stq_util::Symbol;

/// Binary operators over integers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
        })
    }
}

/// The core shape of a type; qualifiers live alongside in [`LType`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Core {
    /// `unit`.
    Unit,
    /// `int`.
    Int,
    /// `τ1 → τ2`.
    Fun(Box<LType>, Box<LType>),
    /// `ref τ`.
    Ref(Box<LType>),
}

/// A type with its set of value qualifiers.
///
/// Qualifier *sets* make the paper's `SubQualReorder` rule (qualifier
/// order is irrelevant) definitional.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LType {
    /// The unqualified shape.
    pub core: Core,
    /// Attached value qualifiers.
    pub quals: BTreeSet<Symbol>,
}

impl LType {
    /// `unit`.
    pub fn unit() -> LType {
        LType {
            core: Core::Unit,
            quals: BTreeSet::new(),
        }
    }

    /// `int`.
    pub fn int() -> LType {
        LType {
            core: Core::Int,
            quals: BTreeSet::new(),
        }
    }

    /// `τ1 → τ2`.
    pub fn fun(a: LType, b: LType) -> LType {
        LType {
            core: Core::Fun(Box::new(a), Box::new(b)),
            quals: BTreeSet::new(),
        }
    }

    /// `ref self`.
    #[must_use]
    pub fn reference(self) -> LType {
        LType {
            core: Core::Ref(Box::new(self)),
            quals: BTreeSet::new(),
        }
    }

    /// `self q`.
    #[must_use]
    pub fn with_qual(mut self, q: &str) -> LType {
        self.quals.insert(Symbol::intern(q));
        self
    }

    /// The same shape without top-level qualifiers.
    #[must_use]
    pub fn stripped(&self) -> LType {
        LType {
            core: self.core.clone(),
            quals: BTreeSet::new(),
        }
    }
}

impl fmt::Display for LType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.core {
            Core::Unit => f.write_str("unit")?,
            Core::Int => f.write_str("int")?,
            Core::Fun(a, b) => write!(f, "({a} -> {b})")?,
            Core::Ref(t) => write!(f, "ref {t}")?,
        }
        for q in &self.quals {
            write!(f, " {q}")?;
        }
        Ok(())
    }
}

/// Side-effect-free expressions (Figure 8, extended with arithmetic).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LExpr {
    /// Integer constant.
    Int(i64),
    /// `()`.
    Unit,
    /// Variable.
    Var(Symbol),
    /// `λx:τ. s`.
    Lam(Symbol, LType, Box<LStmt>),
    /// `!e` — dereference.
    Deref(Box<LExpr>),
    /// `-e`.
    Neg(Box<LExpr>),
    /// `e1 op e2`.
    Binop(Op, Box<LExpr>, Box<LExpr>),
}

impl LExpr {
    /// Variable shorthand.
    pub fn var(name: &str) -> LExpr {
        LExpr::Var(Symbol::intern(name))
    }

    /// `self op other`.
    #[must_use]
    pub fn binop(self, op: Op, other: LExpr) -> LExpr {
        LExpr::Binop(op, Box::new(self), Box::new(other))
    }
}

impl fmt::Display for LExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LExpr::Int(c) => write!(f, "{c}"),
            LExpr::Unit => f.write_str("()"),
            LExpr::Var(x) => write!(f, "{x}"),
            LExpr::Lam(x, ty, body) => write!(f, "(\\{x}:{ty}. {body})"),
            LExpr::Deref(e) => write!(f, "!{e}"),
            LExpr::Neg(e) => write!(f, "(-{e})"),
            LExpr::Binop(op, a, b) => write!(f, "({a} {op} {b})"),
        }
    }
}

/// Potentially side-effecting statements (Figure 8).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LStmt {
    /// An expression as a statement.
    Expr(LExpr),
    /// `s1; s2`.
    Seq(Box<LStmt>, Box<LStmt>),
    /// `let x = s1 in s2`.
    Let(Symbol, Box<LStmt>, Box<LStmt>),
    /// `ref s : τ` — allocation, annotated with the cell type (the
    /// annotation fixes the cell's qualifier set; the paper's declarative
    /// system picks it by subsumption).
    Ref(Box<LStmt>, LType),
    /// `s1 := s2`.
    Assign(Box<LStmt>, Box<LStmt>),
    /// `s1 s2` — application.
    App(Box<LStmt>, Box<LStmt>),
}

impl LStmt {
    /// Wraps an expression.
    pub fn expr(e: LExpr) -> LStmt {
        LStmt::Expr(e)
    }

    /// `let name = bound in body`.
    pub fn let_in(name: &str, bound: LStmt, body: LStmt) -> LStmt {
        LStmt::Let(Symbol::intern(name), Box::new(bound), Box::new(body))
    }
}

impl fmt::Display for LStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LStmt::Expr(e) => write!(f, "{e}"),
            LStmt::Seq(a, b) => write!(f, "({a}; {b})"),
            LStmt::Let(x, a, b) => write!(f, "(let {x} = {a} in {b})"),
            LStmt::Ref(s, ty) => write!(f, "(ref {s} : {ty})"),
            LStmt::Assign(a, b) => write!(f, "({a} := {b})"),
            LStmt::App(a, b) => write!(f, "({a} {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualifier_sets_make_reordering_definitional() {
        let a = LType::int().with_qual("pos").with_qual("nonzero");
        let b = LType::int().with_qual("nonzero").with_qual("pos");
        assert_eq!(a, b);
    }

    #[test]
    fn display_round_trips_structure() {
        let t = LType::fun(LType::int().with_qual("pos"), LType::int().reference());
        assert_eq!(t.to_string(), "(int pos -> ref int)");
        let e = LExpr::Int(1).binop(Op::Mul, LExpr::var("x"));
        assert_eq!(e.to_string(), "(1 * x)");
    }

    #[test]
    fn stripped_removes_top_level_only() {
        let t = LType::int().with_qual("pos").reference().with_qual("q");
        let s = t.stripped();
        assert!(s.quals.is_empty());
        match s.core {
            Core::Ref(inner) => assert!(!inner.quals.is_empty()),
            other => panic!("expected ref, got {other:?}"),
        }
    }
}
