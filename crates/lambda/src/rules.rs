//! `T-QUALCASE` rule instances (paper Figure 10) and qualifier
//! invariants for the core calculus.
//!
//! The formal template allows an expression to be given a qualified type
//! when it has the associated unqualified type and designated
//! subexpressions have particular qualified types. A [`QualRule`] is one
//! instance of the template; a [`QualSystem`] is the set in force,
//! together with each qualifier's invariant `[[q]]` as a predicate on
//! integer values (Definition 5.1 interprets invariants over values).

use crate::syntax::Op;
use std::collections::{BTreeSet, HashMap};
use stq_util::Symbol;

/// The expression shape a rule applies to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Shape {
    /// An integer constant (guarded by [`QualRule::const_guard`]).
    Const,
    /// `-e`.
    Neg,
    /// `e1 op e2`.
    Binop(Op),
}

/// One instance of the `T-QUALCASE` template.
#[derive(Clone)]
pub struct QualRule {
    /// The qualifier being introduced.
    pub qual: Symbol,
    /// The shape of the conclusion's expression.
    pub shape: Shape,
    /// Premises: `(subexpression index, required qualifier)`. Index 0 is
    /// the first (or only) subexpression.
    pub premises: Vec<(usize, Symbol)>,
    /// For [`Shape::Const`]: the side condition on the constant.
    pub const_guard: Option<fn(i64) -> bool>,
}

/// A set of rules plus invariant interpretations `[[q]]`.
#[derive(Clone, Default)]
pub struct QualSystem {
    rules: Vec<QualRule>,
    invariants: HashMap<Symbol, fn(i64) -> bool>,
}

impl QualSystem {
    /// An empty system.
    pub fn new() -> QualSystem {
        QualSystem::default()
    }

    /// Adds a rule.
    pub fn rule(&mut self, rule: QualRule) -> &mut QualSystem {
        self.rules.push(rule);
        self
    }

    /// Declares a qualifier's invariant.
    pub fn invariant(&mut self, qual: &str, inv: fn(i64) -> bool) -> &mut QualSystem {
        self.invariants.insert(Symbol::intern(qual), inv);
        self
    }

    /// The invariant of `q`, if declared.
    pub fn invariant_of(&self, q: Symbol) -> Option<fn(i64) -> bool> {
        self.invariants.get(&q).copied()
    }

    /// All rules.
    pub fn rules(&self) -> &[QualRule] {
        &self.rules
    }

    /// The qualifiers derivable for a constant.
    pub fn quals_of_const(&self, c: i64) -> BTreeSet<Symbol> {
        self.rules
            .iter()
            .filter(|r| r.shape == Shape::Const && r.const_guard.is_none_or(|g| g(c)))
            .map(|r| r.qual)
            .collect()
    }

    /// The qualifiers derivable for a shaped compound expression, given
    /// the full qualifier sets of its subexpressions. Premises only
    /// mention subexpressions (structurally smaller), so a single pass
    /// suffices per node.
    pub fn quals_of_compound(
        &self,
        shape: Shape,
        children: &[&BTreeSet<Symbol>],
    ) -> BTreeSet<Symbol> {
        self.rules
            .iter()
            .filter(|r| r.shape == shape)
            .filter(|r| {
                r.premises
                    .iter()
                    .all(|&(i, q)| children.get(i).is_some_and(|s| s.contains(&q)))
            })
            .map(|r| r.qual)
            .collect()
    }

    /// The `pos` / `neg` / `nonzero` system from the paper's figures,
    /// instantiated as formal rules. Every rule here corresponds to a
    /// case clause the soundness checker of `stq-soundness` proves sound.
    pub fn paper_builtins() -> QualSystem {
        let mut sys = QualSystem::new();
        let pos = Symbol::intern("pos");
        let neg = Symbol::intern("neg");
        let nonzero = Symbol::intern("nonzero");

        // pos: C where C > 0 | E1 * E2 where pos(E1) && pos(E2)
        //    | -E1 where neg(E1)
        sys.rule(QualRule {
            qual: pos,
            shape: Shape::Const,
            premises: vec![],
            const_guard: Some(|c| c > 0),
        });
        sys.rule(QualRule {
            qual: pos,
            shape: Shape::Binop(Op::Mul),
            premises: vec![(0, pos), (1, pos)],
            const_guard: None,
        });
        sys.rule(QualRule {
            qual: pos,
            shape: Shape::Neg,
            premises: vec![(0, neg)],
            const_guard: None,
        });

        // neg, symmetrically.
        sys.rule(QualRule {
            qual: neg,
            shape: Shape::Const,
            premises: vec![],
            const_guard: Some(|c| c < 0),
        });
        sys.rule(QualRule {
            qual: neg,
            shape: Shape::Binop(Op::Mul),
            premises: vec![(0, pos), (1, neg)],
            const_guard: None,
        });
        sys.rule(QualRule {
            qual: neg,
            shape: Shape::Binop(Op::Mul),
            premises: vec![(0, neg), (1, pos)],
            const_guard: None,
        });
        sys.rule(QualRule {
            qual: neg,
            shape: Shape::Neg,
            premises: vec![(0, pos)],
            const_guard: None,
        });

        // nonzero: C where C != 0 | pos | neg | product of nonzero.
        sys.rule(QualRule {
            qual: nonzero,
            shape: Shape::Const,
            premises: vec![],
            const_guard: Some(|c| c != 0),
        });
        sys.rule(QualRule {
            qual: nonzero,
            shape: Shape::Binop(Op::Mul),
            premises: vec![(0, nonzero), (1, nonzero)],
            const_guard: None,
        });
        sys.rule(QualRule {
            qual: nonzero,
            shape: Shape::Neg,
            premises: vec![(0, nonzero)],
            const_guard: None,
        });

        sys.invariant("pos", |v| v > 0);
        sys.invariant("neg", |v| v < 0);
        sys.invariant("nonzero", |v| v != 0);
        sys
    }

    /// The paper's running *erroneous* variant: `pos` introduced for
    /// `E1 - E2` instead of `E1 * E2`. Locally unsound — used to
    /// demonstrate that preservation fails empirically.
    pub fn broken_subtraction_variant() -> QualSystem {
        let mut sys = QualSystem::paper_builtins();
        let pos = Symbol::intern("pos");
        sys.rule(QualRule {
            qual: pos,
            shape: Shape::Binop(Op::Sub),
            premises: vec![(0, pos), (1, pos)],
            const_guard: None,
        });
        sys
    }

    /// Checks local soundness of every rule empirically over a grid of
    /// concrete values (a counterpart to Definition 5.1 evaluated by
    /// testing rather than proving). Returns the rules that fail, as
    /// `(qualifier, shape, witness values)`.
    pub fn empirically_unsound_rules(&self) -> Vec<(Symbol, Shape, Vec<i64>)> {
        let grid: Vec<i64> = (-5..=5).collect();
        let mut bad = Vec::new();
        for rule in &self.rules {
            let Some(inv) = self.invariant_of(rule.qual) else {
                continue;
            };
            match rule.shape {
                Shape::Const => {
                    for &c in &grid {
                        if rule.const_guard.is_none_or(|g| g(c)) && !inv(c) {
                            bad.push((rule.qual, rule.shape, vec![c]));
                            break;
                        }
                    }
                }
                Shape::Neg => {
                    for &a in &grid {
                        let premises_hold = rule
                            .premises
                            .iter()
                            .all(|&(i, q)| i == 0 && self.invariant_of(q).is_some_and(|g| g(a)));
                        if premises_hold && !inv(-a) {
                            bad.push((rule.qual, rule.shape, vec![a]));
                            break;
                        }
                    }
                }
                Shape::Binop(op) => {
                    'outer: for &a in &grid {
                        for &b in &grid {
                            let premises_hold = rule.premises.iter().all(|&(i, q)| {
                                let v = if i == 0 { a } else { b };
                                self.invariant_of(q).is_some_and(|g| g(v))
                            });
                            let result = match op {
                                Op::Add => a + b,
                                Op::Sub => a - b,
                                Op::Mul => a * b,
                            };
                            if premises_hold && !inv(result) {
                                bad.push((rule.qual, rule.shape, vec![a, b]));
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_rules_are_empirically_sound() {
        let sys = QualSystem::paper_builtins();
        assert!(sys.empirically_unsound_rules().is_empty());
    }

    #[test]
    fn subtraction_variant_is_empirically_unsound() {
        let sys = QualSystem::broken_subtraction_variant();
        let bad = sys.empirically_unsound_rules();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].1, Shape::Binop(Op::Sub));
        assert_eq!(bad[0].0.as_str(), "pos");
    }

    #[test]
    fn const_quals() {
        let sys = QualSystem::paper_builtins();
        let q3 = sys.quals_of_const(3);
        assert!(q3.contains(&Symbol::intern("pos")));
        assert!(q3.contains(&Symbol::intern("nonzero")));
        assert!(!q3.contains(&Symbol::intern("neg")));
        let q0 = sys.quals_of_const(0);
        assert!(q0.is_empty());
    }

    #[test]
    fn compound_quals_combine_premises() {
        let sys = QualSystem::paper_builtins();
        let pos: BTreeSet<Symbol> = [Symbol::intern("pos"), Symbol::intern("nonzero")].into();
        let neg: BTreeSet<Symbol> = [Symbol::intern("neg"), Symbol::intern("nonzero")].into();
        let prod = sys.quals_of_compound(Shape::Binop(Op::Mul), &[&pos, &neg]);
        assert!(prod.contains(&Symbol::intern("neg")));
        assert!(prod.contains(&Symbol::intern("nonzero")));
        assert!(!prod.contains(&Symbol::intern("pos")));
        let negated = sys.quals_of_compound(Shape::Neg, &[&neg]);
        assert!(negated.contains(&Symbol::intern("pos")));
    }
}
