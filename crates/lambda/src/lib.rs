//! The formalized core calculus of paper §5: a simply-typed lambda
//! calculus with ML-style references and user-defined value qualifiers.
//!
//! * [`syntax`] — Figure 8's statements, expressions, and qualified types;
//! * [`ty`] — the subtype relation of Figure 9 (`τ q ≤ τ`, qualifier
//!   reordering, invariant `ref`, function variance);
//! * [`rules`] — `T-QUALCASE` rule instances (Figure 10) with invariant
//!   interpretations `[[q]]`, including the paper's `pos`/`neg`/`nonzero`
//!   system and the erroneous subtraction variant;
//! * [`typecheck`] — algorithmic typing via principal qualifier sets;
//! * [`eval`] — the big-step operational semantics;
//! * [`conform`] — semantic conformance (Figure 11) and store
//!   conformance (Definition 5.2), the executable statement of the
//!   preservation theorem (Theorem 5.1);
//! * [`gen`] — seeded generation of well-typed programs, used by the
//!   property-based preservation tests.
//!
//! # Examples
//!
//! Theorem 5.1, exercised: evaluate a well-typed program and check that
//! the result and every store cell satisfy their types' invariants.
//!
//! ```
//! use stq_lambda::conform::{conforms, store_conforms};
//! use stq_lambda::eval::eval_program;
//! use stq_lambda::rules::QualSystem;
//! use stq_lambda::syntax::{LExpr, LStmt, LType, Op};
//! use stq_lambda::typecheck::{infer_stmt, TyEnv};
//!
//! let sys = QualSystem::paper_builtins();
//! let program = LStmt::expr(LExpr::Int(6).binop(Op::Mul, LExpr::Int(7)));
//! let ty = infer_stmt(&sys, &TyEnv::new(), &program)?;
//! let (value, store) = eval_program(&program, 1_000).unwrap();
//! assert!(conforms(&sys, &store, &value, &ty));
//! assert!(store_conforms(&sys, &store));
//! # Ok::<(), stq_lambda::typecheck::TypeError>(())
//! ```

pub mod conform;
pub mod eval;
pub mod gen;
pub mod rules;
pub mod syntax;
pub mod ty;
pub mod typecheck;

pub use conform::{conforms, store_conforms};
pub use eval::{eval_program, EvalError, Store, Value};
pub use rules::{QualRule, QualSystem, Shape};
pub use syntax::{Core, LExpr, LStmt, LType, Op};
pub use ty::subtype;
pub use typecheck::{infer_stmt, TyEnv, TypeError};
