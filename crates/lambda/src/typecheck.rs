//! Algorithmic typechecking for the core calculus.
//!
//! The declarative system (standard STLC-with-references rules +
//! subsumption + `T-QUALCASE` instances) is made algorithmic by computing
//! each expression's *principal* type: the unqualified shape together
//! with the **full** set of derivable qualifiers. Subsumption is then a
//! subset check ([`crate::ty::subtype`]).

use crate::rules::{QualSystem, Shape};
use crate::syntax::{Core, LExpr, LStmt, LType};
use crate::ty::subtype;
use std::collections::HashMap;
use std::fmt;
use stq_util::Symbol;

/// A typing failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeError {
    /// Variable not in scope.
    Unbound(Symbol),
    /// `sub` is not a subtype of `sup` where required.
    NotSubtype {
        /// The inferred type.
        sub: LType,
        /// The required type.
        sup: LType,
    },
    /// Expected a particular shape (ref, fun, int) and found another.
    WrongShape {
        /// What was expected.
        expected: &'static str,
        /// What was found.
        found: LType,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Unbound(x) => write!(f, "unbound variable {x}"),
            TypeError::NotSubtype { sub, sup } => {
                write!(f, "`{sub}` is not a subtype of `{sup}`")
            }
            TypeError::WrongShape { expected, found } => {
                write!(f, "expected {expected}, found `{found}`")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// A typing environment Γ.
pub type TyEnv = HashMap<Symbol, LType>;

/// Infers the principal type of an expression.
pub fn infer_expr(sys: &QualSystem, env: &TyEnv, e: &LExpr) -> Result<LType, TypeError> {
    match e {
        LExpr::Int(c) => Ok(LType {
            core: Core::Int,
            quals: sys.quals_of_const(*c),
        }),
        LExpr::Unit => Ok(LType::unit()),
        LExpr::Var(x) => env.get(x).cloned().ok_or(TypeError::Unbound(*x)),
        LExpr::Lam(x, ann, body) => {
            let mut inner = env.clone();
            inner.insert(*x, ann.clone());
            let ret = infer_stmt(sys, &inner, body)?;
            Ok(LType::fun(ann.clone(), ret))
        }
        LExpr::Deref(inner) => {
            let t = infer_expr(sys, env, inner)?;
            match &t.core {
                Core::Ref(cell) => Ok((**cell).clone()),
                _ => Err(TypeError::WrongShape {
                    expected: "a reference",
                    found: t,
                }),
            }
        }
        LExpr::Neg(inner) => {
            let t = expect_int(sys, env, inner)?;
            Ok(LType {
                core: Core::Int,
                quals: sys.quals_of_compound(Shape::Neg, &[&t.quals]),
            })
        }
        LExpr::Binop(op, a, b) => {
            let ta = expect_int(sys, env, a)?;
            let tb = expect_int(sys, env, b)?;
            Ok(LType {
                core: Core::Int,
                quals: sys.quals_of_compound(Shape::Binop(*op), &[&ta.quals, &tb.quals]),
            })
        }
    }
}

fn expect_int(sys: &QualSystem, env: &TyEnv, e: &LExpr) -> Result<LType, TypeError> {
    let t = infer_expr(sys, env, e)?;
    if matches!(t.core, Core::Int) {
        Ok(t)
    } else {
        Err(TypeError::WrongShape {
            expected: "an int",
            found: t,
        })
    }
}

/// Infers the principal type of a statement.
pub fn infer_stmt(sys: &QualSystem, env: &TyEnv, s: &LStmt) -> Result<LType, TypeError> {
    match s {
        LStmt::Expr(e) => infer_expr(sys, env, e),
        LStmt::Seq(a, b) => {
            infer_stmt(sys, env, a)?;
            infer_stmt(sys, env, b)
        }
        LStmt::Let(x, bound, body) => {
            let t = infer_stmt(sys, env, bound)?;
            let mut inner = env.clone();
            inner.insert(*x, t);
            infer_stmt(sys, &inner, body)
        }
        LStmt::Ref(init, cell) => {
            let t = infer_stmt(sys, env, init)?;
            if !subtype(&t, cell) {
                return Err(TypeError::NotSubtype {
                    sub: t,
                    sup: cell.clone(),
                });
            }
            Ok(cell.clone().reference())
        }
        LStmt::Assign(target, value) => {
            let tt = infer_stmt(sys, env, target)?;
            let cell = match &tt.core {
                Core::Ref(cell) => (**cell).clone(),
                _ => {
                    return Err(TypeError::WrongShape {
                        expected: "a reference",
                        found: tt,
                    })
                }
            };
            let tv = infer_stmt(sys, env, value)?;
            if !subtype(&tv, &cell) {
                return Err(TypeError::NotSubtype { sub: tv, sup: cell });
            }
            Ok(LType::unit())
        }
        LStmt::App(fun, arg) => {
            let tf = infer_stmt(sys, env, fun)?;
            let (dom, cod) = match &tf.core {
                Core::Fun(a, b) => ((**a).clone(), (**b).clone()),
                _ => {
                    return Err(TypeError::WrongShape {
                        expected: "a function",
                        found: tf,
                    })
                }
            };
            let ta = infer_stmt(sys, env, arg)?;
            if !subtype(&ta, &dom) {
                return Err(TypeError::NotSubtype { sub: ta, sup: dom });
            }
            Ok(cod)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Op;

    fn sys() -> QualSystem {
        QualSystem::paper_builtins()
    }

    fn infer(s: &LStmt) -> Result<LType, TypeError> {
        infer_stmt(&sys(), &TyEnv::new(), s)
    }

    fn pos() -> LType {
        LType::int().with_qual("pos")
    }

    #[test]
    fn constants_get_principal_qualifiers() {
        let t = infer(&LStmt::expr(LExpr::Int(3))).unwrap();
        assert!(t.quals.contains(&Symbol::intern("pos")));
        assert!(t.quals.contains(&Symbol::intern("nonzero")));
        let t0 = infer(&LStmt::expr(LExpr::Int(0))).unwrap();
        assert!(t0.quals.is_empty());
    }

    #[test]
    fn products_multiply_signs() {
        let e = LExpr::Int(2).binop(Op::Mul, LExpr::Int(-3));
        let t = infer(&LStmt::expr(e)).unwrap();
        assert!(t.quals.contains(&Symbol::intern("neg")));
        assert!(t.quals.contains(&Symbol::intern("nonzero")));
    }

    #[test]
    fn let_propagates_principal_types() {
        // let x = 3 in x * x : pos.
        let s = LStmt::let_in(
            "x",
            LStmt::expr(LExpr::Int(3)),
            LStmt::expr(LExpr::var("x").binop(Op::Mul, LExpr::var("x"))),
        );
        let t = infer(&s).unwrap();
        assert!(t.quals.contains(&Symbol::intern("pos")));
    }

    #[test]
    fn ref_annotation_checks_subtyping() {
        // ref 3 : int pos is fine; ref 0 : int pos is not.
        let ok = LStmt::Ref(Box::new(LStmt::expr(LExpr::Int(3))), pos());
        assert!(infer(&ok).is_ok());
        let bad = LStmt::Ref(Box::new(LStmt::expr(LExpr::Int(0))), pos());
        assert!(matches!(infer(&bad), Err(TypeError::NotSubtype { .. })));
    }

    #[test]
    fn assignment_respects_cell_type() {
        // let r = ref 3 : int pos in r := 0  — rejected.
        let s = LStmt::let_in(
            "r",
            LStmt::Ref(Box::new(LStmt::expr(LExpr::Int(3))), pos()),
            LStmt::Assign(
                Box::new(LStmt::expr(LExpr::var("r"))),
                Box::new(LStmt::expr(LExpr::Int(0))),
            ),
        );
        assert!(infer(&s).is_err());
        // r := 5 is fine.
        let s2 = LStmt::let_in(
            "r",
            LStmt::Ref(Box::new(LStmt::expr(LExpr::Int(3))), pos()),
            LStmt::Assign(
                Box::new(LStmt::expr(LExpr::var("r"))),
                Box::new(LStmt::expr(LExpr::Int(5))),
            ),
        );
        assert_eq!(infer(&s2).unwrap(), LType::unit());
    }

    #[test]
    fn deref_recovers_cell_type() {
        let s = LStmt::let_in(
            "r",
            LStmt::Ref(Box::new(LStmt::expr(LExpr::Int(3))), pos()),
            LStmt::expr(LExpr::Deref(Box::new(LExpr::var("r")))),
        );
        let t = infer(&s).unwrap();
        assert!(t.quals.contains(&Symbol::intern("pos")));
    }

    #[test]
    fn application_with_subsumption() {
        // (λx:int. x) applied to a pos argument: fine by subsumption.
        let f = LExpr::Lam(
            Symbol::intern("x"),
            LType::int(),
            Box::new(LStmt::expr(LExpr::var("x"))),
        );
        let app = LStmt::App(
            Box::new(LStmt::expr(f)),
            Box::new(LStmt::expr(LExpr::Int(7))),
        );
        assert_eq!(infer(&app).unwrap(), LType::int());
        // (λx:int pos. x) applied to plain int: rejected.
        let g = LExpr::Lam(
            Symbol::intern("x"),
            pos(),
            Box::new(LStmt::expr(LExpr::var("x"))),
        );
        let bad = LStmt::App(
            Box::new(LStmt::expr(g)),
            Box::new(LStmt::expr(LExpr::Int(0))),
        );
        assert!(infer(&bad).is_err());
    }

    #[test]
    fn unbound_variable() {
        assert_eq!(
            infer(&LStmt::expr(LExpr::var("ghost"))),
            Err(TypeError::Unbound(Symbol::intern("ghost")))
        );
    }

    #[test]
    fn deref_of_non_ref_is_rejected() {
        let s = LStmt::expr(LExpr::Deref(Box::new(LExpr::Int(1))));
        assert!(matches!(infer(&s), Err(TypeError::WrongShape { .. })));
    }

    #[test]
    fn no_subtyping_under_ref_in_assignment_position() {
        // let r = ref 3 : int pos in let s = (r : ref int)… cannot be
        // expressed without a coercion — the type system simply has no
        // path from ref (int pos) to ref int. Verify the shapes differ.
        let t1 = pos().reference();
        let t2 = LType::int().reference();
        assert!(!subtype(&t1, &t2));
    }
}
