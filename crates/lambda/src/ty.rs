//! The subtype relation of paper Figure 9.
//!
//! * `SubValQual`: `τ q ≤ τ` — dropping qualifiers widens.
//! * `SubQualReorder`: definitional (qualifier sets).
//! * `SubRef`: `ref τ` is a subtype only of itself — **no** subtyping
//!   under references.
//! * `SubFun`: contravariant domain, covariant codomain.
//! * Reflexivity and transitivity.

use crate::syntax::{Core, LType};

/// Whether `sub ≤ sup` in the Figure 9 subtype relation.
///
/// # Examples
///
/// ```
/// use stq_lambda::syntax::LType;
/// use stq_lambda::ty::subtype;
///
/// let pos_int = LType::int().with_qual("pos");
/// assert!(subtype(&pos_int, &LType::int()));          // τ q ≤ τ
/// assert!(!subtype(&LType::int(), &pos_int));
/// // No subtyping under ref:
/// assert!(!subtype(&pos_int.clone().reference(), &LType::int().reference()));
/// ```
pub fn subtype(sub: &LType, sup: &LType) -> bool {
    // Every qualifier demanded by the supertype must be present.
    if !sup.quals.is_subset(&sub.quals) {
        return false;
    }
    match (&sub.core, &sup.core) {
        (Core::Unit, Core::Unit) | (Core::Int, Core::Int) => true,
        // SubRef: invariant, including qualifier sets.
        (Core::Ref(a), Core::Ref(b)) => a == b,
        // SubFun: contravariant / covariant.
        (Core::Fun(a1, b1), Core::Fun(a2, b2)) => subtype(a2, a1) && subtype(b1, b2),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos() -> LType {
        LType::int().with_qual("pos")
    }

    #[test]
    fn reflexive() {
        for t in [
            LType::unit(),
            LType::int(),
            pos(),
            pos().reference(),
            LType::fun(pos(), LType::int()),
        ] {
            assert!(subtype(&t, &t), "{t} ≤ {t}");
        }
    }

    #[test]
    fn dropping_qualifiers_widens() {
        assert!(subtype(&pos(), &LType::int()));
        let two = LType::int().with_qual("pos").with_qual("nonzero");
        assert!(subtype(&two, &pos()));
        assert!(subtype(&two, &LType::int()));
        assert!(!subtype(&pos(), &two));
    }

    #[test]
    fn ref_is_invariant() {
        assert!(!subtype(&pos().reference(), &LType::int().reference()));
        assert!(!subtype(&LType::int().reference(), &pos().reference()));
        assert!(subtype(&pos().reference(), &pos().reference()));
        // But qualifiers on the ref itself still drop.
        let qref = pos().reference().with_qual("nonzero");
        assert!(subtype(&qref, &pos().reference()));
    }

    #[test]
    fn function_variance() {
        // (int → int pos) ≤ (int pos → int): weaker domain, stronger
        // codomain on the left.
        let strong = LType::fun(LType::int(), pos());
        let weak = LType::fun(pos(), LType::int());
        assert!(subtype(&strong, &weak));
        assert!(!subtype(&weak, &strong));
    }

    #[test]
    fn distinct_cores_unrelated() {
        assert!(!subtype(&LType::int(), &LType::unit()));
        assert!(!subtype(&LType::int(), &LType::int().reference()));
    }

    #[test]
    fn transitivity_spot_checks() {
        let a = LType::int().with_qual("pos").with_qual("nonzero");
        let b = pos();
        let c = LType::int();
        assert!(subtype(&a, &b) && subtype(&b, &c) && subtype(&a, &c));
    }
}
