//! Semantic conformance (paper Figure 11) and the preservation theorem
//! (Theorem 5.1) as executable checks.
//!
//! `Γ; τ ⊨ ⟨σ, v⟩` holds when `v` is well-typed at `τ` *and* satisfies
//! the invariant `[[q]]` of every qualifier `q` in `τ` (rule Q-QUAL),
//! recursing through the store at `ref` types (rule Q-REF). Combined with
//! store conformance `Γ ~ σ` (every cell conforms to its cell type), this
//! is exactly what Theorem 5.1 guarantees is preserved by evaluation —
//! the property the differential tests in this crate exercise.

use crate::eval::{Store, Value};
use crate::rules::QualSystem;
use crate::syntax::{Core, LType};
use crate::ty::subtype;
use crate::typecheck::{infer_stmt, TyEnv};

/// Whether `v` semantically conforms to `τ` in `σ` (Figure 11).
///
/// Closures are checked by re-typechecking their bodies under the
/// parameter annotation (rule Q-LAM); since run-time environments do not
/// carry types for captured variables, captured variables are typed
/// conservatively by conformance-directed lookup — in generated programs
/// closures are closed over base-typed values, which this handles
/// exactly.
pub fn conforms(sys: &QualSystem, store: &Store, v: &Value, ty: &LType) -> bool {
    // Q-QUAL: every qualifier's invariant must hold of the value.
    for &q in &ty.quals {
        match (sys.invariant_of(q), v) {
            (Some(inv), Value::Int(c)) => {
                if !inv(*c) {
                    return false;
                }
            }
            // A declared (integer) invariant on a non-integer value can
            // never be exercised; qualifiers without invariants hold
            // vacuously.
            (Some(_), _) => {}
            (None, _) => {}
        }
    }
    match (&ty.core, v) {
        (Core::Int, Value::Int(_)) => true,
        (Core::Unit, Value::Unit) => true,
        (Core::Ref(cell), Value::Loc(l)) => match store.read(*l) {
            // Q-REF: the cell's contents conform to the cell type.
            Some(inner) => conforms(sys, store, inner, cell),
            None => false,
        },
        (
            Core::Fun(dom, cod),
            Value::Closure {
                param,
                param_ty,
                body,
                ..
            },
        ) => {
            // Q-LAM approximation: the annotation must accept the domain,
            // and the body must typecheck to a subtype of the codomain
            // under that annotation (free captured variables make this
            // undecidable in general; we accept if typechecking fails
            // only due to unbound captured variables).
            if !subtype(dom, param_ty) && !subtype(param_ty, dom) {
                return false;
            }
            let mut env = TyEnv::new();
            env.insert(*param, param_ty.clone());
            match infer_stmt(sys, &env, body) {
                Ok(t) => subtype(&t, cod),
                Err(crate::typecheck::TypeError::Unbound(_)) => true,
                Err(_) => false,
            }
        }
        _ => false,
    }
}

/// Store conformance `Γ ~ σ`: every cell's contents conform to its cell
/// type (Definition 5.2).
pub fn store_conforms(sys: &QualSystem, store: &Store) -> bool {
    store.iter().all(|(_, v, ty)| conforms(sys, store, v, ty))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_program;
    use crate::syntax::{LExpr, LStmt, Op};

    fn sys() -> QualSystem {
        QualSystem::paper_builtins()
    }

    fn pos() -> LType {
        LType::int().with_qual("pos")
    }

    #[test]
    fn integers_conform_when_invariants_hold() {
        let s = sys();
        let store = Store::new();
        assert!(conforms(&s, &store, &Value::Int(3), &pos()));
        assert!(!conforms(&s, &store, &Value::Int(0), &pos()));
        assert!(conforms(&s, &store, &Value::Int(0), &LType::int()));
        assert!(!conforms(&s, &store, &Value::Unit, &LType::int()));
    }

    #[test]
    fn references_recurse_into_the_store() {
        let s = sys();
        let mut store = Store::new();
        let l = store.alloc(Value::Int(5), pos());
        assert!(conforms(&s, &store, &Value::Loc(l), &pos().reference()));
        store.write(l, Value::Int(-1));
        assert!(!conforms(&s, &store, &Value::Loc(l), &pos().reference()));
    }

    #[test]
    fn preservation_on_a_well_typed_program() {
        // let r = ref 3 : int pos in (r := 7 * 2; !r)
        let s = LStmt::let_in(
            "r",
            LStmt::Ref(Box::new(LStmt::expr(LExpr::Int(3))), pos()),
            LStmt::Seq(
                Box::new(LStmt::Assign(
                    Box::new(LStmt::expr(LExpr::var("r"))),
                    Box::new(LStmt::expr(LExpr::Int(7).binop(Op::Mul, LExpr::Int(2)))),
                )),
                Box::new(LStmt::expr(LExpr::Deref(Box::new(LExpr::var("r"))))),
            ),
        );
        let system = sys();
        let ty = infer_stmt(&system, &TyEnv::new(), &s).expect("typechecks");
        let (v, store) = eval_program(&s, 10_000).expect("evaluates");
        assert!(conforms(&system, &store, &v, &ty));
        assert!(store_conforms(&system, &store));
    }

    #[test]
    fn broken_rule_breaks_preservation() {
        // Under the erroneous subtraction variant, `let x = 2 - 3 : pos`
        // typechecks but the value violates pos's invariant — exactly the
        // failure mode the soundness checker exists to prevent.
        let system = QualSystem::broken_subtraction_variant();
        let e = LExpr::Int(2).binop(Op::Sub, LExpr::Int(3));
        let s = LStmt::Ref(Box::new(LStmt::expr(e)), pos());
        let ty = infer_stmt(&system, &TyEnv::new(), &s).expect("typechecks under broken rules");
        let (v, store) = eval_program(&s, 1_000).expect("evaluates");
        // Preservation FAILS: the store holds -1 at an int pos cell.
        assert!(!store_conforms(&system, &store) || !conforms(&system, &store, &v, &ty));
    }

    #[test]
    fn closures_conform_to_their_function_types() {
        let s = sys();
        let store = Store::new();
        let f = LExpr::Lam(
            stq_util::Symbol::intern("x"),
            pos(),
            Box::new(LStmt::expr(LExpr::var("x"))),
        );
        let mut fuel = 100;
        let v = crate::eval::eval_expr(&f, &crate::eval::Env::new(), &store, &mut fuel)
            .expect("lambda evaluates");
        assert!(conforms(&s, &store, &v, &LType::fun(pos(), pos())));
        assert!(conforms(&s, &store, &v, &LType::fun(pos(), LType::int())));
    }
}
