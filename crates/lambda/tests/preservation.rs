//! Property-based test of the preservation theorem (Theorem 5.1):
//! if a program typechecks under locally sound rules, evaluation yields a
//! value and store that semantically conform to their types.

use proptest::prelude::*;
use stq_lambda::conform::{conforms, store_conforms};
use stq_lambda::eval::{eval_program, EvalError};
use stq_lambda::gen::{generate_program, GenConfig};
use stq_lambda::rules::QualSystem;
use stq_lambda::typecheck::{infer_stmt, TyEnv};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn preservation_holds_for_generated_programs(seed in any::<u64>()) {
        let sys = QualSystem::paper_builtins();
        let program = generate_program(seed, &sys, GenConfig::default());
        let ty = infer_stmt(&sys, &TyEnv::new(), &program)
            .expect("generated programs are well-typed");
        match eval_program(&program, 200_000) {
            Ok((value, store)) => {
                prop_assert!(
                    conforms(&sys, &store, &value, &ty),
                    "value {value} does not conform to {ty} for program {program}"
                );
                prop_assert!(
                    store_conforms(&sys, &store),
                    "store conformance failed for program {program}"
                );
            }
            Err(EvalError::OutOfFuel) => { /* divergence is allowed */ }
            Err(EvalError::Stuck(what)) => {
                prop_assert!(false, "well-typed program got stuck: {what}\n{program}");
            }
        }
    }

    #[test]
    fn broken_rules_eventually_violate_preservation(_x in 0..1u8) {
        // With the erroneous subtraction rule, some program violates its
        // type's invariant at run time — the negative counterpart of the
        // theorem. One hand-picked witness suffices (searching randomly
        // would be flaky).
        use stq_lambda::syntax::{LExpr, LStmt, LType, Op};
        let sys = QualSystem::broken_subtraction_variant();
        let pos = LType::int().with_qual("pos");
        let prog = LStmt::Ref(
            Box::new(LStmt::expr(LExpr::Int(1).binop(Op::Sub, LExpr::Int(5)))),
            pos,
        );
        let ty = infer_stmt(&sys, &TyEnv::new(), &prog).expect("typechecks under broken rules");
        let (v, store) = eval_program(&prog, 1_000).expect("evaluates");
        prop_assert!(!(conforms(&sys, &store, &v, &ty) && store_conforms(&sys, &store)));
    }

    #[test]
    fn subtype_is_reflexive_on_generated_types(seed in any::<u64>()) {
        // Use generated programs' principal types as a type source.
        let sys = QualSystem::paper_builtins();
        let program = generate_program(seed, &sys, GenConfig { max_depth: 4 });
        let ty = infer_stmt(&sys, &TyEnv::new(), &program).expect("well-typed");
        prop_assert!(stq_lambda::subtype(&ty, &ty));
        // Dropping all qualifiers widens.
        prop_assert!(stq_lambda::subtype(&ty, &ty.stripped()));
    }
}
