//! End-to-end checker tests over the paper's example programs.

use stq_cir::parse::parse_program;
use stq_qualspec::Registry;
use stq_typecheck::{check_program, CheckResult};

fn check(src: &str) -> CheckResult {
    let registry = Registry::builtins();
    let program = parse_program(src, &registry.names())
        .unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"));
    check_program(&registry, &program)
}

/// Checks with only a subset of the builtin qualifiers registered (the
/// paper's experiments run one qualifier discipline at a time).
fn check_subset(src: &str, quals: &[&str]) -> CheckResult {
    let full = Registry::builtins();
    let mut registry = Registry::new();
    for q in quals {
        registry
            .add(full.get_by_name(q).expect("builtin").clone())
            .expect("no duplicates");
    }
    let program = parse_program(src, &registry.names())
        .unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"));
    check_program(&registry, &program)
}

fn assert_clean(src: &str) {
    let r = check(src);
    assert!(
        r.stats.qualifier_errors == 0 && !r.diags.has_errors(),
        "expected clean, got:\n{}",
        r.diags
    );
}

fn assert_violations(src: &str, n: usize) {
    let r = check(src);
    assert_eq!(
        r.stats.qualifier_errors, n,
        "expected {n} violations, got {}:\n{}",
        r.stats.qualifier_errors, r.diags
    );
}

// ----- pos / figure 2 -----

#[test]
fn lcm_from_figure_2_typechecks() {
    assert_clean(
        "int pos gcd(int pos n, int pos m);
         int pos lcm(int pos a, int pos b) {
             int pos d = gcd(a, b);
             int pos prod = a * b;
             return (int pos) (prod / d);
         }",
    );
}

#[test]
fn lcm_without_the_cast_fails() {
    // The type rules for pos cannot derive int pos for prod / d.
    assert_violations(
        "int pos gcd(int pos n, int pos m);
         int pos lcm(int pos a, int pos b) {
             int pos d = gcd(a, b);
             int pos prod = a * b;
             return prod / d;
         }",
        1,
    );
}

#[test]
fn product_rule_derives_pos() {
    assert_clean("void f(int pos a, int pos b) { int pos p = a * b; }");
}

#[test]
fn sum_of_pos_is_not_derivable() {
    // No case rule covers addition.
    assert_violations("void f(int pos a, int pos b) { int pos p = a + b; }", 1);
}

#[test]
fn negation_of_neg_is_pos() {
    assert_clean("void f(int neg n) { int pos p = -n; }");
}

#[test]
fn positive_constant_initializer() {
    assert_clean("int pos limit = 100;");
}

#[test]
fn zero_constant_is_not_pos() {
    assert_violations("int pos zero = 0;", 1);
}

// ----- subtyping (§2.1.2) -----

#[test]
fn value_qualified_is_subtype_of_unqualified() {
    assert_clean(
        "void f() {
             int pos x = 3;
             int y = x;
         }",
    );
}

#[test]
fn unqualified_is_not_subtype_of_qualified() {
    assert_violations(
        "void f(int y) {
             int pos x = y;
         }",
        1,
    );
}

#[test]
fn pointer_types_are_invariant_in_pointee_quals() {
    // The paper's unsoundness example: int pos* must NOT convert to int*.
    assert_violations(
        "void f() {
             int pos x = 3;
             int* p = &x;
         }",
        1,
    );
}

#[test]
fn matching_pointee_quals_are_fine() {
    assert_clean(
        "void f() {
             int pos x = 3;
             int pos* p = &x;
         }",
    );
}

// ----- nonzero / figure 3 -----

#[test]
fn division_by_nonzero_passes_restrict() {
    assert_clean("int f(int a, int nonzero d) { return a / d; }");
}

#[test]
fn division_by_plain_int_fails_restrict() {
    assert_violations("int f(int a, int d) { return a / d; }", 1);
}

#[test]
fn pos_is_nonzero_via_case_rule() {
    // The paper: d is pos, so the division restrict succeeds.
    assert_clean("int f(int a, int pos d) { return a / d; }");
}

#[test]
fn division_by_literal_constant() {
    assert_clean("int f(int a) { return a / 2; }");
}

#[test]
fn division_by_zero_literal_fails() {
    assert_violations("int f(int a) { return a / 0; }", 1);
}

// ----- nonnull / figure 12 -----

#[test]
fn deref_of_nonnull_is_allowed() {
    assert_clean("int f(int* nonnull p) { return *p; }");
}

#[test]
fn deref_of_plain_pointer_fails_restrict() {
    assert_violations("int f(int* p) { return *p; }", 1);
}

#[test]
fn address_of_is_nonnull() {
    assert_clean(
        "void f() {
             int x;
             int* nonnull p = &x;
             *p = 3;
         }",
    );
}

#[test]
fn null_guard_is_invisible_to_flow_insensitive_checking() {
    // The grep idiom from §6.1: the guard does not help; a cast is needed.
    assert_violations(
        "int f(int* t) {
             if (t != NULL) {
                 return *t;
             }
             return 0;
         }",
        1,
    );
    assert_clean(
        "int f(int* t) {
             if (t != NULL) {
                 int* nonnull u = (int* nonnull) t;
                 return *u;
             }
             return 0;
         }",
    );
}

#[test]
fn writes_through_pointers_are_also_dereferences() {
    assert_violations("void f(int* p) { *p = 1; }", 1);
    assert_clean("void f(int* nonnull p) { *p = 1; }");
}

#[test]
fn struct_fields_can_be_nonnull() {
    assert_clean(
        "struct dfa { int* nonnull trans; };
         int f(struct dfa* nonnull d) {
             return *(d->trans);
         }",
    );
}

// ----- tainted / untainted (figure 4 and §6.3) -----

#[test]
fn printf_with_constant_format_is_clean() {
    // §6.3: the constants rule obviates casts entirely.
    assert_clean(
        "int printf(char* untainted fmt, ...);
         void f(char* buf) {
             printf(\"%s\", buf);
         }",
    );
}

#[test]
fn printf_with_tainted_buffer_fails() {
    // The bftpd-style vulnerability: an arbitrary buffer as format string.
    assert_violations(
        "int printf(char* untainted fmt, ...);
         void f(char* buf) {
             printf(buf);
         }",
        1,
    );
}

#[test]
fn untainted_flows_to_untainted() {
    assert_clean(
        "int printf(char* untainted fmt, ...);
         void f(char* untainted fmt) {
             printf(fmt);
         }",
    );
}

#[test]
fn untainted_flows_to_plain() {
    // T untainted ≤ T.
    assert_clean(
        "void g(char* s);
         void f(char* untainted fmt) {
             g(fmt);
         }",
    );
}

#[test]
fn cast_to_untainted_marks_trust() {
    assert_clean(
        "int printf(char* untainted fmt, ...);
         void f(char* buf) {
             char* untainted fmt = (char* untainted) buf;
             printf(fmt, buf);
         }",
    );
}

// ----- unique / figure 5, figure 6 -----

#[test]
fn make_array_from_figure_6_typechecks() {
    // Checked under the unique discipline alone, as in §2.2 (with nonnull
    // also registered, the array[i] dereference would additionally demand
    // a nonnull pointer).
    let r = check_subset(
        "int* unique array;
         void make_array(int n) {
             array = (int*) malloc(sizeof(int) * n);
             for (int i = 0; i < n; i++)
                 array[i] = i;
         }",
        &["unique"],
    );
    assert_eq!(r.stats.qualifier_errors, 0, "{}", r.diags);
    assert!(!r.diags.has_errors(), "{}", r.diags);
}

#[test]
fn unique_accepts_null_assignment() {
    assert_clean(
        "int* unique p;
         void f() { p = NULL; }",
    );
}

#[test]
fn unique_rejects_pointer_copy_assignment() {
    // q = p would duplicate the reference... and assigning q into a
    // unique p is also not NULL/new.
    assert_violations(
        "void f(int* q) {
             int* unique p = q;
         }",
        1,
    );
}

#[test]
fn reading_unique_on_rhs_violates_disallow() {
    // int* q = p; — the paper's aliasing example.
    assert_violations(
        "int* unique p;
         void f() {
             int* q = p;
         }",
        1,
    );
}

#[test]
fn dereferencing_unique_is_allowed() {
    // int i = *p; is "perfectly safe" — but the deref needs nonnull,
    // so use a registry-independent shape: assignment through deref.
    let r = check(
        "int* unique p;
         void f() {
             int i = *p;
         }",
    );
    // One nonnull restrict violation (p not known nonnull), but NO
    // disallow violation for unique.
    assert_eq!(r.stats.qualifier_errors, 1, "{}", r.diags);
    let msgs: Vec<String> = r.diags.iter().map(|d| d.message.clone()).collect();
    assert!(msgs.iter().all(|m| !m.contains("unique")), "{msgs:?}");
}

#[test]
fn assignments_through_unique_deref_are_unrestricted() {
    let r = check(
        "int* unique array;
         void f(int i) {
             array[i] = i;
         }",
    );
    let msgs: Vec<String> = r.diags.iter().map(|d| d.message.clone()).collect();
    assert!(msgs.iter().all(|m| !m.contains("unique")), "{msgs:?}");
}

#[test]
fn passing_unique_global_to_function_violates_disallow() {
    // §6.2: "this idiom is a violation of uniqueness".
    assert_violations(
        "int* unique g;
         void use(int* p);
         void f() {
             use(g);
         }",
        1,
    );
}

#[test]
fn call_result_into_unique_requires_cast() {
    // §6.2: dfa is initialized from the parser module; the assign rules
    // are insufficient and a cast is required.
    assert_violations(
        "int* make();
         int* unique d;
         void f() {
             d = make();
         }",
        1,
    );
    assert_clean(
        "int* make();
         int* unique d;
         void f() {
             int* t;
             t = make();
             d = (int* unique) t;
         }",
    );
}

// ----- unaliased / figure 7 -----

#[test]
fn unaliased_variable_accepts_any_value() {
    assert_clean(
        "void f(int x) {
             int unaliased y = x;
             y = x * 2;
         }",
    );
}

#[test]
fn taking_address_of_unaliased_fails() {
    assert_violations(
        "void f() {
             int unaliased y = 0;
             int* p = &y;
         }",
        1,
    );
}

#[test]
fn reading_unaliased_is_fine() {
    assert_clean(
        "void f() {
             int unaliased y = 1;
             int z = y;
         }",
    );
}

// ----- calls and returns -----

#[test]
fn return_type_qualifiers_are_checked() {
    assert_violations("int pos f(int x) { return x; }", 1);
    assert_clean("int pos f(int pos x) { return x; }");
}

#[test]
fn argument_qualifiers_are_checked() {
    assert_violations(
        "void g(int pos x);
         void f(int y) { g(y); }",
        1,
    );
    assert_clean(
        "void g(int pos x);
         void f(int pos y) { g(y); }",
    );
}

#[test]
fn call_results_carry_declared_qualifiers() {
    assert_clean(
        "int pos g();
         void f() { int pos x; x = g(); }",
    );
    assert_violations(
        "int g();
         void f() { int pos x; x = g(); }",
        1,
    );
}

#[test]
fn arity_mismatch_is_an_error() {
    let r = check(
        "void g(int x);
         void f() { g(1, 2); }",
    );
    assert!(r.diags.has_errors());
}

// ----- statistics -----

#[test]
fn stats_count_dereferences_annotations_casts() {
    let r = check(
        "int* nonnull g;
         int f(int* nonnull p, int* q) {
             int a = *p;
             int b = *(int* nonnull) q;
             *g = a;
             return b;
         }",
    );
    assert_eq!(r.stats.dereferences, 3);
    // g, p annotated (q and locals are not).
    assert_eq!(r.stats.annotations, 2);
    assert_eq!(r.stats.casts, 1);
    assert_eq!(r.stats.qualifier_errors, 0, "{}", r.diags);
}

#[test]
fn stats_count_printf_calls() {
    let r = check(
        "int printf(char* untainted fmt, ...);
         void f() {
             printf(\"a\");
             printf(\"b %d\", 1);
         }",
    );
    assert_eq!(r.stats.printf_calls, 2);
}

// ----- base-type errors -----

#[test]
fn unbound_variable_is_an_error() {
    let r = check("void f() { x = 3; }");
    assert!(r.diags.has_errors());
}

#[test]
fn shape_mismatch_is_an_error() {
    let r = check("void f(int* p) { int x = p; }");
    assert!(r.diags.has_errors());
}

#[test]
fn null_into_int_is_an_error() {
    let r = check("void f() { int x = NULL; }");
    assert!(r.diags.has_errors());
}

// ----- a custom qualifier end-to-end -----

#[test]
fn user_defined_even_qualifier() {
    let mut registry = Registry::builtins();
    registry
        .add_source(
            "value qualifier even(int Expr E)
                case E of
                    decl int Expr E1, E2:
                        E1 + E2, where even(E1) && even(E2)
                  | decl int Expr E1, E2:
                        E1 * E2, where even(E1) || even(E2)
                invariant value(E) > -1",
        )
        .unwrap();
    let src = "void f(int even a, int even b, int c) {
                   int even s = a + b;
                   int even p = a * c;
                   int even q = c;
               }";
    let program = parse_program(src, &registry.names()).unwrap();
    let result = check_program(&registry, &program);
    // Only the last declaration violates.
    assert_eq!(result.stats.qualifier_errors, 1, "{}", result.diags);
}

// ----- qualified struct fields (§3.3) -----

#[test]
fn qualified_field_writes_are_checked() {
    // "The types of struct fields may be qualified, and our qualifier
    // checker will check that they obey the user-defined type rules."
    assert_violations(
        "struct counter { int pos ticks; };
         void reset(struct counter* nonnull c) {
             c->ticks = 0;
         }",
        1,
    );
    assert_clean(
        "struct counter { int pos ticks; };
         void bump(struct counter* nonnull c) {
             c->ticks = c->ticks * 2;
         }",
    );
}

#[test]
fn qualified_field_reads_carry_their_qualifier() {
    assert_clean(
        "struct counter { int pos ticks; };
         int pos snapshot(struct counter* nonnull c) {
             return c->ticks;
         }",
    );
}

#[test]
fn direct_struct_variables_work_too() {
    assert_violations(
        "struct pair { int pos a; int b; };
         void f() {
             struct pair p;
             p.a = -1;
             p.b = -1;
         }",
        1,
    );
}

#[test]
fn field_annotations_count_in_stats() {
    let r = check(
        "struct s { int pos a; int b; int* nonnull c; };",
    );
    assert_eq!(r.stats.annotations, 2);
}

// ----- misc coverage -----

#[test]
fn mod_expression_is_not_pos() {
    // No case rule covers %, even for pos operands.
    assert_violations("void f(int pos a, int pos b) { int pos m = a % b; }", 1);
}

#[test]
fn chains_of_qualifiers_compose() {
    // pos implies nonzero; both demanded at once.
    assert_clean(
        "void f(int pos x) {
             int pos nonzero y = x * x;
         }",
    );
    assert_violations(
        "void f(int neg x) {
             int pos nonzero y = x * x;
         }",
        1,
    );
}

#[test]
fn cast_asserted_ref_qualifier_in_declarations() {
    // The cast exemption applies uniformly to declarations with
    // initializers, not just plain assignments.
    assert_clean(
        "int* make();
         void f() {
             int* t;
             t = make();
             int* unique p = (int* unique) t;
         }",
    );
    // Without the cast the initializer violates the assign rules.
    assert_violations(
        "int* make();
         void f() {
             int* t;
             t = make();
             int* unique p = t;
         }",
        1,
    );
}
