//! Tests for the flow-sensitive extension (the paper's §8 plan): branch
//! conditions refine variable types inside dominated branches.

use stq_cir::parse::parse_program;
use stq_qualspec::Registry;
use stq_typecheck::{check_program_with, CheckOptions, CheckResult};

fn check_fs(src: &str) -> CheckResult {
    let registry = Registry::builtins();
    let program = parse_program(src, &registry.names())
        .unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"));
    check_program_with(
        &registry,
        &program,
        CheckOptions {
            flow_sensitive: true,
        },
    )
}

fn check_fi(src: &str) -> CheckResult {
    let registry = Registry::builtins();
    let program = parse_program(src, &registry.names()).expect("parses");
    check_program_with(&registry, &program, CheckOptions::default())
}

#[test]
fn null_guard_discharges_the_dereference() {
    // The §6.1 grep idiom, without the cast.
    let src = "int f(int* t, int works) {
                   if (t != NULL) {
                       return t[works];
                   }
                   return 0 - 1;
               }";
    assert_eq!(check_fi(src).stats.qualifier_errors, 1);
    let fs = check_fs(src);
    assert_eq!(fs.stats.qualifier_errors, 0, "{}", fs.diags);
}

#[test]
fn positivity_guard_discharges_pos() {
    let src = "int pos abs_or_one(int x) {
                   if (x > 0) {
                       return x;
                   }
                   if (x < 0) {
                       return -x;
                   }
                   return 1;
               }";
    assert_eq!(check_fi(src).stats.qualifier_errors, 2);
    let fs = check_fs(src);
    assert_eq!(fs.stats.qualifier_errors, 0, "{}", fs.diags);
}

#[test]
fn zero_guard_discharges_division() {
    let src = "int safe_div(int a, int d) {
                   if (d != 0) {
                       return a / d;
                   }
                   return 0;
               }";
    assert_eq!(check_fi(src).stats.qualifier_errors, 1);
    assert_eq!(check_fs(src).stats.qualifier_errors, 0);
}

#[test]
fn else_branch_of_equality_is_refined() {
    let src = "int safe_div(int a, int d) {
                   if (d == 0) {
                       return 0;
                   } else {
                       return a / d;
                   }
               }";
    assert_eq!(check_fi(src).stats.qualifier_errors, 1);
    assert_eq!(check_fs(src).stats.qualifier_errors, 0);
}

#[test]
fn assignment_in_branch_invalidates_the_refinement() {
    // t is reassigned inside the branch; the refinement must not apply.
    let src = "int f(int* t, int* u) {
                   if (t != NULL) {
                       t = u;
                       return *t;
                   }
                   return 0;
               }";
    assert_eq!(check_fs(src).stats.qualifier_errors, 1);
}

#[test]
fn address_taken_in_branch_invalidates_the_refinement() {
    let src = "void blank(int** pp);
               int f(int* t) {
                   if (t != NULL) {
                       blank(&t);
                       return *t;
                   }
                   return 0;
               }";
    assert_eq!(check_fs(src).stats.qualifier_errors, 1);
}

#[test]
fn while_conditions_refine_the_body() {
    let src = "int sum(int* p) {
                   int s = 0;
                   while (p != NULL) {
                       s = s + *p;
                       p = NULL;
                   }
                   return s;
               }";
    // p is assigned in the body, so the refinement is dropped and the
    // dereference still errors — conservative but sound.
    assert_eq!(check_fs(src).stats.qualifier_errors, 1);
    // With no reassignment the body is refined (and diverges, but the
    // checker doesn't care).
    let src2 = "int spin(int* p) {
                    int s = 0;
                    while (p != NULL) {
                        s = s + *p;
                    }
                    return s;
                }";
    assert_eq!(check_fs(src2).stats.qualifier_errors, 0);
}

#[test]
fn refinements_do_not_leak_out_of_the_branch() {
    let src = "int f(int* t) {
                   if (t != NULL) {
                       int x = 0;
                   }
                   return *t;
               }";
    assert_eq!(check_fs(src).stats.qualifier_errors, 1);
}

#[test]
fn conjunction_refines_both() {
    let src = "int f(int* a, int* b) {
                   if (a != NULL && b != NULL) {
                       return *a + *b;
                   }
                   return 0;
               }";
    assert_eq!(check_fi(src).stats.qualifier_errors, 2);
    assert_eq!(check_fs(src).stats.qualifier_errors, 0);
}

#[test]
fn disjunction_is_not_misused() {
    // a != NULL || b != NULL justifies neither dereference.
    let src = "int f(int* a, int* b) {
                   if (a != NULL || b != NULL) {
                       return *a + *b;
                   }
                   return 0;
               }";
    assert_eq!(check_fs(src).stats.qualifier_errors, 2);
}

#[test]
fn flow_insensitive_remains_the_default() {
    let registry = Registry::builtins();
    let program = parse_program(
        "int f(int* t) { if (t != NULL) { return *t; } return 0; }",
        &registry.names(),
    )
    .unwrap();
    let result = stq_typecheck::check_program(&registry, &program);
    assert_eq!(result.stats.qualifier_errors, 1);
}

#[test]
fn ablation_on_the_grep_corpus() {
    // The §6.1 imprecision, quantified: the cast-free corpus has 59
    // violations flow-insensitively and none flow-sensitively.
    let registry = Registry::builtins();
    let full = Registry::builtins();
    let mut nonnull_only = Registry::new();
    nonnull_only
        .add(full.get_by_name("nonnull").unwrap().clone())
        .unwrap();
    let src = stq_corpus::grep::grep_dfa_source_direct();
    let program = parse_program(&src, &nonnull_only.names()).expect("parses");
    let _ = registry;
    let fi = check_program_with(&nonnull_only, &program, CheckOptions::default());
    assert_eq!(fi.stats.qualifier_errors, 59);
    assert_eq!(fi.stats.casts, 0);
    let fs = check_program_with(
        &nonnull_only,
        &program,
        CheckOptions {
            flow_sensitive: true,
        },
    );
    assert_eq!(fs.stats.qualifier_errors, 0, "{}", fs.diags);
}
