//! Flow-sensitive refinement — the extension the paper's §8 plans
//! ("We plan to extend our typechecking algorithm to incorporate
//! flow-sensitivity, borrowing ideas from CQUAL").
//!
//! The flow-insensitive checker cannot use branch conditions, which is
//! the §6.1 source of imprecision: `if (t != NULL) … *t …` still needs a
//! cast. With flow sensitivity enabled, a branch on a *variable*
//! comparison refines the variable's type inside the branch with every
//! registered value qualifier whose declared invariant is **implied** by
//! the condition — decided analytically from the invariant's comparison
//! (so `x != NULL` yields `nonnull`, `x > 0` yields `pos` and `nonzero`,
//! and so on, for user-defined qualifiers too).
//!
//! Soundness: a refinement is only applied if the branch never assigns
//! the variable or takes its address (assignment would invalidate the
//! fact; an escaped address could be written through).

use std::collections::BTreeSet;
use stq_cir::ast::*;
use stq_qualspec::{CmpOp, InvPred, InvTerm, QualKind, Registry};
use stq_util::Symbol;

/// What a branch condition tells us about one variable's value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Fact {
    /// Inclusive lower bound.
    pub lo: Option<i64>,
    /// Inclusive upper bound.
    pub hi: Option<i64>,
    /// A single excluded value (from `!=`).
    pub ne: Option<i64>,
}

impl Fact {
    fn from_cmp(op: BinOp, c: i64) -> Option<Fact> {
        let mut f = Fact::default();
        match op {
            BinOp::Eq => {
                f.lo = Some(c);
                f.hi = Some(c);
            }
            BinOp::Ne => f.ne = Some(c),
            BinOp::Lt => f.hi = c.checked_sub(1),
            BinOp::Le => f.hi = Some(c),
            BinOp::Gt => f.lo = c.checked_add(1),
            BinOp::Ge => f.lo = Some(c),
            _ => return None,
        }
        Some(f)
    }

    /// The negated fact (for else branches); only exact negations are
    /// representable.
    fn negate(op: BinOp, c: i64) -> Option<Fact> {
        let flipped = match op {
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            _ => return None,
        };
        Fact::from_cmp(flipped, c)
    }

    /// Whether the fact implies `value OP c`.
    pub fn implies(self, op: CmpOp, c: i64) -> bool {
        match op {
            CmpOp::Gt => self.lo.is_some_and(|lo| lo > c),
            CmpOp::Ge => self.lo.is_some_and(|lo| lo >= c),
            CmpOp::Lt => self.hi.is_some_and(|hi| hi < c),
            CmpOp::Le => self.hi.is_some_and(|hi| hi <= c),
            CmpOp::Eq => self.lo.is_some_and(|lo| lo == c) && self.hi.is_some_and(|hi| hi == c),
            CmpOp::Ne => {
                self.ne == Some(c)
                    || self.lo.is_some_and(|lo| lo > c)
                    || self.hi.is_some_and(|hi| hi < c)
            }
        }
    }
}

/// Variable refinements derived from a condition: which qualifiers can be
/// added to which variables in the then/else branches.
#[derive(Clone, Debug, Default)]
pub struct Refinements {
    /// Refinements valid when the condition is true.
    pub then_branch: Vec<(Symbol, BTreeSet<Symbol>)>,
    /// Refinements valid when the condition is false.
    pub else_branch: Vec<(Symbol, BTreeSet<Symbol>)>,
}

/// Extracts refinements from a branch condition.
pub fn refinements(registry: &Registry, cond: &Expr) -> Refinements {
    let mut out = Refinements::default();
    collect(registry, cond, true, &mut out);
    out
}

fn collect(registry: &Registry, cond: &Expr, positive: bool, out: &mut Refinements) {
    match &cond.kind {
        // Conjunctions refine the then branch; by De Morgan a negated
        // conjunction would only refine the else branch disjunctively,
        // which we do not track.
        ExprKind::Binop(BinOp::And, a, b) if positive => {
            collect(registry, a, true, out);
            collect(registry, b, true, out);
        }
        ExprKind::Unop(UnOp::Not, inner) => collect(registry, inner, !positive, out),
        ExprKind::Binop(op, a, b) if op.is_comparison() => {
            // Normalize to `var OP constant`, mirroring the operator when
            // the variable is on the right (`0 < x` is `x > 0`).
            let (var, constant, op) = match (var_of(a), const_of(b), var_of(b), const_of(a)) {
                (Some(v), Some(c), _, _) => (v, c, *op),
                (_, _, Some(v), Some(c)) => (v, c, mirror(*op)),
                _ => return,
            };
            let (then_fact, else_fact) = if positive {
                (Fact::from_cmp(op, constant), Fact::negate(op, constant))
            } else {
                (Fact::negate(op, constant), Fact::from_cmp(op, constant))
            };
            if let Some(f) = then_fact {
                let quals = implied_qualifiers(registry, f);
                if !quals.is_empty() {
                    out.then_branch.push((var, quals));
                }
            }
            if let Some(f) = else_fact {
                let quals = implied_qualifiers(registry, f);
                if !quals.is_empty() {
                    out.else_branch.push((var, quals));
                }
            }
        }
        // A bare variable as condition: `if (p)` means p ≠ 0.
        ExprKind::Lval(lv) => {
            if let Some(var) = lv.as_var() {
                let (then_fact, else_fact) = if positive {
                    (
                        Fact {
                            ne: Some(0),
                            ..Fact::default()
                        },
                        Fact {
                            lo: Some(0),
                            hi: Some(0),
                            ne: None,
                        },
                    )
                } else {
                    (
                        Fact {
                            lo: Some(0),
                            hi: Some(0),
                            ne: None,
                        },
                        Fact {
                            ne: Some(0),
                            ..Fact::default()
                        },
                    )
                };
                let tq = implied_qualifiers(registry, then_fact);
                if !tq.is_empty() {
                    out.then_branch.push((var, tq));
                }
                let eq = implied_qualifiers(registry, else_fact);
                if !eq.is_empty() {
                    out.else_branch.push((var, eq));
                }
            }
        }
        _ => {}
    }
}

/// Mirrors a comparison across its operands (`c OP x` ⇒ `x mirror(OP) c`).
fn mirror(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn var_of(e: &Expr) -> Option<Symbol> {
    e.as_lval().and_then(Lvalue::as_var)
}

fn const_of(e: &Expr) -> Option<i64> {
    match &e.strip_casts().kind {
        ExprKind::IntLit(v) => Some(*v),
        ExprKind::Null => Some(0),
        _ => None,
    }
}

/// Every registered value qualifier whose declared invariant is a simple
/// comparison implied by the fact.
fn implied_qualifiers(registry: &Registry, fact: Fact) -> BTreeSet<Symbol> {
    let mut out = BTreeSet::new();
    for def in registry.iter() {
        if def.kind != QualKind::Value {
            continue;
        }
        let Some(InvPred::Cmp(op, InvTerm::Value(_), rhs)) = &def.invariant else {
            continue;
        };
        let c = match rhs {
            InvTerm::Int(v) => *v,
            InvTerm::Null => 0,
            _ => continue,
        };
        if fact.implies(*op, c) {
            out.insert(def.name);
        }
    }
    out
}

/// Whether `var` is assigned or has its address taken anywhere in the
/// statement (which would invalidate a refinement).
pub fn var_is_disturbed(stmt: &Stmt, var: Symbol) -> bool {
    match &stmt.kind {
        StmtKind::Instr(i) => instr_disturbs(i, var),
        StmtKind::Block(stmts) => stmts.iter().any(|s| var_is_disturbed(s, var)),
        StmtKind::If(cond, t, e) => {
            expr_takes_addr(cond, var)
                || var_is_disturbed(t, var)
                || e.as_deref().is_some_and(|s| var_is_disturbed(s, var))
        }
        StmtKind::While(cond, body) => expr_takes_addr(cond, var) || var_is_disturbed(body, var),
        StmtKind::Return(e) => e.as_ref().is_some_and(|e| expr_takes_addr(e, var)),
        StmtKind::Decl(d) => {
            // Shadowing declarations end the refinement's relevance but
            // do not invalidate it; initializers may take the address.
            d.init.as_ref().is_some_and(|e| expr_takes_addr(e, var))
        }
    }
}

fn instr_disturbs(i: &Instr, var: Symbol) -> bool {
    let target_is_var = |lv: &Lvalue| lv.as_var() == Some(var);
    match &i.kind {
        InstrKind::Set(lv, e) => target_is_var(lv) || expr_takes_addr(e, var),
        InstrKind::Alloc(lv, e) => target_is_var(lv) || expr_takes_addr(e, var),
        InstrKind::Call(dst, _, args) => {
            dst.as_ref().is_some_and(target_is_var) || args.iter().any(|a| expr_takes_addr(a, var))
        }
        InstrKind::RuntimeCheck(_, e) => expr_takes_addr(e, var),
    }
}

fn expr_takes_addr(e: &Expr, var: Symbol) -> bool {
    match &e.kind {
        ExprKind::AddrOf(lv) => lv.as_var() == Some(var) || lval_takes_addr(lv, var),
        ExprKind::Lval(lv) => lval_takes_addr(lv, var),
        ExprKind::Unop(_, a) => expr_takes_addr(a, var),
        ExprKind::Binop(_, a, b) => expr_takes_addr(a, var) || expr_takes_addr(b, var),
        ExprKind::Cast(_, a) => expr_takes_addr(a, var),
        _ => false,
    }
}

fn lval_takes_addr(lv: &Lvalue, var: Symbol) -> bool {
    match &lv.kind {
        LvalKind::Var(_) => false,
        LvalKind::Deref(e) => expr_takes_addr(e, var),
        LvalKind::Field(inner, _) => lval_takes_addr(inner, var),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_qualspec::Registry;

    fn reg() -> Registry {
        Registry::builtins()
    }

    fn q(n: &str) -> Symbol {
        Symbol::intern(n)
    }

    #[test]
    fn null_test_refines_nonnull() {
        let cond = Expr::binop(BinOp::Ne, Expr::var("t"), Expr::null());
        let r = refinements(&reg(), &cond);
        assert_eq!(r.then_branch.len(), 1);
        let (var, quals) = &r.then_branch[0];
        assert_eq!(*var, q("t"));
        assert!(quals.contains(&q("nonnull")));
        assert!(quals.contains(&q("nonzero"))); // value != 0 too
        assert!(!quals.contains(&q("pos")));
        // The else branch learns t == NULL, which implies nothing useful.
        assert!(r.else_branch.is_empty());
    }

    #[test]
    fn positive_test_refines_pos_and_nonzero() {
        let cond = Expr::binop(BinOp::Gt, Expr::var("x"), Expr::int(0));
        let r = refinements(&reg(), &cond);
        let (_, quals) = &r.then_branch[0];
        assert!(quals.contains(&q("pos")));
        assert!(quals.contains(&q("nonzero")));
        assert!(!quals.contains(&q("neg")));
    }

    #[test]
    fn reversed_operands_work() {
        // 0 < x is the same as x > 0.
        let cond = Expr::binop(BinOp::Lt, Expr::int(0), Expr::var("x"));
        let r = refinements(&reg(), &cond);
        let (_, quals) = &r.then_branch[0];
        assert!(quals.contains(&q("pos")));
    }

    #[test]
    fn equality_refines_else_branch() {
        // if (x == 0) {} else { x is nonzero }
        let cond = Expr::binop(BinOp::Eq, Expr::var("x"), Expr::int(0));
        let r = refinements(&reg(), &cond);
        assert!(r.then_branch.is_empty());
        let (_, quals) = &r.else_branch[0];
        assert!(quals.contains(&q("nonzero")));
    }

    #[test]
    fn negated_condition_swaps_branches() {
        // if (!(x != 0)) {} else { x nonzero }
        let cond = Expr::unop(
            UnOp::Not,
            Expr::binop(BinOp::Ne, Expr::var("x"), Expr::int(0)),
        );
        let r = refinements(&reg(), &cond);
        assert!(r.then_branch.is_empty());
        assert!(r
            .else_branch
            .iter()
            .any(|(_, qs)| qs.contains(&q("nonzero"))));
    }

    #[test]
    fn conjunction_refines_both_variables() {
        let cond = Expr::binop(
            BinOp::And,
            Expr::binop(BinOp::Ne, Expr::var("a"), Expr::null()),
            Expr::binop(BinOp::Gt, Expr::var("b"), Expr::int(5)),
        );
        let r = refinements(&reg(), &cond);
        assert_eq!(r.then_branch.len(), 2);
    }

    #[test]
    fn bare_variable_condition() {
        let cond = Expr::var("p");
        let r = refinements(&reg(), &cond);
        assert!(r.then_branch[0].1.contains(&q("nonnull")));
    }

    #[test]
    fn strict_bounds_compose() {
        // x >= 1 implies x > 0.
        let f = Fact::from_cmp(BinOp::Ge, 1).unwrap();
        assert!(f.implies(CmpOp::Gt, 0));
        assert!(f.implies(CmpOp::Ne, 0));
        assert!(!f.implies(CmpOp::Lt, 0));
        // x > 0 does not imply x > 1.
        let g = Fact::from_cmp(BinOp::Gt, 0).unwrap();
        assert!(!g.implies(CmpOp::Gt, 1));
    }

    #[test]
    fn disturbance_detection() {
        let assigns = Stmt::instr(InstrKind::Set(Lvalue::var("t"), Expr::int(0)));
        assert!(var_is_disturbed(&assigns, q("t")));
        assert!(!var_is_disturbed(&assigns, q("u")));

        let takes_addr = Stmt::instr(InstrKind::Set(
            Lvalue::var("p"),
            Expr::addr_of(Lvalue::var("t")),
        ));
        assert!(var_is_disturbed(&takes_addr, q("t")));

        let reads_only = Stmt::instr(InstrKind::Set(Lvalue::var("y"), Expr::var("t")));
        assert!(!var_is_disturbed(&reads_only, q("t")));

        let nested = Stmt::new(StmtKind::Block(vec![Stmt::new(StmtKind::If(
            Expr::int(1),
            Box::new(assigns),
            None,
        ))]));
        assert!(var_is_disturbed(&nested, q("t")));
    }

    #[test]
    fn custom_qualifier_invariants_participate() {
        // A user-defined qualifier with a comparison invariant is picked
        // up by refinement automatically.
        let mut registry = Registry::new();
        registry
            .add_source(
                "value qualifier big(int Expr E)
                    invariant value(E) > 100",
            )
            .unwrap();
        let cond = Expr::binop(BinOp::Gt, Expr::var("x"), Expr::int(200));
        let r = refinements(&registry, &cond);
        assert!(r.then_branch[0].1.contains(&q("big")));
        let weak = Expr::binop(BinOp::Gt, Expr::var("x"), Expr::int(50));
        let r2 = refinements(&registry, &weak);
        assert!(r2.then_branch.is_empty());
    }
}
