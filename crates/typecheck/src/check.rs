//! The extensible typechecker (paper §3): walks a program applying the
//! standard rules for assignments, calls, and returns, augmented with the
//! user-defined qualifier rules from the registry.
//!
//! * **Value qualifiers** flow through the subtype relation `τ q ≤ τ`:
//!   an assignment target's value qualifiers must each be derivable for
//!   the right-hand side (declared type, cast assertion, or `case` rule).
//!   Types under pointers are invariant (`ref τ ≤ ref τ` only), so nested
//!   qualifier sets must match exactly.
//! * **`restrict` rules** are enforced on every (sub)expression of the
//!   program: wherever a clause's pattern matches, its predicate must hold.
//! * **Reference qualifiers** are enforced on assignments (explicit and
//!   implicit): the right-hand-side form must be licensed by the
//!   qualifier's `assign` block (or `ondecl`), and the `disallow` block
//!   restricts reads and address-taking of qualified l-values on
//!   right-hand sides.
//!
//! Qualifier violations are reported as **warnings** ("compilation is
//! allowed to continue"); base-type problems (unbound variables, shape
//! mismatches) are errors.

use crate::env::{StaticTy, TypeEnv};
use crate::infer::Inference;
use stq_cir::ast::*;
use stq_cir::pretty::{expr_to_string, lval_to_string};
use stq_qualspec::{AssignRhs, Pattern, QualKind, Registry};
use stq_util::{Diagnostics, Severity, Span, Symbol};

/// Counters the experiment harness reports (the columns of Tables 1 and 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Pointer dereferences encountered (reads and writes).
    pub dereferences: usize,
    /// Declaration sites whose type mentions a registered qualifier.
    pub annotations: usize,
    /// Casts to types mentioning a registered qualifier.
    pub casts: usize,
    /// Qualifier violations reported (warnings).
    pub qualifier_errors: usize,
    /// `printf`-family calls encountered.
    pub printf_calls: usize,
    /// Restrict-clause pattern matches checked.
    pub restrict_checks: usize,
    /// Case-clause match attempts performed by inference.
    pub match_attempts: u64,
    /// Expression nodes walked by the checker.
    pub exprs_visited: u64,
    /// Case clauses that fired (pattern matched, guard held).
    pub case_applications: u64,
    /// Inference queries answered from the memo table.
    pub memo_hits: u64,
    /// Inference queries computed from scratch.
    pub memo_misses: u64,
    /// Cast sites that run-time instrumentation would check (casts to a
    /// value qualifier with a declared invariant, per qualifier).
    pub casts_instrumented: usize,
}

/// The outcome of checking a program.
#[derive(Clone, Debug, Default)]
pub struct CheckResult {
    /// All diagnostics, in source order of discovery.
    pub diags: Diagnostics,
    /// Experiment counters.
    pub stats: CheckStats,
}

impl CheckResult {
    /// True if no qualifier violations or errors were found.
    pub fn is_clean(&self) -> bool {
        !self.diags.has_problems()
    }
}

const PRINTF_FAMILY: [&str; 7] = [
    "printf", "fprintf", "sprintf", "snprintf", "syslog", "vsyslog", "vprintf",
];

/// Options controlling the checking pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckOptions {
    /// Enable the flow-sensitive extension (paper §8's planned
    /// extension): branch conditions refine variable types inside the
    /// branches they dominate. Off by default — the paper's system is
    /// flow-insensitive.
    pub flow_sensitive: bool,
}

/// Typechecks `program` against the qualifier rules in `registry`.
///
/// # Examples
///
/// ```
/// use stq_qualspec::Registry;
/// use stq_cir::parse::parse_program;
/// use stq_typecheck::check_program;
///
/// let registry = Registry::builtins();
/// let program = parse_program(
///     "int pos gcd(int pos n, int pos m);
///      int pos lcm(int pos a, int pos b) {
///          int pos d = gcd(a, b);
///          int pos prod = a * b;
///          return (int pos) (prod / d);
///      }",
///     &registry.names(),
/// ).unwrap();
/// let result = check_program(&registry, &program);
/// assert!(result.is_clean());
/// assert_eq!(result.stats.casts, 1);
/// ```
pub fn check_program(registry: &Registry, program: &Program) -> CheckResult {
    check_program_with(registry, program, CheckOptions::default())
}

/// Typechecks with explicit [`CheckOptions`].
pub fn check_program_with(
    registry: &Registry,
    program: &Program,
    options: CheckOptions,
) -> CheckResult {
    let mut env = TypeEnv::new(program, registry);
    let mut checker = Checker {
        registry,
        program,
        options,
        diags: Diagnostics::new(),
        stats: CheckStats::default(),
    };

    // Annotation counting over declaration sites.
    for s in &program.structs {
        for (_, ty) in &s.fields {
            checker.count_annotation(ty);
        }
    }
    for g in &program.globals {
        checker.count_annotation(&g.ty);
    }
    for f in &program.funcs {
        checker.count_annotation(&f.sig.ret);
        for (_, ty) in &f.sig.params {
            checker.count_annotation(ty);
        }
    }
    for proto in &program.protos {
        if program.func(proto.name).is_none() {
            checker.count_annotation(&proto.sig.ret);
            for (_, ty) in &proto.sig.params {
                checker.count_annotation(ty);
            }
        }
    }

    // Globals: initializers behave like assignments.
    for g in &program.globals {
        if let Some(init) = &g.init {
            checker.walk_expr(&mut env, init, Ctx::rhs());
            checker.check_value_assign(&mut env, &g.ty, init, g.span);
            checker.check_ref_assign(&env, &g.ty, rhs_form_of_expr(init), g.span);
        }
    }

    // Functions.
    for f in &program.funcs {
        env.push_scope();
        for (name, ty) in &f.sig.params {
            env.declare(*name, ty.clone());
        }
        checker.walk_stmts(&mut env, &f.body, &f.sig.ret);
        env.pop_scope();
    }

    CheckResult {
        diags: checker.diags,
        stats: checker.stats,
    }
}

/// Expression-walk context for `disallow` enforcement.
#[derive(Clone, Copy, Debug)]
struct Ctx {
    /// Whether this expression flows into an (explicit or implicit)
    /// assignment's right-hand side.
    rhs: bool,
    /// Whether the current subexpression feeds a dereference (reads of
    /// reference-qualified l-values are permitted there).
    under_deref: bool,
}

impl Ctx {
    fn rhs() -> Ctx {
        Ctx {
            rhs: true,
            under_deref: false,
        }
    }

    fn condition() -> Ctx {
        Ctx {
            rhs: false,
            under_deref: false,
        }
    }
}

/// Classification of an assignment right-hand side against `assign` rules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RhsForm {
    Null,
    Const,
    New,
    Call,
    Other,
}

fn rhs_form_of_expr(e: &Expr) -> RhsForm {
    match &e.kind {
        ExprKind::Null => RhsForm::Null,
        ExprKind::IntLit(_) | ExprKind::StrLit(_) => RhsForm::Const,
        _ => RhsForm::Other,
    }
}

struct Checker<'a> {
    registry: &'a Registry,
    program: &'a Program,
    options: CheckOptions,
    diags: Diagnostics,
    stats: CheckStats,
}

impl<'a> Checker<'a> {
    /// Folds one inference engine's telemetry into the pass counters.
    fn absorb_inference(&mut self, inf: &Inference<'_>) {
        self.stats.match_attempts += inf.match_attempts;
        self.stats.case_applications += inf.case_applications;
        self.stats.memo_hits += inf.memo_hits;
        self.stats.memo_misses += inf.memo_misses;
    }

    fn qual_violation(&mut self, span: Span, msg: String) {
        self.stats.qualifier_errors += 1;
        self.diags.warning(span, msg);
    }

    fn mentions_registered_qual(&self, ty: &QualType) -> bool {
        if ty.quals.iter().any(|q| self.registry.get(*q).is_some()) {
            return true;
        }
        ty.pointee()
            .is_some_and(|p| self.mentions_registered_qual(p))
    }

    fn count_annotation(&mut self, ty: &QualType) {
        if self.mentions_registered_qual(ty) {
            self.stats.annotations += 1;
        }
    }

    // ----- statements -----

    fn walk_stmts(&mut self, env: &mut TypeEnv<'a>, stmts: &[Stmt], ret: &QualType) {
        env.push_scope();
        for s in stmts {
            self.walk_stmt(env, s, ret);
        }
        env.pop_scope();
    }

    fn walk_stmt(&mut self, env: &mut TypeEnv<'a>, stmt: &Stmt, ret: &QualType) {
        match &stmt.kind {
            StmtKind::Instr(i) => self.walk_instr(env, i),
            StmtKind::Block(stmts) => self.walk_stmts(env, stmts, ret),
            StmtKind::If(cond, then, els) => {
                self.walk_expr(env, cond, Ctx::condition());
                let refinements = self
                    .options
                    .flow_sensitive
                    .then(|| crate::flow::refinements(self.registry, cond));
                self.walk_refined(
                    env,
                    then,
                    ret,
                    refinements.as_ref().map(|r| r.then_branch.as_slice()),
                );
                if let Some(e) = els {
                    self.walk_refined(
                        env,
                        e,
                        ret,
                        refinements.as_ref().map(|r| r.else_branch.as_slice()),
                    );
                }
            }
            StmtKind::While(cond, body) => {
                self.walk_expr(env, cond, Ctx::condition());
                let refinements = self
                    .options
                    .flow_sensitive
                    .then(|| crate::flow::refinements(self.registry, cond));
                self.walk_refined(
                    env,
                    body,
                    ret,
                    refinements.as_ref().map(|r| r.then_branch.as_slice()),
                );
            }
            StmtKind::Return(value) => {
                if let Some(e) = value {
                    self.walk_expr(env, e, Ctx::rhs());
                    self.check_value_assign(env, &ret.clone(), e, stmt.span);
                }
            }
            StmtKind::Decl(d) => {
                self.count_annotation(&d.ty);
                env.declare(d.name, d.ty.clone());
                if let Some(init) = &d.init {
                    self.walk_expr(env, init, Ctx::rhs());
                    self.check_assignment(env, &d.ty.clone(), init, d.span);
                }
            }
        }
    }

    /// Walks a branch with optional flow-sensitive refinements: each
    /// refined variable gets its declared type augmented with the
    /// qualifiers the dominating condition implies, provided the branch
    /// neither assigns the variable nor takes its address, and the
    /// qualifier's subject type pattern accepts the variable's type.
    fn walk_refined(
        &mut self,
        env: &mut TypeEnv<'a>,
        branch: &Stmt,
        ret: &QualType,
        refinements: Option<&[(Symbol, std::collections::BTreeSet<Symbol>)]>,
    ) {
        match refinements {
            None | Some([]) => self.walk_stmt(env, branch, ret),
            Some(refs) => {
                env.push_scope();
                for (var, quals) in refs {
                    if crate::flow::var_is_disturbed(branch, *var) {
                        continue;
                    }
                    let Some(mut ty) = env.lookup(*var) else {
                        continue;
                    };
                    for &q in quals {
                        let subject_fits = self.registry.get(q).is_some_and(|def| {
                            crate::infer::type_pat_accepts(
                                &def.subject.ty,
                                &crate::env::StaticTy::Known(ty.clone()),
                            )
                        });
                        if subject_fits {
                            ty.quals.insert(q);
                        }
                    }
                    env.declare(*var, ty);
                }
                self.walk_stmt(env, branch, ret);
                env.pop_scope();
            }
        }
    }

    /// The shared checking for `target = e` (explicit `Set` instructions
    /// and declarations with initializers): value-qualifier assignability
    /// plus reference-qualifier assign rules, with cast-asserted
    /// reference qualifiers accepted unchecked like any C cast (§2.2.3).
    fn check_assignment(
        &mut self,
        env: &mut TypeEnv<'a>,
        target: &QualType,
        e: &Expr,
        span: Span,
    ) {
        self.check_value_assign(env, target, e, span);
        // Reference qualifiers asserted by a top-level cast are exempt
        // from the assign rules.
        let mut exempt: Vec<Symbol> = Vec::new();
        if let ExprKind::Cast(ty, _) = &e.kind {
            exempt.extend(ty.quals.iter().copied().filter(|q| {
                self.registry
                    .get(*q)
                    .is_some_and(|d| d.kind == QualKind::Ref)
                    && target.has_qual(*q)
            }));
        }
        self.check_ref_assign_exempt(env, target, rhs_form_of_expr(e), &exempt, span);
    }

    fn walk_instr(&mut self, env: &mut TypeEnv<'a>, instr: &Instr) {
        match &instr.kind {
            InstrKind::Set(lv, e) => {
                self.walk_lvalue(env, lv, instr.span);
                self.walk_expr(env, e, Ctx::rhs());
                let target = self.lval_target_type(env, lv, instr.span);
                if let Some(target) = target {
                    self.check_assignment(env, &target, e, instr.span);
                }
            }
            InstrKind::Alloc(lv, size) => {
                self.walk_lvalue(env, lv, instr.span);
                self.walk_expr(env, size, Ctx::rhs());
                if let Some(target) = self.lval_target_type(env, lv, instr.span) {
                    // Value qualifiers on the target require a `new` case
                    // rule.
                    let (value_quals, _) = env.split_quals(&target);
                    for q in value_quals {
                        if !self.new_introducible(q) {
                            self.qual_violation(
                                instr.span,
                                format!(
                                    "allocation result may not have qualifier `{q}` \
                                     (no `new` case rule)"
                                ),
                            );
                        }
                    }
                    self.check_ref_assign(env, &target, RhsForm::New, instr.span);
                }
            }
            InstrKind::Call(dst, fname, args) => {
                if PRINTF_FAMILY.contains(&fname.as_str()) {
                    self.stats.printf_calls += 1;
                }
                for a in args {
                    self.walk_expr(env, a, Ctx::rhs());
                }
                let sig = self.program.signature(*fname).cloned();
                match sig {
                    None => {
                        if !matches!(fname.as_str(), "free" | "abort" | "exit") {
                            self.diags.note(
                                instr.span,
                                format!(
                                    "call to `{fname}` without a prototype; \
                                     arguments unchecked"
                                ),
                            );
                        }
                    }
                    Some(sig) => {
                        if args.len() < sig.params.len()
                            || (!sig.varargs && args.len() > sig.params.len())
                        {
                            self.diags.error(
                                instr.span,
                                format!(
                                    "`{fname}` expects {} argument(s), got {}",
                                    sig.params.len(),
                                    args.len()
                                ),
                            );
                        }
                        // Arguments are implicit assignments to parameters.
                        for ((_, pty), arg) in sig.params.iter().zip(args) {
                            self.check_value_assign(env, pty, arg, instr.span);
                            self.check_ref_assign(env, pty, rhs_form_of_expr(arg), instr.span);
                        }
                        // The destination is an implicit assignment from
                        // the return type.
                        if let Some(lv) = dst {
                            self.walk_lvalue(env, lv, instr.span);
                            if let Some(target) = self.lval_target_type(env, lv, instr.span) {
                                self.check_call_result_assign(
                                    env, &target, &sig.ret, *fname, instr.span,
                                );
                            }
                        }
                    }
                }
                if sig_is_none_and_dst(dst, self.program, *fname) {
                    if let Some(lv) = dst {
                        self.walk_lvalue(env, lv, instr.span);
                    }
                }
            }
            InstrKind::RuntimeCheck(_, e) => {
                self.walk_expr(env, e, Ctx::condition());
            }
        }
    }

    /// Whether qualifier `q` has a `new` case rule whose guard holds.
    fn new_introducible(&mut self, q: Symbol) -> bool {
        let Some(def) = self.registry.get(q) else {
            return false;
        };
        def.cases.iter().any(|c| {
            matches!(c.pattern, Pattern::New) && matches!(c.guard, stq_qualspec::Pred::True)
        })
    }

    fn lval_target_type(&mut self, env: &TypeEnv<'a>, lv: &Lvalue, span: Span) -> Option<QualType> {
        match env.lval_decl_type(lv) {
            StaticTy::Known(t) => Some(t),
            _ => {
                if let LvalKind::Var(name) = &lv.kind {
                    if env.lookup(*name).is_none() {
                        self.diags.error(span, format!("unbound variable `{name}`"));
                    }
                }
                None
            }
        }
    }

    // ----- assignment checking -----

    /// Value-qualifier and nested-type checking for `target = e`.
    fn check_value_assign(
        &mut self,
        env: &mut TypeEnv<'a>,
        target: &QualType,
        e: &Expr,
        span: Span,
    ) {
        let src_ty = env.expr_type(e);
        if !env.shapes_compatible(target, &src_ty) {
            self.diags.error(
                span,
                format!(
                    "type mismatch: cannot assign `{}` to `{target}`",
                    expr_to_string(e)
                ),
            );
            return;
        }
        // Top-level value qualifiers: each must be derivable for e.
        let (value_quals, _) = env.split_quals(target);
        for q in value_quals {
            let mut inf = Inference::new(env);
            let ok = inf.has_qual(e, q);
            self.absorb_inference(&inf);
            if !ok {
                self.qual_violation(
                    span,
                    format!(
                        "expression `{}` may not satisfy qualifier `{q}` required here",
                        expr_to_string(e)
                    ),
                );
            }
        }
        // Nested qualifiers are invariant.
        if let StaticTy::Known(src) = &src_ty {
            if !matches!(e.kind, ExprKind::Null) {
                self.check_nested_invariance(target, src, span);
            }
        }
    }

    /// Call-result assignment: `case` rules cannot apply (calls are not
    /// expressions), so the return type must carry every required value
    /// qualifier syntactically.
    fn check_call_result_assign(
        &mut self,
        env: &TypeEnv<'a>,
        target: &QualType,
        ret: &QualType,
        fname: Symbol,
        span: Span,
    ) {
        if !env.shapes_compatible(target, &StaticTy::Known(ret.clone())) {
            self.diags.error(
                span,
                format!("type mismatch: `{fname}` returns `{ret}`, target is `{target}`"),
            );
            return;
        }
        let (value_quals, _) = env.split_quals(target);
        for q in value_quals {
            if !ret.has_qual(q) {
                self.qual_violation(
                    span,
                    format!(
                        "return type of `{fname}` lacks qualifier `{q}` required \
                         by the assignment target"
                    ),
                );
            }
        }
        self.check_nested_invariance(target, ret, span);
        // A call result is never NULL/new/const: reference-qualified
        // targets reject it unless the qualifier allows arbitrary values.
        self.check_ref_assign(env, target, RhsForm::Call, span);
    }

    /// Nested (under-pointer) qualifier sets must match exactly: there is
    /// no subtyping under `ref` (paper §2.1.2 and Fig. 9).
    fn check_nested_invariance(&mut self, target: &QualType, src: &QualType, span: Span) {
        if let (Some(tp), Some(sp)) = (target.pointee(), src.pointee()) {
            // void* is the wildcard; allocation results and generic
            // pointers are exempt.
            if matches!(tp.ty, Ty::Base(BaseTy::Void)) || matches!(sp.ty, Ty::Base(BaseTy::Void)) {
                return;
            }
            let t_regs: Vec<Symbol> = tp
                .quals
                .iter()
                .copied()
                .filter(|q| self.registry.get(*q).is_some())
                .collect();
            let s_regs: Vec<Symbol> = sp
                .quals
                .iter()
                .copied()
                .filter(|q| self.registry.get(*q).is_some())
                .collect();
            if t_regs != s_regs {
                self.qual_violation(
                    span,
                    format!(
                        "pointer types are invariant in their pointee qualifiers: \
                         `{src}` is not interchangeable with `{target}`"
                    ),
                );
            }
            self.check_nested_invariance(tp, sp, span);
        }
    }

    /// Reference-qualifier `assign` rule checking for `target = <form>`.
    fn check_ref_assign(
        &mut self,
        env: &TypeEnv<'a>,
        target: &QualType,
        form: RhsForm,
        span: Span,
    ) {
        self.check_ref_assign_exempt(env, target, form, &[], span);
    }

    /// As [`Checker::check_ref_assign`], skipping qualifiers asserted by
    /// an explicit cast.
    fn check_ref_assign_exempt(
        &mut self,
        env: &TypeEnv<'a>,
        target: &QualType,
        form: RhsForm,
        exempt: &[Symbol],
        span: Span,
    ) {
        let (_, ref_quals) = env.split_quals(target);
        for q in ref_quals {
            if exempt.contains(&q) {
                continue;
            }
            let Some(def) = self.registry.get(q) else {
                continue;
            };
            // ondecl qualifiers accept any type-correct value (§2.2.1).
            if def.ondecl {
                continue;
            }
            let allowed = def.assigns.iter().any(|a| match a {
                AssignRhs::Null => form == RhsForm::Null,
                AssignRhs::New => form == RhsForm::New,
                AssignRhs::Const => matches!(form, RhsForm::Const | RhsForm::Null),
            });
            if !allowed {
                self.qual_violation(
                    span,
                    format!(
                        "assignment to `{q}`-qualified l-value must match its \
                         assign rules ({}); this right-hand side does not",
                        def.assigns
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(" | ")
                    ),
                );
            }
        }
    }

    // ----- expression walking: restrict, disallow, counting -----

    fn walk_lvalue(&mut self, env: &mut TypeEnv<'a>, lv: &Lvalue, span: Span) {
        match &lv.kind {
            LvalKind::Var(name) => {
                if env.lookup(*name).is_none() {
                    self.diags.error(span, format!("unbound variable `{name}`"));
                }
            }
            LvalKind::Deref(e) => {
                self.stats.dereferences += 1;
                self.apply_restricts(env, &Expr::lval(lv.clone()), span);
                self.walk_expr(
                    env,
                    e,
                    Ctx {
                        rhs: true,
                        under_deref: true,
                    },
                );
            }
            LvalKind::Field(inner, _) => self.walk_lvalue(env, inner, span),
        }
    }

    fn walk_expr(&mut self, env: &mut TypeEnv<'a>, e: &Expr, ctx: Ctx) {
        self.stats.exprs_visited += 1;
        self.apply_restricts(env, e, e.span);
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::StrLit(_) | ExprKind::Null | ExprKind::SizeOf(_) => {}
            ExprKind::Lval(lv) => {
                // disallow: reading a reference-qualified l-value on a
                // right-hand side (outside a dereference).
                if ctx.rhs && !ctx.under_deref {
                    self.check_disallow_read(env, lv, e.span);
                }
                self.walk_lvalue_in_expr(env, lv, ctx, e.span);
            }
            ExprKind::AddrOf(lv) => {
                if ctx.rhs {
                    self.check_disallow_addr(env, lv, e.span);
                }
                self.walk_lvalue_in_expr(
                    env,
                    lv,
                    Ctx {
                        rhs: ctx.rhs,
                        under_deref: false,
                    },
                    e.span,
                );
            }
            ExprKind::Unop(_, a) => self.walk_expr(env, a, ctx),
            ExprKind::Binop(_, a, b) => {
                self.walk_expr(env, a, ctx);
                self.walk_expr(env, b, ctx);
            }
            ExprKind::Cast(ty, inner) => {
                if self.mentions_registered_qual(ty) {
                    self.stats.casts += 1;
                }
                // Mirrors `instrument_program`: one run-time check per
                // value qualifier with an invariant asserted by the cast.
                self.stats.casts_instrumented += ty
                    .quals
                    .iter()
                    .filter(|&&q| {
                        self.registry
                            .get(q)
                            .is_some_and(|d| d.kind == QualKind::Value && d.invariant.is_some())
                    })
                    .count();
                self.walk_expr(env, inner, ctx);
            }
        }
    }

    fn walk_lvalue_in_expr(&mut self, env: &mut TypeEnv<'a>, lv: &Lvalue, ctx: Ctx, span: Span) {
        match &lv.kind {
            LvalKind::Var(name) => {
                if env.lookup(*name).is_none() {
                    self.diags.error(span, format!("unbound variable `{name}`"));
                }
            }
            LvalKind::Deref(e) => {
                self.stats.dereferences += 1;
                self.walk_expr(
                    env,
                    e,
                    Ctx {
                        rhs: ctx.rhs,
                        under_deref: true,
                    },
                );
            }
            LvalKind::Field(inner, _) => self.walk_lvalue_in_expr(env, inner, ctx, span),
        }
    }

    fn check_disallow_read(&mut self, env: &TypeEnv<'a>, lv: &Lvalue, span: Span) {
        if let StaticTy::Known(t) = env.lval_decl_type(lv) {
            for &q in &t.quals {
                if let Some(def) = self.registry.get(q) {
                    if def.kind == QualKind::Ref && def.disallow.ref_use {
                        self.qual_violation(
                            span,
                            format!(
                                "`{}` has qualifier `{q}`, which disallows referring \
                                 to it on a right-hand side",
                                lval_to_string(lv)
                            ),
                        );
                    }
                }
            }
        }
    }

    fn check_disallow_addr(&mut self, env: &TypeEnv<'a>, lv: &Lvalue, span: Span) {
        if let StaticTy::Known(t) = env.lval_decl_type(lv) {
            for &q in &t.quals {
                if let Some(def) = self.registry.get(q) {
                    if def.kind == QualKind::Ref && def.disallow.addr_of {
                        self.qual_violation(
                            span,
                            format!(
                                "`&{}` takes the address of a `{q}`-qualified \
                                 l-value, which its disallow rule forbids",
                                lval_to_string(lv)
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Applies every registered `restrict` clause whose pattern matches.
    fn apply_restricts(&mut self, env: &mut TypeEnv<'a>, e: &Expr, span: Span) {
        let defs: Vec<(Symbol, Vec<stq_qualspec::Clause>)> = self
            .registry
            .iter()
            .filter(|d| !d.restricts.is_empty())
            .map(|d| (d.name, d.restricts.clone()))
            .collect();
        for (qname, clauses) in defs {
            for clause in &clauses {
                let mut inf = Inference::new(env);
                if let Some(bindings) = inf.match_clause(clause, e) {
                    self.stats.restrict_checks += 1;
                    let ok = inf.eval_guard(&clause.guard, &bindings);
                    self.absorb_inference(&inf);
                    if !ok {
                        self.qual_violation(
                            span,
                            format!(
                                "`{}` violates the restrict rule of qualifier \
                                 `{qname}` (pattern `{}` requires `{}`)",
                                expr_to_string(e),
                                clause.pattern,
                                clause.guard
                            ),
                        );
                    }
                } else {
                    self.absorb_inference(&inf);
                }
            }
        }
    }
}

fn sig_is_none_and_dst(dst: &Option<Lvalue>, program: &Program, fname: Symbol) -> bool {
    dst.is_some() && program.signature(fname).is_none()
}

/// Count of error-severity diagnostics (convenience for tests).
pub fn error_count(result: &CheckResult) -> usize {
    result.diags.count(Severity::Error)
}
