//! Run-time check instrumentation for value-qualifier casts (paper §2.1.3).
//!
//! Static checking sometimes needs help: the paper's `lcm` example casts
//! `(int pos)(prod / d)` because the `pos` rules cannot derive positivity
//! of a quotient. To retain soundness, the typechecker instruments every
//! cast to a value-qualified type with a run-time check that the value
//! satisfies the qualifier's declared invariant; a failed check is a
//! fatal error. Casts involving *reference* qualifiers remain unchecked,
//! like ordinary C casts (§2.2.3).

use std::collections::HashMap;
use stq_cir::ast::*;
use stq_cir::interp::{QualChecker, Value};
use stq_qualspec::{CmpOp, InvPred, InvTerm, QualKind, Registry};
use stq_util::Symbol;

/// Returns a copy of `program` with a [`InstrKind::RuntimeCheck`]
/// instruction inserted before every statement containing a cast to a
/// value-qualified type (for each such qualifier with a declared
/// invariant). `while` conditions are additionally re-checked at the end
/// of each iteration, since the condition re-evaluates.
///
/// # Examples
///
/// ```
/// use stq_qualspec::Registry;
/// use stq_cir::parse::parse_program;
/// use stq_typecheck::instrument_program;
///
/// let registry = Registry::builtins();
/// let program = parse_program(
///     "int f(int x) { int pos y = (int pos) x; return y; }",
///     &registry.names(),
/// ).unwrap();
/// let instrumented = instrument_program(&registry, &program);
/// // The declaration is now preceded by a __stq_check_pos instruction.
/// assert_eq!(instrumented.funcs[0].body.len(), 3);
/// ```
pub fn instrument_program(registry: &Registry, program: &Program) -> Program {
    let mut out = program.clone();
    for f in &mut out.funcs {
        f.body = instrument_stmts(registry, &f.body);
    }
    out
}

fn instrument_stmts(registry: &Registry, stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        instrument_stmt(registry, s, &mut out);
    }
    out
}

fn instrument_stmt(registry: &Registry, stmt: &Stmt, out: &mut Vec<Stmt>) {
    let mut checks = Vec::new();
    match &stmt.kind {
        StmtKind::Instr(i) => {
            match &i.kind {
                InstrKind::Set(lv, e) => {
                    collect_lvalue(registry, lv, &mut checks);
                    collect(registry, e, &mut checks);
                }
                InstrKind::Alloc(lv, e) => {
                    collect_lvalue(registry, lv, &mut checks);
                    collect(registry, e, &mut checks);
                }
                InstrKind::Call(dst, _, args) => {
                    if let Some(lv) = dst {
                        collect_lvalue(registry, lv, &mut checks);
                    }
                    for a in args {
                        collect(registry, a, &mut checks);
                    }
                }
                InstrKind::RuntimeCheck(..) => {}
            }
            push_checks(&checks, stmt.span, out);
            out.push(stmt.clone());
        }
        StmtKind::Decl(d) => {
            if let Some(init) = &d.init {
                collect(registry, init, &mut checks);
            }
            push_checks(&checks, stmt.span, out);
            out.push(stmt.clone());
        }
        StmtKind::Return(Some(e)) => {
            collect(registry, e, &mut checks);
            push_checks(&checks, stmt.span, out);
            out.push(stmt.clone());
        }
        StmtKind::Return(None) => out.push(stmt.clone()),
        StmtKind::Block(inner) => {
            out.push(Stmt {
                kind: StmtKind::Block(instrument_stmts(registry, inner)),
                span: stmt.span,
            });
        }
        StmtKind::If(cond, then, els) => {
            collect(registry, cond, &mut checks);
            push_checks(&checks, stmt.span, out);
            let then = Box::new(instrument_one(registry, then));
            let els = els.as_ref().map(|e| Box::new(instrument_one(registry, e)));
            out.push(Stmt {
                kind: StmtKind::If(cond.clone(), then, els),
                span: stmt.span,
            });
        }
        StmtKind::While(cond, body) => {
            collect(registry, cond, &mut checks);
            // Check once before entry…
            push_checks(&checks, stmt.span, out);
            let mut new_body = vec![instrument_one(registry, body)];
            // …and again after each iteration, before re-evaluation.
            for (q, e) in &checks {
                new_body.push(Stmt {
                    kind: StmtKind::Instr(Instr {
                        kind: InstrKind::RuntimeCheck(*q, e.clone()),
                        span: stmt.span,
                    }),
                    span: stmt.span,
                });
            }
            out.push(Stmt {
                kind: StmtKind::While(cond.clone(), Box::new(Stmt::new(StmtKind::Block(new_body)))),
                span: stmt.span,
            });
        }
    }
}

fn instrument_one(registry: &Registry, stmt: &Stmt) -> Stmt {
    let mut tmp = Vec::new();
    instrument_stmt(registry, stmt, &mut tmp);
    match tmp.len() {
        1 => tmp.pop().expect("len checked"),
        _ => Stmt {
            kind: StmtKind::Block(tmp),
            span: stmt.span,
        },
    }
}

fn push_checks(checks: &[(Symbol, Expr)], span: stq_util::Span, out: &mut Vec<Stmt>) {
    for (q, e) in checks {
        out.push(Stmt {
            kind: StmtKind::Instr(Instr {
                kind: InstrKind::RuntimeCheck(*q, e.clone()),
                span,
            }),
            span,
        });
    }
}

/// Collects (qualifier, inner-expression) pairs for every cast to a
/// value-qualified type with a declared invariant.
fn collect(registry: &Registry, e: &Expr, out: &mut Vec<(Symbol, Expr)>) {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::StrLit(_) | ExprKind::Null | ExprKind::SizeOf(_) => {}
        ExprKind::Lval(lv) | ExprKind::AddrOf(lv) => collect_lvalue(registry, lv, out),
        ExprKind::Unop(_, a) => collect(registry, a, out),
        ExprKind::Binop(_, a, b) => {
            collect(registry, a, out);
            collect(registry, b, out);
        }
        ExprKind::Cast(ty, inner) => {
            for &q in &ty.quals {
                if let Some(def) = registry.get(q) {
                    if def.kind == QualKind::Value && def.invariant.is_some() {
                        out.push((q, (**inner).clone()));
                    }
                }
            }
            collect(registry, inner, out);
        }
    }
}

fn collect_lvalue(registry: &Registry, lv: &Lvalue, out: &mut Vec<(Symbol, Expr)>) {
    match &lv.kind {
        LvalKind::Var(_) => {}
        LvalKind::Deref(e) => collect(registry, e, out),
        LvalKind::Field(inner, _) => collect_lvalue(registry, inner, out),
    }
}

/// Returns a copy of `program` with a [`InstrKind::RuntimeCheck`]
/// *observation* after every point where the static discipline claims a
/// value-qualified variable holds: initialized declarations, assignments
/// and call results targeting a qualified variable, function entry (for
/// qualified parameters), and qualified returns (checked before the
/// `return`). Together with [`InvariantChecker`] this turns the paper's
/// §5 soundness property into an executable oracle: a cleanly checked,
/// cast-free program must pass every observation.
///
/// Only directly named variables are observed (not `*p` or field
/// targets), and only declarations *with* initializers — the paper's
/// flow-insensitive system does not claim anything about uninitialized
/// memory (§5 lists it as a known unsoundness source in C).
///
/// # Examples
///
/// ```
/// use stq_qualspec::Registry;
/// use stq_cir::parse::parse_program;
/// use stq_typecheck::observe_program;
///
/// let registry = Registry::builtins();
/// let program = parse_program(
///     "int pos f(int pos x) { int pos y = x + 1; return y; }",
///     &registry.names(),
/// ).unwrap();
/// let observed = observe_program(&registry, &program);
/// // Entry check on x, post-init check on y, pre-return check on y.
/// assert_eq!(observed.funcs[0].body.len(), 5);
/// ```
pub fn observe_program(registry: &Registry, program: &Program) -> Program {
    let mut out = program.clone();
    let globals: HashMap<Symbol, QualType> = program
        .globals
        .iter()
        .map(|g| (g.name, g.ty.clone()))
        .collect();
    for f in &mut out.funcs {
        let mut obs = Observer {
            registry,
            ret: f.sig.ret.clone(),
            scopes: vec![globals.clone()],
        };
        obs.scopes
            .push(f.sig.params.iter().cloned().collect::<HashMap<_, _>>());
        let mut body = Vec::with_capacity(f.body.len() + f.sig.params.len());
        for (name, ty) in &f.sig.params {
            for q in observed_quals(registry, ty) {
                body.push(check_stmt(q, var_expr(*name), f.span));
            }
        }
        for s in &f.body {
            obs.stmt(s, &mut body);
        }
        f.body = body;
    }
    out
}

/// The value qualifiers on `ty` whose declared invariants are dynamically
/// observable.
fn observed_quals(registry: &Registry, ty: &QualType) -> Vec<Symbol> {
    ty.quals
        .iter()
        .copied()
        .filter(|q| {
            registry
                .get(*q)
                .is_some_and(|def| def.kind == QualKind::Value && def.invariant.is_some())
        })
        .collect()
}

fn var_expr(name: Symbol) -> Expr {
    Expr::lval(Lvalue::new(LvalKind::Var(name)))
}

fn check_stmt(qual: Symbol, e: Expr, span: stq_util::Span) -> Stmt {
    Stmt {
        kind: StmtKind::Instr(Instr {
            kind: InstrKind::RuntimeCheck(qual, e),
            span,
        }),
        span,
    }
}

struct Observer<'a> {
    registry: &'a Registry,
    ret: QualType,
    /// Innermost scope last: variable → declared type.
    scopes: Vec<HashMap<Symbol, QualType>>,
}

impl Observer<'_> {
    fn lookup(&self, name: Symbol) -> Option<&QualType> {
        self.scopes.iter().rev().find_map(|s| s.get(&name))
    }

    /// Observation checks for a store into `lv`, if it names a variable.
    fn store_checks(&self, lv: &Lvalue, out: &mut Vec<Stmt>, span: stq_util::Span) {
        if let LvalKind::Var(name) = &lv.kind {
            if let Some(ty) = self.lookup(*name) {
                for q in observed_quals(self.registry, ty) {
                    out.push(check_stmt(q, var_expr(*name), span));
                }
            }
        }
    }

    fn stmt(&mut self, stmt: &Stmt, out: &mut Vec<Stmt>) {
        match &stmt.kind {
            StmtKind::Instr(i) => {
                out.push(stmt.clone());
                match &i.kind {
                    InstrKind::Set(lv, _) | InstrKind::Alloc(lv, _) => {
                        self.store_checks(lv, out, stmt.span);
                    }
                    InstrKind::Call(Some(lv), _, _) => self.store_checks(lv, out, stmt.span),
                    InstrKind::Call(None, _, _) | InstrKind::RuntimeCheck(..) => {}
                }
            }
            StmtKind::Decl(d) => {
                out.push(stmt.clone());
                if d.init.is_some() {
                    for q in observed_quals(self.registry, &d.ty) {
                        out.push(check_stmt(q, var_expr(d.name), stmt.span));
                    }
                }
                self.scopes
                    .last_mut()
                    .expect("observer always has a scope")
                    .insert(d.name, d.ty.clone());
            }
            StmtKind::Return(Some(e)) => {
                for q in observed_quals(self.registry, &self.ret) {
                    out.push(check_stmt(q, e.clone(), stmt.span));
                }
                out.push(stmt.clone());
            }
            StmtKind::Return(None) => out.push(stmt.clone()),
            StmtKind::Block(inner) => {
                self.scopes.push(HashMap::new());
                let mut new_inner = Vec::with_capacity(inner.len());
                for s in inner {
                    self.stmt(s, &mut new_inner);
                }
                self.scopes.pop();
                out.push(Stmt {
                    kind: StmtKind::Block(new_inner),
                    span: stmt.span,
                });
            }
            StmtKind::If(cond, then, els) => {
                let then = Box::new(self.one(then));
                let els = els.as_ref().map(|e| Box::new(self.one(e)));
                out.push(Stmt {
                    kind: StmtKind::If(cond.clone(), then, els),
                    span: stmt.span,
                });
            }
            StmtKind::While(cond, body) => {
                let body = Box::new(self.one(body));
                out.push(Stmt {
                    kind: StmtKind::While(cond.clone(), body),
                    span: stmt.span,
                });
            }
        }
    }

    fn one(&mut self, stmt: &Stmt) -> Stmt {
        self.scopes.push(HashMap::new());
        let mut tmp = Vec::new();
        self.stmt(stmt, &mut tmp);
        self.scopes.pop();
        match tmp.len() {
            1 => tmp.pop().expect("len checked"),
            _ => Stmt {
                kind: StmtKind::Block(tmp),
                span: stmt.span,
            },
        }
    }
}

/// Evaluates value-qualifier invariants dynamically, for executing
/// instrumented programs on the interpreter.
///
/// Only the fragments of the invariant language meaningful for a single
/// value are decided (`value(E)` comparisons against constants and
/// `NULL`); state-dependent parts (`isHeapLoc`, quantifiers) are
/// conservatively accepted.
#[derive(Clone, Debug, Default)]
pub struct InvariantChecker {
    invariants: HashMap<Symbol, InvPred>,
}

impl InvariantChecker {
    /// Builds the checker from every value qualifier with an invariant.
    pub fn new(registry: &Registry) -> InvariantChecker {
        let mut invariants = HashMap::new();
        for def in registry.iter() {
            if def.kind == QualKind::Value {
                if let Some(inv) = &def.invariant {
                    invariants.insert(def.name, inv.clone());
                }
            }
        }
        InvariantChecker { invariants }
    }
}

impl QualChecker for InvariantChecker {
    fn holds(&self, qual: Symbol, value: Value) -> bool {
        match self.invariants.get(&qual) {
            None => true,
            Some(inv) => eval_inv(inv, value),
        }
    }
}

fn eval_inv(inv: &InvPred, v: Value) -> bool {
    match inv {
        InvPred::Cmp(op, a, b) => match (term_value(a, v), term_value(b, v)) {
            (Some(x), Some(y)) => match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            },
            // Terms outside the single-value fragment: conservatively true.
            _ => true,
        },
        InvPred::IsHeapLoc(_) => true,
        InvPred::And(a, b) => eval_inv(a, v) && eval_inv(b, v),
        InvPred::Or(a, b) => eval_inv(a, v) || eval_inv(b, v),
        InvPred::Implies(a, b) => !eval_inv(a, v) || eval_inv(b, v),
        InvPred::Not(a) => !eval_inv(a, v),
        InvPred::Forall(..) => true,
    }
}

fn term_value(t: &InvTerm, v: Value) -> Option<i64> {
    match t {
        InvTerm::Value(_) => Some(match v {
            Value::Int(x) => x,
            Value::Ptr(a) => a as i64,
        }),
        InvTerm::Int(k) => Some(*k),
        InvTerm::Null => Some(0),
        InvTerm::Location(_) | InvTerm::Var(_) | InvTerm::DerefVar(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_cir::interp::{run_entry, InterpConfig, RuntimeError};
    use stq_cir::parse::parse_program;

    fn registry() -> Registry {
        Registry::builtins()
    }

    fn run_instrumented(src: &str, entry: &str, args: &[Value]) -> Result<(), RuntimeError> {
        let r = registry();
        let p = parse_program(src, &r.names()).expect("parse");
        let instrumented = instrument_program(&r, &p);
        let checker = InvariantChecker::new(&r);
        run_entry(
            &instrumented,
            entry,
            args,
            &checker,
            InterpConfig::default(),
        )
        .map(|_| ())
    }

    #[test]
    fn passing_cast_is_silent() {
        run_instrumented(
            "int f(int x) { int pos y = (int pos) x; return y; }",
            "f",
            &[Value::Int(5)],
        )
        .unwrap();
    }

    #[test]
    fn failing_cast_is_fatal() {
        let e = run_instrumented(
            "int f(int x) { int pos y = (int pos) x; return y; }",
            "f",
            &[Value::Int(-5)],
        )
        .unwrap_err();
        assert!(matches!(e, RuntimeError::CheckFailed { qual, .. }
            if qual.as_str() == "pos"));
    }

    #[test]
    fn lcm_cast_is_checked_at_runtime() {
        // The paper's lcm example: (int pos)(prod / d) is instrumented;
        // for positive inputs the check passes.
        let src = "
            int pos gcd(int pos n, int pos m) {
                while (m != 0) { int pos t = (int pos) m; m = n % m; n = t; }
                return (int pos) n;
            }
            int pos lcm(int pos a, int pos b) {
                int pos d = gcd(a, b);
                int pos prod = a * b;
                return (int pos) (prod / d);
            }";
        run_instrumented(src, "lcm", &[Value::Int(4), Value::Int(6)]).unwrap();
    }

    #[test]
    fn nonnull_cast_fails_on_null() {
        let e = run_instrumented(
            "int f() {
                int* p = NULL;
                int* nonnull q = (int* nonnull) p;
                return 0;
            }",
            "f",
            &[],
        )
        .unwrap_err();
        assert!(matches!(e, RuntimeError::CheckFailed { qual, .. }
            if qual.as_str() == "nonnull"));
    }

    #[test]
    fn untainted_cast_has_no_check() {
        // untainted has no invariant: the cast is not instrumented, so
        // any value passes (flow soundness comes from subtyping alone).
        run_instrumented(
            "int f(char* buf) {
                char* untainted fmt = (char* untainted) buf;
                return 0;
            }",
            "f",
            &[Value::Ptr(0)],
        )
        .unwrap();
    }

    #[test]
    fn ref_qualifier_casts_are_unchecked() {
        run_instrumented(
            "int f() {
                int* q = NULL;
                int* unique p = (int* unique) q;
                return 0;
            }",
            "f",
            &[],
        )
        .unwrap();
    }

    #[test]
    fn while_condition_checks_each_iteration() {
        // The cast in the while condition is re-checked per iteration; it
        // fails once x drops to 0.
        let e = run_instrumented(
            "int f(int x) {
                while ((int pos) x > 1) { x = x - 1; }
                return x;
            }",
            "f",
            &[Value::Int(3)],
        );
        // x: 3 → 2 → 1; after x = 1 the end-of-body check sees 1 (> 0),
        // passes; loop exits via the condition. No failure.
        e.unwrap();
        let e2 = run_instrumented(
            "int f(int x) {
                while ((int pos) x > 0) { x = x - 1; }
                return x;
            }",
            "f",
            &[Value::Int(2)],
        )
        .unwrap_err();
        assert!(matches!(e2, RuntimeError::CheckFailed { .. }));
    }

    fn run_observed(src: &str, entry: &str, args: &[Value]) -> Result<usize, RuntimeError> {
        let r = registry();
        let p = parse_program(src, &r.names()).expect("parse");
        let observed = observe_program(&r, &p);
        let checker = InvariantChecker::new(&r);
        run_entry(&observed, entry, args, &checker, InterpConfig::default())
            .map(|out| out.checks_passed)
    }

    #[test]
    fn observation_covers_decls_params_sets_and_returns() {
        let n = run_observed(
            "int pos bump(int pos x) {
                 int pos y = x + 1;
                 y = y * 2;
                 return y;
             }",
            "bump",
            &[Value::Int(3)],
        )
        .unwrap();
        // Entry check on x, post-init on y, post-assignment on y,
        // pre-return on the returned expression.
        assert_eq!(n, 4);
    }

    #[test]
    fn observation_catches_a_dynamically_violated_invariant() {
        // Not statically clean (plain x flows into pos y) — the point is
        // that the observer *sees* the violation the checker reported.
        let e = run_observed(
            "int f(int x) { int pos y = x; return y; }",
            "f",
            &[Value::Int(0)],
        )
        .unwrap_err();
        assert!(matches!(e, RuntimeError::CheckFailed { qual, .. }
            if qual.as_str() == "pos"));
    }

    #[test]
    fn observation_skips_uninitialized_declarations() {
        // `int pos y;` reads as 0 until assigned; the flow-insensitive
        // system claims nothing about it, so no observation fires.
        let n = run_observed(
            "int f() { int pos y; return 0; }",
            "f",
            &[],
        )
        .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn observation_respects_block_scoping() {
        // The inner unqualified `v` shadows nothing qualified; the outer
        // qualified `v` is observed on both stores.
        let n = run_observed(
            "int f() {
                 int pos v = 1;
                 { int v2 = 0; v2 = v2 + 1; }
                 v = v + 1;
                 return v;
             }",
            "f",
            &[],
        )
        .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn invariant_checker_decides_builtin_invariants() {
        let r = registry();
        let c = InvariantChecker::new(&r);
        let pos = Symbol::intern("pos");
        let neg = Symbol::intern("neg");
        let nonzero = Symbol::intern("nonzero");
        let nonnull = Symbol::intern("nonnull");
        assert!(c.holds(pos, Value::Int(1)));
        assert!(!c.holds(pos, Value::Int(0)));
        assert!(c.holds(neg, Value::Int(-1)));
        assert!(!c.holds(neg, Value::Int(1)));
        assert!(c.holds(nonzero, Value::Int(-5)));
        assert!(!c.holds(nonzero, Value::Int(0)));
        assert!(c.holds(nonnull, Value::Ptr(44)));
        assert!(!c.holds(nonnull, Value::Ptr(0)));
        // No invariant → always true.
        assert!(c.holds(Symbol::intern("untainted"), Value::Ptr(0)));
    }
}
