//! Qualifier inference: deciding whether an expression can be given a
//! qualified type, by the paper's `case` introduction rules (§2.1.1).
//!
//! An expression has qualifier `q` if
//!
//! * its static type already carries `q` (declared variables, cast
//!   assertions), or
//! * some `case` clause of `q` matches it: the clause's pattern matches
//!   the expression's shape, the pattern variables' classifiers and type
//!   patterns accept the matched fragments, and the `where` predicate —
//!   which may recursively check qualifiers on subexpressions — holds.
//!
//! Qualifier definitions may be mutually recursive (`pos`/`neg`), so
//! inference computes a least fixed point: a cyclic re-query of the same
//! (expression, qualifier) pair yields `false`. Completed queries are
//! memoized: a `true` answer is a finished derivation and is cached
//! unconditionally (the rules are monotone — guards have no negation —
//! so it stays valid in any later context), while a `false` answer is
//! cached only when computed as a root query, since a `false` reached
//! *inside* a recursion may merely reflect the cycle cut-off.

use crate::env::{StaticTy, TypeEnv};
use std::collections::{HashMap, HashSet};
use stq_cir::ast::*;
use stq_qualspec::{Classifier, Clause, CmpOp, PTerm, Pattern, Pred, TypePat};
use stq_util::Symbol;

/// A program fragment bound to a pattern variable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Bound {
    /// An expression fragment.
    Expr(Expr),
    /// An l-value fragment (`&L` patterns).
    Lval(Lvalue),
}

/// Pattern-variable bindings produced by a successful match.
pub type Bindings = Vec<(Symbol, Bound)>;

/// The qualifier-inference engine. Holds the cycle-detection state for
/// one root query (or one checking pass — the in-progress set empties
/// itself between root queries).
pub struct Inference<'a> {
    env: &'a TypeEnv<'a>,
    in_progress: HashSet<(Expr, Symbol)>,
    memo: HashMap<(Expr, Symbol), bool>,
    /// Number of case-clause match attempts (for benchmarks).
    pub match_attempts: u64,
    /// Case clauses that actually fired (pattern matched and the
    /// `where` guard held).
    pub case_applications: u64,
    /// Queries answered from the memo table.
    pub memo_hits: u64,
    /// Queries that had to be computed.
    pub memo_misses: u64,
}

impl<'a> Inference<'a> {
    /// Creates an engine over an environment.
    pub fn new(env: &'a TypeEnv<'a>) -> Inference<'a> {
        Inference {
            env,
            in_progress: HashSet::new(),
            memo: HashMap::new(),
            match_attempts: 0,
            case_applications: 0,
            memo_hits: 0,
            memo_misses: 0,
        }
    }

    /// Whether `e` can be given qualifier `qual`.
    pub fn has_qual(&mut self, e: &Expr, qual: Symbol) -> bool {
        let key = (e.clone(), qual);
        if let Some(&cached) = self.memo.get(&key) {
            self.memo_hits += 1;
            return cached;
        }
        if !self.in_progress.insert(key.clone()) {
            // Cyclic dependency: least fixed point says no. Not
            // memoized — this is the cut-off, not an answer.
            return false;
        }
        self.memo_misses += 1;
        let result = self.has_qual_inner(e, qual);
        self.in_progress.remove(&key);
        if result || self.in_progress.is_empty() {
            self.memo.insert(key, result);
        }
        result
    }

    fn has_qual_inner(&mut self, e: &Expr, qual: Symbol) -> bool {
        // 1. The static type already carries the qualifier (declared
        //    variables and fields; cast assertions).
        if let StaticTy::Known(t) = self.env.expr_type(e) {
            if t.has_qual(qual) {
                return true;
            }
        }
        // 2. Casts do not erase qualifier knowledge of the inner
        //    expression for checking purposes.
        if let ExprKind::Cast(_, inner) = &e.kind {
            return self.has_qual(inner, qual);
        }
        // 3. Case rules.
        let Some(def) = self.env.registry.get(qual) else {
            return false;
        };
        // The subject's type pattern gates applicability (pos only
        // applies to int expressions, nonnull only to pointers).
        if !self.type_pat_matches(&def.subject.ty, &self.env.expr_type(e)) {
            return false;
        }
        let clauses = def.cases.clone();
        for clause in &clauses {
            if let Some(bindings) = self.match_clause(clause, e) {
                if self.eval_guard(&clause.guard, &bindings) {
                    self.case_applications += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Matches one clause's pattern against an expression; `Some` with
    /// bindings if the shape, classifiers, and type patterns all accept.
    pub fn match_clause(&mut self, clause: &Clause, e: &Expr) -> Option<Bindings> {
        self.match_attempts += 1;
        let mut bindings = Vec::new();
        match (&clause.pattern, &e.kind) {
            (Pattern::Var(x), _) => {
                self.bind_expr(clause, *x, e, &mut bindings)?;
            }
            (Pattern::Deref(x), ExprKind::Lval(lv)) => match &lv.kind {
                LvalKind::Deref(inner) => {
                    self.bind_expr(clause, *x, inner, &mut bindings)?;
                }
                _ => return None,
            },
            (Pattern::AddrOf(x), ExprKind::AddrOf(lv)) => {
                self.bind_lval(clause, *x, lv, &mut bindings)?;
            }
            (Pattern::Unop(op, x), ExprKind::Unop(eop, inner)) if op == eop => {
                self.bind_expr(clause, *x, inner, &mut bindings)?;
            }
            (Pattern::Binop(op, x, y), ExprKind::Binop(eop, a, b)) if op == eop => {
                self.bind_expr(clause, *x, a, &mut bindings)?;
                self.bind_expr(clause, *y, b, &mut bindings)?;
            }
            // `new` only matches allocation instructions, which are not
            // expressions.
            _ => return None,
        }
        Some(bindings)
    }

    fn bind_expr(
        &mut self,
        clause: &Clause,
        var: Symbol,
        e: &Expr,
        bindings: &mut Bindings,
    ) -> Option<()> {
        let decl = clause.decl(var)?;
        let stripped = e.strip_casts();
        match decl.classifier {
            Classifier::Expr => {}
            Classifier::Const => {
                if !matches!(
                    stripped.kind,
                    ExprKind::IntLit(_) | ExprKind::StrLit(_) | ExprKind::Null
                ) {
                    return None;
                }
            }
            Classifier::LValue => {
                e.as_lval()?;
            }
            Classifier::Var => match e.as_lval() {
                Some(lv) if lv.as_var().is_some() => {}
                _ => return None,
            },
        }
        if !self.type_pat_matches(&decl.ty, &self.env.expr_type(e)) {
            return None;
        }
        bindings.push((var, Bound::Expr(e.clone())));
        Some(())
    }

    fn bind_lval(
        &mut self,
        clause: &Clause,
        var: Symbol,
        lv: &Lvalue,
        bindings: &mut Bindings,
    ) -> Option<()> {
        let decl = clause.decl(var)?;
        match decl.classifier {
            Classifier::LValue => {}
            Classifier::Var => {
                lv.as_var()?;
            }
            // Expression and constant classifiers never bind l-values.
            Classifier::Expr | Classifier::Const => return None,
        }
        if !self.type_pat_matches(&decl.ty, &self.env.lval_decl_type(lv)) {
            return None;
        }
        bindings.push((var, Bound::Lval(lv.clone())));
        Some(())
    }

    /// Whether a type pattern accepts a static type; see
    /// [`type_pat_accepts`].
    pub fn type_pat_matches(&self, pat: &TypePat, ty: &StaticTy) -> bool {
        type_pat_accepts(pat, ty)
    }

    /// Evaluates a clause guard under bindings.
    pub fn eval_guard(&mut self, guard: &Pred, bindings: &Bindings) -> bool {
        match guard {
            Pred::True => true,
            Pred::And(a, b) => self.eval_guard(a, bindings) && self.eval_guard(b, bindings),
            Pred::Or(a, b) => self.eval_guard(a, bindings) || self.eval_guard(b, bindings),
            Pred::Cmp(op, a, b) => {
                let (Some(va), Some(vb)) = (const_value(a, bindings), const_value(b, bindings))
                else {
                    return false;
                };
                compare(*op, va, vb)
            }
            Pred::QualCheck(q, x) => {
                let Some((_, bound)) = bindings.iter().find(|(v, _)| v == x) else {
                    return false;
                };
                match bound.clone() {
                    Bound::Expr(e) => self.has_qual(&e, *q),
                    Bound::Lval(lv) => self.has_qual(&Expr::lval(lv), *q),
                }
            }
        }
    }
}

/// Whether a type pattern accepts a static type. Type variables match
/// anything; `Unknown` types are accepted permissively (the base type
/// error is reported elsewhere).
pub fn type_pat_accepts(pat: &TypePat, ty: &StaticTy) -> bool {
    match (pat, ty) {
        (_, StaticTy::Unknown) => true,
        (TypePat::Any(_), _) => true,
        (TypePat::Ptr(_), StaticTy::Null) => true,
        (TypePat::Int | TypePat::Char, StaticTy::Null) => false,
        (TypePat::Int, StaticTy::Known(t)) => matches!(t.ty, Ty::Base(BaseTy::Int)),
        (TypePat::Char, StaticTy::Known(t)) => matches!(t.ty, Ty::Base(BaseTy::Char)),
        (TypePat::Ptr(inner), StaticTy::Known(t)) => match t.pointee() {
            Some(p) => type_pat_accepts(inner, &StaticTy::Known(p.clone())),
            None => false,
        },
    }
}

/// The constant value of a predicate term, if it denotes one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ConstVal {
    Int(i64),
    Str,
}

fn const_value(t: &PTerm, bindings: &Bindings) -> Option<ConstVal> {
    match t {
        PTerm::Int(v) => Some(ConstVal::Int(*v)),
        PTerm::Null => Some(ConstVal::Int(0)),
        PTerm::Var(x) => {
            let (_, bound) = bindings.iter().find(|(v, _)| v == x)?;
            match bound {
                Bound::Expr(e) => match &e.strip_casts().kind {
                    ExprKind::IntLit(v) => Some(ConstVal::Int(*v)),
                    ExprKind::Null => Some(ConstVal::Int(0)),
                    ExprKind::StrLit(_) => Some(ConstVal::Str),
                    _ => None,
                },
                Bound::Lval(_) => None,
            }
        }
    }
}

fn compare(op: CmpOp, a: ConstVal, b: ConstVal) -> bool {
    match (a, b) {
        (ConstVal::Int(x), ConstVal::Int(y)) => match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        },
        // A string literal is a nonnull pointer: it differs from every
        // integer (in particular NULL = 0).
        (ConstVal::Str, ConstVal::Int(_)) | (ConstVal::Int(_), ConstVal::Str) => {
            matches!(op, CmpOp::Ne)
        }
        (ConstVal::Str, ConstVal::Str) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_cir::parse::parse_program;
    use stq_qualspec::Registry;

    fn setup(src: &str) -> (Program, Registry) {
        let registry = Registry::builtins();
        let program = parse_program(src, &registry.names()).expect("parse");
        (program, registry)
    }

    fn q(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    #[test]
    fn positive_constant_is_pos() {
        let (p, r) = setup("");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        assert!(inf.has_qual(&Expr::int(3), q("pos")));
        assert!(!inf.has_qual(&Expr::int(0), q("pos")));
        assert!(!inf.has_qual(&Expr::int(-2), q("pos")));
    }

    #[test]
    fn declared_variable_has_its_qualifier() {
        let (p, r) = setup("int pos x;");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        assert!(inf.has_qual(&Expr::var("x"), q("pos")));
        assert!(!inf.has_qual(&Expr::var("x"), q("neg")));
    }

    #[test]
    fn product_of_pos_is_pos() {
        let (p, r) = setup("int pos a; int pos b; int c;");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        let ab = Expr::binop(BinOp::Mul, Expr::var("a"), Expr::var("b"));
        assert!(inf.has_qual(&ab, q("pos")));
        let ac = Expr::binop(BinOp::Mul, Expr::var("a"), Expr::var("c"));
        assert!(!inf.has_qual(&ac, q("pos")));
    }

    #[test]
    fn mutual_recursion_pos_neg() {
        let (p, r) = setup("int neg n; int pos x;");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        // -n where n:neg is pos (third case of pos).
        let neg_n = Expr::unop(UnOp::Neg, Expr::var("n"));
        assert!(inf.has_qual(&neg_n, q("pos")));
        // -x where x:pos is neg.
        let neg_x = Expr::unop(UnOp::Neg, Expr::var("x"));
        assert!(inf.has_qual(&neg_x, q("neg")));
        // pos * neg is neg.
        let xn = Expr::binop(BinOp::Mul, Expr::var("x"), Expr::var("n"));
        assert!(inf.has_qual(&xn, q("neg")));
        assert!(!inf.has_qual(&xn, q("pos")));
    }

    #[test]
    fn cycle_terminates_and_is_false() {
        // A qualifier defined only in terms of itself can never be
        // introduced: the least fixed point is empty.
        let mut r = Registry::new();
        r.add_source(
            "value qualifier selfq(int Expr E)
                case E of
                    decl int Expr E1: -E1, where selfq(E1)",
        )
        .unwrap();
        let p = parse_program("int x;", &r.names()).unwrap();
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        let e = Expr::unop(UnOp::Neg, Expr::unop(UnOp::Neg, Expr::var("x")));
        assert!(!inf.has_qual(&e, q("selfq")));
    }

    #[test]
    fn repeated_queries_hit_the_memo() {
        let (p, r) = setup("int pos a; int pos b;");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        let ab = Expr::binop(BinOp::Mul, Expr::var("a"), Expr::var("b"));
        assert!(inf.has_qual(&ab, q("pos")));
        let misses_after_first = inf.memo_misses;
        assert!(misses_after_first >= 1);
        assert!(inf.has_qual(&ab, q("pos")));
        assert_eq!(inf.memo_misses, misses_after_first);
        assert!(inf.memo_hits >= 1);
        assert!(inf.case_applications >= 1);
    }

    #[test]
    fn cycle_cutoff_is_not_memoized_as_an_answer() {
        // Inside the selfq cycle, (−x, selfq) comes back false via the
        // cut-off; only the *root* query's false may be cached. A later
        // root query of the inner expression must recompute (miss).
        let mut r = Registry::new();
        r.add_source(
            "value qualifier selfq(int Expr E)
                case E of
                    decl int Expr E1: -E1, where selfq(E1)",
        )
        .unwrap();
        let p = parse_program("int x;", &r.names()).unwrap();
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        let neg_x = Expr::unop(UnOp::Neg, Expr::var("x"));
        let e = Expr::unop(UnOp::Neg, neg_x.clone());
        assert!(!inf.has_qual(&e, q("selfq")));
        let misses = inf.memo_misses;
        assert!(!inf.has_qual(&neg_x, q("selfq")));
        assert!(inf.memo_misses > misses, "inner false must not be cached");
        // The root query's false *is* cached.
        let misses = inf.memo_misses;
        assert!(!inf.has_qual(&e, q("selfq")));
        assert_eq!(inf.memo_misses, misses);
    }

    #[test]
    fn pos_implies_nonzero_via_case() {
        let (p, r) = setup("int pos d;");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        assert!(inf.has_qual(&Expr::var("d"), q("nonzero")));
    }

    #[test]
    fn address_of_is_nonnull() {
        let (p, r) = setup("int x;");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        let e = Expr::addr_of(Lvalue::var("x"));
        assert!(inf.has_qual(&e, q("nonnull")));
    }

    #[test]
    fn null_is_not_nonnull() {
        let (p, r) = setup("");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        assert!(!inf.has_qual(&Expr::null(), q("nonnull")));
    }

    #[test]
    fn subject_type_gates_applicability() {
        // pos applies to int expressions only; a pointer variable cannot
        // be pos even via a bogus case clause.
        let (p, r) = setup("int* ptr;");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        assert!(!inf.has_qual(&Expr::var("ptr"), q("pos")));
        // nonnull applies to pointers only.
        let (p2, r2) = setup("int i;");
        let env2 = TypeEnv::new(&p2, &r2);
        let mut inf2 = Inference::new(&env2);
        assert!(!inf2.has_qual(&Expr::var("i"), q("nonnull")));
    }

    #[test]
    fn cast_asserts_qualifier() {
        let (p, r) = setup("int y;");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        let e = Expr::var("y").cast(QualType::int().with_qual("pos"));
        assert!(inf.has_qual(&e, q("pos")));
    }

    #[test]
    fn cast_does_not_erase_inner_knowledge() {
        let (p, r) = setup("int pos x;");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        let e = Expr::var("x").cast(QualType::int());
        assert!(inf.has_qual(&e, q("pos")));
    }

    #[test]
    fn constants_are_untainted() {
        let (p, r) = setup("");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        let s = Expr::new(ExprKind::StrLit("%s".into()));
        assert!(inf.has_qual(&s, q("untainted")));
        assert!(inf.has_qual(&Expr::int(7), q("untainted")));
        assert!(!inf.has_qual(&Expr::var("unknown"), q("untainted")));
    }

    #[test]
    fn everything_is_tainted() {
        let (p, r) = setup("char* buf;");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        assert!(inf.has_qual(&Expr::var("buf"), q("tainted")));
    }

    #[test]
    fn guard_disjunction() {
        let (p, r) = setup("int pos a; int neg b;");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        // neg's product rule: (pos && neg) || (neg && pos).
        let ab = Expr::binop(BinOp::Mul, Expr::var("a"), Expr::var("b"));
        let ba = Expr::binop(BinOp::Mul, Expr::var("b"), Expr::var("a"));
        assert!(inf.has_qual(&ab, q("neg")));
        assert!(inf.has_qual(&ba, q("neg")));
    }

    #[test]
    fn string_literal_is_not_null() {
        // Guard `C != 0` should hold for string constants (used when
        // untainted's constant rule meets comparisons).
        let mut r = Registry::new();
        r.add_source(
            "value qualifier strq(T Expr E)
                case E of
                    decl T Const C: C, where C != NULL",
        )
        .unwrap();
        let p = parse_program("", &r.names()).unwrap();
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        let s = Expr::new(ExprKind::StrLit("hello".into()));
        assert!(inf.has_qual(&s, Symbol::intern("strq")));
        assert!(!inf.has_qual(&Expr::null(), Symbol::intern("strq")));
    }

    #[test]
    fn deref_pattern_matches() {
        // nonnull's restrict pattern is *F; exercise clause matching
        // directly.
        let (p, r) = setup("int* nonnull np;");
        let env = TypeEnv::new(&p, &r);
        let mut inf = Inference::new(&env);
        let def = r.get_by_name("nonnull").unwrap();
        let restrict = &def.restricts[0];
        let deref = Expr::lval(Lvalue::deref(Expr::var("np")));
        let bindings = inf.match_clause(restrict, &deref).expect("must match");
        assert_eq!(bindings.len(), 1);
        assert!(inf.eval_guard(&restrict.guard, &bindings));
    }
}
