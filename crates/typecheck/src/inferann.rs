//! Whole-program qualifier inference — the paper's §8 plan ("support for
//! qualifier inference to decrease the annotation burden"), in the style
//! of CQUAL's inference.
//!
//! Given a program and one value qualifier `q`, inference computes the
//! **greatest consistent annotation set**: it optimistically assumes `q`
//! on every declaration site whose type fits the qualifier's subject,
//! then repeatedly removes the assumption from any site that receives a
//! value not derivable as `q` under the current assumptions (an explicit
//! assignment, an initializer, a call argument flowing into a parameter,
//! a call result flowing from a return site, or a `return` flowing into
//! the function's return type). The iteration is monotone decreasing, so
//! it terminates at a fixpoint; what survives is sound to annotate.
//!
//! Like all whole-program inference, parameters of functions that are
//! never called keep their optimistic assumption (there is no caller to
//! contradict it) — the result is the most permissive annotation of the
//! *closed* program.

use crate::env::StaticTy;
use crate::env::TypeEnv;
use crate::infer::{type_pat_accepts, Inference};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use stq_cir::ast::*;
use stq_qualspec::{QualKind, Registry};
use stq_util::Symbol;

/// A declaration site that can carry an inferred qualifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Site {
    /// A global variable.
    Global(Symbol),
    /// A parameter `(function, name)`.
    Param(Symbol, Symbol),
    /// A local variable `(function, name)`. Shadowed locals share a
    /// site (a conservative merge).
    Local(Symbol, Symbol),
    /// A function's return type.
    Ret(Symbol),
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Global(g) => write!(f, "global {g}"),
            Site::Param(func, p) => write!(f, "parameter {p} of {func}"),
            Site::Local(func, l) => write!(f, "local {l} of {func}"),
            Site::Ret(func) => write!(f, "return type of {func}"),
        }
    }
}

/// What flows into a site.
#[derive(Clone, Debug)]
enum Incoming {
    /// An expression, evaluated in the given function's environment
    /// (`None` = global initializer context).
    Expr(Expr, Option<Symbol>),
    /// The return site of a called function.
    FromRet(Symbol),
}

/// The result of annotation inference.
#[derive(Clone, Debug)]
pub struct AnnotationInference {
    /// The qualifier inferred.
    pub qualifier: Symbol,
    /// Sites that can soundly carry the qualifier, beyond those already
    /// annotated in the input.
    pub inferred: Vec<Site>,
    /// Sites that had to give up the optimistic assumption.
    pub rejected: Vec<Site>,
    /// The program with the inferred annotations applied.
    pub annotated: Program,
    /// Fixpoint iterations performed.
    pub iterations: usize,
}

/// Infers `qual` annotations for `program` (see the module docs).
///
/// # Panics
///
/// Panics if `qual` is not a registered *value* qualifier.
pub fn infer_annotations(
    registry: &Registry,
    program: &Program,
    qual: Symbol,
) -> AnnotationInference {
    let def = registry
        .get(qual)
        .unwrap_or_else(|| panic!("unknown qualifier `{qual}`"));
    assert_eq!(
        def.kind,
        QualKind::Value,
        "annotation inference targets value qualifiers"
    );

    // Candidate sites: declared type's shape fits the subject.
    let mut candidates: BTreeSet<Site> = BTreeSet::new();
    let mut site_types: HashMap<Site, QualType> = HashMap::new();
    let fits = |ty: &QualType| type_pat_accepts(&def.subject.ty, &StaticTy::Known(ty.clone()));
    for g in &program.globals {
        if fits(&g.ty) {
            candidates.insert(Site::Global(g.name));
            site_types.insert(Site::Global(g.name), g.ty.clone());
        }
    }
    for f in &program.funcs {
        for (p, ty) in &f.sig.params {
            if fits(ty) {
                candidates.insert(Site::Param(f.name, *p));
                site_types.insert(Site::Param(f.name, *p), ty.clone());
            }
        }
        if fits(&f.sig.ret) {
            candidates.insert(Site::Ret(f.name));
            site_types.insert(Site::Ret(f.name), f.sig.ret.clone());
        }
        collect_locals(f.name, &f.body, &fits, &mut candidates, &mut site_types);
    }

    // Incoming-flow constraints.
    let constraints = collect_constraints(program);

    // The greatest fixpoint: start from everything, remove until stable.
    let mut assumed: BTreeSet<Site> = candidates.clone();
    let mut iterations = 0;
    loop {
        iterations += 1;
        let annotated = apply_assumptions(program, qual, &assumed);
        let mut removed = Vec::new();
        for site in assumed.iter().copied() {
            let Some(incoming) = constraints.get(&site) else {
                continue; // nothing flows in: the assumption stands
            };
            let justified = incoming.iter().all(|inc| match inc {
                Incoming::FromRet(f) => {
                    assumed.contains(&Site::Ret(*f))
                        || annotated
                            .signature(*f)
                            .is_some_and(|sig| sig.ret.has_qual(qual))
                }
                Incoming::Expr(e, ctx) => {
                    let env = env_for(&annotated, registry, *ctx);
                    let mut inf = Inference::new(&env);
                    inf.has_qual(e, qual)
                }
            });
            if !justified {
                removed.push(site);
            }
        }
        if removed.is_empty() {
            let originally: BTreeSet<Site> = candidates
                .iter()
                .copied()
                .filter(|s| site_types.get(s).is_some_and(|t| t.has_qual(qual)))
                .collect();
            let inferred: Vec<Site> = assumed
                .iter()
                .copied()
                .filter(|s| !originally.contains(s))
                .collect();
            let rejected: Vec<Site> = candidates
                .iter()
                .copied()
                .filter(|s| !assumed.contains(s))
                .collect();
            return AnnotationInference {
                qualifier: qual,
                inferred,
                rejected,
                annotated,
                iterations,
            };
        }
        for site in removed {
            assumed.remove(&site);
        }
    }
}

fn collect_locals(
    func: Symbol,
    stmts: &[Stmt],
    fits: &dyn Fn(&QualType) -> bool,
    candidates: &mut BTreeSet<Site>,
    site_types: &mut HashMap<Site, QualType>,
) {
    for s in stmts {
        match &s.kind {
            StmtKind::Decl(d) if fits(&d.ty) => {
                candidates.insert(Site::Local(func, d.name));
                site_types.insert(Site::Local(func, d.name), d.ty.clone());
            }
            StmtKind::Block(inner) => collect_locals(func, inner, fits, candidates, site_types),
            StmtKind::If(_, t, e) => {
                collect_locals(func, std::slice::from_ref(t), fits, candidates, site_types);
                if let Some(e) = e {
                    collect_locals(func, std::slice::from_ref(e), fits, candidates, site_types);
                }
            }
            StmtKind::While(_, b) => {
                collect_locals(func, std::slice::from_ref(b), fits, candidates, site_types)
            }
            _ => {}
        }
    }
}

fn collect_constraints(program: &Program) -> HashMap<Site, Vec<Incoming>> {
    let mut out: HashMap<Site, Vec<Incoming>> = HashMap::new();
    let mut push = |site: Site, inc: Incoming| out.entry(site).or_default().push(inc);

    for g in &program.globals {
        if let Some(init) = &g.init {
            push(Site::Global(g.name), Incoming::Expr(init.clone(), None));
        }
    }
    for f in &program.funcs {
        walk(f.name, program, &f.body, &mut push);
    }
    out
}

fn walk(func: Symbol, program: &Program, stmts: &[Stmt], push: &mut dyn FnMut(Site, Incoming)) {
    // Resolving a variable name to a site within `func`: a local if the
    // function declares it or a parameter, otherwise a global.
    let site_of = |name: Symbol| -> Site {
        let f = program.func(func).expect("walking a defined function");
        if f.sig.params.iter().any(|(p, _)| *p == name) {
            return Site::Param(func, name);
        }
        if declares_local(&f.body, name) {
            return Site::Local(func, name);
        }
        Site::Global(name)
    };
    for s in stmts {
        match &s.kind {
            StmtKind::Decl(d) => {
                if let Some(init) = &d.init {
                    push(
                        Site::Local(func, d.name),
                        Incoming::Expr(init.clone(), Some(func)),
                    );
                }
            }
            StmtKind::Instr(i) => match &i.kind {
                InstrKind::Set(lv, e) => {
                    if let Some(name) = lv.as_var() {
                        push(site_of(name), Incoming::Expr(e.clone(), Some(func)));
                    }
                }
                InstrKind::Alloc(..) | InstrKind::RuntimeCheck(..) => {}
                InstrKind::Call(dst, g, args) => {
                    if let Some(callee) = program.func(*g) {
                        for ((p, _), arg) in callee.sig.params.iter().zip(args) {
                            push(Site::Param(*g, *p), Incoming::Expr(arg.clone(), Some(func)));
                        }
                        if let Some(lv) = dst {
                            if let Some(name) = lv.as_var() {
                                push(site_of(name), Incoming::FromRet(*g));
                            }
                        }
                    }
                }
            },
            StmtKind::Return(Some(e)) => {
                push(Site::Ret(func), Incoming::Expr(e.clone(), Some(func)));
            }
            StmtKind::Return(None) => {}
            StmtKind::Block(inner) => walk(func, program, inner, push),
            StmtKind::If(_, t, e) => {
                walk(func, program, std::slice::from_ref(t), push);
                if let Some(e) = e {
                    walk(func, program, std::slice::from_ref(e), push);
                }
            }
            StmtKind::While(_, b) => walk(func, program, std::slice::from_ref(b), push),
        }
    }
}

fn declares_local(stmts: &[Stmt], name: Symbol) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Decl(d) => d.name == name,
        StmtKind::Block(inner) => declares_local(inner, name),
        StmtKind::If(_, t, e) => {
            declares_local(std::slice::from_ref(t), name)
                || e.as_deref()
                    .is_some_and(|e| declares_local(std::slice::from_ref(e), name))
        }
        StmtKind::While(_, b) => declares_local(std::slice::from_ref(b), name),
        _ => false,
    })
}

/// Applies an assumption set: a copy of the program with `qual` added to
/// every assumed site's declared type.
pub fn apply_assumptions(program: &Program, qual: Symbol, assumed: &BTreeSet<Site>) -> Program {
    let mut out = program.clone();
    for g in &mut out.globals {
        if assumed.contains(&Site::Global(g.name)) {
            g.ty.quals.insert(qual);
        }
    }
    for f in &mut out.funcs {
        let fname = f.name;
        for (p, ty) in &mut f.sig.params {
            if assumed.contains(&Site::Param(fname, *p)) {
                ty.quals.insert(qual);
            }
        }
        if assumed.contains(&Site::Ret(fname)) {
            f.sig.ret.quals.insert(qual);
        }
        annotate_locals(fname, &mut f.body, qual, assumed);
    }
    out
}

fn annotate_locals(func: Symbol, stmts: &mut [Stmt], qual: Symbol, assumed: &BTreeSet<Site>) {
    for s in stmts {
        match &mut s.kind {
            StmtKind::Decl(d) if assumed.contains(&Site::Local(func, d.name)) => {
                d.ty.quals.insert(qual);
            }
            StmtKind::Block(inner) => annotate_locals(func, inner, qual, assumed),
            StmtKind::If(_, t, e) => {
                annotate_locals(func, std::slice::from_mut(t), qual, assumed);
                if let Some(e) = e {
                    annotate_locals(func, std::slice::from_mut(e), qual, assumed);
                }
            }
            StmtKind::While(_, b) => annotate_locals(func, std::slice::from_mut(b), qual, assumed),
            _ => {}
        }
    }
}

fn env_for<'a>(program: &'a Program, registry: &'a Registry, func: Option<Symbol>) -> TypeEnv<'a> {
    let mut env = TypeEnv::new(program, registry);
    if let Some(fname) = func {
        if let Some(f) = program.func(fname) {
            env.push_scope();
            for (p, ty) in &f.sig.params {
                env.declare(*p, ty.clone());
            }
            declare_all_locals(&mut env, &f.body);
        }
    }
    env
}

fn declare_all_locals(env: &mut TypeEnv<'_>, stmts: &[Stmt]) {
    for s in stmts {
        match &s.kind {
            StmtKind::Decl(d) => env.declare(d.name, d.ty.clone()),
            StmtKind::Block(inner) => declare_all_locals(env, inner),
            StmtKind::If(_, t, e) => {
                declare_all_locals(env, std::slice::from_ref(t));
                if let Some(e) = e {
                    declare_all_locals(env, std::slice::from_ref(e));
                }
            }
            StmtKind::While(_, b) => declare_all_locals(env, std::slice::from_ref(b)),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_cir::parse::parse_program;

    fn infer(src: &str, qual: &str) -> AnnotationInference {
        let registry = Registry::builtins();
        let program = parse_program(src, &registry.names()).expect("parses");
        infer_annotations(&registry, &program, Symbol::intern(qual))
    }

    #[test]
    fn constants_justify_pos_globals() {
        let r = infer("int limit = 100; int zero = 0;", "pos");
        assert!(r.inferred.contains(&Site::Global(Symbol::intern("limit"))));
        assert!(r.rejected.contains(&Site::Global(Symbol::intern("zero"))));
    }

    #[test]
    fn flows_propagate_through_calls() {
        let r = infer(
            "int source() { return 5; }
             int relay() { int x; x = source(); return x; }",
            "pos",
        );
        assert!(r.inferred.contains(&Site::Ret(Symbol::intern("source"))));
        assert!(r
            .inferred
            .contains(&Site::Local(Symbol::intern("relay"), Symbol::intern("x"))));
        assert!(r.inferred.contains(&Site::Ret(Symbol::intern("relay"))));
    }

    #[test]
    fn one_bad_caller_poisons_a_parameter() {
        let r = infer(
            "void take(int v) { }
             void good() { take(3); }
             void bad() { take(0); }",
            "pos",
        );
        assert!(r
            .rejected
            .contains(&Site::Param(Symbol::intern("take"), Symbol::intern("v"))));
    }

    #[test]
    fn uncalled_parameters_keep_the_optimistic_assumption() {
        let r = infer("int id(int v) { return v; }", "pos");
        assert!(r
            .inferred
            .contains(&Site::Param(Symbol::intern("id"), Symbol::intern("v"))));
        // And the return follows from the parameter.
        assert!(r.inferred.contains(&Site::Ret(Symbol::intern("id"))));
    }

    #[test]
    fn mutual_dependence_resolves_to_the_greatest_fixpoint() {
        // a and b copy each other and are seeded with a constant: both
        // stay pos. c is seeded with 0: both c and d fall.
        let r = infer(
            "void f() {
                 int a = 1;
                 int b = a;
                 a = b;
                 int c = 0;
                 int d = c;
                 c = d;
             }",
            "pos",
        );
        let f = Symbol::intern("f");
        assert!(r.inferred.contains(&Site::Local(f, Symbol::intern("a"))));
        assert!(r.inferred.contains(&Site::Local(f, Symbol::intern("b"))));
        assert!(r.rejected.contains(&Site::Local(f, Symbol::intern("c"))));
        assert!(r.rejected.contains(&Site::Local(f, Symbol::intern("d"))));
    }

    #[test]
    fn derived_expressions_count() {
        let r = infer(
            "void f(int pos seed) {
                 int p = seed * seed;
                 int q = seed + seed;
             }",
            "pos",
        );
        let f = Symbol::intern("f");
        // Products of pos are pos; sums are not derivable.
        assert!(r.inferred.contains(&Site::Local(f, Symbol::intern("p"))));
        assert!(r.rejected.contains(&Site::Local(f, Symbol::intern("q"))));
    }

    #[test]
    fn nonnull_inference_on_pointers() {
        let r = infer(
            "int g;
             void f() {
                 int* p = &g;
                 int* q = NULL;
             }",
            "nonnull",
        );
        let f = Symbol::intern("f");
        assert!(r.inferred.contains(&Site::Local(f, Symbol::intern("p"))));
        assert!(r.rejected.contains(&Site::Local(f, Symbol::intern("q"))));
        // The int global is not a candidate for a pointer qualifier.
        assert!(!r
            .inferred
            .iter()
            .chain(&r.rejected)
            .any(|s| *s == Site::Global(Symbol::intern("g"))));
    }

    #[test]
    fn annotated_program_typechecks_cleaner() {
        // Inference discovers nonnull for p, which then licenses the
        // dereference — the annotation burden drops to zero.
        let registry = Registry::builtins();
        let src = "int g;
                   int f() {
                       int* p = &g;
                       return *p;
                   }";
        let program = parse_program(src, &registry.names()).expect("parses");
        let before = crate::check::check_program(&registry, &program);
        assert_eq!(before.stats.qualifier_errors, 1);
        let inferred = infer_annotations(&registry, &program, Symbol::intern("nonnull"));
        let after = crate::check::check_program(&registry, &inferred.annotated);
        assert_eq!(after.stats.qualifier_errors, 0, "{}", after.diags);
    }

    #[test]
    fn existing_annotations_are_not_reported_as_inferred() {
        let r = infer("int pos limit = 10;", "pos");
        assert!(r.inferred.is_empty());
        assert!(r.rejected.is_empty());
    }

    #[test]
    fn iterations_are_bounded() {
        // A long chain needs one iteration per link at worst.
        let r = infer(
            "void f() {
                 int a = 0;
                 int b = a;
                 int c = b;
                 int d = c;
             }",
            "pos",
        );
        assert!(r.iterations <= 6, "{} iterations", r.iterations);
        assert_eq!(r.inferred.len(), 0);
        assert_eq!(r.rejected.len(), 4);
    }

    #[test]
    #[should_panic(expected = "value qualifiers")]
    fn reference_qualifiers_are_rejected() {
        let registry = Registry::builtins();
        let program = parse_program("", &registry.names()).unwrap();
        let _ = infer_annotations(&registry, &program, Symbol::intern("unique"));
    }
}
