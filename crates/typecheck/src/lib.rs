//! The extensible typechecker (paper §3).
//!
//! Takes a C-subset program (from `stq-cir`) and a set of qualifier
//! definitions (from `stq-qualspec`), and performs qualifier checking as
//! directed by the definitions' type rules:
//!
//! * [`check_program`] — the checking pass: `case`-rule inference for
//!   value qualifiers (with the implicit subtyping `τ q ≤ τ`), `restrict`
//!   enforcement on every matching expression, and
//!   `assign`/`disallow`/`ondecl` enforcement for reference qualifiers.
//!   Qualifier violations are warnings; checking never aborts.
//! * [`instrument_program`] — inserts run-time invariant checks for casts
//!   to value-qualified types (§2.1.3); [`InvariantChecker`] evaluates
//!   those checks when the program runs on the `stq-cir` interpreter.
//!
//! # Examples
//!
//! ```
//! use stq_qualspec::Registry;
//! use stq_cir::parse::parse_program;
//! use stq_typecheck::check_program;
//!
//! let registry = Registry::builtins();
//! // Dereferencing a possibly-null pointer violates nonnull's restrict rule.
//! let program = parse_program(
//!     "int f(int* p) { return *p; }",
//!     &registry.names(),
//! ).unwrap();
//! let result = check_program(&registry, &program);
//! assert_eq!(result.stats.qualifier_errors, 1);
//! assert_eq!(result.stats.dereferences, 1);
//! ```

pub mod check;
pub mod env;
pub mod flow;
pub mod infer;
pub mod inferann;
pub mod instrument;

pub use check::{check_program, check_program_with, CheckOptions, CheckResult, CheckStats};
pub use env::{StaticTy, TypeEnv};
pub use infer::{Bindings, Bound, Inference};
pub use inferann::{infer_annotations, AnnotationInference, Site};
pub use instrument::{instrument_program, observe_program, InvariantChecker};
