//! Static type environment: declared types of variables, fields, and
//! functions, and shape-level typing of expressions.
//!
//! The qualifier checker is layered over a light "base" type system (the
//! paper relies on gcc for ordinary C typechecking): we compute enough
//! shape information to drive qualifier rules — in particular the paper's
//! **logical model of memory**, under which `p + i` has the same type as
//! `p` (§3.3), and the **r-type** rule that strips top-level reference
//! qualifiers when an l-value is read (§2.2.1).

use std::collections::HashMap;
use stq_cir::ast::*;
use stq_qualspec::{QualKind, Registry};
use stq_util::Symbol;

/// The static type of an expression, as far as the checker can tell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StaticTy {
    /// A known qualified type.
    Known(QualType),
    /// The `NULL` literal: assignable to any pointer type.
    Null,
    /// Unknown (an error was already reported, or the construct is
    /// outside the base type system's reach).
    Unknown,
}

impl StaticTy {
    /// The known type, if any.
    pub fn known(&self) -> Option<&QualType> {
        match self {
            StaticTy::Known(t) => Some(t),
            _ => None,
        }
    }
}

/// Lexically scoped variable environment over a program.
pub struct TypeEnv<'a> {
    /// The program being checked (signatures, structs, globals).
    pub program: &'a Program,
    /// The qualifier registry (to classify value vs. reference quals).
    pub registry: &'a Registry,
    scopes: Vec<HashMap<Symbol, QualType>>,
}

impl<'a> TypeEnv<'a> {
    /// Creates an environment with one (function-level) scope.
    pub fn new(program: &'a Program, registry: &'a Registry) -> TypeEnv<'a> {
        TypeEnv {
            program,
            registry,
            scopes: vec![HashMap::new()],
        }
    }

    /// Enters a nested block scope.
    pub fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Leaves the innermost scope.
    pub fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    /// Declares a variable in the innermost scope.
    pub fn declare(&mut self, name: Symbol, ty: QualType) {
        self.scopes
            .last_mut()
            .expect("environment always has a scope")
            .insert(name, ty);
    }

    /// The declared type of a variable (innermost scope first, then
    /// globals).
    pub fn lookup(&self, name: Symbol) -> Option<QualType> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(&name))
            .cloned()
            .or_else(|| self.program.global(name).map(|g| g.ty.clone()))
    }

    /// Splits a type's top-level qualifiers into (value, reference) sets.
    pub fn split_quals(&self, ty: &QualType) -> (Vec<Symbol>, Vec<Symbol>) {
        let mut value = Vec::new();
        let mut reference = Vec::new();
        for &q in &ty.quals {
            match self.registry.get(q).map(|d| d.kind) {
                Some(QualKind::Ref) => reference.push(q),
                // Unregistered qualifiers are treated as value qualifiers;
                // the checker reports them separately.
                _ => value.push(q),
            }
        }
        (value, reference)
    }

    /// The *r-type* of an l-value: its declared type with top-level
    /// reference qualifiers stripped (paper §2.2.1). Returns the full
    /// declared type via `lval_decl_type` when the distinction matters.
    pub fn lval_rtype(&self, lv: &Lvalue) -> StaticTy {
        match self.lval_decl_type(lv) {
            StaticTy::Known(ty) => {
                let (_, refs) = self.split_quals(&ty);
                let refs: std::collections::BTreeSet<Symbol> = refs.into_iter().collect();
                StaticTy::Known(ty.without_quals(&refs))
            }
            other => other,
        }
    }

    /// The declared type of an l-value, reference qualifiers included.
    pub fn lval_decl_type(&self, lv: &Lvalue) -> StaticTy {
        match &lv.kind {
            LvalKind::Var(name) => match self.lookup(*name) {
                Some(t) => StaticTy::Known(t),
                None => StaticTy::Unknown,
            },
            LvalKind::Deref(e) => match self.expr_type(e) {
                StaticTy::Known(t) => match t.pointee() {
                    Some(inner) => StaticTy::Known(inner.clone()),
                    None => StaticTy::Unknown,
                },
                _ => StaticTy::Unknown,
            },
            LvalKind::Field(inner, f) => match self.lval_decl_type(inner) {
                StaticTy::Known(t) => match &t.ty {
                    Ty::Base(BaseTy::Struct(tag)) => self
                        .program
                        .struct_def(*tag)
                        .and_then(|s| {
                            s.fields
                                .iter()
                                .find(|(n, _)| n == f)
                                .map(|(_, t)| t.clone())
                        })
                        .map_or(StaticTy::Unknown, StaticTy::Known),
                    _ => StaticTy::Unknown,
                },
                other => other,
            },
        }
    }

    /// The static type of an expression.
    pub fn expr_type(&self, e: &Expr) -> StaticTy {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::SizeOf(_) => StaticTy::Known(QualType::int()),
            ExprKind::StrLit(_) => StaticTy::Known(QualType::char_ty().ptr_to()),
            ExprKind::Null => StaticTy::Null,
            ExprKind::Lval(lv) => self.lval_rtype(lv),
            // The pointee of `&lv` is lv's r-type: reference qualifiers
            // pertain to the l-value itself, not to what a pointer to it
            // carries (their protection is the disallow rule instead).
            ExprKind::AddrOf(lv) => match self.lval_rtype(lv) {
                StaticTy::Known(t) => StaticTy::Known(t.ptr_to()),
                _ => StaticTy::Unknown,
            },
            ExprKind::Unop(_, _) => StaticTy::Known(QualType::int()),
            ExprKind::Binop(BinOp::Add | BinOp::Sub, a, _) => {
                // Logical memory model: *pointer* arithmetic preserves the
                // pointer's type (`p + i : typeof(p)`, §3.3). Integer
                // arithmetic yields plain int — qualifiers do not flow
                // through `+`/`-` unless a case rule derives them.
                match self.expr_type(a) {
                    t @ StaticTy::Known(QualType { ty: Ty::Ptr(_), .. }) => t,
                    _ => StaticTy::Known(QualType::int()),
                }
            }
            ExprKind::Binop(..) => StaticTy::Known(QualType::int()),
            ExprKind::Cast(ty, _) => StaticTy::Known(ty.clone()),
        }
    }

    /// Shape compatibility for assignments: identical shapes, `NULL` into
    /// any pointer, `void*` interchangeable with any pointer, and `int`
    /// interchangeable with `char` (both are integral in the subset).
    pub fn shapes_compatible(&self, target: &QualType, source: &StaticTy) -> bool {
        match source {
            StaticTy::Unknown => true, // already reported elsewhere
            StaticTy::Null => target.is_ptr(),
            StaticTy::Known(src) => shapes_match(target, src),
        }
    }
}

fn shapes_match(a: &QualType, b: &QualType) -> bool {
    match (&a.ty, &b.ty) {
        (Ty::Base(x), Ty::Base(y)) => {
            x == y
                || matches!(
                    (x, y),
                    (BaseTy::Int, BaseTy::Char) | (BaseTy::Char, BaseTy::Int)
                )
        }
        (Ty::Ptr(x), Ty::Ptr(y)) => {
            // void* is the wildcard pointer.
            matches!(x.ty, Ty::Base(BaseTy::Void))
                || matches!(y.ty, Ty::Base(BaseTy::Void))
                || shapes_match(x, y)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_cir::parse::parse_program;

    fn setup(src: &str) -> (Program, Registry) {
        let registry = Registry::builtins();
        let p = parse_program(src, &registry.names()).expect("parse");
        (p, registry)
    }

    #[test]
    fn lookup_prefers_inner_scope() {
        let (p, r) = setup("int g;");
        let mut env = TypeEnv::new(&p, &r);
        assert_eq!(env.lookup(Symbol::intern("g")), Some(QualType::int()));
        env.push_scope();
        env.declare(Symbol::intern("g"), QualType::int().with_qual("pos"));
        assert!(env
            .lookup(Symbol::intern("g"))
            .unwrap()
            .has_qual(Symbol::intern("pos")));
        env.pop_scope();
        assert_eq!(env.lookup(Symbol::intern("g")), Some(QualType::int()));
    }

    #[test]
    fn rtype_strips_reference_qualifiers_only() {
        let (p, r) = setup("int * unique u; int pos v;");
        let env = TypeEnv::new(&p, &r);
        let u = Lvalue::var("u");
        match env.lval_rtype(&u) {
            StaticTy::Known(t) => {
                assert!(!t.has_qual(Symbol::intern("unique")));
                assert!(t.is_ptr());
            }
            other => panic!("expected known, got {other:?}"),
        }
        let v = Lvalue::var("v");
        match env.lval_rtype(&v) {
            StaticTy::Known(t) => assert!(t.has_qual(Symbol::intern("pos"))),
            other => panic!("expected known, got {other:?}"),
        }
    }

    #[test]
    fn deref_types_through_pointers() {
        let (p, r) = setup("int pos * q;");
        let env = TypeEnv::new(&p, &r);
        let star_q = Lvalue::deref(Expr::var("q"));
        match env.lval_decl_type(&star_q) {
            StaticTy::Known(t) => assert!(t.has_qual(Symbol::intern("pos"))),
            other => panic!("expected known, got {other:?}"),
        }
    }

    #[test]
    fn field_types_resolve() {
        let (p, r) = setup(
            "struct dfa { int* nonnull trans; int works; };
             struct dfa* d;",
        );
        let env = TypeEnv::new(&p, &r);
        let trans = Lvalue::field(Lvalue::deref(Expr::var("d")), "trans");
        match env.lval_decl_type(&trans) {
            StaticTy::Known(t) => assert!(t.has_qual(Symbol::intern("nonnull"))),
            other => panic!("expected known, got {other:?}"),
        }
    }

    #[test]
    fn pointer_arithmetic_keeps_type() {
        let (p, r) = setup("int pos * a;");
        let env = TypeEnv::new(&p, &r);
        let e = Expr::binop(BinOp::Add, Expr::var("a"), Expr::int(3));
        match env.expr_type(&e) {
            StaticTy::Known(t) => {
                assert!(t.is_ptr());
                assert!(t.pointee().unwrap().has_qual(Symbol::intern("pos")));
            }
            other => panic!("expected known, got {other:?}"),
        }
    }

    #[test]
    fn null_is_pointer_compatible() {
        let (p, r) = setup("");
        let env = TypeEnv::new(&p, &r);
        assert!(env.shapes_compatible(&QualType::int().ptr_to(), &StaticTy::Null));
        assert!(!env.shapes_compatible(&QualType::int(), &StaticTy::Null));
    }

    #[test]
    fn void_pointer_is_wildcard() {
        let (p, r) = setup("");
        let env = TypeEnv::new(&p, &r);
        let void_ptr = QualType::void().ptr_to();
        let int_ptr = QualType::int().ptr_to();
        assert!(env.shapes_compatible(&int_ptr, &StaticTy::Known(void_ptr.clone())));
        assert!(env.shapes_compatible(&void_ptr, &StaticTy::Known(int_ptr)));
    }

    #[test]
    fn int_and_char_interchange() {
        let (p, r) = setup("");
        let env = TypeEnv::new(&p, &r);
        assert!(env.shapes_compatible(&QualType::char_ty(), &StaticTy::Known(QualType::int())));
        assert!(!env.shapes_compatible(
            &QualType::char_ty().ptr_to(),
            &StaticTy::Known(QualType::int())
        ));
    }

    #[test]
    fn addr_of_keeps_declared_quals_in_pointee() {
        let (p, r) = setup("int pos x;");
        let env = TypeEnv::new(&p, &r);
        let e = Expr::addr_of(Lvalue::var("x"));
        match env.expr_type(&e) {
            StaticTy::Known(t) => {
                assert!(t.pointee().unwrap().has_qual(Symbol::intern("pos")));
            }
            other => panic!("expected known, got {other:?}"),
        }
    }
}
