//! Integration tests for the parallel + incremental proving pipeline:
//! scheduling must never change verdicts, the proof cache must hit on
//! unchanged obligations and miss on edited ones, and fault injection
//! must keep its exactly-once semantics under the pool.

use std::fs;
use std::path::PathBuf;
use stq_qualspec::Registry;
use stq_soundness::cache::{CACHE_FILE, FORMAT_VERSION};
use stq_soundness::{
    check_all_parallel, check_all_pipeline, check_all_retrying, check_qualifier_cached, fault,
    Budget, FaultKind, FaultPlan, ProofCache, RetryPolicy, SoundnessReport, Verdict,
};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stq-parallel-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Asserts two reports are identical modulo wall-clock fields.
fn assert_reports_equivalent(a: &SoundnessReport, b: &SoundnessReport, what: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "{what}: report count");
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.qualifier, rb.qualifier, "{what}: qualifier order");
        assert_eq!(ra.verdict, rb.verdict, "{what}: verdict for {}", ra.qualifier);
        assert_eq!(
            ra.obligations.len(),
            rb.obligations.len(),
            "{what}: obligation count for {}",
            ra.qualifier
        );
        for (oa, ob) in ra.obligations.iter().zip(&rb.obligations) {
            assert_eq!(oa.description, ob.description, "{what}: obligation order");
            assert_eq!(oa.proved, ob.proved, "{what}: {}", oa.description);
            assert_eq!(oa.countermodel, ob.countermodel, "{what}: {}", oa.description);
            assert_eq!(oa.resource, ob.resource, "{what}: {}", oa.description);
            assert_eq!(oa.crashed, ob.crashed, "{what}: {}", oa.description);
            assert_eq!(oa.attempts, ob.attempts, "{what}: {}", oa.description);
            assert_eq!(
                oa.stats.without_wall(),
                ob.stats.without_wall(),
                "{what}: stats for {}",
                oa.description
            );
        }
    }
    assert_eq!(
        a.totals.without_wall(),
        b.totals.without_wall(),
        "{what}: totals"
    );
}

#[test]
fn parallel_reports_are_identical_to_sequential_for_every_job_count() {
    let registry = Registry::builtins();
    let budget = Budget::default();
    let retry = RetryPolicy::attempts(2);
    let sequential = check_all_retrying(&registry, budget, retry);
    assert!(sequential.all_sound(), "{sequential}");
    for jobs in [1, 4, 8] {
        let parallel = check_all_parallel(&registry, budget, retry, jobs);
        assert_eq!(parallel.jobs, jobs);
        assert_reports_equivalent(&sequential, &parallel, &format!("jobs={jobs}"));
    }
}

#[test]
fn warm_cache_run_reproves_zero_unchanged_obligations() {
    let registry = Registry::builtins();
    let cache = ProofCache::in_memory();
    let cold = check_all_pipeline(
        &registry,
        Budget::default(),
        RetryPolicy::none(),
        4,
        Some(&cache),
    );
    let n = cold.obligation_count();
    assert!(n >= 19);
    assert_eq!(cold.reproved_count(), n, "cold run proves everything");
    assert_eq!(cold.totals.cache_misses, n as u64);
    assert_eq!(cold.totals.cache_hits, 0);

    let warm = check_all_pipeline(
        &registry,
        Budget::default(),
        RetryPolicy::none(),
        4,
        Some(&cache),
    );
    assert_eq!(warm.reproved_count(), 0, "warm run re-proves nothing");
    assert_eq!(warm.totals.cache_hits, n as u64);
    assert_eq!(warm.totals.cache_misses, 0);
    assert_reports_equivalent_verdicts(&cold, &warm);
    let shown = warm.to_string();
    assert!(shown.contains("(cached)"), "{shown}");
}

fn assert_reports_equivalent_verdicts(a: &SoundnessReport, b: &SoundnessReport) {
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.qualifier, rb.qualifier);
        assert_eq!(ra.verdict, rb.verdict, "verdict for {}", ra.qualifier);
        for (oa, ob) in ra.obligations.iter().zip(&rb.obligations) {
            assert_eq!(oa.proved, ob.proved, "{}", oa.description);
            assert_eq!(oa.countermodel, ob.countermodel, "{}", oa.description);
        }
    }
}

#[test]
fn editing_a_rule_body_changes_the_fingerprint_and_forces_a_reprove() {
    let cache = ProofCache::in_memory();
    let budget = Budget::default();
    let retry = RetryPolicy::none();

    let mut original = Registry::new();
    original
        .add_source(
            "value qualifier nn(int Expr E)
                case E of
                    decl int Const C: C, where C > 0
                invariant value(E) > 0",
        )
        .unwrap();
    let def = original.get_by_name("nn").unwrap();
    let first = check_qualifier_cached(&original, def, budget, retry, Some(&cache));
    assert_eq!(first.verdict, Verdict::Sound);
    assert!(first.obligations.iter().all(|o| o.stats.cache_misses == 1));

    // Unchanged qualifier: pure cache hit.
    let again = check_qualifier_cached(&original, def, budget, retry, Some(&cache));
    assert!(again.obligations.iter().all(|o| o.stats.cache_hits == 1));
    assert!(again.obligations.iter().all(|o| o.attempts == 0));

    // Edited rule guard (C >= 0): new fingerprint, full re-prove — and
    // the cache must replay the *new* (refuted) outcome, not the old one.
    let mut edited_rule = Registry::new();
    edited_rule
        .add_source(
            "value qualifier nn(int Expr E)
                case E of
                    decl int Const C: C, where C >= 0
                invariant value(E) > 0",
        )
        .unwrap();
    let def = edited_rule.get_by_name("nn").unwrap();
    let edited = check_qualifier_cached(&edited_rule, def, budget, retry, Some(&cache));
    assert_eq!(edited.verdict, Verdict::Unsound, "{edited}");
    assert!(edited.obligations.iter().all(|o| o.stats.cache_misses == 1));
    assert!(edited.obligations.iter().all(|o| o.attempts >= 1));

    // Edited invariant with the original rules: also a new fingerprint.
    let mut edited_inv = Registry::new();
    edited_inv
        .add_source(
            "value qualifier nn(int Expr E)
                case E of
                    decl int Const C: C, where C > 0
                invariant value(E) >= 1",
        )
        .unwrap();
    let def = edited_inv.get_by_name("nn").unwrap();
    let edited = check_qualifier_cached(&edited_inv, def, budget, retry, Some(&cache));
    assert!(edited.obligations.iter().all(|o| o.stats.cache_misses == 1));
}

#[test]
fn a_different_budget_or_retry_ladder_is_a_different_cache_key() {
    let cache = ProofCache::in_memory();
    let registry = Registry::builtins();
    let def = registry.get_by_name("pos").unwrap();
    let base = Budget::default();
    let first = check_qualifier_cached(&registry, def, base, RetryPolicy::none(), Some(&cache));
    assert!(first.obligations.iter().all(|o| o.stats.cache_misses == 1));
    // Same budget, different retry ladder: miss.
    let other = check_qualifier_cached(&registry, def, base, RetryPolicy::attempts(3), Some(&cache));
    assert!(other.obligations.iter().all(|o| o.stats.cache_misses == 1));
    // Different budget: miss.
    let bigger = Budget {
        max_rounds: base.max_rounds + 1,
        ..base
    };
    let other = check_qualifier_cached(&registry, def, bigger, RetryPolicy::none(), Some(&cache));
    assert!(other.obligations.iter().all(|o| o.stats.cache_misses == 1));
}

#[test]
fn stale_on_disk_cache_from_another_prover_version_is_ignored() {
    let dir = tmpdir("stale-version");
    fs::create_dir_all(&dir).unwrap();
    fs::write(
        dir.join(CACHE_FILE),
        format!(
            "stq-proof-cache {FORMAT_VERSION} stq-prover-0.0.0-r0\n\
             {:032x}\tP\n{:032x}\tP\n",
            1u128, 2u128
        ),
    )
    .unwrap();
    let cache = ProofCache::at_dir(&dir).unwrap();
    assert!(cache.is_empty(), "stale entries must not load");
    let registry = Registry::builtins();
    let report = check_all_pipeline(
        &registry,
        Budget::default(),
        RetryPolicy::none(),
        2,
        Some(&cache),
    );
    assert_eq!(
        report.reproved_count(),
        report.obligation_count(),
        "everything re-proves under a stale cache"
    );
    assert_eq!(report.totals.cache_invalidations, 2);
    assert!(report.all_sound(), "{report}");

    // Persisting writes the fresh entries under the current version, so
    // the next process gets full hits.
    cache.persist().unwrap();
    let reloaded = ProofCache::at_dir(&dir).unwrap();
    assert_eq!(reloaded.invalidations(), 0);
    let warm = check_all_pipeline(
        &registry,
        Budget::default(),
        RetryPolicy::none(),
        2,
        Some(&reloaded),
    );
    assert_eq!(warm.reproved_count(), 0);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_panic_under_parallel_jobs_crashes_exactly_one_obligation() {
    let registry = Registry::builtins();
    fault::install(FaultPlan::new().inject(3, FaultKind::Panic));
    let report = check_all_parallel(&registry, Budget::default(), RetryPolicy::none(), 4);
    fault::clear();
    let crashed: Vec<_> = report
        .reports
        .iter()
        .flat_map(|r| &r.obligations)
        .filter(|o| o.crashed.is_some())
        .collect();
    assert_eq!(crashed.len(), 1, "exactly one obligation crashed");
    assert!(crashed[0]
        .crashed
        .as_deref()
        .unwrap()
        .contains("injected panic"));
    // Every other obligation still got a verdict, and the sole crash is
    // the only non-sound result.
    assert_eq!(report.reports.len(), 8);
    let unproved = report
        .reports
        .iter()
        .flat_map(|r| &r.obligations)
        .filter(|o| !o.proved)
        .count();
    assert_eq!(unproved, 1);
    assert_eq!(
        report
            .reports
            .iter()
            .filter(|r| r.verdict == Verdict::Crashed)
            .count(),
        1
    );
}
