//! Cold-parallel scaling smoke: a small fixed workload (the builtin
//! registry, no proof cache) must run faster through the optimized cold
//! pipeline than through the legacy sequential cold path
//! ([`SolverTuning::legacy`]: per-obligation theory preprocessing, no
//! hash-consed matching). This is the qualitative floor under the
//! quantitative `speedup_parallel_cold_vs_sequential` gate in
//! `BENCH_soundness.json`; it guards against regressions that silently
//! disable theory sharing or per-worker solver reuse.
//!
//! Timing-sensitive, so `#[ignore]`d by default; `scripts/check.sh` runs
//! it explicitly with `-- --ignored`.

use std::time::{Duration, Instant};
use stq_qualspec::Registry;
use stq_soundness::{check_all_pipeline_tuned, Budget, RetryPolicy, SolverTuning};

/// Best-of-N wall clock for one full cold run of the builtin registry.
fn best_wall(registry: &Registry, jobs: usize, tuning: SolverTuning, reps: u32) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = check_all_pipeline_tuned(
            registry,
            Budget::default(),
            RetryPolicy::attempts(3),
            jobs,
            None,
            tuning,
        );
        let wall = t0.elapsed();
        assert!(report.all_sound(), "{report}");
        best = best.min(wall);
    }
    best
}

#[test]
#[ignore = "timing-sensitive; run explicitly via scripts/check.sh"]
fn cold_parallel_beats_the_legacy_sequential_cold_path() {
    let registry = Registry::builtins();
    // One throwaway run per configuration to populate the shared-theory
    // cache and warm the allocator before timing.
    best_wall(&registry, 1, SolverTuning::legacy(), 1);
    best_wall(&registry, 4, SolverTuning::default(), 1);

    let sequential = best_wall(&registry, 1, SolverTuning::legacy(), 3);
    let parallel_cold = best_wall(&registry, 4, SolverTuning::default(), 3);
    eprintln!(
        "cold-path smoke: legacy sequential {sequential:?}, optimized parallel \
         {parallel_cold:?} ({:.2}x)",
        sequential.as_secs_f64() / parallel_cold.as_secs_f64()
    );
    assert!(
        parallel_cold < sequential,
        "cold parallel run ({parallel_cold:?}) must beat the legacy sequential \
         cold path ({sequential:?})"
    );
}
