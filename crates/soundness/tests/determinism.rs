//! The cold-path determinism suite: the optimized pipeline (shared
//! theory, hash-consed leaf checks, per-worker solver reuse) must be a
//! pure performance change. Verdicts, countermodels, and the `--stats`
//! counter totals have to be byte-identical across `--jobs 1/4/8`, with
//! and without fault injection (`--fault-*-at`) armed; and the legacy
//! tuning ([`SolverTuning::legacy`]) must agree with the optimized
//! default on every verdict and every *search-trace* counter.
//!
//! The only counters allowed to differ between tuning modes are
//! `merges`/`fm_eliminations` (class-representative numbering and union
//! scheduling differ between the per-leaf e-graphs and the shared leaf
//! template) and the preprocessing/interning ledgers
//! (`theory_preps`/`theory_reuses`, `interned_terms`/`intern_hits`),
//! which measure *how* the work was done — never *what* was concluded.

use stq_qualspec::Registry;
use stq_soundness::{
    check_all_pipeline_tuned, fault, Budget, FaultKind, FaultPlan, RetryPolicy, SolverTuning,
    SoundnessReport, Verdict,
};

fn run(jobs: usize, retry: RetryPolicy, tuning: SolverTuning) -> SoundnessReport {
    let registry = Registry::builtins();
    check_all_pipeline_tuned(&registry, Budget::default(), retry, jobs, None, tuning)
}

/// Asserts two reports are identical modulo wall-clock fields.
fn assert_reports_identical(a: &SoundnessReport, b: &SoundnessReport, what: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "{what}: report count");
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.qualifier, rb.qualifier, "{what}: qualifier order");
        assert_eq!(ra.verdict, rb.verdict, "{what}: verdict for {}", ra.qualifier);
        for (oa, ob) in ra.obligations.iter().zip(&rb.obligations) {
            assert_eq!(oa.description, ob.description, "{what}: obligation order");
            assert_eq!(oa.proved, ob.proved, "{what}: {}", oa.description);
            assert_eq!(oa.countermodel, ob.countermodel, "{what}: {}", oa.description);
            assert_eq!(oa.resource, ob.resource, "{what}: {}", oa.description);
            assert_eq!(oa.crashed, ob.crashed, "{what}: {}", oa.description);
            assert_eq!(oa.attempts, ob.attempts, "{what}: {}", oa.description);
            assert_eq!(
                oa.stats.without_wall(),
                ob.stats.without_wall(),
                "{what}: stats for {}",
                oa.description
            );
        }
    }
    assert_eq!(
        a.totals.without_wall(),
        b.totals.without_wall(),
        "{what}: totals"
    );
}

#[test]
fn optimized_pipeline_results_are_identical_across_job_counts() {
    let retry = RetryPolicy::attempts(2);
    let baseline = run(1, retry, SolverTuning::default());
    assert!(baseline.all_sound(), "{baseline}");
    for jobs in [4, 8] {
        let parallel = run(jobs, retry, SolverTuning::default());
        assert_reports_identical(&baseline, &parallel, &format!("jobs={jobs}"));
    }
}

#[test]
fn legacy_and_optimized_tunings_agree_on_verdicts_and_search_counters() {
    let retry = RetryPolicy::attempts(2);
    let legacy = run(1, retry, SolverTuning::legacy());
    let optimized = run(1, retry, SolverTuning::default());
    assert!(legacy.all_sound(), "{legacy}");
    assert_eq!(legacy.reports.len(), optimized.reports.len());
    for (rl, ro) in legacy.reports.iter().zip(&optimized.reports) {
        assert_eq!(rl.qualifier, ro.qualifier);
        assert_eq!(rl.verdict, ro.verdict, "verdict for {}", rl.qualifier);
        for (ol, oo) in rl.obligations.iter().zip(&ro.obligations) {
            assert_eq!(ol.description, oo.description);
            assert_eq!(ol.proved, oo.proved, "{}", ol.description);
            assert_eq!(ol.countermodel, oo.countermodel, "{}", ol.description);
            assert_eq!(ol.attempts, oo.attempts, "{}", ol.description);
            // The entire DPLL + E-matching search trace must be
            // reproduced step for step by the optimized representation.
            let (sl, so) = (&ol.stats, &oo.stats);
            assert_eq!(sl.rounds, so.rounds, "{}", ol.description);
            assert_eq!(sl.instantiations, so.instantiations, "{}", ol.description);
            assert_eq!(
                sl.instantiations_by_trigger, so.instantiations_by_trigger,
                "{}",
                ol.description
            );
            assert_eq!(sl.ematch_candidates, so.ematch_candidates, "{}", ol.description);
            assert_eq!(sl.decisions, so.decisions, "{}", ol.description);
            assert_eq!(sl.propagations, so.propagations, "{}", ol.description);
            assert_eq!(sl.conflicts, so.conflicts, "{}", ol.description);
            assert_eq!(sl.theory_checks, so.theory_checks, "{}", ol.description);
            assert_eq!(sl.clauses, so.clauses, "{}", ol.description);
            assert_eq!(sl.max_clauses, so.max_clauses, "{}", ol.description);
        }
    }
    // The preprocessing ledgers must show the modes really differed:
    // legacy re-clausifies the axioms per attempt, the optimized path
    // never does (one worker, theory prepared before the run).
    assert!(legacy.totals.theory_preps > 0, "{:?}", legacy.totals);
    assert_eq!(legacy.totals.theory_reuses, 0, "{:?}", legacy.totals);
    assert_eq!(optimized.totals.theory_preps, 0, "{:?}", optimized.totals);
    assert!(optimized.totals.theory_reuses > 0, "{:?}", optimized.totals);
}

#[test]
fn injected_resource_faults_keep_results_identical_across_job_counts() {
    // Two injected ResourceOut faults with a three-rung retry ladder:
    // even if both land on the same obligation (entry numbering under
    // the pool is scheduling-dependent), it still recovers. A faulted
    // attempt contributes a fixed (empty) stats record and the re-proof
    // reproduces the base search trace, so the *totals* are independent
    // of which obligations drew the faults.
    let retry = RetryPolicy::attempts(3);
    let plan = FaultPlan::new()
        .inject(2, FaultKind::ResourceOut)
        .inject(9, FaultKind::ResourceOut);
    let mut baseline: Option<SoundnessReport> = None;
    for jobs in [1usize, 4, 8] {
        fault::install(plan.clone());
        let report = run(jobs, retry, SolverTuning::default());
        fault::clear();
        assert!(report.all_sound(), "jobs={jobs}: {report}");
        let attempts: u32 = report
            .reports
            .iter()
            .flat_map(|r| &r.obligations)
            .map(|o| o.attempts)
            .sum();
        assert_eq!(
            attempts as usize,
            report.obligation_count() + 2,
            "jobs={jobs}: each fault costs exactly one extra attempt"
        );
        match &baseline {
            None => baseline = Some(report),
            Some(base) => {
                for (rb, rj) in base.reports.iter().zip(&report.reports) {
                    assert_eq!(rb.qualifier, rj.qualifier);
                    assert_eq!(rb.verdict, rj.verdict, "jobs={jobs}: {}", rb.qualifier);
                }
                assert_eq!(
                    base.totals.without_wall(),
                    report.totals.without_wall(),
                    "jobs={jobs}: stats totals drifted under injected faults"
                );
            }
        }
    }
}

#[test]
fn injected_crashes_are_contained_identically_at_every_job_count() {
    // A panic on solver entry and a theory-solver panic several frames
    // deep: which obligation draws each entry index is
    // scheduling-dependent under the pool (documented in `fault`), but
    // the containment shape is not — exactly two obligations crash,
    // everything else is proved, at every job count.
    let plan = FaultPlan::new()
        .inject(3, FaultKind::Panic)
        .inject(7, FaultKind::TheoryError);
    for jobs in [1usize, 4, 8] {
        fault::install(plan.clone());
        let report = run(jobs, RetryPolicy::none(), SolverTuning::default());
        fault::clear();
        let crashed = report
            .reports
            .iter()
            .flat_map(|r| &r.obligations)
            .filter(|o| o.crashed.is_some())
            .count();
        assert_eq!(crashed, 2, "jobs={jobs}: exactly the two injected crashes");
        let unproved = report
            .reports
            .iter()
            .flat_map(|r| &r.obligations)
            .filter(|o| !o.proved)
            .count();
        assert_eq!(unproved, 2, "jobs={jobs}: every uninjected obligation proves");
        // Both crashes usually land on different qualifiers, but entry
        // numbering under the pool may put them on the same one.
        let crashed_quals = report
            .reports
            .iter()
            .filter(|r| r.verdict == Verdict::Crashed)
            .count();
        assert!(
            (1..=2).contains(&crashed_quals),
            "jobs={jobs}: {crashed_quals} crashed qualifier(s)"
        );
    }
}
