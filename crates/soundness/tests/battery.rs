//! A battery of user-defined qualifiers pushed through the soundness
//! checker, mapping out what the framework proves and what it rejects —
//! well beyond the paper's own library.

use stq_qualspec::Registry;
use stq_soundness::{check_qualifier, Verdict};

fn verdict_of(defs: &str, name: &str) -> Verdict {
    let mut registry = Registry::builtins();
    registry.add_source(defs).expect("definitions parse");
    let wf = registry.check_well_formed();
    assert!(!wf.has_errors(), "{wf}");
    let def = registry.get_by_name(name).expect("defined");
    check_qualifier(&registry, def).verdict
}

// ----- sound definitions -----

#[test]
fn interval_qualifier_is_sound() {
    assert_eq!(
        verdict_of(
            "value qualifier small(int Expr E)
                case E of
                    decl int Const C: C, where C >= 0 && C <= 9
                invariant value(E) >= 0 && value(E) <= 9",
            "small",
        ),
        Verdict::Sound
    );
}

#[test]
fn nonneg_with_weak_inequalities_is_sound() {
    assert_eq!(
        verdict_of(
            "value qualifier nonneg(int Expr E)
                case E of
                    decl int Const C: C, where C >= 0
                  | decl int Expr E1, E2: E1 + E2, where nonneg(E1) && nonneg(E2)
                  | decl int Expr E1, E2: E1 * E2, where nonneg(E1) && nonneg(E2)
                invariant value(E) >= 0",
            "nonneg",
        ),
        Verdict::Sound
    );
}

#[test]
fn cross_qualifier_strengthening_is_sound() {
    // ge2 ≥ 2; the sum of two pos values is ≥ 2 (each is ≥ 1 over the
    // integers) — a genuinely integer-flavoured fact the tightening
    // handles.
    assert_eq!(
        verdict_of(
            "value qualifier ge2(int Expr E)
                case E of
                    decl int Const C: C, where C >= 2
                  | decl int Expr E1, E2: E1 + E2, where pos(E1) && pos(E2)
                invariant value(E) >= 2",
            "ge2",
        ),
        Verdict::Sound
    );
}

#[test]
fn negation_bridge_is_sound() {
    assert_eq!(
        verdict_of(
            "value qualifier nonpos(int Expr E)
                case E of
                    decl int Const C: C, where C <= 0
                  | decl int Expr E1: -E1, where pos(E1)
                invariant value(E) <= 0",
            "nonpos",
        ),
        Verdict::Sound
    );
}

#[test]
fn comparison_results_are_boolean() {
    // A qualifier for 0/1 values introduced by comparisons: exercises
    // the eqExpr/ltExpr evaluation axioms.
    assert_eq!(
        verdict_of(
            "value qualifier boolean(int Expr E)
                case E of
                    decl int Const C: C, where C == 0 || C == 1
                  | decl int Expr E1, E2: E1 == E2
                  | decl int Expr E1, E2: E1 < E2
                  | decl int Expr E1: !E1
                invariant value(E) >= 0 && value(E) <= 1",
            "boolean",
        ),
        Verdict::Sound
    );
}

#[test]
fn deref_case_rule_uses_store_semantics() {
    // Everything read from a cell holding a pos value… cannot be proven
    // without knowing the store, but a *pointer-shaped* rule that just
    // re-checks its operand works: *E is nonzero if nothing — this is
    // the negative case below. Here instead: value equal to a constant.
    assert_eq!(
        verdict_of(
            "value qualifier answer(int Expr E)
                case E of
                    decl int Const C: C, where C == 42
                invariant value(E) == 42",
            "answer",
        ),
        Verdict::Sound
    );
}

#[test]
fn ondecl_reference_qualifier_with_weaker_invariant() {
    // An unaliased variant whose invariant only quantifies — provable
    // from declaration freshness, like the builtin.
    assert_eq!(
        verdict_of(
            "ref qualifier fresh(T Var X)
                ondecl
                disallow &X
                invariant forall T** P: *P != location(X)",
            "fresh",
        ),
        Verdict::Sound
    );
}

// ----- rejected definitions -----

#[test]
fn sum_rule_for_pos_variant_is_rejected() {
    // pos + pos is pos — true! But stated for possibly-equal-to-zero
    // nonneg premises it fails:
    assert_eq!(
        verdict_of(
            "value qualifier strictpos(int Expr E)
                case E of
                    decl int Expr E1, E2: E1 * E2, where nonzero(E1) && nonzero(E2)
                invariant value(E) > 0",
            "strictpos",
        ),
        Verdict::Unsound
    );
}

#[test]
fn interval_overflowing_rule_is_rejected() {
    // Adding two digits can exceed 9.
    assert_eq!(
        verdict_of(
            "value qualifier small2(int Expr E)
                case E of
                    decl int Const C: C, where C >= 0 && C <= 9
                  | decl int Expr E1, E2: E1 + E2, where small2(E1) && small2(E2)
                invariant value(E) >= 0 && value(E) <= 9",
            "small2",
        ),
        Verdict::Unsound
    );
}

#[test]
fn wrong_constant_guard_is_rejected() {
    assert_eq!(
        verdict_of(
            "value qualifier big(int Expr E)
                case E of
                    decl int Const C: C, where C >= 0
                invariant value(E) > 0",
            "big",
        ),
        Verdict::Unsound
    );
}

#[test]
fn division_rule_is_rejected() {
    // Quotients of positives may be zero (integer division): the prover
    // has no axioms that would justify it, so the obligation fails.
    assert_eq!(
        verdict_of(
            "value qualifier posq(int Expr E)
                case E of
                    decl int Expr E1, E2: E1 / E2, where pos(E1) && pos(E2)
                invariant value(E) > 0",
            "posq",
        ),
        Verdict::Unsound
    );
}

#[test]
fn flow_qualifier_with_a_claimed_invariant_is_rejected() {
    // Taking tainted's accept-everything rule but claiming an invariant:
    // the arbitrary-expression case cannot establish anything.
    assert_eq!(
        verdict_of(
            "value qualifier bogus(int Expr E)
                case E of
                    decl int Expr E1: E1
                invariant value(E) != 0",
            "bogus",
        ),
        Verdict::Unsound
    );
}

#[test]
fn addr_case_for_wrong_invariant_is_rejected() {
    // &L is nonnull, but claiming it is exactly 7 fails.
    assert_eq!(
        verdict_of(
            "value qualifier seven(T* Expr E)
                case E of
                    decl T LValue L: &L
                invariant value(E) == 7",
            "seven",
        ),
        Verdict::Unsound
    );
}

#[test]
fn unique_with_addr_disallow_but_not_read_disallow_is_rejected() {
    // disallow &X alone does not stop the aliasing copy; the read case
    // of preservation still fails.
    assert_eq!(
        verdict_of(
            "ref qualifier unique2(T* LValue L)
                assign L NULL | new
                disallow &L
                invariant value(L) == NULL ||
                    (isHeapLoc(value(L)) &&
                     forall T** P: *P == value(L) => P == location(L))",
            "unique2",
        ),
        Verdict::Unsound
    );
}

#[test]
fn no_invariant_is_always_vacuously_fine() {
    assert_eq!(
        verdict_of(
            "value qualifier marker(T Expr E)
                case E of
                    decl T Expr E1: E1",
            "marker",
        ),
        Verdict::NoInvariant
    );
}
