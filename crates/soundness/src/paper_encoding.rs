//! The §4.2 obligations in the paper's *literal* vocabulary.
//!
//! The paper displays reference-qualifier obligations over execution
//! states and a small-step function, e.g. for `unique`'s second assign
//! clause:
//!
//! ```text
//! ∀ρ, l. (getStmt(ρ) = assign(l, new)) ⇒ unique(stepState(ρ), l)
//! ```
//!
//! The main obligation generator ([`crate::obligations`]) works directly
//! over store updates — semantically the same statement with the
//! state-stepping inlined. This module keeps the paper's surface form:
//! reified statements (`assignNull(l)`, `assignNew(l)`), `getStmt`,
//! `stepState`, and *bridge axioms* giving the step function its
//! store-update semantics. The tests prove the literal obligations and
//! thereby validate that the two encodings agree.

use crate::axioms::{self, state_sort, store_sort};
use crate::obligations::ref_inv_formula;
use stq_logic::solver::Problem;
use stq_logic::term::{Formula, Sort, Term};
use stq_qualspec::{QualKind, QualifierDef};
use stq_util::Symbol;

/// `getStmt(ρ)`.
pub fn get_stmt(rho: &Term) -> Term {
    Term::app("getStmt", vec![rho.clone()])
}

/// `stepState(ρ)` — the state after executing the current statement.
pub fn step_state(rho: &Term) -> Term {
    Term::app("stepState", vec![rho.clone()])
}

/// The reified statement `l := NULL`.
pub fn assign_null(l: &Term) -> Term {
    Term::app("assignNull", vec![l.clone()])
}

/// The reified statement `l := new` (allocation).
pub fn assign_new(l: &Term) -> Term {
    Term::app("assignNew", vec![l.clone()])
}

/// `newLoc(σ)` — the location a `new` in store σ returns.
pub fn new_loc(sigma: &Term) -> Term {
    Term::app("newLoc", vec![sigma.clone()])
}

fn lval_sort() -> Sort {
    axioms::lval_sort()
}

/// Bridge axioms giving `stepState` its semantics in terms of `store`.
pub fn step_axioms() -> Vec<Formula> {
    let rho = Term::var("rho", state_sort());
    let l = Term::var("l", lval_sort());
    let s = Term::var("s", store_sort());
    let p = Term::var("p", Sort::Int);
    let mut out = Vec::new();

    let sigma = axioms::get_store(&rho);
    let loc = axioms::location(&rho, &l);
    let step = step_state(&rho);

    // Executing `l := NULL` updates the store at l's location with 0.
    out.push(Formula::forall(
        vec![
            (Symbol::intern("rho"), state_sort()),
            (Symbol::intern("l"), lval_sort()),
        ],
        vec![vec![step.clone(), assign_null(&l)]],
        get_stmt(&rho)
            .eq(&assign_null(&l))
            .implies(axioms::get_store(&step).eq(&axioms::store(&sigma, &loc, &Term::int(0)))),
    ));

    // Executing `l := new` updates the store with a fresh heap location.
    out.push(Formula::forall(
        vec![
            (Symbol::intern("rho"), state_sort()),
            (Symbol::intern("l"), lval_sort()),
        ],
        vec![vec![step.clone(), assign_new(&l)]],
        get_stmt(&rho)
            .eq(&assign_new(&l))
            .implies(axioms::get_store(&step).eq(&axioms::store(&sigma, &loc, &new_loc(&sigma)))),
    ));

    // newLoc returns a heap location…
    out.push(Formula::forall(
        vec![(Symbol::intern("s"), store_sort())],
        vec![vec![new_loc(&s)]],
        axioms::is_heap_loc(&new_loc(&s)),
    ));

    // …that nothing in the store references yet.
    out.push(Formula::forall(
        vec![
            (Symbol::intern("s"), store_sort()),
            (Symbol::intern("p"), Sort::Int),
        ],
        vec![vec![new_loc(&s), axioms::select(&s, &p)]],
        axioms::select(&s, &p).ne(&new_loc(&s)),
    ));

    // Stepping a statement does not move any l-value.
    out.push(Formula::forall(
        vec![
            (Symbol::intern("rho"), state_sort()),
            (Symbol::intern("l"), lval_sort()),
        ],
        vec![vec![axioms::location(&step, &l)]],
        axioms::location(&step, &l).eq(&axioms::location(&rho, &l)),
    ));

    out
}

/// Builds the paper's literal obligation for one assign form of a
/// reference qualifier:
/// `∀ρ, l. (getStmt(ρ) = assign(l, FORM)) ⇒ q(stepState(ρ), l)`.
///
/// # Panics
///
/// Panics if `def` is not a reference qualifier with an invariant, or if
/// `form` is not `"NULL"` or `"new"`.
pub fn literal_assign_obligation(def: &QualifierDef, form: &str) -> Problem {
    assert_eq!(
        def.kind,
        QualKind::Ref,
        "literal encoding is for ref qualifiers"
    );
    let inv = def
        .invariant
        .as_ref()
        .expect("literal encoding needs an invariant");

    let rho = Term::cnst("rho0!");
    let l = Term::cnst("l0!");
    let stmt = match form {
        "NULL" => assign_null(&l),
        "new" => assign_new(&l),
        other => panic!("unknown assign form `{other}`"),
    };

    let mut problem = Problem::new();
    for ax in axioms::background_axioms() {
        problem.axiom(ax);
    }
    for ax in step_axioms() {
        problem.axiom(ax);
    }
    // Hypothesis: the current statement is the assignment.
    problem.hypothesis(get_stmt(&rho).eq(&stmt));
    // The qualifier's invariant, interpreted in the *post* state: its
    // store is getStore(stepState(ρ)), its subject location is the
    // (step-stable) location of l.
    let step = step_state(&rho);
    let sigma_after = axioms::get_store(&step);
    let ll = axioms::location(&rho, &l);
    problem.goal(ref_inv_formula(inv, &sigma_after, &ll));
    problem
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_qualspec::Registry;

    #[test]
    fn papers_displayed_obligation_for_unique_and_new_proves() {
        // ∀ρ,l. (getStmt(ρ) = assign(l, new)) ⇒ unique(stepState(ρ), l)
        let registry = Registry::builtins();
        let unique = registry.get_by_name("unique").expect("builtin");
        let problem = literal_assign_obligation(unique, "new");
        assert!(problem.prove().is_proved());
    }

    #[test]
    fn literal_null_obligation_proves() {
        let registry = Registry::builtins();
        let unique = registry.get_by_name("unique").expect("builtin");
        let problem = literal_assign_obligation(unique, "NULL");
        assert!(problem.prove().is_proved());
    }

    #[test]
    fn literal_encoding_rejects_a_wrong_invariant() {
        // Claiming the freshly assigned unique pointer is NULL after a
        // `new` assignment must fail.
        let mut registry = Registry::new();
        registry
            .add_source(
                "ref qualifier alwaysnull(T* LValue L)
                    assign L new
                    invariant value(L) == NULL",
            )
            .unwrap();
        let def = registry.get_by_name("alwaysnull").unwrap();
        let problem = literal_assign_obligation(def, "new");
        assert!(!problem.prove().is_proved());
        // But the same invariant is established by a NULL assignment.
        let problem = literal_assign_obligation(def, "NULL");
        assert!(problem.prove().is_proved());
    }

    #[test]
    fn both_encodings_agree_on_unaliased_like_invariants() {
        // A quantified invariant that an assignment of new cannot break…
        // unaliased's invariant is not established by assignment at all
        // (nothing relates the assigned value to location(L)), so both
        // encodings must refuse it.
        let registry = Registry::builtins();
        let unaliased = registry.get_by_name("unaliased").expect("builtin");
        let literal = literal_assign_obligation(unaliased, "NULL");
        assert!(!literal.prove().is_proved());
    }

    #[test]
    #[should_panic(expected = "ref qualifiers")]
    fn value_qualifiers_are_rejected() {
        let registry = Registry::builtins();
        let pos = registry.get_by_name("pos").expect("builtin");
        let _ = literal_assign_obligation(pos, "NULL");
    }
}
